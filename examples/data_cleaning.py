"""Error correction on a dirty table (the Table VIII scenario).

Generates a beers-style dirty spreadsheet, builds Baran-style candidate
corrections, opens a :class:`repro.api.SudowoodoSession` pre-trained on the
serialized cells, and attaches the ``clean`` task: the matcher fine-tunes
on 20 labeled rows and repairs are printed alongside the Raha+Baran
baseline.

Run:  python examples/data_cleaning.py
      python examples/data_cleaning.py --smoke   # CI scale
"""

import argparse

from repro.api import SudowoodoConfig, SudowoodoSession
from repro.cleaning import CandidateGenerator, cleaning_corpus, run_raha_baran
from repro.data.generators import load_cleaning_dataset


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="tiny config for CI smoke runs (~seconds)")
    args = parser.parse_args()

    dataset = load_cleaning_dataset("beers", scale=0.03 if args.smoke else 0.05)
    print(f"Dirty table: {len(dataset.dirty)} rows x {len(dataset.schema)} "
          f"columns, {len(dataset.error_cells())} injected errors "
          f"({', '.join(dataset.error_type_names())})")

    generator = CandidateGenerator().fit(dataset)
    stats = generator.stats()
    print(f"Candidate tools: coverage={stats.coverage:.0%}, "
          f"mean {stats.mean_candidates:.1f} candidates/cell")

    # The cleaning preset (span_shuffle DA, pseudo-labeling off) now lives
    # on the config class itself.
    if args.smoke:
        config = SudowoodoConfig.for_task(
            "clean",
            dim=16, num_layers=1, num_heads=2, ffn_dim=32,
            max_seq_len=24, pair_max_seq_len=48, vocab_size=800,
            pretrain_epochs=1, finetune_epochs=2, num_clusters=3,
            corpus_cap=64, mlm_warm_start_epochs=0, seed=0,
        )
    else:
        config = SudowoodoConfig.for_task(
            "clean",
            dim=32, num_layers=2, num_heads=4, ffn_dim=64,
            max_seq_len=40, pair_max_seq_len=80,
            pretrain_epochs=2, finetune_epochs=8, corpus_cap=200, seed=0,
        )

    # Pretrain once on the serialized cell corpus, then attach the clean
    # task (which reuses the session's encoder instead of re-pretraining).
    session = SudowoodoSession(config)
    session.pretrain(cleaning_corpus(dataset, generator))
    clean_task = session.task("clean")
    clean_task.fit(dataset, generator, labeled_rows=12 if args.smoke else 20)

    metrics = clean_task.evaluate()
    report = clean_task.report()
    print(f"\nSudowoodo EC:  P={metrics['precision']:.2f} "
          f"R={metrics['recall']:.2f} F1={metrics['f1']:.2f} "
          f"({report.repaired} repairs)")

    baseline = run_raha_baran(dataset, generator)
    print(f"Raha + Baran:  P={baseline.precision:.2f} "
          f"R={baseline.recall:.2f} F1={baseline.f1:.2f}")

    print("\nExample repairs:")
    repairs = clean_task.predict()
    shown = 0
    for (row, attribute), candidate in repairs.items():
        truth = dataset.ground_truth(row, attribute)
        verdict = "OK " if candidate == truth else "BAD"
        print(f"  [{verdict}] row {row:>3} {attribute}: "
              f"{dataset.dirty[row].get(attribute)!r} -> {candidate!r} "
              f"(truth {truth!r})")
        shown += 1
        if shown >= 6:
            break


if __name__ == "__main__":
    main()
