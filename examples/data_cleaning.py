"""Error correction on a dirty table (the Table VIII scenario).

Generates a beers-style dirty spreadsheet, builds Baran-style candidate
corrections, fine-tunes Sudowoodo's matcher on 20 labeled rows, and prints
a few example repairs alongside the Raha+Baran baseline.

Run:  python examples/data_cleaning.py
"""

from repro.cleaning import (
    CandidateGenerator,
    SudowoodoCleaner,
    cleaning_config,
    run_raha_baran,
)
from repro.data.generators import load_cleaning_dataset


def main() -> None:
    dataset = load_cleaning_dataset("beers", scale=0.05)
    print(f"Dirty table: {len(dataset.dirty)} rows x {len(dataset.schema)} "
          f"columns, {len(dataset.error_cells())} injected errors "
          f"({', '.join(dataset.error_type_names())})")

    generator = CandidateGenerator().fit(dataset)
    stats = generator.stats()
    print(f"Candidate tools: coverage={stats.coverage:.0%}, "
          f"mean {stats.mean_candidates:.1f} candidates/cell")

    config = cleaning_config(
        dim=32, num_layers=2, num_heads=4, ffn_dim=64,
        max_seq_len=40, pair_max_seq_len=80,
        pretrain_epochs=2, finetune_epochs=8, corpus_cap=200, seed=0,
    )
    cleaner = SudowoodoCleaner(config).fit(dataset, generator, labeled_rows=20)
    report = cleaner.evaluate()
    print(f"\nSudowoodo EC:  P={report.precision:.2f} R={report.recall:.2f} "
          f"F1={report.f1:.2f} ({report.repaired} repairs)")

    baseline = run_raha_baran(dataset, generator)
    print(f"Raha + Baran:  P={baseline.precision:.2f} "
          f"R={baseline.recall:.2f} F1={baseline.f1:.2f}")

    print("\nExample repairs:")
    repairs = cleaner.correct()
    shown = 0
    for (row, attribute), candidate in repairs.items():
        truth = dataset.ground_truth(row, attribute)
        verdict = "OK " if candidate == truth else "BAD"
        print(f"  [{verdict}] row {row:>3} {attribute}: "
              f"{dataset.dirty[row].get(attribute)!r} -> {candidate!r} "
              f"(truth {truth!r})")
        shown += 1
        if shown >= 6:
            break


if __name__ == "__main__":
    main()
