"""End-to-end data integration: discover joins, dedupe, and serve.

One pre-trained :class:`repro.api.SudowoodoSession` drives the full
discovery pipeline added by ``repro.discovery``:

1. ``join_discovery`` — rank joinable column pairs across a lake of
   generated tables (containment sketches + embedding cosine);
2. ``dedupe`` — self-join entity matching over a dirty table, connected
   components, and conflict-resolution merging into canonical records;
3. ``streaming_er`` — replay a live upsert/delete/search feed through
   the production service front end, reporting staleness and QPS.

Run:  python examples/join_and_dedupe.py
      python examples/join_and_dedupe.py --smoke   # CI scale
"""

import argparse

from repro.api import SudowoodoConfig, SudowoodoSession
from repro.data.generators import (
    generate_dirty_duplicates,
    generate_joinable_tables,
)
from repro.data.records import serialize_record
from repro.discovery.join import profile_tables


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="tiny config for CI smoke runs (~seconds)")
    args = parser.parse_args()

    if args.smoke:
        lake = generate_joinable_tables(num_tables=3, rows=20, seed=1)
        dirty = generate_dirty_duplicates(num_entities=12, hardness=0.15, seed=2)
        config = SudowoodoConfig(
            dim=24, num_layers=1, num_heads=2, ffn_dim=48, max_seq_len=32,
            pair_max_seq_len=64, vocab_size=1200, pretrain_epochs=3,
            pretrain_batch_size=8, finetune_epochs=6, finetune_batch_size=8,
            num_clusters=3, corpus_cap=128, multiplier=2,
            mlm_warm_start_epochs=0, blocking_k=4, seed=0,
        )
        label_budget, num_events = 60, 40
    else:
        lake = generate_joinable_tables(num_tables=5, rows=40, num_domains=4, seed=1)
        dirty = generate_dirty_duplicates(num_entities=40, hardness=0.2, seed=2)
        config = SudowoodoConfig(
            dim=32, num_layers=2, num_heads=4, ffn_dim=64,
            pretrain_epochs=3, finetune_epochs=8, num_clusters=3,
            corpus_cap=512, mlm_warm_start_epochs=0, blocking_k=4, seed=0,
        )
        label_budget, num_events = 120, 150

    # One pretrain pays for all three tasks: columns and records share
    # the session's encoder and embedding store.
    corpus = [p.text for p in profile_tables(lake.tables)] + [
        serialize_record(r, dirty.table.schema) for r in dirty.table
    ]
    session = SudowoodoSession(config)
    session.pretrain(corpus)
    print(f"Session pretrained on {len(corpus)} items "
          f"({len(lake.tables)} tables + {len(dirty.table)} dirty rows)")

    # 1. Discover joinable columns across the lake.
    join = session.task("join_discovery").fit(lake, k=5)
    metrics = join.evaluate()
    print(f"\n[join_discovery] {int(metrics['num_candidates'])} candidates, "
          f"recall@T={metrics['recall_at']:.0%}")
    for cand in join.predict(top=3):
        print(f"  {cand.table_a}.{cand.column_a} ~ "
              f"{cand.table_b}.{cand.column_b}  "
              f"score={cand.score:.2f} "
              f"(containment={cand.containment:.2f}, cosine={cand.cosine:.2f})")

    # 2. Dedupe the dirty table into canonical records.
    dedupe = session.task("dedupe", policy="newest").fit(
        dirty, label_budget=label_budget, threshold=0.5
    )
    report = dedupe.report()
    print(f"\n[dedupe] {report.num_records} rows -> "
          f"{len(report.clusters)} canonical records "
          f"(reduction {report.reduction_ratio:.0%}, "
          f"pairwise F1={report.metrics.get('f1', 0.0):.2f})")
    biggest = max(report.clusters, key=len)
    canonical = report.canonical_records[report.clusters.index(biggest)]
    print(f"  cluster {biggest} merged into: {canonical.get('name')!r}")

    # 3. Stress the consolidated index under a live feed.
    streaming = session.task("streaming_er").fit(
        dirty, num_events=num_events, delete_fraction=0.2, seed=3
    )
    stats = streaming.predict(flush_every=4)
    print(f"\n[streaming_er] {int(stats['events'])} events "
          f"({int(stats['upserts'])} upserts, {int(stats['deletes'])} deletes, "
          f"{int(stats['searches'])} searches)")
    print(f"  sustained {stats['qps']:.0f} qps, "
          f"staleness p50={stats['staleness_p50_s'] * 1e3:.1f}ms "
          f"p99={stats['staleness_p99_s'] * 1e3:.1f}ms, "
          f"final index size {int(stats['final_index_size'])}")

    # The same fitted dedupe task serves the *cleaned* view.
    service = session.serve("dedupe", frontend=True)
    print(f"\nServing canonical records: index_size={service.index_size}")


if __name__ == "__main__":
    main()
