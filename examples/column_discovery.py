"""Semantic column type discovery (the Table IX / X scenario).

Opens a :class:`repro.api.SudowoodoSession` pre-trained on a corpus of
serialized table columns, attaches the ``column_cluster`` task (same-type
pair matching + connected-component clustering), and shows the
fine-grained subtypes Sudowoodo discovers beyond the ground-truth labels.

Run:  python examples/column_discovery.py
      python examples/column_discovery.py --smoke   # CI scale
"""

import argparse

from repro.api import SudowoodoConfig, SudowoodoSession
from repro.data.generators import generate_column_corpus


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="tiny config for CI smoke runs (~seconds)")
    args = parser.parse_args()

    corpus = generate_column_corpus(60 if args.smoke else 180, seed=7)
    print(f"Column corpus: {len(corpus)} columns over "
          f"{len(corpus.type_counts())} ground-truth semantic types")

    # The column preset (cell_shuffle DA, longer sequences) now lives on
    # the config class itself.
    if args.smoke:
        config = SudowoodoConfig.for_task(
            "column_cluster",
            dim=16, num_layers=1, num_heads=2, ffn_dim=32, vocab_size=800,
            pretrain_epochs=1, finetune_epochs=2, num_clusters=3,
            corpus_cap=60, mlm_warm_start_epochs=0, seed=0,
        )
        max_values = 5
    else:
        config = SudowoodoConfig.for_task(
            "column_cluster",
            dim=32, num_layers=2, num_heads=4, ffn_dim=64,
            pretrain_epochs=2, finetune_epochs=8, corpus_cap=180, seed=0,
        )
        max_values = 6

    # Pretrain once on the serialized columns, then attach type discovery.
    session = SudowoodoSession(config)
    session.pretrain(corpus.serialized(max_values=max_values))
    task = session.task("column_cluster", max_values_per_column=max_values)
    k, num_labels = (5, 60) if args.smoke else (10, 200)
    task.fit(corpus, k=k, num_labels=num_labels)
    report = task.report()

    print(f"\nPair matching: test F1={report.match_metrics.get('f1', 0.0):.3f}")
    print(f"Discovered {report.num_clusters} clusters from "
          f"{report.num_edges} predicted edges, "
          f"purity={report.metrics['purity']:.0%}")

    if report.subtype_discoveries:
        print("\nFine-grained subtypes found (beyond ground-truth types):")
        for discovery in report.subtype_discoveries[:5]:
            print(f"  {discovery['type']} -> {discovery['subtype']} "
                  f"(size {discovery['size']}, e.g. {discovery['example']!r})")


if __name__ == "__main__":
    main()
