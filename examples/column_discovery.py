"""Semantic column type discovery (the Table IX / X scenario).

Pre-trains on a corpus of serialized table columns, matches same-type
column pairs, clusters them with connected components, and shows the
fine-grained subtypes Sudowoodo discovers beyond the ground-truth labels.

Run:  python examples/column_discovery.py
"""

from repro.columns import ColumnMatchingPipeline, column_config, discover_types
from repro.data.generators import generate_column_corpus


def main() -> None:
    corpus = generate_column_corpus(180, seed=7)
    print(f"Column corpus: {len(corpus)} columns over "
          f"{len(corpus.type_counts())} ground-truth semantic types")

    config = column_config(
        dim=32, num_layers=2, num_heads=4, ffn_dim=64,
        pretrain_epochs=2, finetune_epochs=8, corpus_cap=180, seed=0,
    )
    pipeline = ColumnMatchingPipeline(config, max_values_per_column=6)
    pipeline.pretrain_on(corpus)

    report = pipeline.train_and_evaluate(k=10, num_labels=200)
    print(f"\nPair matching: test F1={report.test_metrics['f1']:.3f} "
          f"({report.num_candidates} candidates, "
          f"{report.positive_rate:.0%} positive)")

    edges = pipeline.predict_edges(pipeline.candidate_pairs(k=10))
    clusters = discover_types(corpus, edges)
    print(f"Discovered {clusters.num_clusters} clusters, "
          f"purity={clusters.mean_purity:.0%}")

    if clusters.subtype_discoveries:
        print("\nFine-grained subtypes found (beyond ground-truth types):")
        for discovery in clusters.subtype_discoveries[:5]:
            print(f"  {discovery['type']} -> {discovery['subtype']} "
                  f"(size {discovery['size']}, e.g. {discovery['example']!r})")


if __name__ == "__main__":
    main()
