"""Entity matching with ablations and baselines (the Table V scenario).

Compares full Sudowoodo against SimCLR (no optimizations), Sudowoodo
without pseudo-labeling, and the Ditto baseline, on a product benchmark.
Each ablation is its own :class:`repro.api.SudowoodoSession` (the ablations
change *pre-training*, so the encoder cannot be shared across rows).

Run:  python examples/entity_matching_pipeline.py
      python examples/entity_matching_pipeline.py --smoke   # CI scale
"""

import argparse

from repro.api import SudowoodoConfig, SudowoodoSession
from repro.baselines import train_ditto
from repro.data.generators import load_em_benchmark
from repro.eval import format_table


def config(smoke: bool, seed: int = 0) -> SudowoodoConfig:
    if smoke:
        return SudowoodoConfig(
            dim=16, num_layers=1, num_heads=2, ffn_dim=32,
            max_seq_len=24, pair_max_seq_len=40, vocab_size=800,
            pretrain_epochs=1, finetune_epochs=2, num_clusters=3,
            corpus_cap=64, multiplier=2, mlm_warm_start_epochs=0, seed=seed,
        )
    return SudowoodoConfig(
        dim=32,
        num_layers=2,
        num_heads=4,
        ffn_dim=64,
        max_seq_len=40,
        pair_max_seq_len=72,
        pretrain_epochs=3,
        finetune_epochs=15,
        num_clusters=8,
        corpus_cap=200,
        multiplier=4,
        seed=seed,
    )


def run_session(dataset, cfg: SudowoodoConfig, budget: int) -> float:
    """One pretrain + match fit under ``cfg``; returns the test F1."""
    session = SudowoodoSession(cfg)
    session.pretrain(dataset.all_items())
    return session.task("match").fit(dataset, label_budget=budget).report().f1


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="tiny config for CI smoke runs (~seconds)")
    args = parser.parse_args()

    scale = 0.02 if args.smoke else 0.06
    table_cap = 40 if args.smoke else 140
    dataset = load_em_benchmark("DA", scale=scale, max_table_size=table_cap)
    budget = 20 if args.smoke else 80
    rows = []

    ditto = train_ditto(dataset, budget, config(args.smoke))
    rows.append(["Ditto", 100 * ditto.f1])

    simclr = run_session(dataset, config(args.smoke).as_simclr(), budget)
    rows.append(["SimCLR", 100 * simclr])

    no_pl = run_session(
        dataset, config(args.smoke).ablated(use_pseudo_labeling=False), budget
    )
    rows.append(["Sudowoodo (-PL)", 100 * no_pl])

    full = run_session(dataset, config(args.smoke), budget)
    rows.append(["Sudowoodo", 100 * full])

    print(format_table(["method", "test F1"],
                       rows,
                       title=f"Semi-supervised EM on {dataset.name} "
                             f"({budget} labels)"))


if __name__ == "__main__":
    main()
