"""Entity matching with ablations and baselines (the Table V scenario).

Compares full Sudowoodo against SimCLR (no optimizations), Sudowoodo
without pseudo-labeling, and the Ditto baseline, on a product benchmark.

Run:  python examples/entity_matching_pipeline.py
"""

from repro import SudowoodoConfig, SudowoodoPipeline
from repro.baselines import train_ditto
from repro.data.generators import load_em_benchmark
from repro.eval import format_table


def config(seed: int = 0) -> SudowoodoConfig:
    return SudowoodoConfig(
        dim=32,
        num_layers=2,
        num_heads=4,
        ffn_dim=64,
        max_seq_len=40,
        pair_max_seq_len=72,
        pretrain_epochs=3,
        finetune_epochs=15,
        num_clusters=8,
        corpus_cap=200,
        multiplier=4,
        seed=seed,
    )


def main() -> None:
    dataset = load_em_benchmark("DA", scale=0.06, max_table_size=140)
    budget = 80
    rows = []

    ditto = train_ditto(dataset, budget, config())
    rows.append(["Ditto", 100 * ditto.f1])

    simclr = SudowoodoPipeline(config().as_simclr()).run(dataset, budget)
    rows.append(["SimCLR", 100 * simclr.f1])

    no_pl = SudowoodoPipeline(
        config().ablated(use_pseudo_labeling=False)
    ).run(dataset, budget)
    rows.append(["Sudowoodo (-PL)", 100 * no_pl.f1])

    full = SudowoodoPipeline(config()).run(dataset, budget)
    rows.append(["Sudowoodo", 100 * full.f1])

    print(format_table(["method", "test F1"],
                       rows,
                       title=f"Semi-supervised EM on {dataset.name} "
                             f"({budget} labels)"))


if __name__ == "__main__":
    main()
