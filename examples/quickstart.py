"""Quickstart: end-to-end Sudowoodo entity matching in ~1 minute on CPU.

Pre-trains a contrastive representation model on an unlabeled two-table
product corpus, blocks with kNN search, generates pseudo labels, and
fine-tunes the pairwise matcher on a small label budget.

Run:  python examples/quickstart.py
"""

from repro import SudowoodoConfig, SudowoodoPipeline
from repro.data.generators import load_em_benchmark


def main() -> None:
    # A scaled-down Abt-Buy-style benchmark (synthetic; see DESIGN.md).
    dataset = load_em_benchmark("AB", scale=0.06, max_table_size=120)
    print("Dataset:", dataset.stats())

    config = SudowoodoConfig(
        dim=32,
        num_layers=2,
        num_heads=4,
        ffn_dim=64,
        max_seq_len=40,
        pair_max_seq_len=72,
        pretrain_epochs=3,
        finetune_epochs=15,
        num_clusters=8,
        corpus_cap=200,
        multiplier=4,
        seed=0,
    )
    pipeline = SudowoodoPipeline(config)

    # (1) contrastive pre-training, (2) blocking, (3) pseudo labels,
    # (4) fine-tuning — one call.
    report = pipeline.run(dataset, label_budget=80)

    print(f"\nTest F1:        {report.f1:.3f}")
    print(f"Pseudo quality: TPR={report.pseudo_quality['tpr']:.2f} "
          f"TNR={report.pseudo_quality['tnr']:.2f}")
    print(f"Labels used:    {report.num_manual_labels} manual "
          f"+ {report.num_pseudo_labels} pseudo")

    # Blocking on its own: recall vs candidate-set-size-ratio.
    print("\nBlocking frontier (recall @ CSSR):")
    for row in pipeline.blocker.recall_cssr_curve([1, 5, 10]):
        print(f"  k={row['k']:>2}  recall={row['recall']:.2f}  "
              f"cssr={row['cssr']:.3f}")


if __name__ == "__main__":
    main()
