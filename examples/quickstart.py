"""Quickstart: end-to-end Sudowoodo entity matching in ~1 minute on CPU.

Opens a :class:`repro.api.SudowoodoSession`, contrastively pre-trains the
shared representation model on an unlabeled two-table product corpus, then
attaches the ``match`` task: blocking with kNN search, pseudo labels, and
a pairwise matcher fine-tuned on a small label budget.

Run:  python examples/quickstart.py            # full demo (~1 min)
      python examples/quickstart.py --smoke    # tiny CI-scale config (~secs)
"""

import argparse

from repro.api import SudowoodoConfig, SudowoodoSession
from repro.data.generators import load_em_benchmark


def build_config(smoke: bool) -> SudowoodoConfig:
    if smoke:
        return SudowoodoConfig(
            dim=16, num_layers=1, num_heads=2, ffn_dim=32,
            max_seq_len=24, pair_max_seq_len=40, vocab_size=800,
            pretrain_epochs=1, finetune_epochs=2, num_clusters=3,
            corpus_cap=64, multiplier=2, mlm_warm_start_epochs=0, seed=0,
        )
    return SudowoodoConfig(
        dim=32,
        num_layers=2,
        num_heads=4,
        ffn_dim=64,
        max_seq_len=40,
        pair_max_seq_len=72,
        pretrain_epochs=3,
        finetune_epochs=15,
        num_clusters=8,
        corpus_cap=200,
        multiplier=4,
        seed=0,
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="tiny config for CI smoke runs (~seconds)")
    args = parser.parse_args()

    # A scaled-down Abt-Buy-style benchmark (synthetic; see DESIGN.md).
    scale = 0.02 if args.smoke else 0.06
    table_cap = 40 if args.smoke else 120
    dataset = load_em_benchmark("AB", scale=scale, max_table_size=table_cap)
    print("Dataset:", dataset.stats())

    # (1) pretrain once on the unlabeled corpus ...
    session = SudowoodoSession(build_config(args.smoke))
    session.pretrain(dataset.all_items())

    # ... then (2) attach the match task: blocking, pseudo labels, and
    # matcher fine-tuning all reuse the session's shared embeddings.
    budget = 20 if args.smoke else 80
    match = session.task("match").fit(dataset, label_budget=budget)
    report = match.report()

    print(f"\nTest F1:        {report.f1:.3f}")
    if report.pseudo_quality:
        print(f"Pseudo quality: TPR={report.pseudo_quality['tpr']:.2f} "
              f"TNR={report.pseudo_quality['tnr']:.2f}")
    print(f"Labels used:    {report.num_manual_labels} manual "
          f"+ {report.num_pseudo_labels} pseudo")

    # Blocking on its own: recall vs candidate-set-size-ratio.
    print("\nBlocking frontier (recall @ CSSR):")
    for row in match.pipeline.blocker.recall_cssr_curve([1, 5, 10]):
        print(f"  k={row['k']:>2}  recall={row['recall']:.2f}  "
              f"cssr={row['cssr']:.3f}")


if __name__ == "__main__":
    main()
