#!/usr/bin/env python
"""Docs lint.

Two checks:

* every relative markdown link in README.md and docs/ resolves to an
  existing file or directory (external http/https/mailto links are not
  fetched);
* every public symbol in ``repro.api.__all__``, ``repro.train.__all__``,
  and ``repro.discovery.__all__`` — the recommended API surfaces —
  carries a docstring (the session API, the training engine, and the
  discovery tier are documentation-first; an undocumented export is a
  lint failure, not a style nit).

Exit code 0 when both checks pass, 1 otherwise (failures listed on
stderr).
"""

from __future__ import annotations

import inspect
import re
import sys
from pathlib import Path

LINK_PATTERN = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
SKIP_SCHEMES = ("http://", "https://", "mailto:")


def iter_markdown_files(root: Path):
    """README.md plus every markdown file under docs/."""
    readme = root / "README.md"
    if readme.exists():
        yield readme
    docs = root / "docs"
    if docs.is_dir():
        yield from sorted(docs.rglob("*.md"))


def check_file(markdown: Path, root: Path) -> list:
    """Return (file, link) tuples for links that do not resolve."""
    broken = []
    for match in LINK_PATTERN.finditer(markdown.read_text(encoding="utf-8")):
        target = match.group(1)
        if target.startswith(SKIP_SCHEMES) or target.startswith("#"):
            continue
        if target.startswith("<") and target.endswith(">"):
            continue  # placeholder like <this-repo>
        path = target.split("#", 1)[0]
        if not path:
            continue
        resolved = (markdown.parent / path).resolve()
        if not resolved.exists():
            broken.append((markdown.relative_to(root), target))
    return broken


#: Packages whose ``__all__`` must be fully documented — the recommended
#: API surfaces (the session API, the shared training engine, and the
#: discovery tier).
DOCUMENTED_PACKAGES = ("repro.api", "repro.train", "repro.discovery")


def check_api_docstrings(root: Path) -> list:
    """Return the documented-package symbols lacking a docstring.

    Every name in each :data:`DOCUMENTED_PACKAGES` module's ``__all__``
    (and the module itself) must carry a docstring.  ``repro`` is
    imported from the repo's ``src/`` layout, so the check works without
    an installed package.
    """
    import importlib

    sys.path.insert(0, str(root / "src"))
    try:
        modules = [
            importlib.import_module(name) for name in DOCUMENTED_PACKAGES
        ]
    finally:
        sys.path.pop(0)
    undocumented = []
    for module in modules:
        if not (module.__doc__ or "").strip():
            undocumented.append(module.__name__)
        for name in module.__all__:
            try:
                symbol = getattr(module, name)
            except AttributeError:
                undocumented.append(
                    f"{module.__name__}.{name} (missing attribute)"
                )
                continue
            if not (inspect.getdoc(symbol) or "").strip():
                undocumented.append(f"{module.__name__}.{name}")
    return undocumented


def main() -> int:
    root = Path(__file__).resolve().parent.parent
    broken = []
    checked = 0
    for markdown in iter_markdown_files(root):
        checked += 1
        broken.extend(check_file(markdown, root))
    undocumented = check_api_docstrings(root)
    if broken or undocumented:
        for source, target in broken:
            print(f"BROKEN LINK in {source}: {target}", file=sys.stderr)
        for symbol in undocumented:
            print(f"MISSING DOCSTRING: {symbol}", file=sys.stderr)
        return 1
    print(
        f"docs lint ok: {checked} markdown files, all relative links "
        f"resolve; every export of {', '.join(DOCUMENTED_PACKAGES)} is "
        "documented"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
