#!/usr/bin/env python
"""Docs lint: verify every relative markdown link in README.md and docs/
resolves to an existing file or directory.

Exit code 0 when all links resolve, 1 otherwise (broken links listed on
stderr).  External links (http/https/mailto) are not fetched.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

LINK_PATTERN = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
SKIP_SCHEMES = ("http://", "https://", "mailto:")


def iter_markdown_files(root: Path):
    """README.md plus every markdown file under docs/."""
    readme = root / "README.md"
    if readme.exists():
        yield readme
    docs = root / "docs"
    if docs.is_dir():
        yield from sorted(docs.rglob("*.md"))


def check_file(markdown: Path, root: Path) -> list:
    """Return (file, link) tuples for links that do not resolve."""
    broken = []
    for match in LINK_PATTERN.finditer(markdown.read_text(encoding="utf-8")):
        target = match.group(1)
        if target.startswith(SKIP_SCHEMES) or target.startswith("#"):
            continue
        if target.startswith("<") and target.endswith(">"):
            continue  # placeholder like <this-repo>
        path = target.split("#", 1)[0]
        if not path:
            continue
        resolved = (markdown.parent / path).resolve()
        if not resolved.exists():
            broken.append((markdown.relative_to(root), target))
    return broken


def main() -> int:
    root = Path(__file__).resolve().parent.parent
    broken = []
    checked = 0
    for markdown in iter_markdown_files(root):
        checked += 1
        broken.extend(check_file(markdown, root))
    if broken:
        for source, target in broken:
            print(f"BROKEN LINK in {source}: {target}", file=sys.stderr)
        return 1
    print(f"docs lint ok: {checked} markdown files, all relative links resolve")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
