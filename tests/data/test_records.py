"""Tests for the record model and serialization schemes."""

import pytest

from repro.data import (
    LabeledPair,
    PairSplit,
    Record,
    Table,
    serialize_cell_context_free,
    serialize_column,
    serialize_record,
    serialize_row_contextual,
)


def make_record():
    return Record(0, {"title": "instant immersion spanish", "price": "36.11"})


class TestRecord:
    def test_get_missing_returns_empty(self):
        assert make_record().get("nope") == ""

    def test_with_value_is_functional(self):
        record = make_record()
        updated = record.with_value("price", "17.10")
        assert record.get("price") == "36.11"
        assert updated.get("price") == "17.10"

    def test_text_joins_values(self):
        assert "36.11" in make_record().text()
        assert "spanish" in make_record().text()


class TestTable:
    def test_append_assigns_ids(self):
        table = Table("t", ["a"])
        r0 = table.append({"a": "x"})
        r1 = table.append({"a": "y"})
        assert (r0.record_id, r1.record_id) == (0, 1)

    def test_column_values(self):
        table = Table("t", ["a", "b"])
        table.append({"a": "1", "b": "2"})
        table.append({"a": "3", "b": "4"})
        assert table.column_values("b") == ["2", "4"]

    def test_iteration_and_len(self):
        table = Table("t", ["a"])
        table.append({"a": "x"})
        assert len(table) == 1
        assert [r.get("a") for r in table] == ["x"]


class TestSerialization:
    def test_record_serialization_matches_paper_format(self):
        text = serialize_record(make_record(), ["title", "price"])
        assert text == (
            "[COL] title [VAL] instant immersion spanish [COL] price [VAL] 36.11"
        )

    def test_record_serialization_keeps_empty_values(self):
        record = Record(0, {"title": "x", "manufacturer": ""})
        text = serialize_record(record, ["title", "manufacturer"])
        assert text.endswith("[COL] manufacturer [VAL]")

    def test_schema_order_respected(self):
        text = serialize_record(make_record(), ["price", "title"])
        assert text.startswith("[COL] price")

    def test_cell_context_free(self):
        assert serialize_cell_context_free("state", "wa") == "[COL] state [VAL] wa"

    def test_row_contextual_replacement(self):
        record = Record(0, {"city": "redmond", "state": "ca"})
        text = serialize_row_contextual(
            record, ["city", "state"], replace_attribute="state", replacement="wa"
        )
        assert "[COL] state [VAL] wa" in text
        assert "[VAL] ca" not in text

    def test_column_serialization(self):
        text = serialize_column(["new york", "california"])
        assert text == "[VAL] new york [VAL] california"

    def test_column_serialization_caps_values(self):
        text = serialize_column(["a", "b", "c"], max_values=2)
        assert text == "[VAL] a [VAL] b"


class TestPairSplit:
    def test_positive_rate(self):
        split = PairSplit(
            train=[LabeledPair(0, 0, 1), LabeledPair(0, 1, 0)],
            valid=[LabeledPair(1, 1, 0)],
            test=[LabeledPair(2, 2, 0)],
        )
        assert split.positive_rate() == pytest.approx(0.25)

    def test_empty_rate_is_zero(self):
        assert PairSplit().positive_rate() == 0.0

    def test_all_pairs_order(self):
        split = PairSplit(
            train=[LabeledPair(0, 0, 1)],
            valid=[LabeledPair(1, 1, 0)],
            test=[LabeledPair(2, 2, 0)],
        )
        assert len(split.all_pairs()) == 3
