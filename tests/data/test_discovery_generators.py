"""Tests for the discovery-tier generators: joinable table lakes and
dirty single tables with known duplicate clusters."""

import pytest

from repro.data.generators import (
    DIRTY_SCHEMA,
    generate_dirty_duplicates,
    generate_joinable_tables,
)


class TestJoinableTables:
    def test_deterministic_per_seed(self):
        one = generate_joinable_tables(seed=11)
        two = generate_joinable_tables(seed=11)
        assert one.joinable == two.joinable
        for name in one.tables:
            assert [r.attributes for r in one.tables[name]] == [
                r.attributes for r in two.tables[name]
            ]
        assert generate_joinable_tables(seed=12).joinable != one.joinable

    def test_shape(self):
        bundle = generate_joinable_tables(
            num_tables=5, rows=25, num_domains=3, noise_columns=2, seed=0
        )
        assert len(bundle.tables) == 5
        for table in bundle.tables.values():
            assert len(table) == 25
        assert bundle.joinable, "expected at least one joinable pair"

    def test_truth_pairs_reference_real_columns(self):
        bundle = generate_joinable_tables(seed=4)
        columns = set(bundle.columns())
        for left, right in bundle.joinable:
            assert left in columns and right in columns
            assert left[0] != right[0], "joinable pairs span tables"
            assert bundle.is_joinable(left, right)
            assert bundle.is_joinable(right, left)

    def test_joinable_columns_actually_overlap(self):
        bundle = generate_joinable_tables(rows=40, overlap=0.8, seed=6)
        for (table_a, col_a), (table_b, col_b) in bundle.joinable:
            values_a = set(bundle.tables[table_a].column_values(col_a))
            values_b = set(bundle.tables[table_b].column_values(col_b))
            shared = values_a & values_b - {""}
            assert shared, f"{(table_a, col_a)} vs {(table_b, col_b)}"

    def test_noise_columns_do_not_overlap(self):
        bundle = generate_joinable_tables(noise_columns=2, seed=3)
        noise_values = []
        for table in bundle.tables.values():
            for column in table.schema:
                if column.startswith("note_"):
                    noise_values.append(set(table.column_values(column)))
        for i, left in enumerate(noise_values):
            for right in noise_values[i + 1 :]:
                assert not (left & right)


class TestDirtyDuplicates:
    def test_deterministic_per_seed(self):
        one = generate_dirty_duplicates(seed=21)
        two = generate_dirty_duplicates(seed=21)
        assert one.clusters == two.clusters
        assert [r.attributes for r in one.table] == [
            r.attributes for r in two.table
        ]

    def test_clusters_partition_the_table(self):
        bundle = generate_dirty_duplicates(num_entities=20, seed=2)
        flat = sorted(i for cluster in bundle.clusters for i in cluster)
        assert flat == list(range(len(bundle.table)))

    def test_singletons_present(self):
        bundle = generate_dirty_duplicates(
            num_entities=30, singleton_fraction=0.4, seed=1
        )
        sizes = [len(cluster) for cluster in bundle.clusters]
        assert any(size == 1 for size in sizes)
        assert any(size > 1 for size in sizes)

    def test_cluster_of_and_duplicate_pairs_agree(self):
        bundle = generate_dirty_duplicates(num_entities=10, seed=5)
        pairs = bundle.duplicate_pairs()
        owner = bundle.cluster_of()
        for a, b in pairs:
            assert owner[a] == owner[b]
        for cluster in bundle.clusters:
            for i, a in enumerate(cluster):
                for b in cluster[i + 1 :]:
                    assert (min(a, b), max(a, b)) in pairs

    def test_schema_and_timestamps(self):
        bundle = generate_dirty_duplicates(num_entities=6, seed=0)
        assert bundle.table.schema == list(DIRTY_SCHEMA)
        for record in bundle.table:
            stamp = record.get("updated")
            assert len(stamp) == 10 and stamp[:4] == "2023"

    def test_reduction_ratio(self):
        bundle = generate_dirty_duplicates(num_entities=15, seed=7)
        expected = 1 - len(bundle.clusters) / len(bundle.table)
        assert bundle.reduction_ratio() == pytest.approx(expected)

    def test_duplicates_are_corrupted_not_identical(self):
        bundle = generate_dirty_duplicates(
            num_entities=20, hardness=0.5, singleton_fraction=0.0, seed=9
        )
        differing = 0
        for cluster in bundle.clusters:
            if len(cluster) < 2:
                continue
            rows = [bundle.table[i].attributes for i in cluster]
            if any(row != rows[0] for row in rows[1:]):
                differing += 1
        assert differing > 0

    def test_invalid_max_duplicates_raises(self):
        with pytest.raises(ValueError, match="max_duplicates"):
            generate_dirty_duplicates(max_duplicates=1)
