"""Tests for the synthetic EM / cleaning / column dataset generators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.generators import (
    ALL_DATASET_KEYS,
    CLEANING_DATASET_KEYS,
    EM_DATASET_KEYS,
    benchmark_entry,
    corrupt_text,
    generate_column_corpus,
    load_cleaning_dataset,
    load_em_benchmark,
)
from repro.text import jaccard


class TestCorruptText:
    def test_zero_hardness_identity(self):
        assert corrupt_text("alpha beta gamma", np.random.default_rng(0), 0.0) == (
            "alpha beta gamma"
        )

    def test_never_empty(self):
        rng = np.random.default_rng(0)
        for _ in range(50):
            assert corrupt_text("single", rng, 1.0)

    def test_high_hardness_changes_text(self):
        rng = np.random.default_rng(0)
        changed = sum(
            corrupt_text("wireless deluxe keyboard premium", rng, 0.9)
            != "wireless deluxe keyboard premium"
            for _ in range(20)
        )
        assert changed >= 15

    def test_deterministic_given_rng(self):
        a = corrupt_text("wireless deluxe keyboard", np.random.default_rng(5), 0.8)
        b = corrupt_text("wireless deluxe keyboard", np.random.default_rng(5), 0.8)
        assert a == b


class TestEMBenchmarks:
    @pytest.mark.parametrize("key", EM_DATASET_KEYS)
    def test_positive_rate_close_to_paper(self, key):
        dataset = load_em_benchmark(key, scale=0.05, max_table_size=300)
        expected = benchmark_entry(key).positive_rate
        assert dataset.pairs.positive_rate() == pytest.approx(expected, abs=0.03)

    def test_matches_are_labeled_positive(self):
        dataset = load_em_benchmark("AB", scale=0.05)
        for pair in dataset.pairs.all_pairs():
            if pair.label == 1:
                assert (pair.left, pair.right) in dataset.matches

    def test_negatives_not_in_matches(self):
        dataset = load_em_benchmark("DA", scale=0.05)
        for pair in dataset.pairs.all_pairs():
            if pair.label == 0:
                assert (pair.left, pair.right) not in dataset.matches

    def test_pair_indices_in_range(self):
        dataset = load_em_benchmark("WA", scale=0.04, max_table_size=200)
        for pair in dataset.pairs.all_pairs():
            assert 0 <= pair.left < len(dataset.table_a)
            assert 0 <= pair.right < len(dataset.table_b)

    def test_split_ratio_3_1_1(self):
        dataset = load_em_benchmark("AG", scale=0.05)
        n = len(dataset.pairs.all_pairs())
        assert len(dataset.pairs.train) == pytest.approx(0.6 * n, abs=2)
        assert len(dataset.pairs.valid) == pytest.approx(0.2 * n, abs=2)

    def test_deterministic(self):
        a = load_em_benchmark("AB", scale=0.03)
        b = load_em_benchmark("AB", scale=0.03)
        assert a.serialize_a(0) == b.serialize_a(0)
        assert a.matches == b.matches

    def test_difficulty_ordering(self):
        """Positive-class Jaccard: easy (DA) > hard (WA), the property the
        difficulty analysis in Table XVI depends on."""

        def positive_jaccard(key):
            ds = load_em_benchmark(key, scale=0.04, max_table_size=200)
            values = [
                jaccard(
                    ds.table_a[p.left].text(), ds.table_b[p.right].text()
                )
                for p in ds.pairs.all_pairs()
                if p.label == 1
            ]
            return float(np.mean(values))

        assert positive_jaccard("DA") > positive_jaccard("WA") + 0.1

    def test_hard_negatives_exist(self):
        """Sibling negatives must overlap far more than random negatives."""
        ds = load_em_benchmark("WA", scale=0.04, max_table_size=200)
        neg = sorted(
            jaccard(ds.table_a[p.left].text(), ds.table_b[p.right].text())
            for p in ds.pairs.all_pairs()
            if p.label == 0
        )
        median = neg[len(neg) // 2]
        assert neg[-1] > 0.25
        assert neg[-1] > 3 * max(median, 0.01)

    def test_all_items_corpus_size(self):
        ds = load_em_benchmark("AB", scale=0.03)
        assert len(ds.all_items()) == len(ds.table_a) + len(ds.table_b)

    def test_sample_labeled_budget(self):
        ds = load_em_benchmark("AB", scale=0.05)
        rng = np.random.default_rng(0)
        sample = ds.sample_labeled(50, rng)
        assert len(sample) == 50

    def test_sample_labeled_exceeding_pool_returns_all(self):
        ds = load_em_benchmark("AB", scale=0.03)
        rng = np.random.default_rng(0)
        pool_size = len(ds.pairs.train) + len(ds.pairs.valid)
        assert len(ds.sample_labeled(10**6, rng)) == pool_size

    def test_unknown_benchmark_raises(self):
        with pytest.raises(KeyError):
            load_em_benchmark("nope")

    @pytest.mark.parametrize("key", ALL_DATASET_KEYS)
    def test_all_eight_datasets_generate(self, key):
        dataset = load_em_benchmark(key, scale=0.02, max_table_size=100)
        assert len(dataset.table_a) >= 12
        assert len(dataset.pairs.all_pairs()) >= 10
        assert dataset.matches


class TestCleaningDatasets:
    @pytest.mark.parametrize("name", CLEANING_DATASET_KEYS)
    def test_error_rate_matches_table3(self, name):
        dataset = load_cleaning_dataset(name, scale=0.2)
        expected = {"beers": 0.16, "hospital": 0.03, "rayyan": 0.09, "tax": 0.04}
        assert dataset.error_rate() == pytest.approx(expected[name], abs=0.01)

    @pytest.mark.parametrize("name", CLEANING_DATASET_KEYS)
    def test_error_types_match_table3(self, name):
        dataset = load_cleaning_dataset(name, scale=0.2)
        expected = {
            "beers": {"MV", "FI", "VAD"},
            "hospital": {"T", "VAD"},
            "rayyan": {"MV", "T", "FI", "VAD"},
            "tax": {"T", "FI", "VAD"},
        }
        assert set(dataset.error_type_names()) <= expected[name]

    def test_dirty_cells_differ_from_clean(self):
        dataset = load_cleaning_dataset("beers", scale=0.1)
        for row, attr in dataset.error_cells():
            assert dataset.dirty[row].get(attr) != dataset.clean[row].get(attr)

    def test_non_error_cells_identical(self):
        dataset = load_cleaning_dataset("hospital", scale=0.1)
        for row in range(len(dataset.dirty)):
            for attr in dataset.schema:
                if not dataset.is_error(row, attr):
                    assert dataset.dirty[row].get(attr) == dataset.clean[row].get(attr)

    def test_column_counts(self):
        expected = {"beers": 11, "hospital": 20, "rayyan": 11, "tax": 15}
        for name, cols in expected.items():
            dataset = load_cleaning_dataset(name, scale=0.05)
            assert len(dataset.schema) == cols

    def test_functional_dependencies_hold_in_clean_table(self):
        dataset = load_cleaning_dataset("tax", scale=0.1)
        mapping = {}
        for record in dataset.clean:
            key = record.get("zip")
            value = (record.get("city"), record.get("state"))
            assert mapping.setdefault(key, value) == value

    def test_vad_errors_use_domain_values(self):
        dataset = load_cleaning_dataset("beers", scale=0.1)
        for (row, attr), etype in dataset.error_types.items():
            if etype == "VAD":
                column_domain = set(dataset.clean.column_values(attr))
                assert dataset.dirty[row].get(attr) in column_domain

    def test_deterministic(self):
        a = load_cleaning_dataset("rayyan", scale=0.1)
        b = load_cleaning_dataset("rayyan", scale=0.1)
        assert a.error_types == b.error_types

    def test_unknown_dataset_raises(self):
        with pytest.raises(KeyError):
            load_cleaning_dataset("nope")


class TestColumnCorpus:
    def test_size_and_determinism(self):
        a = generate_column_corpus(60, seed=3)
        b = generate_column_corpus(60, seed=3)
        assert len(a) == 60
        assert a[0].values == b[0].values

    def test_same_type_relation(self):
        corpus = generate_column_corpus(100, seed=0)
        i, j = 0, 1
        found_same = found_diff = False
        for i in range(len(corpus)):
            for j in range(i + 1, len(corpus)):
                if corpus.same_type(i, j):
                    found_same = True
                else:
                    found_diff = True
                if found_same and found_diff:
                    return
        assert found_same and found_diff

    def test_subtypes_within_type(self):
        corpus = generate_column_corpus(400, seed=1)
        city_subtypes = {
            c.subtype for c in corpus.columns if c.semantic_type == "city"
        }
        assert len(city_subtypes) == 2  # us_city and eu_city both present

    def test_serialization_format(self):
        corpus = generate_column_corpus(5, seed=0)
        text = corpus[0].serialize(max_values=3)
        assert text.startswith("[VAL] ")
        assert text.count("[VAL]") == 3

    def test_values_nonempty(self):
        corpus = generate_column_corpus(50, seed=2)
        for column in corpus.columns:
            assert len(column.values) >= 5
            assert all(v for v in column.values)

    def test_type_distribution_skewed(self):
        corpus = generate_column_corpus(500, seed=4)
        counts = sorted(corpus.type_counts().values(), reverse=True)
        assert counts[0] > counts[-1] * 2  # Zipf-ish head


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=1000))
def test_property_em_generation_invariants(seed):
    dataset = load_em_benchmark("AB", scale=0.02, seed=seed)
    pairs = dataset.pairs.all_pairs()
    keys = [(p.left, p.right) for p in pairs]
    assert len(keys) == len(set(keys))  # no duplicate labeled pairs
    # All matches are within table bounds.
    for left, right in dataset.matches:
        assert 0 <= left < len(dataset.table_a)
        assert 0 <= right < len(dataset.table_b)
