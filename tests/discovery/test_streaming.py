"""Streaming-ER scenario tests: feed generation, write buffering,
staleness measurement, and mid-stream deletion semantics."""

import numpy as np
import pytest

from repro.discovery import FeedEvent, make_feed, run_streaming_er
from repro.serve import MetricsRegistry


class ManualClock:
    """A callable fake clock: every call returns the current fake time,
    moved only by :meth:`advance`."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class RecordingTarget:
    """An in-memory stand-in for the service: a set of live texts plus an
    operation log, with an optional clock advanced per operation so
    staleness is exactly computable."""

    def __init__(self, initial=(), clock=None, cost_s=1.0):
        self.live = set(initial)
        self.log = []
        self.clock = clock
        self.cost_s = cost_s

    def _tick(self):
        if self.clock is not None:
            self.clock.advance(self.cost_s)

    def upsert_records(self, texts):
        self._tick()
        self.live.update(texts)
        self.log.append(("upsert", tuple(texts)))
        return np.arange(len(texts))

    def delete_records(self, texts):
        self._tick()
        for text in texts:
            self.live.discard(text)
        self.log.append(("delete", tuple(texts)))
        return np.arange(len(texts))

    def search(self, texts, k=5):
        self._tick()
        self.log.append(("search", tuple(texts)))
        return np.zeros((len(texts), k), dtype=int), np.zeros((len(texts), k))

    @property
    def index_size(self):
        return len(self.live)


CORPUS = [f"[COL] name [VAL] record {i}" for i in range(12)]


class TestMakeFeed:
    def test_deterministic_per_seed(self):
        one = make_feed(CORPUS[:6], CORPUS[6:], num_events=40, seed=9)
        two = make_feed(CORPUS[:6], CORPUS[6:], num_events=40, seed=9)
        assert one == two
        other = make_feed(CORPUS[:6], CORPUS[6:], num_events=40, seed=10)
        assert one != other

    def test_event_mix_and_validity(self):
        events = make_feed(
            CORPUS[:6], CORPUS[6:], num_events=80,
            search_fraction=0.4, delete_fraction=0.3, seed=1,
        )
        kinds = {kind for event in events for kind in [event.kind]}
        assert kinds == {"upsert", "delete", "search"}
        assert [event.seq for event in events] == list(range(80))

    def test_deletes_only_target_live_records(self):
        events = make_feed(
            CORPUS[:4], CORPUS[4:], num_events=100,
            search_fraction=0.2, delete_fraction=0.4, seed=2,
        )
        live = set(CORPUS[:4])
        for event in events:
            if event.kind == "upsert":
                assert event.texts[0] not in live  # live texts stay unique
                live.add(event.texts[0])
            elif event.kind == "delete":
                assert event.texts[0] in live
                live.discard(event.texts[0])
            else:
                assert event.texts[0] in live

    def test_upserts_cycle_with_revision_suffix(self):
        events = make_feed(
            CORPUS[:1], CORPUS[1:3], num_events=30,
            search_fraction=0.0, delete_fraction=0.0, seed=0,
        )
        upserted = [event.texts[0] for event in events]
        assert len(set(upserted)) == len(upserted)
        assert any("rev" in text for text in upserted)

    def test_invalid_inputs_raise(self):
        with pytest.raises(ValueError, match="corpus"):
            make_feed([], [], num_events=5)
        with pytest.raises(ValueError, match="search_fraction"):
            make_feed(CORPUS[:2], [], search_fraction=1.5)
        with pytest.raises(ValueError, match="kind"):
            FeedEvent(seq=0, kind="compact", texts=("x",))
        with pytest.raises(ValueError, match="text"):
            FeedEvent(seq=0, kind="upsert", texts=())


class TestRunStreamingER:
    def test_counts_and_mid_stream_deletion(self):
        events = make_feed(
            CORPUS[:6], CORPUS[6:], num_events=60,
            search_fraction=0.4, delete_fraction=0.25, seed=4,
        )
        target = RecordingTarget(initial=CORPUS[:6])
        stats = run_streaming_er(target, events, flush_every=4)
        upserts = sum(1 for e in events if e.kind == "upsert")
        deletes = sum(1 for e in events if e.kind == "delete")
        searches = sum(1 for e in events if e.kind == "search")
        assert deletes > 0, "feed must delete mid-stream"
        assert stats["upserts"] == upserts
        assert stats["deletes"] == deletes
        assert stats["searches"] == searches == stats["searches_completed"]
        # The live set reflects every applied write: deletions really
        # removed records from the index.
        assert stats["final_index_size"] == 6 + upserts - deletes
        assert stats["pending_writes"] == 0.0

    def test_writes_flush_in_arrival_order(self):
        events = [
            FeedEvent(seq=0, kind="upsert", texts=("a",)),
            FeedEvent(seq=1, kind="delete", texts=("a",)),
            FeedEvent(seq=2, kind="upsert", texts=("b",)),
        ]
        target = RecordingTarget()
        stats = run_streaming_er(target, events, flush_every=10)
        assert [kind for kind, _ in target.log] == ["upsert", "delete", "upsert"]
        assert target.live == {"b"}
        assert stats["final_index_size"] == 1

    def test_staleness_measured_against_fake_clock(self):
        clock = ManualClock()
        # Every operation (including each search) costs exactly 1s of
        # fake time, so a write buffered behind `flush_every` grows
        # predictably old before it becomes searchable.
        target = RecordingTarget(clock=clock, cost_s=1.0)
        events = [
            FeedEvent(seq=0, kind="upsert", texts=("a",)),   # t=0 arrival
            FeedEvent(seq=1, kind="search", texts=("a",)),   # +1s
            FeedEvent(seq=2, kind="search", texts=("a",)),   # +1s
            FeedEvent(seq=3, kind="upsert", texts=("b",)),   # t=2 arrival
        ]
        metrics = MetricsRegistry()
        stats = run_streaming_er(
            target, events, flush_every=2, metrics=metrics, clock=clock
        )
        # Both writes flush together once "b" arrives, and the apply
        # stamp is read after both 1s apply operations (fake t=4): "a"
        # (arrived t=0) is 4s old when it becomes searchable, "b"
        # (arrived t=2) is 2s old.
        snapshot = metrics.histogram("streaming_er.staleness_s").snapshot()
        assert snapshot["count"] == 2
        assert snapshot["max"] == pytest.approx(4.0)
        assert snapshot["min"] == pytest.approx(2.0)
        assert stats["staleness_max_s"] == pytest.approx(4.0)
        assert stats["qps"] == pytest.approx(2 / stats["elapsed_s"])

    def test_trailing_writes_flush_at_end(self):
        events = [FeedEvent(seq=0, kind="upsert", texts=("only",))]
        target = RecordingTarget()
        stats = run_streaming_er(target, events, flush_every=100)
        assert target.live == {"only"}
        assert stats["pending_writes"] == 0.0

    def test_flush_every_must_be_positive(self):
        with pytest.raises(ValueError, match="flush_every"):
            run_streaming_er(RecordingTarget(), [], flush_every=0)
