"""Dedupe engine tests: union-find streaming clustering (pinned to the
networkx partition), conflict-resolution merge policies, self-join
dataset construction, and pairwise metrics."""

import numpy as np
import pytest

from repro.data.generators import generate_dirty_duplicates
from repro.data.records import Record
from repro.discovery import (
    MERGE_POLICIES,
    DisjointSet,
    cluster_pairs,
    duplicate_clusters,
    iter_duplicate_clusters,
    merge_records,
    pairwise_metrics,
    self_match_dataset,
)
from repro.discovery.dedupe import _networkx_clusters


class TestDuplicateClusters:
    def test_partition_with_singletons(self):
        clusters = duplicate_clusters(6, [(0, 1), (1, 2)])
        assert clusters == [[0, 1, 2], [3], [4], [5]]

    def test_every_record_appears_exactly_once(self):
        clusters = duplicate_clusters(10, [(2, 7), (7, 9), (0, 4)])
        flat = sorted(index for cluster in clusters for index in cluster)
        assert flat == list(range(10))

    def test_no_edges_means_all_singletons(self):
        assert duplicate_clusters(4, []) == [[0], [1], [2], [3]]

    def test_orientation_and_self_edges_ignored(self):
        forward = duplicate_clusters(4, [(0, 1), (1, 1)])
        backward = duplicate_clusters(4, [(1, 0)])
        assert forward == backward == [[0, 1], [2], [3]]

    def test_out_of_range_edges_dropped(self):
        assert duplicate_clusters(3, [(0, 5), (1, 2)]) == [[0], [1, 2]]


class TestDisjointSet:
    def test_union_and_find(self):
        ds = DisjointSet(5)
        assert ds.union(0, 1)
        assert ds.union(1, 2)
        assert not ds.union(0, 2)  # already connected
        assert ds.connected(0, 2)
        assert not ds.connected(0, 3)

    def test_add_edges_counts_merges_and_ignores_junk(self):
        ds = DisjointSet(4)
        merges = ds.add_edges([(0, 1), (1, 0), (2, 2), (-1, 3), (3, 9), (1, 2)])
        assert merges == 2
        assert list(ds.iter_clusters()) == [[0, 1, 2], [3]]

    def test_empty_structure(self):
        ds = DisjointSet(0)
        assert len(ds) == 0
        assert list(ds.iter_clusters()) == []
        with pytest.raises(ValueError):
            DisjointSet(-1)

    def test_partition_matches_networkx_on_random_graphs(self):
        # The ISSUE's streaming contract: union-find output pinned equal
        # to the networkx connected-components partition, seeded.
        rng = np.random.default_rng(42)
        for _ in range(40):
            n = int(rng.integers(1, 60))
            num_edges = int(rng.integers(0, 120))
            edges = [
                (int(a), int(b))
                for a, b in rng.integers(-3, n + 3, size=(num_edges, 2))
            ]
            assert duplicate_clusters(n, edges) == _networkx_clusters(n, edges)


class TestIterDuplicateClusters:
    def test_streaming_matches_wrapper(self):
        edges = [(0, 3), (3, 5), (1, 2)]
        assert list(iter_duplicate_clusters(7, edges)) == duplicate_clusters(
            7, edges
        )

    def test_consumes_edge_generator_lazily(self):
        seen = []

        def edge_feed():
            for edge in [(0, 1), (2, 3)]:
                seen.append(edge)
                yield edge

        clusters = list(iter_duplicate_clusters(5, edge_feed()))
        assert clusters == [[0, 1], [2, 3], [4]]
        assert seen == [(0, 1), (2, 3)]

    def test_yields_merged_canonical_records(self):
        records = [
            Record(record_id=0, attributes={"name": "ab"}),
            Record(record_id=1, attributes={"name": "abcd"}),
            Record(record_id=2, attributes={"name": "z"}),
        ]
        out = list(
            iter_duplicate_clusters(3, [(0, 1)], records=records, policy="longest")
        )
        assert [members for members, _ in out] == [[0, 1], [2]]
        merged = {tuple(members): rec for members, rec in out}
        assert merged[(0, 1)].get("name") == "abcd"
        assert merged[(0, 1)].record_id == 0  # cluster position
        assert merged[(2,)].get("name") == "z"

    def test_record_count_mismatch_raises(self):
        with pytest.raises(ValueError, match="records"):
            list(iter_duplicate_clusters(3, [], records=[]))


def record(rid, **attrs):
    return Record(record_id=rid, attributes=attrs)


class TestMergePolicies:
    def test_longest_wins_and_ties_break_lexicographically(self):
        merged = merge_records(
            [
                record(0, name="acme corp", brand="zz"),
                record(1, name="acme corporation ltd", brand="aa"),
            ],
            policy="longest",
        )
        assert merged.get("name") == "acme corporation ltd"
        assert merged.get("brand") == "aa"  # equal length -> lexicographic

    def test_most_frequent_wins_over_longest(self):
        merged = merge_records(
            [
                record(0, name="acme"),
                record(1, name="acme"),
                record(2, name="acme corporation international"),
            ],
            policy="most_frequent",
        )
        assert merged.get("name") == "acme"

    def test_newest_follows_timestamp_attribute(self):
        merged = merge_records(
            [
                record(0, name="old name", updated="2023-01-05"),
                record(1, name="new name", updated="2023-11-20"),
                record(2, name="mid name", updated="2023-06-01"),
            ],
            policy="newest",
        )
        assert merged.get("name") == "new name"

    @pytest.mark.parametrize("policy", MERGE_POLICIES)
    def test_empty_values_never_win(self, policy):
        merged = merge_records(
            [
                record(0, name="", updated="2023-12-31"),
                record(1, name="kept", updated="2023-01-01"),
            ],
            policy=policy,
        )
        assert merged.get("name") == "kept"

    @pytest.mark.parametrize("policy", MERGE_POLICIES)
    def test_all_empty_stays_empty(self, policy):
        merged = merge_records(
            [record(0, name=""), record(1, name="")], policy=policy
        )
        assert merged.get("name") == ""

    def test_conflicting_values_resolved_per_policy(self):
        cluster = [
            record(0, name="ab", updated="2023-03-01"),
            record(1, name="ab", updated="2023-02-01"),
            record(2, name="abcdef", updated="2023-01-01"),
        ]
        assert merge_records(cluster, policy="longest").get("name") == "abcdef"
        assert merge_records(cluster, policy="most_frequent").get("name") == "ab"
        assert merge_records(cluster, policy="newest").get("name") == "ab"

    def test_schema_union_preserves_first_seen_order(self):
        merged = merge_records(
            [record(0, a="1", b="2"), record(1, b="3", c="4")]
        )
        assert list(merged.attributes) == ["a", "b", "c"]

    def test_invalid_inputs_raise(self):
        with pytest.raises(ValueError, match="empty cluster"):
            merge_records([])
        with pytest.raises(ValueError, match="policy"):
            merge_records([record(0, a="x")], policy="nope")


class TestSelfMatchDataset:
    def test_both_sides_are_the_same_table(self):
        bundle = generate_dirty_duplicates(num_entities=8, seed=3)
        dataset = self_match_dataset(bundle.table, bundle.duplicate_pairs())
        assert dataset.table_a is dataset.table_b is bundle.table
        assert dataset.matches == bundle.duplicate_pairs()

    def test_labeled_split_has_positives_and_negatives(self):
        bundle = generate_dirty_duplicates(num_entities=8, seed=3)
        truth = bundle.duplicate_pairs()
        dataset = self_match_dataset(bundle.table, truth, negative_ratio=3)
        labeled = (
            list(dataset.pairs.train)
            + list(dataset.pairs.valid)
            + list(dataset.pairs.test)
        )
        assert labeled
        for pair in labeled:
            expected = 1 if (min(pair.left, pair.right), max(pair.left, pair.right)) in truth else 0
            assert pair.label == expected
        positives = sum(p.label for p in labeled)
        assert positives == len(truth)
        assert len(labeled) - positives <= 3 * len(truth)

    def test_without_truth_splits_are_empty(self):
        bundle = generate_dirty_duplicates(num_entities=6, seed=1)
        dataset = self_match_dataset(bundle.table)
        assert not dataset.pairs.train
        assert not dataset.pairs.valid
        assert not dataset.pairs.test

    def test_seed_determinism(self):
        bundle = generate_dirty_duplicates(num_entities=8, seed=3)
        truth = bundle.duplicate_pairs()
        one = self_match_dataset(bundle.table, truth, seed=5)
        two = self_match_dataset(bundle.table, truth, seed=5)
        as_tuples = lambda ds: [
            (p.left, p.right, p.label) for p in ds.pairs.all_pairs()
        ]
        assert as_tuples(one) == as_tuples(two)


class TestPairwiseMetrics:
    def test_perfect_prediction(self):
        truth = {(0, 1), (2, 3)}
        metrics = pairwise_metrics(truth, truth)
        assert metrics == {"precision": 1.0, "recall": 1.0, "f1": 1.0}

    def test_cluster_pairs_is_transitive_closure(self):
        assert cluster_pairs([[0, 1, 2], [3]]) == {(0, 1), (0, 2), (1, 2)}

    def test_cluster_pairs_matches_nested_loop(self):
        # The vectorized triu implementation against the obvious loops:
        # plain int tuples, unsorted input handled, seeded random shapes.
        rng = np.random.default_rng(9)
        for _ in range(15):
            clusters = [
                rng.choice(200, size=rng.integers(1, 12), replace=False).tolist()
                for _ in range(rng.integers(0, 6))
            ]
            expected = set()
            for cluster in clusters:
                members = sorted(cluster)
                for i, a in enumerate(members):
                    for b in members[i + 1 :]:
                        expected.add((a, b))
            got = cluster_pairs(clusters)
            assert got == expected
            assert all(
                isinstance(a, int) and isinstance(b, int) for a, b in got
            )

    def test_partial_overlap(self):
        metrics = pairwise_metrics({(0, 1), (4, 5)}, {(0, 1), (2, 3)})
        assert metrics["precision"] == pytest.approx(0.5)
        assert metrics["recall"] == pytest.approx(0.5)
        assert metrics["f1"] == pytest.approx(0.5)

    def test_empty_sides(self):
        assert pairwise_metrics([], [(0, 1)])["f1"] == 0.0
        assert pairwise_metrics([(0, 1)], [])["recall"] == 0.0
