"""Lake-scale discovery tests: the persistent profile cache (warm-vs-cold
byte identity, fingerprint-granular invalidation), the delta-maintained
live index, and the lake ranking contract."""

import json

import numpy as np
import pytest

from repro.core.config import SudowoodoConfig
from repro.data.generators import generate_lake, mutate_lake
from repro.discovery import (
    LakeIndex,
    ProfileStore,
    column_fingerprint,
    hashed_embedder,
    profile_lake,
    profile_tables,
    rank_join_candidates,
    rank_lake_candidates,
)

EMBED = hashed_embedder(dim=32)


@pytest.fixture()
def lake_tables():
    return generate_lake(num_tables=12, rows=10, tables_per_pod=4, seed=5)


@pytest.fixture()
def store(tmp_path):
    return ProfileStore(tmp_path / "profiles")


class TestColumnFingerprint:
    def test_content_addressed(self):
        assert column_fingerprint(["a", "b"]) == column_fingerprint(["a", "b"])
        assert column_fingerprint(["a", "b"]) != column_fingerprint(["b", "a"])
        assert column_fingerprint(["a", "b"]) != column_fingerprint(["ab"])

    def test_parameters_are_part_of_the_key(self):
        values = ["x", "y", "z"]
        assert column_fingerprint(values, max_values=12) != column_fingerprint(
            values, max_values=8
        )
        assert column_fingerprint(values, sketch_k=256) != column_fingerprint(
            values, sketch_k=64
        )


class TestProfileStore:
    def test_round_trip_through_reopen(self, tmp_path, lake_tables):
        path = tmp_path / "cache"
        cold = profile_lake(lake_tables.tables, ProfileStore(path), EMBED)
        warm = profile_lake(lake_tables.tables, ProfileStore(path), EMBED)
        assert warm.computed == 0
        assert warm.reused == len(warm.profiles)
        np.testing.assert_array_equal(cold.vectors, warm.vectors)

    def test_put_many_rejects_duplicates_and_misalignment(self, store, lake_tables):
        lake = profile_lake(lake_tables.tables, store, EMBED)
        profile = lake.profiles[0]
        fingerprint = lake.fingerprints[0]
        with pytest.raises(ValueError, match="already cached"):
            store.put_many([fingerprint], [profile], np.zeros((1, 32)))
        with pytest.raises(ValueError, match="align"):
            store.put_many(["fp1", "fp2"], [profile], np.zeros((1, 32)))
        with pytest.raises(ValueError, match="duplicate"):
            store.put_many(
                ["fp1", "fp1"], [profile, profile], np.zeros((2, 32))
            )

    def test_unknown_fingerprint_raises(self, store):
        with pytest.raises(KeyError):
            store.profile("nope", "t", "c")
        with pytest.raises(KeyError):
            store.vectors(["nope"])

    def test_corrupt_profiles_file_raises(self, tmp_path):
        path = tmp_path / "bad"
        ProfileStore(path)  # creates the directory
        (path / "profiles.json").write_text("{not json", encoding="utf-8")
        with pytest.raises(ValueError, match="corrupt profile store"):
            ProfileStore(path)
        (path / "profiles.json").write_text(
            json.dumps({"format_version": 99, "columns": {}}), encoding="utf-8"
        )
        with pytest.raises(ValueError, match="unsupported profile store"):
            ProfileStore(path)


class TestProfileLake:
    def test_warm_equals_cold_byte_identical(self, store, lake_tables):
        cold = profile_lake(lake_tables.tables, store, EMBED)
        warm = profile_lake(lake_tables.tables, store, EMBED)
        assert cold.fingerprints == warm.fingerprints
        assert [p.ref for p in cold.profiles] == [p.ref for p in warm.profiles]
        for a, b in zip(cold.profiles, warm.profiles):
            assert a.text == b.text
            assert a.num_values == b.num_values
            assert a.sketch.to_dict() == b.sketch.to_dict()
        assert cold.vectors.dtype == warm.vectors.dtype
        np.testing.assert_array_equal(cold.vectors, warm.vectors)
        assert warm.computed == 0 and warm.computed_refs == []

    def test_matches_profile_tables_exactly(self, store, lake_tables):
        lake = profile_lake(lake_tables.tables, store, EMBED)
        flat = profile_tables(lake_tables.tables)
        assert [p.ref for p in lake.profiles] == [p.ref for p in flat]
        for cached, fresh in zip(lake.profiles, flat):
            assert cached.text == fresh.text
            assert cached.num_values == fresh.num_values
            assert cached.sketch.to_dict() == fresh.sketch.to_dict()

    def test_mutation_invalidates_exactly_that_tables_columns(
        self, store, lake_tables
    ):
        profile_lake(lake_tables.tables, store, EMBED)
        names = sorted(lake_tables.tables)
        target = names[3]
        mutated = dict(lake_tables.tables)
        source = mutated[target]
        from repro.data.records import Table

        copy = Table(name=target, schema=list(source.schema))
        for row in range(len(source)):
            record = source[row]
            copy.append({a: record.get(a) for a in source.schema})
        copy.append({a: f"fresh-{a}" for a in source.schema})
        mutated[target] = copy
        warm = profile_lake(mutated, store, EMBED)
        assert {ref[0] for ref in warm.computed_refs} == {target}
        assert len(warm.computed_refs) == len(source.schema)
        assert warm.reused == len(warm.profiles) - len(source.schema)

    def test_mutate_lake_helper_reuses_unchanged_tables(self, lake_tables):
        mutated, names = mutate_lake(lake_tables.tables, fraction=0.25, seed=2)
        assert names and set(names) <= set(lake_tables.tables)
        for name, table in lake_tables.tables.items():
            if name in names:
                assert mutated[name] is not table
                assert len(mutated[name]) > len(table)
            else:
                assert mutated[name] is table
        assert list(mutated) == list(lake_tables.tables)

    def test_identical_columns_share_one_entry(self, store):
        from repro.data.records import Table

        one = Table(name="one", schema=["c"])
        two = Table(name="two", schema=["c"])
        for table in (one, two):
            for value in ("a", "b"):
                table.append({"c": value})
        lake = profile_lake({"one": one, "two": two}, store, EMBED)
        assert len(store) == 1
        assert lake.fingerprints[0] == lake.fingerprints[1]
        assert lake.computed == 2  # both *columns* were fresh
        assert [p.ref for p in lake.profiles] == [("one", "c"), ("two", "c")]


class TestLakeIndex:
    def test_first_update_builds_then_deltas(self, store, lake_tables):
        lake = profile_lake(lake_tables.tables, store, EMBED)
        index = LakeIndex(SudowoodoConfig())
        first = index.update(lake)
        assert first["added"] == len(lake.profiles)
        assert len(index) == len(lake.profiles)
        mutated, names = mutate_lake(lake_tables.tables, fraction=0.2, seed=7)
        warm = profile_lake(mutated, store, EMBED)
        delta = index.update(warm)
        changed = sum(
            len(mutated[name].schema) for name in names
        )
        assert delta["updated"] == changed
        assert delta["added"] == 0 and delta["removed"] == 0
        assert delta["unchanged"] == len(warm.profiles) - changed

    def test_dropped_table_is_removed(self, store, lake_tables):
        lake = profile_lake(lake_tables.tables, store, EMBED)
        index = LakeIndex(SudowoodoConfig())
        index.update(lake)
        names = sorted(lake_tables.tables)
        shrunk = {
            name: table
            for name, table in lake_tables.tables.items()
            if name != names[0]
        }
        warm = profile_lake(shrunk, store, EMBED)
        delta = index.update(warm)
        assert delta["removed"] == len(lake_tables.tables[names[0]].schema)
        assert len(index) == len(warm.profiles)

    def test_query_before_update_raises(self, store, lake_tables):
        lake = profile_lake(lake_tables.tables, store, EMBED)
        index = LakeIndex(SudowoodoConfig())
        with pytest.raises(RuntimeError, match="update"):
            list(index.iter_candidate_pairs(lake.profiles, lake.vectors, k=3))


class TestLakeRanking:
    def _key(self, candidates):
        return [(c.pair, c.score, c.containment, c.cosine) for c in candidates]

    def test_batched_equals_pairwise(self, store, lake_tables):
        lake = profile_lake(lake_tables.tables, store, EMBED)
        index = LakeIndex(SudowoodoConfig())
        index.update(lake)
        batched = rank_lake_candidates(lake, index, k=5, scorer="batched")
        pairwise = rank_lake_candidates(lake, index, k=5, scorer="pairwise")
        assert self._key(batched) == self._key(pairwise)
        assert batched, "expected candidates on a planted lake"

    def test_lake_ranking_matches_flat_path(self, store, lake_tables):
        # Same columns, same exact backend: the incremental path must
        # rank exactly like the one-shot rank_join_candidates path.
        lake = profile_lake(lake_tables.tables, store, EMBED)
        index = LakeIndex(SudowoodoConfig())
        index.update(lake)
        incremental = rank_lake_candidates(lake, index, k=5)
        flat = rank_join_candidates(
            lake.profiles, lake.vectors, SudowoodoConfig(), k=5
        )
        assert self._key(incremental) == self._key(flat)

    def test_ranking_finds_planted_joins(self, store, lake_tables):
        lake = profile_lake(lake_tables.tables, store, EMBED)
        index = LakeIndex(SudowoodoConfig())
        index.update(lake)
        candidates = rank_lake_candidates(lake, index, k=6, alpha=0.6)
        n = len(lake_tables.joinable)
        top = {c.pair for c in candidates[:n]}
        assert len(top & lake_tables.joinable) / n >= 0.5

    def test_top_bound_and_stability_after_mutation(self, store, lake_tables):
        lake = profile_lake(lake_tables.tables, store, EMBED)
        index = LakeIndex(SudowoodoConfig())
        index.update(lake)
        mutated, _ = mutate_lake(lake_tables.tables, fraction=0.2, seed=11)
        warm = profile_lake(mutated, store, EMBED)
        index.update(warm)
        full = rank_lake_candidates(warm, index, k=5)
        top = rank_lake_candidates(warm, index, k=5, top=4)
        assert self._key(top) == self._key(full[:4])
