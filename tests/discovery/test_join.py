"""Join-discovery engine tests: containment sketches, candidate ranking,
and shard-count invariance of the rankings."""

import zlib

import numpy as np
import pytest

from repro.core.config import SudowoodoConfig
from repro.data.generators import generate_joinable_tables
from repro.discovery import (
    ColumnProfile,
    group_by_table,
    profile_tables,
    rank_join_candidates,
)
from repro.serve import ContainmentSketch


class TestContainmentSketch:
    def test_exact_at_small_cardinality(self):
        a = ContainmentSketch.from_values([f"v{i}" for i in range(30)], k=64)
        b = ContainmentSketch.from_values([f"v{i}" for i in range(15, 45)], k=64)
        assert a.is_exact and b.is_exact
        assert a.cardinality() == pytest.approx(30)
        assert a.intersection(b) == pytest.approx(15)
        assert a.containment(b) == pytest.approx(0.5)
        assert a.jaccard(b) == pytest.approx(15 / 45)

    def test_duplicates_and_empties_ignored(self):
        sketch = ContainmentSketch.from_values(["x", "x", "", "y", "x"], k=8)
        assert len(sketch) == 2
        assert sketch.cardinality() == pytest.approx(2)

    def test_estimates_within_tolerance_when_sketched(self):
        universe = [f"value-{i:05d}" for i in range(4000)]
        a = ContainmentSketch.from_values(universe[:3000], k=256)
        b = ContainmentSketch.from_values(universe[1000:4000], k=256)
        assert not a.is_exact
        assert a.cardinality() == pytest.approx(3000, rel=0.15)
        # True containment |A∩B|/|A| = 2000/3000.
        assert a.containment(b) == pytest.approx(2 / 3, abs=0.12)

    def test_disjoint_sets_have_zero_containment(self):
        a = ContainmentSketch.from_values([f"a{i}" for i in range(500)], k=128)
        b = ContainmentSketch.from_values([f"b{i}" for i in range(500)], k=128)
        assert a.containment(b) == pytest.approx(0.0, abs=0.05)

    def test_order_insensitive(self):
        values = [f"v{i}" for i in range(1000)]
        forward = ContainmentSketch.from_values(values, k=64)
        backward = ContainmentSketch.from_values(values[::-1], k=64)
        assert forward.cardinality() == backward.cardinality()


@pytest.fixture(scope="module")
def bundle():
    return generate_joinable_tables(num_tables=4, rows=30, seed=7)


@pytest.fixture(scope="module")
def profiles(bundle):
    return profile_tables(bundle.tables)


def embed_columns(profiles):
    """Cheap deterministic stand-in embeddings: hashed bag-of-values.

    Columns drawing from the same pool share values, hence similar
    vectors — enough signal for the ANN candidate stage without a
    trained encoder.
    """
    dim = 64
    vectors = np.zeros((len(profiles), dim))
    for row, profile in enumerate(profiles):
        for token in profile.text.split():
            if token == "[VAL]":
                continue
            vectors[row, zlib.crc32(token.encode()) % dim] += 1.0
    norms = np.linalg.norm(vectors, axis=1, keepdims=True)
    return vectors / np.maximum(norms, 1e-12)


class TestRanking:
    def test_profiles_cover_every_column(self, bundle, profiles):
        assert len(profiles) == bundle.num_columns
        refs = {profile.ref for profile in profiles}
        assert refs == set(bundle.columns())

    def test_truth_pairs_rank_above_noise(self, bundle, profiles):
        vectors = embed_columns(profiles)
        candidates = rank_join_candidates(
            profiles, vectors, k=6, alpha=0.6
        )
        assert candidates, "expected at least one candidate"
        n = len(bundle.joinable)
        top = {candidate.pair for candidate in candidates[:n]}
        hits = len(top & bundle.joinable)
        assert hits / n >= 0.6
        # Sorted by score, tie-broken deterministically.
        keys = [(-c.score, c.pair) for c in candidates]
        assert keys == sorted(keys)

    def test_no_intra_table_pairs_by_default(self, profiles):
        vectors = embed_columns(profiles)
        for candidate in rank_join_candidates(profiles, vectors, k=6):
            assert candidate.table_a != candidate.table_b

    def test_scores_blend_containment_and_cosine(self, profiles):
        vectors = embed_columns(profiles)
        for candidate in rank_join_candidates(profiles, vectors, k=6, alpha=0.5):
            expected = 0.5 * candidate.containment + 0.5 * max(
                candidate.cosine, 0.0
            )
            assert candidate.score == pytest.approx(expected)

    def test_ranking_invariant_across_shard_counts(self, profiles):
        vectors = embed_columns(profiles)
        rankings = []
        for num_shards in (1, 2, 3):
            config = SudowoodoConfig(num_shards=num_shards)
            candidates = rank_join_candidates(
                profiles, vectors, config=config, k=6
            )
            rankings.append(
                [(c.pair, round(c.score, 12)) for c in candidates]
            )
        assert rankings[0] == rankings[1] == rankings[2]

    def test_num_shards_argument_overrides_config(self, profiles):
        vectors = embed_columns(profiles)
        base = rank_join_candidates(profiles, vectors, k=6)
        for num_shards in (2, 3):
            override = rank_join_candidates(
                profiles, vectors, k=6, num_shards=num_shards
            )
            assert [c.pair for c in override] == [c.pair for c in base]

    def test_group_by_table_preserves_rank_order(self, profiles):
        vectors = embed_columns(profiles)
        candidates = rank_join_candidates(profiles, vectors, k=6)
        grouped = group_by_table(candidates)
        order = {id(c): rank for rank, c in enumerate(candidates)}
        for table, members in grouped.items():
            assert all(
                table in (c.table_a, c.table_b) for c in members
            )
            ranks = [order[id(c)] for c in members]
            assert ranks == sorted(ranks)

    def test_mismatched_inputs_raise(self, profiles):
        with pytest.raises(ValueError, match="profiles"):
            rank_join_candidates(profiles, np.zeros((1, 4)))
        with pytest.raises(ValueError, match="alpha"):
            rank_join_candidates(
                profiles, embed_columns(profiles), alpha=1.5
            )

    def test_fewer_than_two_columns_yields_nothing(self, profiles):
        vectors = embed_columns(profiles)
        assert rank_join_candidates(profiles[:1], vectors[:1]) == []
        assert rank_join_candidates([], vectors[:0]) == []
