"""Join-discovery engine tests: containment sketches, candidate ranking,
and shard-count invariance of the rankings."""

import zlib

import numpy as np
import pytest

from repro.core.config import SudowoodoConfig
from repro.data.generators import generate_joinable_tables
from repro.discovery import (
    ColumnProfile,
    group_by_table,
    profile_tables,
    rank_join_candidates,
)
from repro.serve import ContainmentSketch


class TestContainmentSketch:
    def test_exact_at_small_cardinality(self):
        a = ContainmentSketch.from_values([f"v{i}" for i in range(30)], k=64)
        b = ContainmentSketch.from_values([f"v{i}" for i in range(15, 45)], k=64)
        assert a.is_exact and b.is_exact
        assert a.cardinality() == pytest.approx(30)
        assert a.intersection(b) == pytest.approx(15)
        assert a.containment(b) == pytest.approx(0.5)
        assert a.jaccard(b) == pytest.approx(15 / 45)

    def test_duplicates_and_empties_ignored(self):
        sketch = ContainmentSketch.from_values(["x", "x", "", "y", "x"], k=8)
        assert len(sketch) == 2
        assert sketch.cardinality() == pytest.approx(2)

    def test_estimates_within_tolerance_when_sketched(self):
        universe = [f"value-{i:05d}" for i in range(4000)]
        a = ContainmentSketch.from_values(universe[:3000], k=256)
        b = ContainmentSketch.from_values(universe[1000:4000], k=256)
        assert not a.is_exact
        assert a.cardinality() == pytest.approx(3000, rel=0.15)
        # True containment |A∩B|/|A| = 2000/3000.
        assert a.containment(b) == pytest.approx(2 / 3, abs=0.12)

    def test_disjoint_sets_have_zero_containment(self):
        a = ContainmentSketch.from_values([f"a{i}" for i in range(500)], k=128)
        b = ContainmentSketch.from_values([f"b{i}" for i in range(500)], k=128)
        assert a.containment(b) == pytest.approx(0.0, abs=0.05)

    def test_order_insensitive(self):
        values = [f"v{i}" for i in range(1000)]
        forward = ContainmentSketch.from_values(values, k=64)
        backward = ContainmentSketch.from_values(values[::-1], k=64)
        assert forward.cardinality() == backward.cardinality()


class TestBatchedSketch:
    """The batched estimators must be bit-identical to the scalar path —
    they are what keeps batch-scored rankings byte-equal to per-pair."""

    def _random_sketch(self, rng, k):
        size = int(rng.integers(0, 400))
        values = [f"v{int(v)}" for v in rng.integers(0, 600, size=size)]
        return ContainmentSketch.from_values(values, k=k)

    def test_intersection_and_containment_many_match_scalar(self):
        rng = np.random.default_rng(11)
        for _ in range(25):
            k_self = int(rng.choice([4, 32, 64, 256]))
            anchor = self._random_sketch(rng, k_self)
            others = [
                self._random_sketch(rng, int(rng.choice([4, 32, 64, 256])))
                for _ in range(6)
            ]
            intersections = anchor.intersection_many(others)
            containments = anchor.containment_many(others)
            for idx, other in enumerate(others):
                assert intersections[idx] == anchor.intersection(other)
                assert containments[idx] == anchor.containment(other)

    def test_empty_inputs(self):
        empty = ContainmentSketch(k=8)
        full = ContainmentSketch.from_values(["a", "b"], k=8)
        assert empty.intersection_many([full]).tolist() == [0.0]
        assert empty.containment_many([full]).tolist() == [0.0]
        assert full.intersection_many([empty]).tolist() == [0.0]
        assert full.intersection_many([]).size == 0

    def test_dict_round_trip_is_exact(self):
        sketch = ContainmentSketch.from_values(
            [f"v{i}" for i in range(500)], k=64
        )
        other = ContainmentSketch.from_values([f"v{i}" for i in range(100, 700)], k=64)
        restored = ContainmentSketch.from_dict(sketch.to_dict())
        assert restored.k == sketch.k
        assert len(restored) == len(sketch)
        assert restored.cardinality() == sketch.cardinality()
        assert restored.containment(other) == sketch.containment(other)
        # JSON-safe: the payload survives serialization.
        import json

        assert ContainmentSketch.from_dict(
            json.loads(json.dumps(sketch.to_dict()))
        ).containment(other) == sketch.containment(other)

    @pytest.mark.parametrize(
        "payload",
        [
            {},
            {"k": 8, "distinct": -1, "hashes": []},
            {"k": 2, "distinct": 5, "hashes": [1, 2, 3]},
            {"k": 8, "distinct": 1, "hashes": [-4]},
            {"k": 8, "distinct": 1, "hashes": "nope"},
        ],
    )
    def test_corrupt_payloads_raise(self, payload):
        with pytest.raises(ValueError, match="corrupt sketch payload"):
            ContainmentSketch.from_dict(payload)


@pytest.fixture(scope="module")
def bundle():
    return generate_joinable_tables(num_tables=4, rows=30, seed=7)


@pytest.fixture(scope="module")
def profiles(bundle):
    return profile_tables(bundle.tables)


def embed_columns(profiles):
    """Cheap deterministic stand-in embeddings: hashed bag-of-values.

    Columns drawing from the same pool share values, hence similar
    vectors — enough signal for the ANN candidate stage without a
    trained encoder.
    """
    dim = 64
    vectors = np.zeros((len(profiles), dim))
    for row, profile in enumerate(profiles):
        for token in profile.text.split():
            if token == "[VAL]":
                continue
            vectors[row, zlib.crc32(token.encode()) % dim] += 1.0
    norms = np.linalg.norm(vectors, axis=1, keepdims=True)
    return vectors / np.maximum(norms, 1e-12)


class TestRanking:
    def test_profiles_cover_every_column(self, bundle, profiles):
        assert len(profiles) == bundle.num_columns
        refs = {profile.ref for profile in profiles}
        assert refs == set(bundle.columns())

    def test_truth_pairs_rank_above_noise(self, bundle, profiles):
        vectors = embed_columns(profiles)
        candidates = rank_join_candidates(
            profiles, vectors, k=6, alpha=0.6
        )
        assert candidates, "expected at least one candidate"
        n = len(bundle.joinable)
        top = {candidate.pair for candidate in candidates[:n]}
        hits = len(top & bundle.joinable)
        assert hits / n >= 0.6
        # Sorted by score, tie-broken deterministically.
        keys = [(-c.score, c.pair) for c in candidates]
        assert keys == sorted(keys)

    def test_no_intra_table_pairs_by_default(self, profiles):
        vectors = embed_columns(profiles)
        for candidate in rank_join_candidates(profiles, vectors, k=6):
            assert candidate.table_a != candidate.table_b

    def test_scores_blend_containment_and_cosine(self, profiles):
        vectors = embed_columns(profiles)
        for candidate in rank_join_candidates(profiles, vectors, k=6, alpha=0.5):
            expected = 0.5 * candidate.containment + 0.5 * max(
                candidate.cosine, 0.0
            )
            assert candidate.score == pytest.approx(expected)

    def test_ranking_invariant_across_shard_counts(self, profiles):
        vectors = embed_columns(profiles)
        rankings = []
        for num_shards in (1, 2, 3):
            config = SudowoodoConfig(num_shards=num_shards)
            candidates = rank_join_candidates(
                profiles, vectors, config=config, k=6
            )
            rankings.append(
                [(c.pair, round(c.score, 12)) for c in candidates]
            )
        assert rankings[0] == rankings[1] == rankings[2]

    def test_num_shards_argument_overrides_config(self, profiles):
        vectors = embed_columns(profiles)
        base = rank_join_candidates(profiles, vectors, k=6)
        for num_shards in (2, 3):
            override = rank_join_candidates(
                profiles, vectors, k=6, num_shards=num_shards
            )
            assert [c.pair for c in override] == [c.pair for c in base]

    def test_group_by_table_preserves_rank_order(self, profiles):
        vectors = embed_columns(profiles)
        candidates = rank_join_candidates(profiles, vectors, k=6)
        grouped = group_by_table(candidates)
        order = {id(c): rank for rank, c in enumerate(candidates)}
        for table, members in grouped.items():
            assert all(
                table in (c.table_a, c.table_b) for c in members
            )
            ranks = [order[id(c)] for c in members]
            assert ranks == sorted(ranks)

    def test_mismatched_inputs_raise(self, profiles):
        with pytest.raises(ValueError, match="profiles"):
            rank_join_candidates(profiles, np.zeros((1, 4)))
        with pytest.raises(ValueError, match="alpha"):
            rank_join_candidates(
                profiles, embed_columns(profiles), alpha=1.5
            )

    def test_fewer_than_two_columns_yields_nothing(self, profiles):
        vectors = embed_columns(profiles)
        assert rank_join_candidates(profiles[:1], vectors[:1]) == []
        assert rank_join_candidates([], vectors[:0]) == []


class TestBatchedScorer:
    """The bounded-memory batch scorer vs the legacy per-pair oracle."""

    def _key(self, candidates):
        return [
            (c.pair, c.score, c.containment, c.cosine) for c in candidates
        ]

    def test_batched_identical_to_pairwise(self, profiles):
        vectors = embed_columns(profiles)
        batched = rank_join_candidates(profiles, vectors, k=6, scorer="batched")
        pairwise = rank_join_candidates(profiles, vectors, k=6, scorer="pairwise")
        # Byte-identical: same pairs, same float scores, no tolerance.
        assert self._key(batched) == self._key(pairwise)

    def test_batch_size_does_not_change_ranking(self, profiles):
        vectors = embed_columns(profiles)
        baseline = rank_join_candidates(profiles, vectors, k=6, batch_size=1024)
        for batch_size in (1, 3, 7):
            assert self._key(
                rank_join_candidates(profiles, vectors, k=6, batch_size=batch_size)
            ) == self._key(baseline)

    def test_top_heap_equals_truncated_full_ranking(self, profiles):
        vectors = embed_columns(profiles)
        full = rank_join_candidates(profiles, vectors, k=6)
        for top in (1, 3, 10, len(full), len(full) + 5):
            bounded = rank_join_candidates(profiles, vectors, k=6, top=top)
            assert self._key(bounded) == self._key(full[:top])

    @pytest.mark.parametrize("store_dtype", ["float64", "float32", "float16"])
    def test_store_dtype_respected_and_paths_agree(self, profiles, store_dtype):
        from repro.discovery.join import _normalize_rows

        vectors = embed_columns(profiles)
        normalized = _normalize_rows(vectors, dtype=np.dtype(store_dtype))
        assert normalized.dtype == np.dtype(store_dtype)
        config = SudowoodoConfig(store_dtype=store_dtype)
        batched = rank_join_candidates(
            profiles, vectors, config=config, k=6, scorer="batched"
        )
        pairwise = rank_join_candidates(
            profiles, vectors, config=config, k=6, scorer="pairwise"
        )
        assert self._key(batched) == self._key(pairwise)

    def test_unknown_scorer_raises(self, profiles):
        vectors = embed_columns(profiles)
        with pytest.raises(ValueError, match="scorer"):
            rank_join_candidates(profiles, vectors, scorer="magic")

    def test_min_score_filters_both_paths_identically(self, profiles):
        vectors = embed_columns(profiles)
        for scorer in ("batched", "pairwise"):
            kept = rank_join_candidates(
                profiles, vectors, k=6, min_score=0.4, scorer=scorer
            )
            assert all(c.score >= 0.4 for c in kept)
        batched, pairwise = (
            rank_join_candidates(
                profiles, vectors, k=6, min_score=0.4, scorer=scorer
            )
            for scorer in ("batched", "pairwise")
        )
        assert self._key(batched) == self._key(pairwise)
