"""Shared fixtures: deterministic seeding for every suite.

The library itself never touches global random state (every stochastic
component takes an explicit ``numpy.random.Generator`` — see
``repro.utils.rng``), so determinism only requires that tests do the
same.  The convention, documented in README.md:

* tests that need randomness take the ``seeded_rng`` fixture (or call
  ``repro.utils.spawn_rng`` with a literal seed) instead of creating
  ad-hoc unseeded generators;
* the autouse ``_reset_global_numpy_seed`` fixture pins numpy's legacy
  global state per test, so any stray ``np.random.*`` consumer cannot
  make results depend on test execution order (``pytest -p no:randomly``
  and any shuffled order produce identical outcomes).
"""

import numpy as np
import pytest

TEST_SEED = 0


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "stress: bounded multi-threaded stress tests (kept fast enough for "
        "tier-1; deselect with -m 'not stress')",
    )


@pytest.fixture
def seeded_rng() -> np.random.Generator:
    """A fresh, deterministically seeded generator for each test."""
    return np.random.default_rng(TEST_SEED)


@pytest.fixture(autouse=True)
def _reset_global_numpy_seed():
    """Pin (and afterwards restore) numpy's legacy global RNG per test."""
    state = np.random.get_state()
    np.random.seed(TEST_SEED)
    yield
    np.random.set_state(state)
