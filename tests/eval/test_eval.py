"""Tests for difficulty profiling, reporting, and utils."""

import time

import numpy as np
import pytest

from repro.data.generators import load_em_benchmark
from repro.eval import f1_row, format_table, pair_jaccard, split_by_difficulty
from repro.utils import RngStream, Timer, spawn_rng, timed


@pytest.fixture(scope="module")
def dataset():
    return load_em_benchmark("AB", scale=0.04, max_table_size=100)


class TestDifficultySplit:
    def test_five_levels(self, dataset):
        levels = split_by_difficulty(dataset)
        assert [l.level for l in levels] == [5, 4, 3, 2, 1]

    def test_levels_partition_pairs(self, dataset):
        levels = split_by_difficulty(dataset)
        total = sum(len(l.pairs) for l in levels)
        # Slicing may drop a handful at boundaries.
        assert total >= len(dataset.pairs.test) - 10

    def test_positive_ratio_roughly_preserved(self, dataset):
        levels = split_by_difficulty(dataset)
        overall = np.mean([p.label for p in dataset.pairs.test])
        for level in levels:
            if level.pairs:
                ratio = np.mean([p.label for p in level.pairs])
                assert abs(ratio - overall) < 0.2

    def test_hard_level_has_low_positive_jaccard(self, dataset):
        levels = split_by_difficulty(dataset)
        hardest = next(l for l in levels if l.level == 5)
        easiest = next(l for l in levels if l.level == 1)
        assert hardest.positive_jaccard_range[0] <= easiest.positive_jaccard_range[0]

    def test_pair_jaccard_bounds(self, dataset):
        for pair in dataset.pairs.test[:20]:
            assert 0.0 <= pair_jaccard(dataset, pair) <= 1.0


class TestReporting:
    def test_format_table_basic(self):
        text = format_table(["a", "b"], [["x", 1.234], ["y", None]])
        assert "a" in text and "x" in text
        assert "1.2" in text
        assert "-" in text  # None rendered as dash

    def test_format_table_title(self):
        text = format_table(["h"], [["v"]], title="Table V")
        assert text.startswith("Table V")

    def test_f1_row_average(self):
        row = f1_row(
            "method",
            {"AB": {"f1": 0.5}, "AG": {"f1": 0.7}},
            ["AB", "AG", "DA"],
        )
        assert row[0] == "method"
        assert row[1] == pytest.approx(50.0)
        assert row[3] is None  # missing DA
        assert row[4] == pytest.approx(60.0)


class TestUtils:
    def test_spawn_rng_deterministic(self):
        a = spawn_rng(7, "x").random(3)
        b = spawn_rng(7, "x").random(3)
        np.testing.assert_array_equal(a, b)

    def test_spawn_rng_independent_names(self):
        a = spawn_rng(7, "x").random(3)
        b = spawn_rng(7, "y").random(3)
        assert not np.array_equal(a, b)

    def test_rng_stream_caches(self):
        stream = RngStream(3)
        g1 = stream.get("a")
        g2 = stream.get("a")
        assert g1 is g2

    def test_rng_stream_fresh_resets(self):
        stream = RngStream(3)
        first = stream.get("a").random()
        fresh = stream.fresh("a").random()
        assert first == fresh  # fresh generator replays the stream

    def test_timer_sections(self):
        timer = Timer()
        with timer.section("work"):
            time.sleep(0.01)
        assert timer.total("work") >= 0.01
        assert timer.counts["work"] == 1

    def test_timed_contextmanager(self):
        with timed() as result:
            time.sleep(0.01)
        assert result["elapsed"] >= 0.01
