"""Tests for the op-level performance profiler (repro.eval.perf)."""

import numpy as np
import pytest

from repro.core import SudowoodoConfig, SudowoodoEncoder, build_tokenizer
from repro.eval import EncodeProfile, OpProfiler, OpStat, profile_encode
from repro.eval.perf import MODULE_FUNCTIONS, TENSOR_METHODS
from repro.nn import Tensor, linear
from repro.nn import tensor as tensor_ops
from repro.serve import MetricsRegistry


def gen(seed=0):
    return np.random.default_rng(seed)


CORPUS = [
    "[COL] name [VAL] instant immersion spanish deluxe",
    "[COL] name [VAL] encore software learn spanish",
    "[COL] name [VAL] adobe photoshop elements",
    "[COL] name [VAL] sibelius instrumental teacher edition",
]


@pytest.fixture(scope="module")
def encoder():
    config = SudowoodoConfig(
        dim=16,
        num_layers=1,
        num_heads=2,
        ffn_dim=32,
        max_seq_len=16,
        pair_max_seq_len=24,
        vocab_size=200,
        num_clusters=2,
        corpus_cap=16,
        seed=0,
    )
    return SudowoodoEncoder(config, build_tokenizer(CORPUS, config))


class TestOpStat:
    def test_merge_accumulates(self):
        stat = OpStat()
        stat.merge(0.5, 100)
        stat.merge(0.25, 50)
        assert stat.calls == 2
        assert stat.seconds == pytest.approx(0.75)
        assert stat.bytes == 150


class TestOpProfiler:
    def test_counts_known_op_sequence(self):
        a = Tensor(gen(1).normal(size=(3, 4)).astype(np.float32))
        b = Tensor(gen(2).normal(size=(4, 5)).astype(np.float32))
        with OpProfiler() as prof:
            out = a.matmul(b)
            out = out + 1.0
            out = out + 2.0
            out = out * 3.0
            out.sum()
        assert prof.stats["matmul"].calls == 1
        assert prof.stats["add"].calls == 2
        assert prof.stats["mul"].calls == 1
        assert prof.stats["sum"].calls == 1
        assert prof.total_calls == sum(s.calls for s in prof.stats.values())

    def test_bytes_count_output_allocations(self):
        a = Tensor(np.ones((8, 4), dtype=np.float32))
        with OpProfiler() as prof:
            a + a
        # One add producing an (8, 4) float32 output.
        assert prof.stats["add"].bytes == 8 * 4 * 4

    def test_module_level_kernels_recorded(self):
        x = Tensor(gen(3).normal(size=(2, 4)).astype(np.float32))
        w = Tensor(gen(4).normal(size=(4, 3)).astype(np.float32))
        with OpProfiler() as prof:
            tensor_ops.linear(x, w)
        assert prof.stats["linear"].calls == 1

    def test_originals_restored_on_exit(self):
        saved_methods = {m: getattr(Tensor, m) for m in TENSOR_METHODS}
        saved_functions = {f: getattr(tensor_ops, f) for f in MODULE_FUNCTIONS}
        with OpProfiler():
            assert getattr(Tensor, "__add__") is not saved_methods["__add__"]
        for method, original in saved_methods.items():
            assert getattr(Tensor, method) is original
        for function, original in saved_functions.items():
            assert getattr(tensor_ops, function) is original

    def test_restored_even_on_exception(self):
        original = Tensor.__add__
        with pytest.raises(RuntimeError):
            with OpProfiler():
                raise RuntimeError("boom")
        assert Tensor.__add__ is original

    def test_no_recording_after_exit(self):
        with OpProfiler() as prof:
            pass
        a = Tensor(np.ones(3, dtype=np.float32))
        a + a
        assert prof.stats == {}

    def test_table_formats_all_ops(self):
        a = Tensor(gen(5).normal(size=(3, 3)).astype(np.float32))
        with OpProfiler() as prof:
            (a + a).sum()
        table = prof.table()
        lines = table.splitlines()
        assert "op" in lines[0] and "calls" in lines[0]
        assert len(lines) == 1 + len(prof.stats)
        assert any(line.startswith("add") for line in lines[1:])
        assert len(prof.table(limit=1).splitlines()) == 2

    def test_publish_mirrors_into_metrics(self):
        metrics = MetricsRegistry()
        a = Tensor(gen(6).normal(size=(4, 4)).astype(np.float32))
        with OpProfiler() as prof:
            a + a
            a + a
        prof.publish(metrics)
        snapshot = metrics.snapshot()
        assert snapshot["counters"]["ops.add.calls"] == 2
        assert snapshot["counters"]["ops.add.bytes"] == prof.stats["add"].bytes
        assert "ops.add.seconds" in snapshot["histograms"]


class TestProfileEncode:
    def test_smoke_over_embed_items(self, encoder):
        profile = profile_encode(encoder, CORPUS, batch_size=2)
        assert isinstance(profile, EncodeProfile)
        assert profile.num_texts == len(CORPUS)
        assert profile.wall_seconds > 0
        assert profile.texts_per_second > 0
        assert profile.op_calls > 0
        # The encode path is matmul-heavy by construction.
        assert profile.stats["matmul"].calls > 0
        assert "matmul" in profile.table()

    def test_profiled_pass_matches_unprofiled(self, encoder):
        baseline = encoder.embed_items(CORPUS, batch_size=2)
        profile_encode(encoder, CORPUS, batch_size=2)
        again = encoder.embed_items(CORPUS, batch_size=2)
        np.testing.assert_array_equal(baseline, again)
