"""Engine unit tests: knob validation, accumulation, clipping, callbacks,
token cache, and background preparation."""

import numpy as np
import pytest

from repro.nn import AdamW, SGD
from repro.nn.layers import Linear
from repro.text import Tokenizer
from repro.train import (
    LossTrace,
    StepProgram,
    TokenCache,
    TrainConfig,
    Trainer,
    prefetched,
)
from repro.utils import spawn_rng

CORPUS = [f"[COL] name [VAL] item {i} [COL] kind [VAL] sample" for i in range(12)]


class QuadraticProgram(StepProgram):
    """Minimize ||Wx||^2 over fixed data — a deterministic toy program."""

    def __init__(self, data, batch_size=4):
        self.data = np.asarray(data)
        self.batch_size = batch_size

    def epoch_batches(self, epoch):
        return [
            self.data[start : start + self.batch_size]
            for start in range(0, len(self.data), self.batch_size)
        ]

    def loss(self, model, prepared):
        out = model(np.asarray(prepared))
        return (out * out).sum() / len(prepared)

    def shard(self, prepared, num_shards):
        rows = len(prepared)
        num_shards = min(num_shards, rows)
        if num_shards < 2:
            return None
        bounds = np.linspace(0, rows, num_shards + 1).astype(int)
        return [
            (prepared[lo:hi], hi - lo)
            for lo, hi in zip(bounds[:-1], bounds[1:])
            if hi > lo
        ]


def make_model(seed=0):
    return Linear(6, 3, spawn_rng(seed, "engine-test"))


def make_data(rows=8, seed=1):
    return spawn_rng(seed, "engine-data").normal(size=(rows, 6))


class TestTrainConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"train_workers": 0},
            {"grad_accum_steps": 0},
            {"grad_clip": 0.0},
            {"grad_clip": -1.0},
            {"early_stop_patience": 0},
            {"checkpoint_every": 0},
            {"train_prefetch": -1},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            TrainConfig(**kwargs).validate()

    def test_defaults_valid(self):
        TrainConfig().validate()


class TestEngineLoop:
    def test_requires_some_limit(self):
        model = make_model()
        trainer = Trainer(
            model, QuadraticProgram(make_data()), AdamW(model.parameters())
        )
        with pytest.raises(ValueError):
            trainer.fit()

    def test_loss_decreases_and_counters_advance(self):
        model = make_model()
        trainer = Trainer(
            model,
            QuadraticProgram(make_data()),
            AdamW(model.parameters(), lr=5e-2),
            config=TrainConfig(train_prefetch=0),
        )
        state = trainer.fit(max_epochs=5)
        assert state.epoch == 5
        assert state.step == 10  # 8 rows / batch 4 = 2 steps per epoch
        assert state.epoch_losses[-1] < state.epoch_losses[0]
        assert state.stop_reason == "max_epochs"

    def test_max_steps_caps_optimizer_steps(self):
        model = make_model()
        trainer = Trainer(
            model,
            QuadraticProgram(make_data()),
            AdamW(model.parameters(), lr=5e-2),
        )
        state = trainer.fit(max_steps=3)
        assert state.step == 3
        assert state.stop_reason == "max_steps"

    def test_grad_accumulation_matches_larger_batch(self):
        data = make_data(rows=8)
        # Two micro-batches of 4 with accumulation == one batch of 8: the
        # loss is a mean, so averaged micro-gradients equal the full-batch
        # gradient.  SGD makes the comparison exact (no moment rescaling).
        model_a = make_model()
        trainer_a = Trainer(
            model_a,
            QuadraticProgram(data, batch_size=4),
            SGD(model_a.parameters(), lr=1e-2),
            config=TrainConfig(grad_accum_steps=2),
        )
        trainer_a.fit(max_epochs=1)

        model_b = make_model()
        trainer_b = Trainer(
            model_b,
            QuadraticProgram(data, batch_size=8),
            SGD(model_b.parameters(), lr=1e-2),
        )
        trainer_b.fit(max_epochs=1)
        # float32 forward passes accumulate in different orders; the match
        # is exact up to that rounding.
        np.testing.assert_allclose(
            model_a.weight.data, model_b.weight.data, rtol=1e-5, atol=1e-7
        )

    def test_grad_clip_bounds_update_norm(self):
        data = 100.0 * make_data()  # huge loss -> huge gradients
        clipped = make_model()
        optimizer = SGD(clipped.parameters(), lr=1.0)
        trainer = Trainer(
            clipped,
            QuadraticProgram(data),
            optimizer,
            config=TrainConfig(grad_clip=1e-3),
        )
        before = clipped.weight.data.copy()
        trainer.fit(max_steps=1)
        # ||update|| = lr * ||clipped grad|| <= lr * grad_clip.
        delta = np.concatenate(
            [(clipped.weight.data - before).ravel(), clipped.bias.data.ravel()]
        )
        assert np.linalg.norm(delta) <= 1e-3 + 1e-9

    def test_early_stop_epoch_reaches_program_as_last(self):
        # The stopping epoch must reach the program hook with
        # is_last=True so final validation/model selection still runs.
        seen = []

        class Recording(QuadraticProgram):
            def on_epoch_end(self, trainer, epoch, epoch_loss, is_last):
                seen.append((epoch, is_last))

        model = make_model()
        trainer = Trainer(
            model,
            Recording(make_data()),
            SGD(model.parameters(), lr=0.0),  # loss never improves
            config=TrainConfig(early_stop_patience=1),
        )
        state = trainer.fit(max_epochs=50)
        assert "early stop" in state.stop_reason
        assert seen[-1][1] is True  # the stopping epoch was flagged last
        assert all(not is_last for _, is_last in seen[:-1])

    def test_early_stopping_requests_stop(self):
        model = make_model()
        trainer = Trainer(
            model,
            QuadraticProgram(make_data()),
            # lr=0: the loss never improves, so patience expires.
            SGD(model.parameters(), lr=0.0),
            config=TrainConfig(early_stop_patience=2),
        )
        state = trainer.fit(max_epochs=50)
        assert state.epoch < 50
        assert "early stop" in state.stop_reason

    def test_mid_run_checkpoint_includes_epoch_end_program_state(self, tmp_path):
        # The epoch-cadence checkpoint must snapshot program state from
        # *after* the epoch's on_epoch_end hook (validation / model
        # selection), or a mid-run kill would resume without it.
        class Selecting(QuadraticProgram):
            def __init__(self, data):
                super().__init__(data)
                self.validated = []

            def on_epoch_end(self, trainer, epoch, epoch_loss, is_last):
                self.validated.append(epoch)
                if epoch == 1:
                    raise KeyboardInterrupt  # simulated kill mid-run

            def state_dict(self):
                return {"validated": list(self.validated)}

            def load_state_dict(self, values):
                self.validated = list(values.get("validated", []))

        model = make_model()
        trainer = Trainer(
            model,
            Selecting(make_data()),
            AdamW(model.parameters(), lr=1e-2),
            checkpoint_dir=tmp_path,
        )
        with pytest.raises(KeyboardInterrupt):
            trainer.fit(max_epochs=5)

        fresh_model = make_model()
        fresh_program = Selecting(make_data())
        resumed = Trainer(
            fresh_model,
            fresh_program,
            AdamW(fresh_model.parameters(), lr=1e-2),
            checkpoint_dir=tmp_path,
        )
        assert resumed.try_resume()
        # The epoch-0 checkpoint (the last completed save) includes the
        # epoch-0 hook's effect.
        assert fresh_program.validated == [0]

    def test_loss_trace_records_each_step(self):
        model = make_model()
        trace = LossTrace()
        trainer = Trainer(
            model,
            QuadraticProgram(make_data()),
            AdamW(model.parameters(), lr=1e-2),
            callbacks=[trace],
        )
        state = trainer.fit(max_epochs=2)
        assert len(trace.step_losses) == state.step

    def test_trailing_accumulation_group_is_a_true_mean(self):
        # One batch under grad_accum_steps=2 is a trailing group of one:
        # its gradient must be rescaled back to the full mean, making the
        # step identical to the same batch at grad_accum_steps=1.
        data = make_data(rows=4)

        def run(accum):
            model = make_model()
            trainer = Trainer(
                model,
                QuadraticProgram(data, batch_size=4),
                SGD(model.parameters(), lr=1e-2),
                config=TrainConfig(grad_accum_steps=accum),
            )
            trainer.fit(max_epochs=1)
            return model.weight.data

        np.testing.assert_array_equal(run(2), run(1))

    def test_trailing_accumulation_flush_fires_on_step(self):
        # 3 batches with grad_accum_steps=2: one full group plus a flushed
        # trailing group = 2 optimizer steps, both visible to callbacks.
        model = make_model()
        trace = LossTrace()
        trainer = Trainer(
            model,
            QuadraticProgram(make_data(rows=12), batch_size=4),
            AdamW(model.parameters(), lr=1e-2),
            config=TrainConfig(grad_accum_steps=2),
            callbacks=[trace],
        )
        state = trainer.fit(max_epochs=1)
        assert state.step == 2
        assert len(trace.step_losses) == state.step


class TestGradientWorkers:
    def test_workers_deterministic_and_finite(self):
        def run():
            model = make_model()
            trainer = Trainer(
                model,
                QuadraticProgram(make_data(rows=16)),
                AdamW(model.parameters(), lr=1e-2),
                config=TrainConfig(train_workers=2),
            )
            state = trainer.fit(max_epochs=3)
            return model.weight.data.copy(), state.epoch_losses

        weights_a, losses_a = run()
        weights_b, losses_b = run()
        assert np.array_equal(weights_a, weights_b)
        assert losses_a == losses_b
        assert np.isfinite(weights_a).all()

    def test_workers_match_serial_for_mean_losses(self):
        # The toy loss is a per-item mean, so shard-size-weighted gradient
        # averaging reproduces the full-batch gradient exactly (no dropout
        # in a Linear model); the whole run must match the serial loop.
        data = make_data(rows=16)

        def run(workers):
            model = make_model()
            trainer = Trainer(
                model,
                QuadraticProgram(data),
                SGD(model.parameters(), lr=1e-2),
                config=TrainConfig(train_workers=workers),
            )
            trainer.fit(max_epochs=2)
            return model.weight.data

        np.testing.assert_allclose(run(1), run(4), rtol=1e-4, atol=1e-6)


class TestTokenCache:
    def test_matches_direct_tokenizer(self):
        tokenizer = Tokenizer.fit(CORPUS, vocab_size=200)
        cache = TokenCache(tokenizer)
        direct = tokenizer.encode_batch(CORPUS, max_len=16)
        cached = cache.encode_batch(CORPUS, max_len=16)
        assert np.array_equal(direct.token_ids, cached.token_ids)
        assert np.array_equal(direct.attention_mask, cached.attention_mask)
        assert np.array_equal(direct.segment_ids, cached.segment_ids)
        # Second pass is all hits.
        cache.encode_batch(CORPUS, max_len=16)
        assert cache.hits == len(CORPUS)
        assert cache.misses == len(CORPUS)

    def test_max_len_is_part_of_the_key(self):
        tokenizer = Tokenizer.fit(CORPUS, vocab_size=200)
        cache = TokenCache(tokenizer)
        short = cache.encode_batch(CORPUS[:3], max_len=8)
        long = cache.encode_batch(CORPUS[:3], max_len=16)
        assert short.token_ids.shape[1] == 8
        assert long.token_ids.shape[1] == 16

    def test_capacity_bounds_cache(self):
        tokenizer = Tokenizer.fit(CORPUS, vocab_size=200)
        cache = TokenCache(tokenizer, capacity=4)
        cache.warm(CORPUS, max_len=16)
        assert len(cache) == 4

    def test_rejects_bad_capacity(self):
        tokenizer = Tokenizer.fit(CORPUS, vocab_size=200)
        with pytest.raises(ValueError):
            TokenCache(tokenizer, capacity=0)


class TestPrefetched:
    def test_yields_in_order(self):
        items = list(range(20))
        assert list(prefetched(items, lambda x: x * 2, depth=3)) == [
            2 * x for x in items
        ]

    def test_propagates_producer_errors(self):
        def prepare(x):
            if x == 3:
                raise RuntimeError("boom")
            return x

        consumed = []
        with pytest.raises(RuntimeError, match="boom"):
            for item in prefetched(list(range(6)), prepare, depth=2):
                consumed.append(item)
        assert consumed == [0, 1, 2]

    def test_early_break_stops_producer(self):
        prepared = []

        def prepare(x):
            prepared.append(x)
            return x

        for item in prefetched(list(range(1000)), prepare, depth=2):
            if item == 5:
                break
        # The producer ran at most a few batches ahead of the break.
        assert len(prepared) < 20
