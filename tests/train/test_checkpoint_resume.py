"""Checkpoint/resume determinism and the corrupt-file error contract.

The testable invariant (mirroring ``session.embedding_fingerprint()``):
killing a pre-training run at epoch k and resuming reproduces the
uninterrupted run's final weights and ``epoch_losses`` **byte-identically**
— because the trainer checkpoints model weights, optimizer moments, and
every RNG stream state (including the dropout generators inside the
model).  Corrupt or truncated trainer-state files raise the same clear
``ValueError`` contract as ``nn/serialization.py``.
"""

import numpy as np
import pytest

from repro.api import SudowoodoSession
from repro.core import SudowoodoConfig, pretrain
from repro.nn import AdamW, save_state_archive
from repro.nn.layers import Linear
from repro.train import (
    Checkpointer,
    module_rng_states,
    restore_module_rng_states,
)
from repro.utils import RngStream, spawn_rng

CORPUS = [
    f"[COL] name [VAL] gadget {i} beta [COL] brand [VAL] zenith "
    f"[COL] price [VAL] {i}.49"
    for i in range(40)
]


def tiny_config(**overrides):
    defaults = dict(
        dim=16,
        num_layers=1,
        num_heads=2,
        ffn_dim=32,
        max_seq_len=24,
        pair_max_seq_len=40,
        vocab_size=400,
        pretrain_epochs=4,
        pretrain_batch_size=8,
        num_clusters=3,
        corpus_cap=32,
        mlm_warm_start_epochs=1,
        seed=0,
    )
    defaults.update(overrides)
    return SudowoodoConfig(**defaults)


def states_equal(left, right):
    assert set(left) == set(right)
    return all(np.array_equal(left[k], right[k]) for k in left)


class TestResumeDeterminism:
    @pytest.mark.parametrize("kill_epoch", [1, 2, 3])
    def test_resume_reproduces_uninterrupted_run(self, tmp_path, kill_epoch):
        full = pretrain(list(CORPUS), tiny_config())

        # "Kill" at epoch k: run only k epochs, checkpointing every epoch.
        pretrain(
            list(CORPUS),
            tiny_config(pretrain_epochs=kill_epoch),
            checkpoint_dir=tmp_path,
        )
        assert (tmp_path / Checkpointer.FILENAME).exists()

        resumed = pretrain(
            list(CORPUS),
            tiny_config(),
            checkpoint_dir=tmp_path,
            resume=True,
        )
        assert resumed.epoch_losses == full.epoch_losses
        assert states_equal(
            resumed.encoder.state_dict(), full.encoder.state_dict()
        )

    def test_resume_with_auto_operator_scheduler(self, tmp_path):
        config_kwargs = dict(da_operator="auto", mlm_warm_start_epochs=0)
        full = pretrain(list(CORPUS), tiny_config(**config_kwargs))
        pretrain(
            list(CORPUS),
            tiny_config(pretrain_epochs=2, **config_kwargs),
            checkpoint_dir=tmp_path,
        )
        resumed = pretrain(
            list(CORPUS),
            tiny_config(**config_kwargs),
            checkpoint_dir=tmp_path,
            resume=True,
        )
        assert resumed.epoch_losses == full.epoch_losses
        assert states_equal(
            resumed.encoder.state_dict(), full.encoder.state_dict()
        )
        assert full.operator_weights is not None
        assert resumed.operator_weights == pytest.approx(full.operator_weights)

    def test_resume_with_early_stopping_state(self, tmp_path):
        # Early-stop counters (best/stale) are part of the checkpoint, so
        # a resumed run stops at the same epoch with the same weights as
        # the uninterrupted run.
        config_kwargs = dict(
            early_stop_patience=1, pretrain_epochs=8, mlm_warm_start_epochs=0
        )
        full = pretrain(list(CORPUS), tiny_config(**config_kwargs))
        assert len(full.epoch_losses) < 8  # the patience actually fired

        pretrain(
            list(CORPUS),
            tiny_config(
                pretrain_epochs=min(3, len(full.epoch_losses) - 1),
                early_stop_patience=1,
                mlm_warm_start_epochs=0,
            ),
            checkpoint_dir=tmp_path,
        )
        resumed = pretrain(
            list(CORPUS),
            tiny_config(**config_kwargs),
            checkpoint_dir=tmp_path,
            resume=True,
        )
        assert resumed.epoch_losses == full.epoch_losses
        assert states_equal(
            resumed.encoder.state_dict(), full.encoder.state_dict()
        )

    def test_resume_of_early_stopped_run_is_a_noop(self, tmp_path):
        # A run that *finished* by early stopping must not train further
        # on resume: the restored patience counters re-request the stop,
        # keeping the resumed result byte-identical to the first run.
        config_kwargs = dict(
            early_stop_patience=1, pretrain_epochs=8, mlm_warm_start_epochs=0
        )
        first = pretrain(
            list(CORPUS), tiny_config(**config_kwargs), checkpoint_dir=tmp_path
        )
        assert len(first.epoch_losses) < 8  # the patience actually fired
        resumed = pretrain(
            list(CORPUS),
            tiny_config(**config_kwargs),
            checkpoint_dir=tmp_path,
            resume=True,
        )
        assert resumed.epoch_losses == first.epoch_losses
        assert states_equal(
            resumed.encoder.state_dict(), first.encoder.state_dict()
        )

    def test_resume_without_checkpoint_dir_raises(self):
        with pytest.raises(ValueError, match="checkpoint_dir"):
            pretrain(list(CORPUS), tiny_config(), resume=True)

    def test_resume_without_checkpoint_starts_fresh(self, tmp_path):
        result = pretrain(
            list(CORPUS),
            tiny_config(pretrain_epochs=1),
            checkpoint_dir=tmp_path,
            resume=True,  # nothing to resume from yet
        )
        assert len(result.epoch_losses) == 1
        assert (tmp_path / Checkpointer.FILENAME).exists()

    def test_completed_run_resumes_to_noop(self, tmp_path):
        first = pretrain(
            list(CORPUS), tiny_config(pretrain_epochs=2), checkpoint_dir=tmp_path
        )
        again = pretrain(
            list(CORPUS),
            tiny_config(pretrain_epochs=2),
            checkpoint_dir=tmp_path,
            resume=True,
        )
        assert again.epoch_losses == first.epoch_losses
        assert states_equal(
            again.encoder.state_dict(), first.encoder.state_dict()
        )

    def test_session_pretrain_checkpoints_and_resumes(self, tmp_path):
        full = SudowoodoSession(tiny_config(pretrain_epochs=3))
        full.pretrain(CORPUS)

        partial = SudowoodoSession(tiny_config(pretrain_epochs=2))
        partial.pretrain(CORPUS, checkpoint_dir=tmp_path)

        resumed = SudowoodoSession(tiny_config(pretrain_epochs=3))
        resumed.pretrain(CORPUS, checkpoint_dir=tmp_path, resume=True)
        probe = list(CORPUS[:8])
        assert resumed.embedding_fingerprint(probe) == full.embedding_fingerprint(
            probe
        )


class TestCorruptCheckpoints:
    def _checkpoint(self, tmp_path):
        pretrain(
            list(CORPUS),
            tiny_config(pretrain_epochs=1),
            checkpoint_dir=tmp_path,
        )
        return tmp_path / Checkpointer.FILENAME

    def test_truncated_file_raises_value_error(self, tmp_path):
        path = self._checkpoint(tmp_path)
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 2])
        with pytest.raises(ValueError, match=str(path.name)):
            pretrain(
                list(CORPUS),
                tiny_config(),
                checkpoint_dir=tmp_path,
                resume=True,
            )

    def test_garbage_file_raises_value_error(self, tmp_path):
        path = tmp_path / Checkpointer.FILENAME
        path.write_bytes(b"this is not an npz archive at all")
        with pytest.raises(ValueError, match="corrupt or unreadable"):
            pretrain(
                list(CORPUS),
                tiny_config(),
                checkpoint_dir=tmp_path,
                resume=True,
            )

    def test_wrong_format_archive_raises_value_error(self, tmp_path):
        path = tmp_path / Checkpointer.FILENAME
        save_state_archive(path, {"weights": np.zeros(3)}, {"format": "other"})
        with pytest.raises(ValueError, match="trainer state"):
            pretrain(
                list(CORPUS),
                tiny_config(),
                checkpoint_dir=tmp_path,
                resume=True,
            )

    def test_seed_mismatch_raises_value_error(self, tmp_path):
        self._checkpoint(tmp_path)
        with pytest.raises(ValueError, match="seed"):
            pretrain(
                list(CORPUS),
                tiny_config(seed=7),
                checkpoint_dir=tmp_path,
                resume=True,
            )


class TestStatePrimitives:
    def test_optimizer_state_roundtrip_continues_identically(self):
        rng = spawn_rng(0, "opt-state")
        def make():
            layer = Linear(6, 4, spawn_rng(0, "layer"))
            return layer, AdamW(layer.parameters(), lr=1e-2)

        def step(layer, optimizer, step_rng):
            x = step_rng.normal(size=(5, 6))
            out = layer(np.asarray(x))
            loss = (out * out).sum()
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()

        layer_a, opt_a = make()
        layer_b, opt_b = make()
        rng_a, rng_b = spawn_rng(1, "steps"), spawn_rng(1, "steps")
        for _ in range(3):
            step(layer_a, opt_a, rng_a)
            step(layer_b, opt_b, rng_b)

        # Round-trip B's state through a rebuilt optimizer.
        saved = opt_b.state_dict()
        layer_c = Linear(6, 4, spawn_rng(0, "layer"))
        layer_c.load_state_dict(layer_b.state_dict())
        opt_c = AdamW(layer_c.parameters(), lr=1e-2)
        opt_c.load_state_dict(saved)
        for _ in range(3):
            step(layer_a, opt_a, rng_a)
            step(layer_c, opt_c, rng_b)
        assert states_equal(layer_a.state_dict(), layer_c.state_dict())

    def test_module_rng_states_roundtrip(self):
        config = tiny_config()
        from repro.core import SudowoodoEncoder, build_tokenizer

        tokenizer = build_tokenizer(CORPUS, config)
        encoder = SudowoodoEncoder(config, tokenizer)
        states = module_rng_states(encoder)
        assert states  # dropout generators exist
        # Dropout draws advance the generators; restoring the snapshot
        # replays the identical noise.
        encoder.train()
        first = encoder.encode_training(CORPUS[:4]).data.copy()
        restore_module_rng_states(encoder, states)
        second = encoder.encode_training(CORPUS[:4]).data
        assert np.array_equal(first, second)

    def test_restore_rejects_structural_drift(self):
        config = tiny_config()
        from repro.core import SudowoodoEncoder, build_tokenizer

        tokenizer = build_tokenizer(CORPUS, config)
        encoder = SudowoodoEncoder(config, tokenizer)
        states = module_rng_states(encoder)
        states["bogus.path"] = next(iter(states.values()))
        with pytest.raises(ValueError, match="unexpected"):
            restore_module_rng_states(encoder, states)

    def test_rng_stream_roundtrip_continues_sequence(self):
        stream = RngStream(3)
        stream.get("a").random(5)
        snapshot = stream.state_dict()
        expected = stream.get("a").random(4)

        fresh = RngStream(3)
        fresh.load_state_dict(snapshot)
        assert np.array_equal(fresh.get("a").random(4), expected)

    def test_rng_stream_seed_mismatch_raises(self):
        snapshot = RngStream(3).state_dict()
        with pytest.raises(ValueError, match="seed mismatch"):
            RngStream(4).load_state_dict(snapshot)
