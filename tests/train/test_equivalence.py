"""Engine-vs-legacy equivalence: the migrated loops are byte-identical.

Each test replays the pre-engine hand-rolled loop (copied here verbatim,
against the same library primitives) and asserts the engine-driven
implementation produces **byte-identical** weights and loss traces at the
default ``TrainConfig`` (one worker, no accumulation, no clipping).  This
is the refactor's safety net: any drift in RNG consumption order,
optimizer stepping, or epoch accounting fails these tests exactly.
"""

import numpy as np
import pytest

from repro.augment import augment_batch, make_cutoff_transform
from repro.core import (
    PairwiseMatcher,
    SudowoodoConfig,
    SudowoodoEncoder,
    TrainingExample,
    build_tokenizer,
    finetune_matcher,
    pretrain,
)
from repro.core.losses import combined_loss, nt_xent_loss
from repro.core.matcher import evaluate_f1
from repro.core.negative_sampling import ClusterBatcher
from repro.core.pretrain import prepare_corpus
from repro.nn import AdamW, LinearWarmupDecay, weighted_cross_entropy
from repro.text import MLMConfig, Tokenizer, mlm_warm_start
from repro.text.lm_pretrain import _apply_masking
from repro.nn import LMHead, cross_entropy
from repro.utils import RngStream, spawn_rng

CORPUS = [
    f"[COL] name [VAL] widget {i} alpha [COL] brand [VAL] acme "
    f"[COL] price [VAL] {i}.99"
    for i in range(48)
]


def tiny_config(**overrides):
    defaults = dict(
        dim=16,
        num_layers=1,
        num_heads=2,
        ffn_dim=32,
        max_seq_len=24,
        pair_max_seq_len=40,
        vocab_size=400,
        pretrain_epochs=2,
        pretrain_batch_size=8,
        finetune_epochs=2,
        finetune_batch_size=8,
        num_clusters=3,
        corpus_cap=32,
        mlm_warm_start_epochs=0,
        seed=0,
    )
    defaults.update(overrides)
    return SudowoodoConfig(**defaults)


def states_equal(left, right):
    assert set(left) == set(right)
    return all(np.array_equal(left[k], right[k]) for k in left)


# ----------------------------------------------------------------------
# Legacy replicas (the pre-engine loops, verbatim)
# ----------------------------------------------------------------------
def legacy_pretrain(corpus, config):
    """The pre-engine contrastive loop (mlm warm start assumed off)."""
    config.validate()
    rngs = RngStream(config.seed)
    corpus = prepare_corpus(corpus, config, rngs.get("corpus"))
    tokenizer = build_tokenizer(corpus, config)
    encoder = SudowoodoEncoder(config, tokenizer)

    batcher = ClusterBatcher(
        corpus,
        num_clusters=config.num_clusters if config.use_cluster_sampling else 1,
        rng=rngs.get("clustering"),
    )
    optimizer = AdamW(encoder.parameters(), lr=config.pretrain_lr)
    da_rng = rngs.get("augment")
    cutoff_rng = rngs.get("cutoff")
    batch_rng = rngs.get("batches")

    encoder.train()
    epoch_losses = []
    for _ in range(config.pretrain_epochs):
        if config.use_cluster_sampling:
            batches = batcher.batches(config.pretrain_batch_size, batch_rng)
        else:
            batches = batcher.uniform_batches(config.pretrain_batch_size, batch_rng)
        losses = []
        for batch_indices in batches:
            batch = [corpus[int(i)] for i in batch_indices]
            augmented = augment_batch(batch, da_rng, operator=config.da_operator)
            cutoff = (
                make_cutoff_transform(
                    config.cutoff_kind, config.cutoff_ratio, cutoff_rng
                )
                if config.use_cutoff
                else None
            )
            z_ori = encoder.project(encoder.encode_training(batch))
            z_aug = encoder.project(
                encoder.encode_training(augmented, embedding_transform=cutoff)
            )
            if config.use_barlow_twins:
                loss = combined_loss(
                    z_ori,
                    z_aug,
                    temperature=config.temperature,
                    alpha_bt=config.alpha_bt,
                    lambda_bt=config.lambda_bt,
                )
            else:
                loss = nt_xent_loss(z_ori, z_aug, temperature=config.temperature)
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
            losses.append(loss.item())
        epoch_losses.append(float(np.mean(losses)) if losses else float("nan"))
    encoder.eval()
    return encoder, epoch_losses


def legacy_mlm(encoder, tokenizer, corpus, config):
    """The pre-engine masked-LM loop."""
    rng = spawn_rng(config.seed, "mlm")
    head = LMHead(encoder.config, spawn_rng(config.seed, "mlm-head"))
    optimizer = AdamW(
        encoder.parameters() + head.parameters(), lr=config.learning_rate
    )
    encoded = tokenizer.encode_batch(list(corpus), max_len=config.max_seq_len)
    num_items = encoded.token_ids.shape[0]
    losses = []
    for _ in range(config.epochs):
        order = rng.permutation(num_items)
        epoch_losses = []
        for start in range(0, num_items, config.batch_size):
            batch_idx = order[start : start + config.batch_size]
            token_ids = encoded.token_ids[batch_idx].copy()
            attention = encoded.attention_mask[batch_idx]
            masked_ids, target_ids, target_mask = _apply_masking(
                token_ids, attention, tokenizer, config.mask_probability, rng
            )
            if not target_mask.any():
                continue
            hidden = encoder(masked_ids, attention_mask=attention)
            logits = head(hidden)
            rows, cols = np.nonzero(target_mask)
            loss = cross_entropy(logits[rows, cols], target_ids[rows, cols])
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
            epoch_losses.append(loss.item())
        losses.append(float(np.mean(epoch_losses)) if epoch_losses else float("nan"))
    return losses


def legacy_finetune(matcher, train_examples, valid_examples, config,
                    fixed_steps=None, num_validations=4):
    """The pre-engine fine-tuning loop."""
    rng = spawn_rng(config.seed, "finetune")
    head_optimizer = AdamW(
        matcher.classifier.parameters(), lr=config.head_lr, weight_decay=0.0
    )
    encoder_optimizer = AdamW(
        matcher.encoder.parameters(), lr=config.finetune_lr
    )
    steps_per_epoch = max(
        1, int(np.ceil(len(train_examples) / config.finetune_batch_size))
    )
    total_steps = (
        fixed_steps
        if fixed_steps is not None
        else steps_per_epoch * config.finetune_epochs
    )
    encoder_schedule = LinearWarmupDecay(
        encoder_optimizer, config.finetune_lr, total_steps
    )
    epochs_planned = max(1, int(np.ceil(total_steps / steps_per_epoch)))
    validate_every = max(1, epochs_planned // max(1, num_validations))

    best_valid_f1, best_state, steps_taken, epoch = 0.0, None, 0, 0
    epoch_losses_trace = []
    matcher.encoder.encoder.train()
    while steps_taken < total_steps:
        order = rng.permutation(len(train_examples))
        epoch_losses = []
        for start in range(0, len(order), config.finetune_batch_size):
            if steps_taken >= total_steps:
                break
            batch = [
                train_examples[int(i)]
                for i in order[start : start + config.finetune_batch_size]
            ]
            if len(batch) < 2:
                continue
            logits = matcher.forward([(e.left, e.right) for e in batch])
            loss = weighted_cross_entropy(
                logits,
                np.array([e.label for e in batch]),
                np.array([e.weight for e in batch]),
            )
            head_optimizer.zero_grad()
            encoder_optimizer.zero_grad()
            loss.backward()
            encoder_schedule.step()
            head_optimizer.step()
            encoder_optimizer.step()
            steps_taken += 1
            epoch_losses.append(loss.item())
        epoch_losses_trace.append(
            float(np.mean(epoch_losses)) if epoch_losses else float("nan")
        )
        is_last = steps_taken >= total_steps
        if valid_examples and (epoch % validate_every == 0 or is_last):
            valid_f1 = evaluate_f1(
                matcher,
                [(e.left, e.right) for e in valid_examples],
                [e.label for e in valid_examples],
            )["f1"]
            if valid_f1 >= best_valid_f1:
                best_valid_f1 = valid_f1
                best_state = matcher.state_dict()
        epoch += 1
    if best_state is not None:
        matcher.load_state_dict(best_state)
    matcher.encoder.encoder.eval()
    return epoch_losses_trace, best_valid_f1


# ----------------------------------------------------------------------
# Equivalence assertions
# ----------------------------------------------------------------------
class TestPretrainEquivalence:
    @pytest.mark.parametrize(
        "overrides",
        [
            {},
            {"use_cutoff": False},
            {"use_barlow_twins": False, "cutoff_kind": "token"},
            {"use_cluster_sampling": False, "da_operator": "span_shuffle"},
        ],
    )
    def test_engine_matches_legacy_loop(self, overrides):
        config = tiny_config(**overrides)
        legacy_encoder, legacy_losses = legacy_pretrain(list(CORPUS), config)
        result = pretrain(list(CORPUS), tiny_config(**overrides))
        assert result.epoch_losses == legacy_losses
        assert states_equal(
            result.encoder.state_dict(), legacy_encoder.state_dict()
        )

    def test_prefetch_does_not_change_results(self):
        inline = pretrain(list(CORPUS), tiny_config(train_prefetch=0))
        ahead = pretrain(list(CORPUS), tiny_config(train_prefetch=4))
        assert inline.epoch_losses == ahead.epoch_losses
        assert states_equal(
            inline.encoder.state_dict(), ahead.encoder.state_dict()
        )


class TestMLMEquivalence:
    def test_engine_matches_legacy_loop(self):
        config = tiny_config()
        tokenizer = Tokenizer.fit(CORPUS, vocab_size=config.vocab_size)
        mlm_config = MLMConfig(epochs=2, batch_size=8, max_seq_len=24, seed=0)

        legacy_encoder = SudowoodoEncoder(config, tokenizer)
        legacy_losses = legacy_mlm(
            legacy_encoder.encoder, tokenizer, CORPUS, mlm_config
        )

        engine_encoder = SudowoodoEncoder(config, tokenizer)
        result = mlm_warm_start(
            engine_encoder.encoder, tokenizer, CORPUS, mlm_config
        )
        assert result.losses == legacy_losses
        assert states_equal(
            engine_encoder.state_dict(), legacy_encoder.state_dict()
        )


class TestFinetuneEquivalence:
    def _examples(self):
        positives = [
            TrainingExample(CORPUS[i], CORPUS[i], 1, 1.0) for i in range(8)
        ]
        negatives = [
            TrainingExample(CORPUS[i], CORPUS[i + 9], 0, 1.0) for i in range(8)
        ]
        return positives + negatives

    @pytest.mark.parametrize("fixed_steps", [None, 5])
    def test_engine_matches_legacy_loop(self, fixed_steps):
        config = tiny_config()
        examples = self._examples()
        valid = examples[:6]

        tokenizer = Tokenizer.fit(CORPUS, vocab_size=config.vocab_size)
        legacy_matcher = PairwiseMatcher(SudowoodoEncoder(config, tokenizer))
        legacy_losses, legacy_best = legacy_finetune(
            legacy_matcher, examples, valid, config, fixed_steps=fixed_steps
        )

        engine_matcher = PairwiseMatcher(SudowoodoEncoder(config, tokenizer))
        result = finetune_matcher(
            engine_matcher, examples, valid, config, fixed_steps=fixed_steps
        )
        assert result.epoch_losses == legacy_losses
        assert result.best_valid_f1 == legacy_best
        assert states_equal(
            engine_matcher.state_dict(), legacy_matcher.state_dict()
        )
