"""Gradient workers driving the real training paths.

``worker_count=1`` byte-identity is covered by ``test_equivalence``; here
the multi-worker path must be deterministic, finite, and structurally
equivalent (same epochs/steps) on contrastive pre-training and matcher
fine-tuning.
"""

import numpy as np
import pytest

from repro.core import (
    PairwiseMatcher,
    SudowoodoConfig,
    SudowoodoEncoder,
    TrainingExample,
    finetune_matcher,
    pretrain,
)
from repro.text import Tokenizer

CORPUS = [
    f"[COL] name [VAL] sensor {i} gamma [COL] brand [VAL] orbit "
    f"[COL] price [VAL] {i}.25"
    for i in range(40)
]


def tiny_config(**overrides):
    defaults = dict(
        dim=16,
        num_layers=1,
        num_heads=2,
        ffn_dim=32,
        max_seq_len=24,
        pair_max_seq_len=40,
        vocab_size=400,
        pretrain_epochs=2,
        pretrain_batch_size=8,
        finetune_epochs=2,
        finetune_batch_size=8,
        num_clusters=3,
        corpus_cap=32,
        mlm_warm_start_epochs=0,
        seed=0,
    )
    defaults.update(overrides)
    return SudowoodoConfig(**defaults)


@pytest.mark.stress
class TestParallelPretrain:
    @pytest.mark.parametrize("workers", [2, 4])
    def test_deterministic_across_runs(self, workers):
        first = pretrain(list(CORPUS), tiny_config(train_workers=workers))
        second = pretrain(list(CORPUS), tiny_config(train_workers=workers))
        assert first.epoch_losses == second.epoch_losses
        for key, value in first.encoder.state_dict().items():
            assert np.array_equal(value, second.encoder.state_dict()[key])

    def test_losses_finite_and_epochs_complete(self):
        result = pretrain(list(CORPUS), tiny_config(train_workers=2))
        assert len(result.epoch_losses) == 2
        assert all(np.isfinite(loss) for loss in result.epoch_losses)

    def test_mlm_warm_start_with_workers(self):
        result = pretrain(
            list(CORPUS),
            tiny_config(train_workers=2, mlm_warm_start_epochs=1),
        )
        assert all(np.isfinite(loss) for loss in result.epoch_losses)

    def test_resume_with_workers_is_byte_identical(self, tmp_path):
        # Replica dropout generators are part of the checkpoint, so the
        # resume-determinism invariant holds for multi-worker runs too.
        config_kwargs = dict(train_workers=2, pretrain_epochs=4)
        full = pretrain(list(CORPUS), tiny_config(**config_kwargs))
        pretrain(
            list(CORPUS),
            tiny_config(train_workers=2, pretrain_epochs=2),
            checkpoint_dir=tmp_path,
        )
        resumed = pretrain(
            list(CORPUS),
            tiny_config(**config_kwargs),
            checkpoint_dir=tmp_path,
            resume=True,
        )
        assert resumed.epoch_losses == full.epoch_losses
        full_state = full.encoder.state_dict()
        for key, value in resumed.encoder.state_dict().items():
            assert np.array_equal(value, full_state[key]), key


@pytest.mark.stress
class TestParallelFinetune:
    def test_finetune_with_workers_trains(self):
        config = tiny_config(train_workers=2)
        tokenizer = Tokenizer.fit(CORPUS, vocab_size=400)
        matcher = PairwiseMatcher(SudowoodoEncoder(config, tokenizer))
        examples = [
            TrainingExample(CORPUS[i], CORPUS[i], 1, 1.0) for i in range(8)
        ] + [
            TrainingExample(CORPUS[i], CORPUS[i + 9], 0, 1.0) for i in range(8)
        ]
        result = finetune_matcher(matcher, examples, examples[:6], config)
        assert len(result.epoch_losses) >= 1
        assert all(np.isfinite(loss) for loss in result.epoch_losses)
        predictions = matcher.predict([(CORPUS[0], CORPUS[0])])
        assert predictions.shape == (1,)
