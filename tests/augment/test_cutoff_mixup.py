"""Cutoff-sampler hoist regression and the ``mixup_embed`` operator."""

import numpy as np
import pytest

from repro.augment import (
    EM_OPERATORS,
    MIXUP_ALPHA,
    make_cutoff_sampler,
    make_cutoff_transform,
    mask_transform,
    mixup_transform,
    sample_mixup,
)
from repro.core import SudowoodoConfig
from repro.core.pretrain import pretrain
from repro.nn import Tensor
from repro.utils import spawn_rng

CORPUS = [
    f"[COL] name [VAL] probe {i} delta [COL] brand [VAL] vertex "
    f"[COL] price [VAL] {i}.75"
    for i in range(36)
]


class TestCutoffHoistRegression:
    """The engine hoists ``make_cutoff_sampler`` out of the batch loop;
    the cutoff RNG stream must consume exactly the sequence the legacy
    per-batch ``make_cutoff_transform`` construction consumed."""

    @pytest.mark.parametrize("kind", ["token", "feature", "span"])
    def test_hoisted_sampler_consumes_identical_rng_stream(self, kind):
        seq_len, dim, batches = 24, 16, 12
        legacy_rng = spawn_rng(0, "cutoff")
        hoisted_rng = spawn_rng(0, "cutoff")

        # Legacy: rebuild the transform every batch (loop-invariant args),
        # draw the mask inside the forward pass.
        legacy_masks = []
        for _ in range(batches):
            transform = make_cutoff_transform(kind, 0.1, legacy_rng)
            embeddings = Tensor(np.ones((2, seq_len, dim)))
            masked = transform(embeddings, np.ones((2, seq_len)))
            legacy_masks.append(masked.data[0])

        # Hoisted: one sampler, one mask draw per batch ahead of forward.
        sampler = make_cutoff_sampler(kind, 0.1, hoisted_rng)
        for batch in range(batches):
            mask = sampler(seq_len, dim)
            embeddings = Tensor(np.ones((2, seq_len, dim)))
            masked = mask_transform(mask)(embeddings, np.ones((2, seq_len)))
            assert np.array_equal(masked.data[0], legacy_masks[batch])

        # Both generators end at the same stream position.
        assert (
            legacy_rng.bit_generator.state == hoisted_rng.bit_generator.state
        )

    def test_none_kind_yields_no_sampler(self):
        assert make_cutoff_sampler("none", 0.1, spawn_rng(0, "x")) is None
        assert make_cutoff_sampler("span", 0.0, spawn_rng(0, "x")) is None

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError):
            make_cutoff_sampler("bogus", 0.1, spawn_rng(0, "x"))


class TestMixupOperator:
    def test_registered_in_em_operators(self):
        assert "mixup_embed" in EM_OPERATORS
        # Text level: identity (the distortion lives at the embedding
        # injection point).
        rng = spawn_rng(0, "mixup")
        assert EM_OPERATORS["mixup_embed"]("[COL] a [VAL] b", rng) == "[COL] a [VAL] b"

    def test_selectable_under_auto_and_directly(self):
        SudowoodoConfig(da_operator="mixup_embed").validate()
        SudowoodoConfig(da_operator="auto").validate()

    def test_sample_mixup_plan_is_valid(self):
        rng = spawn_rng(0, "mixup")
        permutation, lam = sample_mixup(8, rng, alpha=MIXUP_ALPHA)
        assert sorted(permutation.tolist()) == list(range(8))
        assert 0.5 <= lam <= 1.0

    def test_sample_mixup_rejects_empty_batch(self):
        with pytest.raises(ValueError):
            sample_mixup(0, spawn_rng(0, "mixup"))

    def test_transform_interpolates_views(self):
        rng = spawn_rng(1, "mixup")
        permutation, lam = sample_mixup(4, rng)
        embeddings = Tensor(spawn_rng(2, "emb").normal(size=(4, 6, 8)))
        mixed = mixup_transform(permutation, lam)(
            embeddings, np.ones((4, 6))
        )
        expected = (
            lam * embeddings.data + (1.0 - lam) * embeddings.data[permutation]
        )
        np.testing.assert_allclose(mixed.data, expected, rtol=1e-6)
        assert np.isfinite(mixed.data).all()

    def test_transform_rejects_bad_lambda(self):
        with pytest.raises(ValueError):
            mixup_transform(np.arange(4), 1.5)

    def test_transform_backward_flows_to_both_endpoints(self):
        permutation = np.array([1, 0])
        embeddings = Tensor(np.ones((2, 3, 4)), requires_grad=True)
        mixed = mixup_transform(permutation, 0.7)(embeddings, np.ones((2, 3)))
        mixed.sum().backward()
        # Every position receives gradient from itself (0.7) and from its
        # partner (0.3): total 1.0 per element.
        np.testing.assert_allclose(embeddings.grad, np.ones((2, 3, 4)), rtol=1e-6)

    def test_pretrain_with_mixup_trains_without_nans(self):
        config = SudowoodoConfig(
            dim=16,
            num_layers=1,
            num_heads=2,
            ffn_dim=32,
            max_seq_len=24,
            pair_max_seq_len=40,
            vocab_size=400,
            pretrain_epochs=2,
            pretrain_batch_size=8,
            num_clusters=3,
            corpus_cap=32,
            mlm_warm_start_epochs=0,
            da_operator="mixup_embed",
            seed=0,
        )
        result = pretrain(list(CORPUS), config)
        assert len(result.epoch_losses) == 2
        assert all(np.isfinite(loss) for loss in result.epoch_losses)
        for value in result.encoder.state_dict().values():
            assert np.isfinite(value).all()

    def test_mixup_produces_distinct_views(self):
        # The augmented encoding equals the original (identity text view);
        # the embedding-level interpolation must still distinguish z_aug
        # from z_ori (lam < 1 almost surely mixes partners in).
        rng = spawn_rng(3, "mixup")
        found_mixing = False
        for _ in range(16):
            permutation, lam = sample_mixup(6, rng)
            if lam < 1.0 and not np.array_equal(permutation, np.arange(6)):
                found_mixing = True
                break
        assert found_mixing
