"""Tests for DA operators and cutoff augmentation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.augment import (
    EM_OPERATORS,
    apply_cutoff_to_matrix,
    augment,
    augment_batch,
    cell_shuffle,
    col_del,
    col_shuffle,
    get_operator,
    make_cutoff_transform,
    span_del,
    span_shuffle,
    token_del,
    token_insert,
    token_repl,
    token_swap,
)
from repro.nn import Tensor

ITEM = (
    "[COL] title [VAL] wireless deluxe keyboard premium pack "
    "[COL] price [VAL] 36.11 [COL] brand [VAL] acme"
)


def rng(seed=0):
    return np.random.default_rng(seed)


class TestTokenOperators:
    def test_token_del_removes_one_value_token(self):
        out = token_del(ITEM, rng())
        assert len(out.split()) == len(ITEM.split()) - 1
        # Structure markers all survive.
        assert out.count("[COL]") == 3 and out.count("[VAL]") == 3

    def test_token_del_keeps_attribute_names(self):
        for seed in range(20):
            out = token_del(ITEM, rng(seed))
            assert "[COL] title" in out
            assert "[COL] price" in out
            assert "[COL] brand" in out

    def test_token_repl_uses_synonym(self):
        out = token_repl(ITEM, rng(1))
        assert out != ITEM
        # "wireless", "deluxe", or "premium" replaced with a synonym.
        replaced = [w for w in ("wireless", "deluxe", "premium") if w not in out]
        assert replaced

    def test_token_repl_without_synonyms_is_identity(self):
        text = "[COL] x [VAL] qqq zzz"
        assert token_repl(text, rng()) == text

    def test_token_swap_preserves_multiset(self):
        out = token_swap(ITEM, rng(2))
        assert sorted(out.split()) == sorted(ITEM.split())

    def test_token_insert_adds_one(self):
        out = token_insert(ITEM, rng(3))
        assert len(out.split()) == len(ITEM.split()) + 1

    def test_span_del_removes_span(self):
        out = span_del(ITEM, rng(4))
        removed = len(ITEM.split()) - len(out.split())
        assert 2 <= removed <= 4

    def test_span_shuffle_preserves_multiset(self):
        out = span_shuffle(ITEM, rng(5))
        assert sorted(out.split()) == sorted(ITEM.split())


class TestAttributeOperators:
    def test_col_shuffle_preserves_columns(self):
        out = col_shuffle(ITEM, rng(6))
        assert out.count("[COL]") == 3
        assert "[COL] price [VAL] 36.11" in out

    def test_col_del_drops_one_column(self):
        out = col_del(ITEM, rng(7))
        assert out.count("[COL]") == 2

    def test_col_del_single_column_identity(self):
        text = "[COL] a [VAL] x y"
        assert col_del(text, rng()) == text

    def test_cell_shuffle_permutes_vals(self):
        text = "[VAL] new york [VAL] california [VAL] florida"
        out = cell_shuffle(text, rng(8))
        assert sorted(out.split()) == sorted(text.split())
        assert out.count("[VAL]") == 3


class TestRegistry:
    def test_all_em_operators_run(self):
        for name in EM_OPERATORS:
            out = augment(ITEM, rng(9), operator=name)
            assert isinstance(out, str) and out

    def test_get_operator_unknown(self):
        with pytest.raises(KeyError):
            get_operator("bogus")

    def test_augment_batch(self):
        out = augment_batch([ITEM, ITEM], rng(10), operator="token_del")
        assert len(out) == 2

    def test_identity_operator(self):
        assert augment(ITEM, rng(), operator="identity") == ITEM


class TestCutoff:
    def test_token_cutoff_zeroes_rows(self):
        matrix = np.ones((10, 6))
        out = apply_cutoff_to_matrix(matrix, "token", 0.2, rng(0))
        zero_rows = int((out.sum(axis=1) == 0).sum())
        assert zero_rows == 2
        # Untouched rows intact.
        assert (out.sum(axis=1) != 0).sum() == 8

    def test_feature_cutoff_zeroes_columns(self):
        matrix = np.ones((10, 10))
        out = apply_cutoff_to_matrix(matrix, "feature", 0.3, rng(1))
        zero_cols = int((out.sum(axis=0) == 0).sum())
        assert zero_cols == 3

    def test_span_cutoff_contiguous(self):
        matrix = np.ones((10, 4))
        out = apply_cutoff_to_matrix(matrix, "span", 0.3, rng(2))
        zero_rows = np.flatnonzero(out.sum(axis=1) == 0)
        assert len(zero_rows) == 3
        assert (np.diff(zero_rows) == 1).all()

    def test_none_kind_identity(self):
        matrix = np.ones((4, 4))
        out = apply_cutoff_to_matrix(matrix, "none", 0.5, rng(3))
        np.testing.assert_array_equal(out, matrix)

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError):
            apply_cutoff_to_matrix(np.ones((2, 2)), "bogus", 0.1, rng())
        with pytest.raises(ValueError):
            make_cutoff_transform("bogus", 0.1, rng())

    def test_transform_preserves_cls_position(self):
        transform = make_cutoff_transform("token", 0.5, rng(4))
        emb = Tensor(np.ones((2, 8, 4)))
        out = transform(emb, np.ones((2, 8)))
        # Position 0 (CLS) never cut.
        assert (out.data[:, 0, :] == 1.0).all()
        assert (out.data == 0).any()

    def test_transform_none_for_zero_ratio(self):
        assert make_cutoff_transform("token", 0.0, rng()) is None
        assert make_cutoff_transform("none", 0.5, rng()) is None

    def test_transform_batchwise_same_mask(self):
        """The same cutoff must apply to every item in the batch."""
        transform = make_cutoff_transform("feature", 0.25, rng(5))
        emb = Tensor(np.ones((3, 5, 8)))
        out = transform(emb, np.ones((3, 5))).data
        np.testing.assert_array_equal(out[0], out[1])
        np.testing.assert_array_equal(out[1], out[2])

    def test_transform_gradient_flows(self):
        transform = make_cutoff_transform("span", 0.3, rng(6))
        emb = Tensor(np.ones((1, 6, 4)), requires_grad=True)
        out = transform(emb, np.ones((1, 6)))
        out.sum().backward()
        assert emb.grad is not None
        # Gradient zero at cut positions, one elsewhere.
        assert set(np.unique(emb.grad)) <= {0.0, 1.0}


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=5000),
    operator=st.sampled_from(sorted(EM_OPERATORS)),
)
def test_property_operators_preserve_structure(seed, operator):
    """Every operator keeps at least one [COL] marker and returns non-empty
    text with no leaked attribute-name deletions."""
    out = augment(ITEM, np.random.default_rng(seed), operator=operator)
    assert out.strip()
    assert "[COL]" in out
    # [VAL] markers never exceed [COL] markers for EM items.
    assert out.count("[VAL]") <= out.count("[COL]") + 1
