"""Session-API tests for the discovery tasks: join_discovery,
lake_discovery, dedupe, streaming_er — lifecycle, typed unfitted errors,
shard invariance, incremental re-fits, and serving exports."""

import numpy as np
import pytest

from repro.api import (
    DedupeResult,
    JoinDiscoveryResult,
    StreamingERResult,
    SudowoodoConfig,
    SudowoodoSession,
    TaskNotFittedError,
    available_tasks,
    create_task,
)
from repro.data.generators import (
    generate_dirty_duplicates,
    generate_joinable_tables,
    generate_lake,
    mutate_lake,
)
from repro.data.records import serialize_record
from repro.discovery.join import profile_tables
from repro.serve import ServiceFrontend


def discovery_config(**overrides):
    defaults = dict(
        dim=24,
        num_layers=1,
        num_heads=2,
        ffn_dim=48,
        max_seq_len=32,
        pair_max_seq_len=64,
        vocab_size=1200,
        pretrain_epochs=3,
        pretrain_batch_size=8,
        finetune_epochs=6,
        finetune_batch_size=8,
        num_clusters=3,
        corpus_cap=128,
        multiplier=2,
        mlm_warm_start_epochs=0,
        blocking_k=4,
        seed=0,
    )
    defaults.update(overrides)
    return SudowoodoConfig(**defaults)


@pytest.fixture(scope="module")
def joinable():
    return generate_joinable_tables(num_tables=3, rows=20, seed=1)


@pytest.fixture(scope="module")
def dirty():
    return generate_dirty_duplicates(num_entities=12, hardness=0.15, seed=2)


@pytest.fixture(scope="module")
def session(joinable, dirty):
    """One pretrained session shared (read-only fits) by the suite."""
    session = SudowoodoSession(discovery_config())
    corpus = [profile.text for profile in profile_tables(joinable.tables)] + [
        serialize_record(record, dirty.table.schema) for record in dirty.table
    ]
    session.pretrain(corpus)
    return session


class TestRegistrySatellites:
    def test_discovery_tasks_registered(self):
        names = available_tasks()
        for name in (
            "join_discovery",
            "lake_discovery",
            "dedupe",
            "streaming_er",
        ):
            assert name in names

    def test_unknown_task_error_lists_discovery_tasks(self, session):
        with pytest.raises(ValueError, match="join_discovery") as excinfo:
            session.task("no_such_task")
        message = str(excinfo.value)
        assert "dedupe" in message and "streaming_er" in message

    def test_tasks_listing_tracks_fitted_state(self, joinable):
        fresh = SudowoodoSession(discovery_config(pretrain_epochs=1))
        listing = fresh.tasks()
        assert set(listing) == set(available_tasks())
        assert not any(listing.values())
        fresh.pretrain(
            [profile.text for profile in profile_tables(joinable.tables)]
        )
        fresh.task("join_discovery").fit(joinable, k=4)
        listing = fresh.tasks()
        assert listing["join_discovery"] is True
        assert listing["dedupe"] is False

    @pytest.mark.parametrize(
        "name", ["join_discovery", "lake_discovery", "dedupe", "streaming_er"]
    )
    def test_unfitted_operations_raise_typed_error(self, session, name):
        task = create_task(name, session)
        for operation in (task.predict, task.evaluate, task.report):
            with pytest.raises(TaskNotFittedError, match="not fitted"):
                operation()
        with pytest.raises(TaskNotFittedError) as excinfo:
            session.serve(task)
        assert excinfo.value.task == name
        # Still a RuntimeError, so pre-existing handlers keep working.
        assert isinstance(excinfo.value, RuntimeError)


class TestJoinDiscoveryTask:
    @pytest.fixture(scope="class")
    def fitted(self, session, joinable):
        return session.task("join_discovery", fresh=True).fit(joinable, k=5)

    def test_recall_floor(self, fitted):
        metrics = fitted.evaluate()
        assert metrics["recall_at"] >= 0.6

    def test_report_shape(self, fitted, joinable):
        report = fitted.report()
        assert isinstance(report, JoinDiscoveryResult)
        assert report.num_tables == len(joinable.tables)
        assert report.num_columns == joinable.num_columns
        assert report.candidates
        for table, members in report.by_table.items():
            assert all(table in (c.table_a, c.table_b) for c in members)

    def test_rankings_invariant_across_shard_counts(self, session, joinable):
        rankings = []
        for num_shards in (1, 2, 3):
            task = session.task("join_discovery", fresh=True).fit(
                joinable, k=5, num_shards=num_shards
            )
            rankings.append(
                [(c.pair, round(c.score, 12)) for c in task.predict()]
            )
        assert rankings[0] == rankings[1] == rankings[2]

    def test_predict_filters(self, fitted):
        top = fitted.predict(top=3)
        assert len(top) <= 3
        for candidate in fitted.predict(table="table_a"):
            assert "table_a" in (candidate.table_a, candidate.table_b)

    def test_serving_indexes_columns(self, session, fitted):
        service = session.serve(fitted)
        assert service.index_size == len(fitted.corpus_texts())


class TestLakeDiscoveryTask:
    @pytest.fixture(scope="class")
    def lake(self):
        return generate_lake(num_tables=6, rows=14, tables_per_pod=3, seed=4)

    def test_cold_fit_profiles_everything(self, session, lake):
        task = session.task("lake_discovery", fresh=True).fit(lake, k=5)
        metrics = task.evaluate()
        num_columns = lake.num_columns
        assert metrics["profiles_computed"] == num_columns
        assert metrics["profiles_reused"] == 0.0
        assert metrics["index_added"] == num_columns
        assert task.predict(), "expected candidates on a planted lake"

    def test_refit_after_mutation_is_incremental(self, session, lake):
        task = session.task("lake_discovery", fresh=True).fit(lake, k=5)
        mutated, names = mutate_lake(lake.tables, fraction=0.4, seed=6)
        task.fit(mutated, k=5)
        metrics = task.evaluate()
        changed = sum(len(mutated[name].schema) for name in names)
        assert metrics["profiles_computed"] == changed
        assert metrics["index_updated"] == changed
        assert metrics["index_added"] == 0.0
        assert metrics["index_removed"] == 0.0
        assert (
            metrics["profiles_reused"]
            == lake.num_columns - changed
        )

    def test_matches_join_discovery_ranking(self, session, lake):
        # Same encoder, same exact backend: the lake path ranks exactly
        # like the one-shot join_discovery path over the same tables.
        flat = session.task("join_discovery", fresh=True).fit(lake, k=5)
        incremental = session.task("lake_discovery", fresh=True).fit(lake, k=5)
        assert [(c.pair, c.score) for c in incremental.predict()] == [
            (c.pair, c.score) for c in flat.predict()
        ]

    def test_report_shape_and_serving(self, session, lake):
        task = session.task("lake_discovery", fresh=True).fit(lake, k=5)
        report = task.report()
        assert isinstance(report, JoinDiscoveryResult)
        assert report.num_tables == len(lake.tables)
        assert report.num_columns == lake.num_columns
        service = session.serve(task)
        assert service.index_size == len(task.corpus_texts())

    def test_explicit_store_persists_across_task_instances(
        self, session, lake, tmp_path
    ):
        from repro.discovery import ProfileStore

        store = ProfileStore(tmp_path / "cache")
        session.task("lake_discovery", fresh=True).fit(lake, store=store)
        warm = session.task("lake_discovery", fresh=True).fit(lake, store=store)
        metrics = warm.evaluate()
        assert metrics["profiles_computed"] == 0.0
        assert metrics["profiles_reused"] == lake.num_columns


class TestDedupeTask:
    @pytest.fixture(scope="class")
    def fitted(self, session, dirty):
        return session.task("dedupe", fresh=True).fit(
            dirty, label_budget=60, threshold=0.5
        )

    def test_quality_floor(self, fitted):
        metrics = fitted.evaluate()
        assert metrics["f1"] >= 0.6
        assert metrics["reduction_ratio"] > 0.0

    def test_clusters_partition_table(self, fitted, dirty):
        clusters = fitted.predict()
        flat = sorted(i for cluster in clusters for i in cluster)
        assert flat == list(range(len(dirty.table)))
        assert any(len(cluster) == 1 for cluster in clusters)

    def test_canonical_records_one_per_cluster(self, fitted, dirty):
        canonical = fitted.canonical_records()
        assert len(canonical) == len(fitted.predict())
        for record in canonical:
            assert list(record.attributes) == dirty.table.schema

    def test_conflicting_values_resolved_by_policy(self, session, dirty):
        newest = session.task("dedupe", fresh=True, policy="newest").fit(
            dirty, label_budget=60, threshold=0.5
        )
        for cluster, record in zip(newest.predict(), newest.canonical_records()):
            members = [dirty.table[i] for i in cluster]
            stamps = [m.get("updated") for m in members if m.get("name")]
            names = [m.get("name") for m in members if m.get("name")]
            if names:
                # The canonical name belongs to a member with the newest stamp.
                best = max(stamps)
                allowed = {
                    name for name, stamp in zip(names, stamps) if stamp == best
                }
                assert record.get("name") in allowed

    def test_report_shape(self, fitted, dirty):
        report = fitted.report()
        assert isinstance(report, DedupeResult)
        assert report.dataset == dirty.table.name
        assert report.policy == "longest"
        assert report.num_records == len(dirty.table)
        assert report.reduction_ratio == pytest.approx(
            1 - len(report.clusters) / len(dirty.table)
        )

    def test_serving_exports_canonical_view(self, session, fitted):
        service = session.serve(fitted)
        assert service.index_size == len(fitted.canonical_records())

    def test_label_budget_requires_truth(self, session, dirty):
        task = session.task("dedupe", fresh=True)
        with pytest.raises(ValueError, match="label_budget"):
            task.fit(dirty.table, label_budget=10)

    def test_invalid_policy_rejected(self, session):
        with pytest.raises(ValueError, match="policy"):
            session.task("dedupe", fresh=True, policy="wrongest")


class TestStreamingERTask:
    @pytest.fixture(scope="class")
    def fitted(self, session, dirty):
        return session.task("streaming_er", fresh=True).fit(
            dirty, num_events=30, delete_fraction=0.2, seed=3
        )

    def test_feed_is_deterministic(self, session, dirty):
        one = session.task("streaming_er", fresh=True).fit(
            dirty, num_events=30, seed=3
        )
        two = session.task("streaming_er", fresh=True).fit(
            dirty, num_events=30, seed=3
        )
        assert one.events == two.events

    def test_predict_serves_through_frontend(self, fitted):
        stats = fitted.predict(flush_every=4)
        assert stats["events"] == 30
        assert stats["searches_completed"] > 0
        assert stats["qps"] > 0
        assert stats["pending_writes"] == 0.0
        assert stats["staleness_p99_s"] >= 0.0

    def test_deletions_reflected_in_index_size(self, fitted):
        stats = fitted.evaluate()
        assert stats["deletes"] > 0, "feed must delete mid-stream"
        expected = (
            len(fitted.corpus_texts()) + stats["upserts"] - stats["deletes"]
        )
        assert stats["final_index_size"] == expected

    def test_explicit_frontend_and_metrics(self, session, fitted):
        frontend = session.serve(fitted, frontend=True)
        assert isinstance(frontend, ServiceFrontend)
        stats = fitted.predict(frontend=frontend, flush_every=4)
        snapshot = frontend.metrics_snapshot()
        assert "streaming_er.staleness_s" in snapshot["histograms"]
        assert (
            snapshot["gauges"]["streaming_er.pending_writes"] == 0.0
        )
        assert stats["shed"] == 0.0 and stats["expired"] == 0.0

    def test_report_shape(self, fitted):
        report = fitted.report()
        assert isinstance(report, StreamingERResult)
        assert report.num_events == 30
        assert report.upserts + report.deletes + report.searches == 30
        assert "qps" in report.metrics
