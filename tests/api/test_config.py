"""Tests for the namespaced config decomposition and per-task presets."""

import pytest

from repro.api import (
    FinetuneConfig,
    ModelConfig,
    PretrainConfig,
    PseudoLabelConfig,
    RunConfig,
    ServeConfig,
    SudowoodoConfig,
)
from repro.cleaning import cleaning_config
from repro.columns import column_config
from repro.core.config import CONFIG_SECTIONS, TASK_CONFIG_DEFAULTS


class TestSections:
    def test_sections_cover_every_field_once(self):
        from dataclasses import fields

        sectioned = [n for names in CONFIG_SECTIONS.values() for n in names]
        flat = [f.name for f in fields(SudowoodoConfig)]
        assert sorted(sectioned) == sorted(flat)
        assert len(sectioned) == len(set(sectioned))

    def test_section_views_reflect_flat_fields(self):
        config = SudowoodoConfig(dim=24, pretrain_epochs=7, num_shards=3)
        assert isinstance(config.model, ModelConfig)
        assert config.model.dim == 24
        assert isinstance(config.pretrain, PretrainConfig)
        assert config.pretrain.pretrain_epochs == 7
        assert isinstance(config.serve, ServeConfig)
        assert config.serve.num_shards == 3
        assert isinstance(config.finetune, FinetuneConfig)
        assert isinstance(config.pseudo, PseudoLabelConfig)
        assert isinstance(config.run, RunConfig)

    def test_from_parts_composes_sections(self):
        config = SudowoodoConfig.from_parts(
            model=ModelConfig(dim=20),
            serve=ServeConfig(num_shards=4),
            seed=9,
        )
        assert config.dim == 20
        assert config.num_shards == 4
        assert config.seed == 9
        # untouched sections keep defaults
        assert config.pretrain_epochs == SudowoodoConfig().pretrain_epochs

    def test_from_parts_rejects_unknown_override(self):
        with pytest.raises(ValueError, match="unknown config fields"):
            SudowoodoConfig.from_parts(bogus=1)


class TestRoundTrip:
    def test_nested_round_trip(self):
        config = SudowoodoConfig(dim=20, num_shards=2, da_operator="span_del")
        assert SudowoodoConfig.from_dict(config.to_dict()) == config

    def test_flat_round_trip(self):
        config = SudowoodoConfig(dim=20, temperature=0.2)
        assert SudowoodoConfig.from_dict(config.to_dict(nested=False)) == config

    def test_mixed_flat_and_nested(self):
        config = SudowoodoConfig.from_dict(
            {"model": {"dim": 20}, "seed": 5}
        )
        assert config.dim == 20 and config.seed == 5

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="unknown config key"):
            SudowoodoConfig.from_dict({"bogus": 1})

    def test_unknown_field_in_section_rejected(self):
        with pytest.raises(ValueError, match="unknown field"):
            SudowoodoConfig.from_dict({"model": {"num_shards": 2}})

    def test_non_mapping_section_rejected(self):
        with pytest.raises(ValueError, match="must map field names"):
            SudowoodoConfig.from_dict({"model": 3})


class TestForTask:
    def test_clean_preset_matches_legacy_helper(self):
        assert SudowoodoConfig.for_task("clean") == cleaning_config()

    def test_column_preset_matches_legacy_helper(self):
        assert SudowoodoConfig.for_task("column_match") == column_config()

    def test_overrides_win(self):
        config = SudowoodoConfig.for_task("clean", dim=12, da_operator="span_del")
        assert config.dim == 12
        assert config.da_operator == "span_del"
        assert not config.use_pseudo_labeling

    def test_match_preset_is_default(self):
        assert SudowoodoConfig.for_task("match") == SudowoodoConfig()

    def test_unknown_task_lists_valid_names(self):
        with pytest.raises(ValueError, match="valid tasks"):
            SudowoodoConfig.for_task("bogus")

    def test_presets_cover_registered_tasks(self):
        from repro.api import available_tasks

        assert set(available_tasks()) <= set(TASK_CONFIG_DEFAULTS)


class TestValidation:
    def test_rejects_unknown_pooling_listing_options(self):
        with pytest.raises(ValueError, match="cls, mean"):
            SudowoodoConfig(pooling="max").validate()

    def test_rejects_unknown_da_operator_listing_options(self):
        with pytest.raises(ValueError, match="token_del"):
            SudowoodoConfig(da_operator="bogus").validate()

    def test_rejects_unknown_cutoff_kind_listing_options(self):
        with pytest.raises(ValueError, match="feature, none, span, token"):
            SudowoodoConfig(cutoff_kind="bogus").validate()

    def test_auto_operator_is_valid(self):
        SudowoodoConfig(da_operator="auto").validate()

    def test_every_registered_operator_is_valid(self):
        from repro.augment.operators import ALL_OPERATORS

        for name in ALL_OPERATORS:
            SudowoodoConfig(da_operator=name).validate()
