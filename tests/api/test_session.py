"""Tests for SudowoodoSession: shared-encoder reuse, the task registry,
serving exports, and the deprecated driver shims."""

import warnings

import numpy as np
import pytest

from repro.api import (
    MatchResult,
    SessionTask,
    SudowoodoConfig,
    SudowoodoSession,
    available_tasks,
    create_task,
    register_task,
)
from repro.cleaning import SudowoodoCleaner, cleaning_corpus
from repro.columns import ColumnMatchingPipeline
from repro.core import SudowoodoPipeline
from repro.data.generators import (
    generate_column_corpus,
    load_cleaning_dataset,
    load_em_benchmark,
)
from repro.serve import ShardedMatchService


def tiny_config(**overrides):
    defaults = dict(
        dim=16,
        num_layers=1,
        num_heads=2,
        ffn_dim=32,
        max_seq_len=24,
        pair_max_seq_len=40,
        vocab_size=800,
        pretrain_epochs=1,
        pretrain_batch_size=8,
        finetune_epochs=2,
        finetune_batch_size=8,
        num_clusters=3,
        corpus_cap=64,
        multiplier=2,
        mlm_warm_start_epochs=0,
        blocking_k=3,
        seed=0,
    )
    defaults.update(overrides)
    return SudowoodoConfig(**defaults)


@pytest.fixture(scope="module")
def em_dataset():
    return load_em_benchmark("AB", scale=0.02, max_table_size=40)


@pytest.fixture(scope="module")
def column_corpus():
    return generate_column_corpus(60, seed=5)


@pytest.fixture(scope="module")
def session(em_dataset, column_corpus):
    """One pretrained session shared (read-only fits) by the tests."""
    session = SudowoodoSession(tiny_config())
    corpus = em_dataset.all_items() + column_corpus.serialized(max_values=5)
    session.pretrain(corpus)
    return session


class TestSessionLifecycle:
    def test_requires_pretrain_before_state(self):
        fresh = SudowoodoSession(tiny_config())
        assert not fresh.is_pretrained
        with pytest.raises(RuntimeError, match="pretrain"):
            fresh.encoder
        with pytest.raises(RuntimeError, match="pretrain"):
            fresh.store

    def test_pretrain_twice_requires_force(self, session):
        with pytest.raises(RuntimeError, match="force=True"):
            session.pretrain(["[COL] a [VAL] b"])

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            SudowoodoSession(tiny_config(pooling="bogus"))

    def test_task_instances_are_cached(self, session):
        assert session.task("match") is session.task("match")

    def test_cached_task_rejects_new_options_without_fresh(self, session):
        session.task("column_match")
        with pytest.raises(ValueError, match="fresh=True"):
            session.task("column_match", max_values_per_column=3)
        fresh = session.task("column_match", fresh=True, max_values_per_column=3)
        assert fresh.max_values == 3

    def test_unknown_task_lists_registered(self, session):
        with pytest.raises(ValueError, match="registered tasks"):
            session.task("definitely_not_a_task")

    def test_create_task_unknown_name(self, session):
        with pytest.raises(ValueError, match="unknown task"):
            create_task("nope", session)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):

            @register_task("match")
            class Imposter(SessionTask):
                pass


class TestSessionReuse:
    """One pretrain, several tasks, shared representations stay pristine."""

    def test_two_tasks_share_one_pretrain(self, session, em_dataset, column_corpus):
        probe = em_dataset.all_items()[:10]
        before = session.embedding_fingerprint(probe)

        match = session.task("match").fit(em_dataset, label_budget=20)
        after_match = session.embedding_fingerprint(probe)
        assert after_match == before, "match fit mutated shared embeddings"

        columns = session.task(
            "column_match", fresh=True, max_values_per_column=5
        ).fit(column_corpus, k=5, num_labels=60)
        after_columns = session.embedding_fingerprint(probe)
        assert after_columns == before, "column fit mutated shared embeddings"

        # Both tasks are fitted, usable, and report through one shape.
        assert 0.0 <= match.report().f1 <= 1.0
        assert 0.0 <= columns.report().f1 <= 1.0
        assert set(session.fitted_tasks()) >= {"match", "column_match"}

    def test_match_task_report_fields(self, session, em_dataset):
        match = session.task("match")
        if not match.fitted:
            match.fit(em_dataset, label_budget=20)
        report = match.report()
        assert isinstance(report, MatchResult)
        assert report.task == "match"
        assert report.dataset == em_dataset.name
        assert report.num_manual_labels == 20
        assert "finetune" in report.timings

    def test_block_task_no_checkout_needed(self, session, em_dataset):
        block = session.task("block").fit(em_dataset, k=3)
        metrics = block.evaluate()
        assert 0.0 <= metrics["recall"] <= 1.0
        assert metrics["cssr"] > 0.0
        assert len(block.predict()) > 0

    def test_unfitted_task_raises(self, session):
        task = session.task("column_cluster")
        with pytest.raises(RuntimeError, match="not fitted"):
            task.predict()

    def test_corpus_is_encoded_once_across_tasks(self, session, em_dataset):
        """Re-fitting over already-embedded records is pure cache hits."""
        session.task("block", fresh=True).fit(em_dataset, k=3)
        stats_before = session.store.stats()
        session.task("block", fresh=True).fit(em_dataset, k=3)
        stats_after = session.store.stats()
        assert stats_after["misses"] == stats_before["misses"]
        assert stats_after["hits"] > stats_before["hits"]


class TestServe:
    def test_serve_match_task(self, session, em_dataset):
        match = session.task("match")
        if not match.fitted:
            match.fit(em_dataset, label_budget=20)
        service = session.serve("match", num_shards=2)
        assert isinstance(service, ShardedMatchService)
        assert service.num_shards == 2
        assert service.index_size == len(em_dataset.table_b)
        ids, scores = service.search([em_dataset.serialize_b(0)], k=3)
        assert ids.shape == (1, 3)
        # The indexed record retrieves itself first.
        assert service.record_text(int(ids[0, 0])) == em_dataset.serialize_b(0)
        probabilities = service.match_pairs(
            [(em_dataset.serialize_a(0), em_dataset.serialize_b(0))]
        )
        assert probabilities.shape == (1, 2)

    def test_serve_column_task_streams(self, session, column_corpus):
        """Column embeddings get streaming upsert/delete like EM records."""
        task = session.task("column_match")
        if not task.fitted:
            task.fit(column_corpus, k=5, num_labels=60)
        service = session.serve(task)
        assert service.index_size == len(column_corpus)
        texts = task.corpus_texts()
        retired = service.delete_records(texts[:2])
        assert retired.size == 2
        assert service.index_size == len(column_corpus) - 2
        service.upsert_records([texts[0] + " extra"])
        assert service.index_size == len(column_corpus) - 1

    def test_serve_unfitted_task_rejected(self, session):
        with pytest.raises(RuntimeError, match="not fitted"):
            session.serve(session.task("column_cluster"))

    def test_serve_unknown_task_name_rejected(self, session):
        with pytest.raises(ValueError, match="has not been created"):
            session.serve("never_created_task")

    def test_serve_without_task_gives_bare_service(self, session):
        service = session.serve()
        assert isinstance(service, ShardedMatchService)
        assert service.index_size == 0
        assert service.store is session.store


class TestCleanTaskReuse:
    def test_clean_task_on_shared_session(self):
        beers = load_cleaning_dataset("beers", scale=0.03)
        session = SudowoodoSession(tiny_config())
        corpus = cleaning_corpus(beers)
        session.pretrain(corpus[:120])
        probe = corpus[:10]
        before = session.embedding_fingerprint(probe)
        clean = session.task("clean").fit(beers, labeled_rows=12)
        metrics = clean.evaluate()
        assert 0.0 <= metrics["f1"] <= 1.0
        assert session.embedding_fingerprint(probe) == before
        for (row, attribute), candidate in clean.predict().items():
            assert candidate != beers.dirty[row].get(attribute)


class TestDeprecatedShims:
    def test_pipeline_warns_but_works(self, em_dataset):
        with pytest.warns(DeprecationWarning, match="SudowoodoSession"):
            pipeline = SudowoodoPipeline(tiny_config())
        report = pipeline.run(em_dataset, label_budget=20)
        assert 0.0 <= report.f1 <= 1.0

    def test_cleaner_warns(self):
        with pytest.warns(DeprecationWarning, match="SudowoodoSession"):
            SudowoodoCleaner()

    def test_column_pipeline_warns(self):
        with pytest.warns(DeprecationWarning, match="SudowoodoSession"):
            ColumnMatchingPipeline()

    def test_session_path_emits_no_deprecation(self, em_dataset):
        session = SudowoodoSession(tiny_config(seed=3))
        session.pretrain(em_dataset.all_items())
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            session.task("match", fresh=True).fit(em_dataset, label_budget=20)

    def test_legacy_pipeline_matches_session_task_f1(self, em_dataset):
        """The shim and the session path train on identical inputs and
        reach the same test metrics (shared seeds, shared pretrain)."""
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            legacy = SudowoodoPipeline(tiny_config(seed=4))
            legacy.pretrain_on(em_dataset)
            legacy.train_matcher(label_budget=20)
            legacy_metrics = legacy.evaluate("test")

        session = SudowoodoSession(tiny_config(seed=4))
        session.pretrain(em_dataset.all_items())
        task = session.task("match").fit(em_dataset, label_budget=20)
        assert task.evaluate("test") == pytest.approx(legacy_metrics)
