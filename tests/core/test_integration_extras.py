"""Extra integration tests: auto-DA pipeline, concat head, LSH blocking."""

import numpy as np
import pytest

from repro import SudowoodoConfig, SudowoodoPipeline
from repro.data.generators import load_em_benchmark
from repro.text import LSHIndex


def tiny_config(**overrides):
    defaults = dict(
        dim=16,
        num_layers=1,
        num_heads=2,
        ffn_dim=32,
        max_seq_len=24,
        pair_max_seq_len=40,
        vocab_size=600,
        pretrain_epochs=1,
        pretrain_batch_size=8,
        finetune_epochs=2,
        finetune_batch_size=8,
        num_clusters=3,
        corpus_cap=48,
        multiplier=2,
        mlm_warm_start_epochs=0,
        blocking_k=3,
        seed=0,
    )
    defaults.update(overrides)
    return SudowoodoConfig(**defaults)


@pytest.fixture(scope="module")
def dataset():
    return load_em_benchmark("DA", scale=0.02, max_table_size=40)


class TestAutoDAPipeline:
    def test_full_pipeline_with_auto_operator(self, dataset):
        pipeline = SudowoodoPipeline(tiny_config(da_operator="auto"))
        report = pipeline.run(dataset, label_budget=20)
        assert 0.0 <= report.f1 <= 1.0
        assert pipeline.pretrain_result.operator_weights is not None


class TestConcatHeadPipeline:
    def test_pipeline_with_ditto_style_head(self, dataset):
        pipeline = SudowoodoPipeline(tiny_config(seed=1))
        pipeline.pretrain_on(dataset)
        pipeline.train_matcher(label_budget=20, head="concat")
        metrics = pipeline.evaluate("test")
        assert 0.0 <= metrics["f1"] <= 1.0


class TestLSHBlockingIntegration:
    def test_lsh_over_learned_embeddings(self, dataset):
        """LSH retrieval over the blocker's embedding space approximates
        the exact kNN candidates."""
        pipeline = SudowoodoPipeline(tiny_config(seed=2))
        pipeline.pretrain_on(dataset)
        blocker = pipeline.blocker
        index = LSHIndex(
            dim=blocker.vectors_b.shape[1], num_tables=12, num_bits=4, seed=0
        ).build(blocker.vectors_b)
        recall = index.recall_against_exact(blocker.vectors_a[:20], k=3)
        assert recall > 0.5

    def test_lsh_candidates_contain_matches(self, dataset):
        pipeline = SudowoodoPipeline(tiny_config(seed=2))
        pipeline.pretrain_on(dataset)
        blocker = pipeline.blocker
        index = LSHIndex(
            dim=blocker.vectors_b.shape[1], num_tables=16, num_bits=3, seed=1
        ).build(blocker.vectors_b)
        indices, _ = index.query_batch(blocker.vectors_a, k=10)
        candidate_pairs = {
            (a, int(b))
            for a in range(indices.shape[0])
            for b in indices[a]
            if b >= 0
        }
        retained = sum(1 for m in dataset.matches if m in candidate_pairs)
        assert retained / max(1, len(dataset.matches)) > 0.3


class TestPositiveRatioPlumbing:
    def test_pseudo_positive_fraction_shrinks_positives(self, dataset):
        generous = SudowoodoPipeline(tiny_config(pseudo_positive_fraction=1.0))
        generous.pretrain_on(dataset)
        generous.train_matcher(label_budget=20)
        conservative = SudowoodoPipeline(tiny_config(pseudo_positive_fraction=0.3))
        conservative.pretrain_on(dataset)
        conservative.train_matcher(label_budget=20)
        assert len(conservative._pseudo.positives) <= len(generous._pseudo.positives)
