"""Serving-side token cache: embed_items byte-identity, cache sharing
across encoders (clone / blue-green reindex), and encode observability."""

import threading

import numpy as np
import pytest

from repro.core import SudowoodoConfig, SudowoodoEncoder, build_tokenizer
from repro.serve import EmbeddingStore, MetricsRegistry
from repro.train.data import TokenCache

CORPUS = [
    "[COL] name [VAL] instant immersion spanish deluxe [COL] price [VAL] 36.11",
    "[COL] name [VAL] encore software learn spanish [COL] price [VAL] 29.99",
    "[COL] name [VAL] adobe photoshop elements [COL] price [VAL] 89.0",
    "[COL] name [VAL] sibelius instrumental teacher [COL] price [VAL] 159.95",
    "[COL] name [VAL] topics presents streets of london [COL] price [VAL] 12.0",
    "[COL] name [VAL] nova development art explosion [COL] price [VAL] 19.99",
]


def tiny_config(**overrides) -> SudowoodoConfig:
    defaults = dict(
        dim=16,
        num_layers=1,
        num_heads=2,
        ffn_dim=32,
        max_seq_len=24,
        pair_max_seq_len=40,
        vocab_size=300,
        num_clusters=2,
        corpus_cap=16,
        seed=0,
    )
    defaults.update(overrides)
    return SudowoodoConfig(**defaults)


def make_encoder(**overrides) -> SudowoodoEncoder:
    config = tiny_config(**overrides)
    return SudowoodoEncoder(config, build_tokenizer(CORPUS, config))


# ----------------------------------------------------------------------
class TestEmbedItemsCache:
    def test_warm_rows_byte_identical_to_cold(self):
        enc = make_encoder()
        cold = enc.embed_items(CORPUS, batch_size=4, use_token_cache=False)
        first = enc.embed_items(CORPUS, batch_size=4)  # fills the cache
        warm = enc.embed_items(CORPUS, batch_size=4)  # pure hits
        np.testing.assert_array_equal(cold, first)
        np.testing.assert_array_equal(cold, warm)

    def test_stats_progress_miss_then_hit(self):
        enc = make_encoder()
        assert enc.token_cache_stats() == {"hits": 0, "misses": 0, "size": 0}
        enc.embed_items(CORPUS, batch_size=4)
        stats = enc.token_cache_stats()
        assert stats["misses"] == len(CORPUS)
        assert stats["hits"] == 0
        assert stats["size"] == len(CORPUS)
        enc.embed_items(CORPUS, batch_size=4)
        stats = enc.token_cache_stats()
        assert stats["hits"] == len(CORPUS)
        assert stats["misses"] == len(CORPUS)

    def test_cold_path_does_not_touch_cache(self):
        enc = make_encoder()
        enc.embed_items(CORPUS, batch_size=4, use_token_cache=False)
        assert enc.token_cache_stats() == {"hits": 0, "misses": 0, "size": 0}

    def test_empty_corpus(self):
        enc = make_encoder()
        out = enc.embed_items([])
        assert out.shape == (0, enc.config.dim)


class TestEncodeTokensInference:
    def test_restores_training_mode(self):
        enc = make_encoder()
        encoding = enc.tokenizer.encode_batch(
            CORPUS[:2], max_len=enc.config.max_seq_len
        )
        enc.encoder.train()
        enc.encode_tokens_inference(encoding)
        assert enc.encoder.training
        enc.encoder.eval()
        enc.encode_tokens_inference(encoding)
        assert not enc.encoder.training

    def test_matches_embed_items_unnormalized(self):
        enc = make_encoder()
        encoding = enc.tokenizer.encode_batch(
            CORPUS[:3], max_len=enc.config.max_seq_len
        )
        direct = enc.encode_tokens_inference(encoding)
        via_items = enc.embed_items(CORPUS[:3], normalize=False)
        np.testing.assert_array_equal(direct, via_items)


class TestAdoptTokenCache:
    def test_same_vocab_shares_warm_cache(self):
        live = make_encoder()
        live.embed_items(CORPUS, batch_size=4)
        shadow = make_encoder(seed=1)
        assert shadow.adopt_token_cache(live)
        assert shadow.token_cache() is live.token_cache()
        shadow.embed_items(CORPUS, batch_size=4)
        assert shadow.token_cache_stats()["hits"] >= len(CORPUS)

    def test_different_vocab_refuses(self):
        live = make_encoder()
        live.embed_items(CORPUS[:2])
        config = tiny_config()
        other = SudowoodoEncoder(
            config, build_tokenizer(CORPUS[:1], config)
        )
        assert not other.adopt_token_cache(live)
        assert other.token_cache_stats()["size"] == 0

    def test_cold_donor_refuses(self):
        live = make_encoder()
        shadow = make_encoder()
        assert not shadow.adopt_token_cache(live)


class TestClone:
    def test_clone_starts_cold_and_can_adopt(self):
        enc = make_encoder()
        enc.embed_items(CORPUS, batch_size=4)
        clone = enc.clone()
        assert clone.token_cache_stats()["size"] == 0
        # The original keeps its warm cache through the clone.
        assert enc.token_cache_stats()["size"] == len(CORPUS)
        assert clone.adopt_token_cache(enc)
        np.testing.assert_array_equal(
            enc.embed_items(CORPUS[:2]), clone.embed_items(CORPUS[:2])
        )

    def test_clone_weights_independent(self):
        enc = make_encoder()
        clone = enc.clone()
        clone.projector.weight.data += 1.0
        assert not np.array_equal(
            enc.projector.weight.data, clone.projector.weight.data
        )


# ----------------------------------------------------------------------
class TestTokenCacheUnit:
    def test_capacity_bounds_lru(self):
        enc = make_encoder()
        cache = TokenCache(enc.tokenizer, capacity=2)
        for text in CORPUS[:3]:
            cache.encode(text, 24)
        assert len(cache) == 2
        # Oldest entry evicted: re-encoding it is a miss.
        cache.encode(CORPUS[0], 24)
        assert cache.misses == 4

    def test_max_len_part_of_key(self):
        enc = make_encoder()
        cache = TokenCache(enc.tokenizer)
        short = cache.encode(CORPUS[0], 16)
        long = cache.encode(CORPUS[0], 24)
        assert cache.misses == 2
        assert short.token_ids.shape == (16,)
        assert long.token_ids.shape == (24,)

    @pytest.mark.stress
    def test_thread_safe_under_concurrent_encoders(self):
        enc = make_encoder()
        cache = enc.token_cache()
        errors = []

        def worker():
            try:
                for _ in range(5):
                    matrix = enc.embed_items(CORPUS, batch_size=4)
                    assert matrix.shape == (len(CORPUS), enc.config.dim)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(cache) == len(CORPUS)


# ----------------------------------------------------------------------
class TestStoreEncodeMetrics:
    def test_encode_seconds_and_texts_recorded(self):
        enc = make_encoder()
        store = EmbeddingStore(enc)
        metrics = MetricsRegistry()
        store.bind_metrics(metrics)
        store.embed_batch(CORPUS[:4])
        snapshot = metrics.snapshot()
        assert snapshot["counters"]["store.encode_texts"] == 4
        assert snapshot["histograms"]["store.encode_seconds"]["count"] == 1
        # Warm pass: all hits, nothing re-encoded.
        store.embed_batch(CORPUS[:4])
        snapshot = metrics.snapshot()
        assert snapshot["counters"]["store.encode_texts"] == 4
