"""Tests for NT-Xent, Barlow Twins, and the combined objective."""

import numpy as np
import pytest

from repro.core import barlow_twins_loss, combined_loss, nt_xent_loss
from repro.nn import Tensor, autograd_dtype, numerical_gradient


@pytest.fixture(autouse=True)
def _float64():
    with autograd_dtype(np.float64):
        yield


def random_views(n=6, d=8, seed=0, noise=0.0):
    rng = np.random.default_rng(seed)
    base = rng.normal(size=(n, d))
    aug = base + noise * rng.normal(size=(n, d))
    return Tensor(base, requires_grad=True), Tensor(aug, requires_grad=True)


class TestNTXent:
    def test_perfectly_aligned_views_give_low_loss(self):
        z, _ = random_views(noise=0.0)
        aligned = nt_xent_loss(z, Tensor(z.data.copy()), temperature=0.07).item()
        z2, shuffled = random_views(seed=1)
        mismatched = nt_xent_loss(
            z2, Tensor(np.roll(z2.data, 1, axis=0)), temperature=0.07
        ).item()
        assert aligned < mismatched

    def test_loss_positive(self):
        z1, z2 = random_views(noise=0.5, seed=2)
        assert nt_xent_loss(z1, z2).item() > 0

    def test_temperature_effect(self):
        """Lower temperature sharpens: aligned views get lower loss."""
        z, _ = random_views(noise=0.0, seed=3)
        same = Tensor(z.data.copy())
        sharp = nt_xent_loss(z, same, temperature=0.05).item()
        smooth = nt_xent_loss(z, same, temperature=1.0).item()
        assert sharp < smooth

    def test_gradients_flow_to_both_views(self):
        z1, z2 = random_views(noise=0.3, seed=4)
        nt_xent_loss(z1, z2).backward()
        assert z1.grad is not None and np.abs(z1.grad).sum() > 0
        assert z2.grad is not None and np.abs(z2.grad).sum() > 0

    def test_gradient_check(self):
        rng = np.random.default_rng(5)
        fixed = Tensor(rng.normal(size=(4, 5)))
        z = Tensor(rng.normal(size=(4, 5)), requires_grad=True)

        def f(t):
            return nt_xent_loss(t, fixed, temperature=0.2)

        f(z).backward()
        analytic = z.grad.copy()
        z.grad = None
        numeric = numerical_gradient(f, z)
        np.testing.assert_allclose(analytic, numeric, atol=1e-5)

    def test_batch_size_validation(self):
        z1 = Tensor(np.ones((1, 4)))
        with pytest.raises(ValueError):
            nt_xent_loss(z1, z1)
        with pytest.raises(ValueError):
            nt_xent_loss(Tensor(np.ones((3, 4))), Tensor(np.ones((2, 4))))

    def test_scale_invariance_from_normalization(self):
        z1, z2 = random_views(noise=0.2, seed=6)
        loss_a = nt_xent_loss(z1, z2).item()
        loss_b = nt_xent_loss(
            Tensor(z1.data * 7.0), Tensor(z2.data * 0.1)
        ).item()
        assert loss_a == pytest.approx(loss_b, abs=1e-8)


class TestBarlowTwins:
    def test_identical_decorrelated_views_near_zero(self):
        """Orthogonal, identical features -> cross-correlation = identity."""
        rng = np.random.default_rng(0)
        raw = rng.normal(size=(16, 8))
        centered = raw - raw.mean(axis=0, keepdims=True)
        # Left singular vectors of a column-centered matrix are orthonormal
        # AND mean-zero, so their correlation matrix is exactly identity.
        u, _, _ = np.linalg.svd(centered, full_matrices=False)
        z = Tensor(u)
        loss = barlow_twins_loss(z, Tensor(u.copy()), lambda_bt=1.0).item()
        assert loss < 1e-10

    def test_redundant_features_penalized(self):
        rng = np.random.default_rng(1)
        column = rng.normal(size=(10, 1))
        redundant = Tensor(np.repeat(column, 4, axis=1))
        unique = Tensor(rng.normal(size=(10, 4)))
        loss_redundant = barlow_twins_loss(
            redundant, Tensor(redundant.data.copy()), lambda_bt=0.1
        ).item()
        loss_unique = barlow_twins_loss(
            unique, Tensor(unique.data.copy()), lambda_bt=0.1
        ).item()
        assert loss_redundant > loss_unique

    def test_lambda_scales_offdiagonal_term(self):
        z1, z2 = random_views(n=10, noise=0.4, seed=2)
        small = barlow_twins_loss(z1, z2, lambda_bt=1e-4).item()
        large = barlow_twins_loss(z1, z2, lambda_bt=1.0).item()
        assert large > small

    def test_gradient_check(self):
        rng = np.random.default_rng(3)
        fixed = Tensor(rng.normal(size=(6, 4)))
        z = Tensor(rng.normal(size=(6, 4)), requires_grad=True)

        def f(t):
            return barlow_twins_loss(t, fixed, lambda_bt=0.01)

        f(z).backward()
        analytic = z.grad.copy()
        z.grad = None
        numeric = numerical_gradient(f, z)
        np.testing.assert_allclose(analytic, numeric, atol=1e-4)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            barlow_twins_loss(Tensor(np.ones((4, 3))), Tensor(np.ones((4, 2))))
        with pytest.raises(ValueError):
            barlow_twins_loss(Tensor(np.ones((1, 3))), Tensor(np.ones((1, 3))))


class TestCombinedLoss:
    def test_alpha_zero_equals_ntxent(self):
        z1, z2 = random_views(noise=0.3, seed=4)
        combined = combined_loss(z1, z2, alpha_bt=0.0).item()
        contrast = nt_xent_loss(z1, z2).item()
        assert combined == pytest.approx(contrast)

    def test_alpha_blends(self):
        z1, z2 = random_views(n=10, noise=0.3, seed=5)
        contrast = nt_xent_loss(z1, z2, temperature=0.07).item()
        barlow = barlow_twins_loss(z1, z2).item()
        blended = combined_loss(z1, z2, alpha_bt=0.25).item()
        assert blended == pytest.approx(0.75 * contrast + 0.25 * barlow, rel=1e-6)

    def test_backward_works(self):
        z1, z2 = random_views(noise=0.3, seed=6)
        combined_loss(z1, z2, alpha_bt=0.1).backward()
        assert z1.grad is not None
