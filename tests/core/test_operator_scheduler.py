"""Tests for adaptive DA-operator scheduling (da_operator="auto")."""

import numpy as np
import pytest

from repro.core.pretrain import OperatorScheduler, pretrain
from repro.core import SudowoodoConfig
from repro.data.generators import load_em_benchmark


class TestOperatorScheduler:
    def test_requires_operators(self):
        with pytest.raises(ValueError):
            OperatorScheduler([], np.random.default_rng(0))

    def test_weights_form_distribution(self):
        scheduler = OperatorScheduler(["a", "b", "c"], np.random.default_rng(0))
        weights = scheduler.weights()
        assert sum(weights.values()) == pytest.approx(1.0)
        assert all(w > 0 for w in weights.values())

    def test_initial_weights_uniform(self):
        scheduler = OperatorScheduler(["a", "b"], np.random.default_rng(0))
        weights = scheduler.weights()
        assert weights["a"] == pytest.approx(weights["b"])

    def test_harder_operator_gains_weight(self):
        scheduler = OperatorScheduler(["easy", "hard"], np.random.default_rng(0))
        # "hard" consistently produces above-average loss.
        for _ in range(20):
            scheduler.update("easy", 1.0)
            scheduler.update("hard", 2.0)
        weights = scheduler.weights()
        assert weights["hard"] > weights["easy"]

    def test_sample_returns_known_operator(self):
        scheduler = OperatorScheduler(["a", "b"], np.random.default_rng(1))
        for _ in range(10):
            assert scheduler.sample() in ("a", "b")


class TestAutoOperatorPretrain:
    def test_pretrain_with_auto_operator(self):
        dataset = load_em_benchmark("AB", scale=0.02, max_table_size=30)
        config = SudowoodoConfig(
            dim=16,
            num_layers=1,
            num_heads=2,
            ffn_dim=32,
            max_seq_len=24,
            pair_max_seq_len=40,
            vocab_size=500,
            pretrain_epochs=1,
            pretrain_batch_size=8,
            num_clusters=3,
            corpus_cap=32,
            mlm_warm_start_epochs=0,
            da_operator="auto",
            seed=0,
        )
        result = pretrain(dataset.all_items(), config)
        assert result.operator_weights is not None
        assert sum(result.operator_weights.values()) == pytest.approx(1.0)
        assert len(result.epoch_losses) == 1

    def test_fixed_operator_has_no_weights(self):
        dataset = load_em_benchmark("AB", scale=0.02, max_table_size=30)
        config = SudowoodoConfig(
            dim=16,
            num_layers=1,
            num_heads=2,
            ffn_dim=32,
            max_seq_len=24,
            vocab_size=500,
            pretrain_epochs=1,
            pretrain_batch_size=8,
            num_clusters=3,
            corpus_cap=32,
            mlm_warm_start_epochs=0,
            seed=0,
        )
        result = pretrain(dataset.all_items(), config)
        assert result.operator_weights is None
