"""Tests for clustering-based negative sampling and pseudo-labeling."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    ClusterBatcher,
    estimate_positive_ratio,
    generate_pseudo_labels,
    hill_climb_threshold,
    similarity_of_pairs,
)


def two_topic_corpus(n_per_topic=20):
    products = [
        f"[COL] title [VAL] wireless keyboard model kb{i} deluxe"
        for i in range(n_per_topic)
    ]
    papers = [
        f"[COL] title [VAL] neural databases learning paper p{i} optimization"
        for i in range(n_per_topic)
    ]
    return products + papers


class TestClusterBatcher:
    def test_batches_partition_corpus(self):
        corpus = two_topic_corpus()
        batcher = ClusterBatcher(corpus, 2, np.random.default_rng(0))
        batches = batcher.batches(8, np.random.default_rng(1))
        seen = sorted(int(i) for batch in batches for i in batch)
        # Every item appears at most once; nearly all are covered (a
        # trailing batch of size 1 is dropped).
        assert len(seen) == len(set(seen))
        assert len(seen) >= len(corpus) - 1

    def test_clusters_separate_topics(self):
        corpus = two_topic_corpus()
        batcher = ClusterBatcher(corpus, 2, np.random.default_rng(0))
        batches = batcher.batches(10, np.random.default_rng(2))
        # With 2 well-separated topics and batch size 10, most batches
        # should be topic-pure.
        pure = 0
        for batch in batches:
            topics = {0 if int(i) < 20 else 1 for i in batch}
            pure += len(topics) == 1
        assert pure >= len(batches) - 1

    def test_uniform_batches_cover_all(self):
        corpus = two_topic_corpus()
        batcher = ClusterBatcher(corpus, 2, np.random.default_rng(0))
        batches = batcher.uniform_batches(8, np.random.default_rng(3))
        seen = sorted(int(i) for batch in batches for i in batch)
        assert seen == list(range(len(corpus)))

    def test_single_cluster_equals_uniform_semantics(self):
        corpus = two_topic_corpus(10)
        batcher = ClusterBatcher(corpus, 1, np.random.default_rng(0))
        batches = batcher.batches(8, np.random.default_rng(4))
        assert sum(len(b) for b in batches) >= len(corpus) - 1

    def test_empty_corpus_rejected(self):
        with pytest.raises(ValueError):
            ClusterBatcher([], 2, np.random.default_rng(0))

    def test_no_single_item_batches(self):
        corpus = two_topic_corpus(8)  # 16 items
        batcher = ClusterBatcher(corpus, 3, np.random.default_rng(0))
        for batch in batcher.batches(5, np.random.default_rng(5)):
            assert len(batch) >= 2

    def test_false_negative_rate_increases_with_clusters(self):
        """More clusters concentrate similar items -> more matches co-batched
        (Figure 8, row 3)."""
        rng = np.random.default_rng(0)
        # Corpus of near-duplicate pairs: 2i and 2i+1 match.
        corpus = []
        matches = []
        for i in range(30):
            base = f"product alpha{i} beta{i} gamma{i} delta"
            corpus.append(f"[COL] t [VAL] {base} extra")
            corpus.append(f"[COL] t [VAL] {base} variant")
            matches.append((2 * i, 2 * i + 1))
        few = ClusterBatcher(corpus, 2, np.random.default_rng(1))
        many = ClusterBatcher(corpus, 12, np.random.default_rng(1))
        fnr_few = few.false_negative_rate(matches, 8, np.random.default_rng(2))
        fnr_many = many.false_negative_rate(matches, 8, np.random.default_rng(2))
        assert fnr_many >= fnr_few

    def test_false_negative_rate_empty_matches(self):
        corpus = two_topic_corpus(5)
        batcher = ClusterBatcher(corpus, 2, np.random.default_rng(0))
        assert batcher.false_negative_rate([], 4, np.random.default_rng(0)) == 0.0


class TestPseudoLabels:
    def unit_vectors(self, angles):
        return np.stack([np.cos(angles), np.sin(angles)], axis=1)

    def test_positive_ratio_respected(self):
        rng = np.random.default_rng(0)
        vectors = rng.normal(size=(50, 8))
        vectors /= np.linalg.norm(vectors, axis=1, keepdims=True)
        pairs = [(i, (i + 1) % 50) for i in range(50)]
        labels = generate_pseudo_labels(
            vectors, vectors, pairs, num_labels=20, positive_ratio=0.25
        )
        assert len(labels.positives) == 5
        assert len(labels.negatives) == 15

    def test_most_similar_become_positive(self):
        # a0 aligned with b0; a1 orthogonal to b1.
        vectors_a = self.unit_vectors(np.array([0.0, 0.0]))
        vectors_b = self.unit_vectors(np.array([0.05, np.pi / 2]))
        pairs = [(0, 0), (1, 1)]
        labels = generate_pseudo_labels(
            vectors_a, vectors_b, pairs, num_labels=2, positive_ratio=0.5
        )
        assert labels.positives == [(0, 0)]
        assert labels.negatives == [(1, 1)]

    def test_thresholds_ordered(self):
        rng = np.random.default_rng(1)
        vectors = rng.normal(size=(40, 4))
        vectors /= np.linalg.norm(vectors, axis=1, keepdims=True)
        pairs = [(i, j) for i in range(20) for j in (0, 5, 10)]
        labels = generate_pseudo_labels(
            vectors, vectors, pairs, num_labels=30, positive_ratio=0.1
        )
        assert labels.theta_pos >= labels.theta_neg

    def test_exclusion(self):
        vectors = np.eye(4)
        pairs = [(0, 0), (1, 1), (2, 2), (3, 3)]
        labels = generate_pseudo_labels(
            vectors,
            vectors,
            pairs,
            num_labels=4,
            positive_ratio=0.5,
            exclude={(0, 0), (1, 1)},
        )
        used = set(labels.positives) | set(labels.negatives)
        assert (0, 0) not in used and (1, 1) not in used

    def test_quality_against_ground_truth(self):
        vectors_a = self.unit_vectors(np.array([0.0, 1.0]))
        vectors_b = self.unit_vectors(np.array([0.02, 1.0 + np.pi / 2]))
        pairs = [(0, 0), (1, 1)]
        labels = generate_pseudo_labels(
            vectors_a, vectors_b, pairs, num_labels=2, positive_ratio=0.5
        )
        quality = labels.quality({(0, 0)})
        assert quality["tpr"] == 1.0 and quality["tnr"] == 1.0

    def test_invalid_ratio(self):
        with pytest.raises(ValueError):
            generate_pseudo_labels(np.eye(2), np.eye(2), [(0, 0)], 1, 1.5)

    def test_empty_candidates(self):
        labels = generate_pseudo_labels(np.eye(2), np.eye(2), [], 5, 0.1)
        assert len(labels) == 0

    def test_similarity_of_pairs(self):
        vectors = np.eye(3)
        sims = similarity_of_pairs(vectors, vectors, [(0, 0), (0, 1)])
        np.testing.assert_allclose(sims, [1.0, 0.0])


class TestPositiveRatioEstimate:
    def test_snaps_to_menu(self):
        assert estimate_positive_ratio([1, 0, 0, 0, 0, 0, 0, 0, 0, 0]) == 0.10
        assert estimate_positive_ratio([1, 1, 0, 0, 0, 0, 0, 0]) == 0.25

    def test_empty_defaults(self):
        assert estimate_positive_ratio([]) == 0.10


class TestHillClimb:
    def test_finds_peak_of_concave_function(self):
        best, score = hill_climb_threshold(
            lambda t: -((t - 0.6) ** 2), initial=0.3, step=0.1, trials=20
        )
        assert best == pytest.approx(0.6, abs=0.05)

    def test_respects_trial_budget(self):
        calls = []

        def score(t):
            calls.append(t)
            return -abs(t)

        hill_climb_threshold(score, initial=0.5, step=0.1, trials=5)
        assert len(calls) <= 5

    def test_clips_to_bounds(self):
        best, _ = hill_climb_threshold(
            lambda t: t, initial=0.95, step=0.2, trials=8, bounds=(-1, 1)
        )
        assert best <= 1.0

    def test_invalid_trials(self):
        with pytest.raises(ValueError):
            hill_climb_threshold(lambda t: t, 0.0, trials=0)


@settings(max_examples=20, deadline=None)
@given(
    num_labels=st.integers(min_value=2, max_value=30),
    ratio=st.floats(min_value=0.05, max_value=0.5),
    seed=st.integers(min_value=0, max_value=500),
)
def test_property_pseudo_label_counts(num_labels, ratio, seed):
    rng = np.random.default_rng(seed)
    vectors = rng.normal(size=(40, 6))
    vectors /= np.linalg.norm(vectors, axis=1, keepdims=True)
    pairs = [(int(i), int(j)) for i, j in rng.integers(0, 40, size=(60, 2))]
    pairs = list(dict.fromkeys(pairs))
    labels = generate_pseudo_labels(
        vectors, vectors, pairs, num_labels=num_labels, positive_ratio=ratio
    )
    assert len(labels) <= max(num_labels, 2)
    assert len(labels.positives) >= 1
    # No pair is labeled both positive and negative.
    assert not (set(labels.positives) & set(labels.negatives))
