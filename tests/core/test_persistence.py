"""Tests for encoder checkpointing (weights + tokenizer + config) and
the serving layer's vector caches (fingerprint-keyed embedding files)."""

import numpy as np
import pytest

from repro.core import (
    SudowoodoConfig,
    load_encoder,
    pretrain,
    save_encoder,
)
from repro.core.persistence import load_vector_cache, save_vector_cache
from repro.data.generators import load_em_benchmark


@pytest.fixture(scope="module")
def trained():
    dataset = load_em_benchmark("AB", scale=0.02, max_table_size=30)
    config = SudowoodoConfig(
        dim=16,
        num_layers=1,
        num_heads=2,
        ffn_dim=32,
        max_seq_len=24,
        pair_max_seq_len=40,
        vocab_size=500,
        pretrain_epochs=1,
        pretrain_batch_size=8,
        num_clusters=3,
        corpus_cap=32,
        mlm_warm_start_epochs=0,
        seed=0,
    )
    result = pretrain(dataset.all_items(), config)
    return dataset, result.encoder


class TestPersistence:
    def test_roundtrip_embeddings_identical(self, trained, tmp_path):
        dataset, encoder = trained
        path = save_encoder(encoder, tmp_path / "encoder.npz")
        restored = load_encoder(path)
        items = dataset.all_items()[:8]
        np.testing.assert_allclose(
            encoder.embed_items(items), restored.embed_items(items), atol=1e-6
        )

    def test_roundtrip_preserves_config(self, trained, tmp_path):
        _, encoder = trained
        path = save_encoder(encoder, tmp_path / "encoder.npz")
        restored = load_encoder(path)
        assert restored.config == encoder.config

    def test_roundtrip_preserves_vocab(self, trained, tmp_path):
        _, encoder = trained
        path = save_encoder(encoder, tmp_path / "encoder.npz")
        restored = load_encoder(path)
        assert restored.tokenizer.vocab == encoder.tokenizer.vocab

    def test_suffixless_path(self, trained, tmp_path):
        _, encoder = trained
        save_encoder(encoder, tmp_path / "ckpt")
        restored = load_encoder(tmp_path / "ckpt")
        assert restored.config.dim == encoder.config.dim

    def test_bad_format_rejected(self, trained, tmp_path):
        _, encoder = trained
        from repro.nn import save_checkpoint

        path = save_checkpoint(
            encoder, tmp_path / "bad.npz", metadata={"format_version": 99}
        )
        with pytest.raises(ValueError):
            load_encoder(tmp_path / "bad.npz")

    def test_corrupt_checkpoint_raises_clear_error(self, tmp_path):
        path = tmp_path / "garbage.npz"
        path.write_bytes(b"\x00\x01 not an archive at all")
        with pytest.raises(ValueError, match="corrupt or unreadable"):
            load_encoder(path)

    def test_truncated_checkpoint_raises_clear_error(self, trained, tmp_path):
        _, encoder = trained
        path = save_encoder(encoder, tmp_path / "full.npz")
        data = path.read_bytes()
        truncated = tmp_path / "cut.npz"
        truncated.write_bytes(data[: len(data) // 2])
        with pytest.raises(ValueError, match="corrupt"):
            load_encoder(truncated)


# ----------------------------------------------------------------------
class TestVectorCache:
    """save_vector_cache / load_vector_cache round-trips and corruption."""

    def make_cache(self):
        rng = np.random.default_rng(0)
        fingerprints = [f"fp-{i:02d}" for i in range(6)]
        vectors = rng.normal(size=(6, 8))
        return fingerprints, vectors

    def test_roundtrip_identical(self, tmp_path):
        fingerprints, vectors = self.make_cache()
        path = save_vector_cache(
            tmp_path / "cache.npz", fingerprints, vectors, metadata={"dim": 8}
        )
        loaded_keys, loaded_vectors, metadata = load_vector_cache(path)
        assert loaded_keys == fingerprints
        np.testing.assert_array_equal(loaded_vectors, vectors)
        assert metadata["dim"] == 8
        assert "ids" not in metadata  # none were saved

    def test_roundtrip_with_ids(self, tmp_path):
        fingerprints, vectors = self.make_cache()
        ids = [10, 11, 12, 13, 14, 15]
        path = save_vector_cache(
            tmp_path / "cache.npz", fingerprints, vectors, ids=ids
        )
        _, _, metadata = load_vector_cache(path)
        assert metadata["ids"] == ids

    def test_empty_cache_roundtrip(self, tmp_path):
        path = save_vector_cache(tmp_path / "empty.npz", [], np.zeros((0, 4)))
        keys, vectors, _ = load_vector_cache(path)
        assert keys == [] and vectors.shape == (0, 4)

    def test_shape_mismatch_rejected_on_save(self, tmp_path):
        with pytest.raises(ValueError):
            save_vector_cache(tmp_path / "bad.npz", ["a", "b"], np.zeros((3, 4)))
        with pytest.raises(ValueError):
            save_vector_cache(
                tmp_path / "bad.npz", ["a"], np.zeros((1, 4)), ids=[1, 2]
            )

    def test_garbage_file_raises_clear_error(self, tmp_path):
        path = tmp_path / "garbage.npz"
        path.write_bytes(b"not a cache")
        with pytest.raises(ValueError, match="corrupt or unreadable"):
            load_vector_cache(path)

    def test_truncated_file_raises_clear_error(self, tmp_path):
        fingerprints, vectors = self.make_cache()
        path = save_vector_cache(tmp_path / "full.npz", fingerprints, vectors)
        data = path.read_bytes()
        truncated = tmp_path / "cut.npz"
        truncated.write_bytes(data[: len(data) // 2])
        with pytest.raises(ValueError, match="corrupt"):
            load_vector_cache(truncated)

    def test_wrong_format_version_rejected(self, tmp_path):
        import json

        path = tmp_path / "v99.npz"
        np.savez(
            path,
            fingerprints=np.asarray(["a"], dtype=np.str_),
            vectors=np.zeros((1, 2)),
            __metadata__=np.frombuffer(
                json.dumps({"format_version": 99}).encode(), dtype=np.uint8
            ),
        )
        with pytest.raises(ValueError, match="unsupported vector cache format"):
            load_vector_cache(path)

    def test_missing_arrays_raise_clear_error(self, tmp_path):
        import json

        path = tmp_path / "partial.npz"
        np.savez(
            path,
            __metadata__=np.frombuffer(
                json.dumps({"format_version": 1}).encode(), dtype=np.uint8
            ),
        )
        with pytest.raises(ValueError, match="corrupt"):
            load_vector_cache(path)
