"""Tests for encoder checkpointing (weights + tokenizer + config)."""

import numpy as np
import pytest

from repro.core import (
    SudowoodoConfig,
    load_encoder,
    pretrain,
    save_encoder,
)
from repro.data.generators import load_em_benchmark


@pytest.fixture(scope="module")
def trained():
    dataset = load_em_benchmark("AB", scale=0.02, max_table_size=30)
    config = SudowoodoConfig(
        dim=16,
        num_layers=1,
        num_heads=2,
        ffn_dim=32,
        max_seq_len=24,
        pair_max_seq_len=40,
        vocab_size=500,
        pretrain_epochs=1,
        pretrain_batch_size=8,
        num_clusters=3,
        corpus_cap=32,
        mlm_warm_start_epochs=0,
        seed=0,
    )
    result = pretrain(dataset.all_items(), config)
    return dataset, result.encoder


class TestPersistence:
    def test_roundtrip_embeddings_identical(self, trained, tmp_path):
        dataset, encoder = trained
        path = save_encoder(encoder, tmp_path / "encoder.npz")
        restored = load_encoder(path)
        items = dataset.all_items()[:8]
        np.testing.assert_allclose(
            encoder.embed_items(items), restored.embed_items(items), atol=1e-6
        )

    def test_roundtrip_preserves_config(self, trained, tmp_path):
        _, encoder = trained
        path = save_encoder(encoder, tmp_path / "encoder.npz")
        restored = load_encoder(path)
        assert restored.config == encoder.config

    def test_roundtrip_preserves_vocab(self, trained, tmp_path):
        _, encoder = trained
        path = save_encoder(encoder, tmp_path / "encoder.npz")
        restored = load_encoder(path)
        assert restored.tokenizer.vocab == encoder.tokenizer.vocab

    def test_suffixless_path(self, trained, tmp_path):
        _, encoder = trained
        save_encoder(encoder, tmp_path / "ckpt")
        restored = load_encoder(tmp_path / "ckpt")
        assert restored.config.dim == encoder.config.dim

    def test_bad_format_rejected(self, trained, tmp_path):
        _, encoder = trained
        from repro.nn import save_checkpoint

        path = save_checkpoint(
            encoder, tmp_path / "bad.npz", metadata={"format_version": 99}
        )
        with pytest.raises(ValueError):
            load_encoder(tmp_path / "bad.npz")
