"""Integration tests: encoder, blocker, matcher, pipeline on tiny configs."""

import numpy as np
import pytest

from repro import SudowoodoConfig, SudowoodoPipeline
from repro.core import (
    Blocker,
    PairwiseMatcher,
    SudowoodoEncoder,
    TrainingExample,
    build_tokenizer,
    evaluate_f1,
    f1_from_predictions,
    finetune_matcher,
    prepare_corpus,
    pretrain,
)
from repro.data.generators import load_em_benchmark


def tiny_config(**overrides):
    defaults = dict(
        dim=16,
        num_layers=1,
        num_heads=2,
        ffn_dim=32,
        max_seq_len=24,
        pair_max_seq_len=40,
        vocab_size=600,
        pretrain_epochs=1,
        pretrain_batch_size=8,
        finetune_epochs=2,
        finetune_batch_size=8,
        num_clusters=3,
        corpus_cap=48,
        multiplier=2,
        mlm_warm_start_epochs=0,
        blocking_k=3,
        seed=0,
    )
    defaults.update(overrides)
    return SudowoodoConfig(**defaults)


@pytest.fixture(scope="module")
def dataset():
    return load_em_benchmark("AB", scale=0.02, max_table_size=40)


@pytest.fixture(scope="module")
def pretrained(dataset):
    config = tiny_config()
    result = pretrain(dataset.all_items(), config)
    return config, result


class TestConfig:
    def test_validation_catches_bad_values(self):
        with pytest.raises(ValueError):
            SudowoodoConfig(temperature=0.0).validate()
        with pytest.raises(ValueError):
            SudowoodoConfig(positive_ratio=1.5).validate()
        with pytest.raises(ValueError):
            SudowoodoConfig(multiplier=0).validate()
        with pytest.raises(ValueError):
            SudowoodoConfig(cutoff_kind="bogus").validate()

    def test_ablated_flips_flags(self):
        config = SudowoodoConfig().ablated(use_cutoff=False)
        assert not config.use_cutoff
        assert config.use_pseudo_labeling

    def test_as_simclr_disables_all(self):
        config = SudowoodoConfig().as_simclr()
        assert not any(
            [
                config.use_pseudo_labeling,
                config.use_cluster_sampling,
                config.use_cutoff,
                config.use_barlow_twins,
            ]
        )


class TestPrepareCorpus:
    def test_downsamples_to_cap(self):
        config = tiny_config(corpus_cap=10)
        corpus = prepare_corpus([f"item {i}" for i in range(50)], config,
                                np.random.default_rng(0))
        assert len(corpus) == 10

    def test_upsamples_to_cap(self):
        config = tiny_config(corpus_cap=20)
        corpus = prepare_corpus(["a", "b", "c"], config, np.random.default_rng(0))
        assert len(corpus) == 20
        assert set(corpus) <= {"a", "b", "c"}

    def test_no_cap_passthrough(self):
        config = tiny_config(corpus_cap=None)
        items = ["a", "b"]
        assert prepare_corpus(items, config, np.random.default_rng(0)) == items


class TestPretrain:
    def test_produces_encoder_and_losses(self, pretrained):
        _, result = pretrained
        assert result.encoder is not None
        assert len(result.epoch_losses) == 1
        assert np.isfinite(result.epoch_losses[0])

    def test_loss_decreases_over_epochs(self, dataset):
        config = tiny_config(pretrain_epochs=3, seed=1)
        result = pretrain(dataset.all_items(), config)
        assert result.epoch_losses[-1] < result.epoch_losses[0]

    def test_embeddings_unit_norm(self, pretrained, dataset):
        _, result = pretrained
        vectors = result.encoder.embed_items(dataset.all_items()[:10])
        np.testing.assert_allclose(
            np.linalg.norm(vectors, axis=1), 1.0, atol=1e-6
        )

    def test_augmented_views_closer_than_random(self, pretrained, dataset):
        """The contrastive property: an item is closer to its augmented view
        than to a random other item, on average."""
        from repro.augment import augment

        _, result = pretrained
        rng = np.random.default_rng(0)
        items = dataset.all_items()[:20]
        views = [augment(t, rng, "token_del") for t in items]
        base = result.encoder.embed_items(items)
        augv = result.encoder.embed_items(views)
        aligned = np.einsum("ij,ij->i", base, augv).mean()
        shuffled = np.einsum("ij,ij->i", base, np.roll(augv, 3, axis=0)).mean()
        assert aligned > shuffled


class TestBlocker:
    def test_candidate_counts(self, pretrained, dataset):
        _, result = pretrained
        blocker = Blocker(result.encoder, dataset)
        candidates = blocker.candidates(k=3)
        assert len(candidates) == len(dataset.table_a) * 3
        assert candidates.cssr() == pytest.approx(
            3 / len(dataset.table_b), rel=1e-9
        )

    def test_recall_monotone_in_k(self, pretrained, dataset):
        _, result = pretrained
        blocker = Blocker(result.encoder, dataset)
        recalls = [
            blocker.candidates(k).recall(dataset.matches) for k in (1, 5, 15)
        ]
        assert recalls[0] <= recalls[1] <= recalls[2]

    def test_curve_rows(self, pretrained, dataset):
        _, result = pretrained
        blocker = Blocker(result.encoder, dataset)
        rows = blocker.recall_cssr_curve([1, 2])
        assert [r["k"] for r in rows] == [1, 2]
        assert all(0 <= r["recall"] <= 1 for r in rows)

    def test_first_k_beating_recall(self, pretrained, dataset):
        _, result = pretrained
        blocker = Blocker(result.encoder, dataset)
        candidate_set = blocker.first_k_beating_recall(0.01, max_k=20)
        assert candidate_set is not None
        assert candidate_set.recall(dataset.matches) >= 0.01

    def test_unreachable_recall_returns_none(self, pretrained, dataset):
        _, result = pretrained
        blocker = Blocker(result.encoder, dataset)
        assert blocker.first_k_beating_recall(1.01, max_k=2) is None


class TestMatcher:
    def test_forward_shapes(self, pretrained):
        config, result = pretrained
        matcher = PairwiseMatcher(result.encoder)
        logits = matcher.forward([("[COL] t [VAL] a", "[COL] t [VAL] b")] * 3)
        assert logits.shape == (3, 2)

    def test_concat_head(self, pretrained):
        _, result = pretrained
        matcher = PairwiseMatcher(result.encoder, head="concat")
        logits = matcher.forward([("[COL] t [VAL] a", "[COL] t [VAL] b")] * 2)
        assert logits.shape == (2, 2)

    def test_unknown_head_rejected(self, pretrained):
        _, result = pretrained
        with pytest.raises(ValueError):
            PairwiseMatcher(result.encoder, head="bogus")

    def test_predict_proba_rows_sum_to_one(self, pretrained):
        _, result = pretrained
        matcher = PairwiseMatcher(result.encoder)
        probs = matcher.predict_proba([("[COL] t [VAL] a", "[COL] t [VAL] a")] * 2)
        np.testing.assert_allclose(probs.sum(axis=1), 1.0, atol=1e-6)

    def test_finetune_learns_simple_rule(self, pretrained, dataset):
        """The matcher should learn 'same item = match' from a few examples
        built from in-vocabulary dataset items."""
        config, result = pretrained
        matcher = PairwiseMatcher(result.encoder)
        items = dataset.all_items()[:12]
        examples = []
        for i, item in enumerate(items):
            examples.append(TrainingExample(item, item, 1, 1.0))
            examples.append(
                TrainingExample(item, items[(i + 3) % len(items)], 0, 1.0)
            )
        finetune_matcher(matcher, examples, examples, config, fixed_steps=40)
        metrics = evaluate_f1(
            matcher,
            [(e.left, e.right) for e in examples],
            [e.label for e in examples],
        )
        assert metrics["f1"] > 0.8

    def test_finetune_requires_examples(self, pretrained):
        config, result = pretrained
        matcher = PairwiseMatcher(result.encoder)
        with pytest.raises(ValueError):
            finetune_matcher(matcher, [], [], config)


class TestF1Computation:
    def test_perfect(self):
        m = f1_from_predictions(np.array([1, 0, 1]), np.array([1, 0, 1]))
        assert m["f1"] == 1.0

    def test_all_negative_prediction(self):
        m = f1_from_predictions(np.array([1, 0]), np.array([0, 0]))
        assert m["f1"] == 0.0 and m["precision"] == 0.0

    def test_known_values(self):
        labels = np.array([1, 1, 0, 0])
        preds = np.array([1, 0, 1, 0])
        m = f1_from_predictions(labels, preds)
        assert m["precision"] == 0.5 and m["recall"] == 0.5 and m["f1"] == 0.5


class TestPipeline:
    def test_run_produces_report(self, dataset):
        pipeline = SudowoodoPipeline(tiny_config())
        report = pipeline.run(dataset, label_budget=30)
        assert report.dataset == "AB"
        assert 0.0 <= report.f1 <= 1.0
        assert report.num_manual_labels == 30
        assert report.num_pseudo_labels > 0
        assert "pretrain" in report.timings

    def test_unsupervised_mode(self, dataset):
        pipeline = SudowoodoPipeline(tiny_config(seed=2))
        pipeline.pretrain_on(dataset)
        pipeline.train_matcher(label_budget=0)
        metrics = pipeline.evaluate("test")
        assert 0.0 <= metrics["f1"] <= 1.0

    def test_requires_pretrain_first(self):
        pipeline = SudowoodoPipeline(tiny_config())
        with pytest.raises(RuntimeError):
            pipeline.block()
        with pytest.raises(RuntimeError):
            pipeline.train_matcher(10)
        with pytest.raises(RuntimeError):
            pipeline.evaluate()

    def test_no_labels_no_pl_rejected(self, dataset):
        config = tiny_config(use_pseudo_labeling=False)
        pipeline = SudowoodoPipeline(config)
        pipeline.pretrain_on(dataset)
        with pytest.raises(RuntimeError):
            pipeline.train_matcher(label_budget=0)

    def test_pseudo_quality_available(self, dataset):
        pipeline = SudowoodoPipeline(tiny_config(seed=3))
        pipeline.pretrain_on(dataset)
        pipeline.train_matcher(label_budget=20)
        quality = pipeline.pseudo_label_quality()
        assert set(quality) == {"tpr", "tnr"}

    def test_class_balance_weights_applied(self, dataset):
        pipeline = SudowoodoPipeline(tiny_config())
        pipeline.pretrain_on(dataset)
        train, _ = pipeline.build_training_set(30)
        pos_weights = {e.weight for e in train if e.label == 1}
        neg_weights = {e.weight for e in train if e.label == 0}
        assert max(pos_weights) > max(neg_weights)
