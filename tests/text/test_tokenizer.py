"""Tests for the tokenizer and serialization encodings."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.text import (
    CLS,
    COL,
    PAD,
    SEP,
    SPECIAL_TOKENS,
    VAL,
    Tokenizer,
    word_tokenize,
)


class TestWordTokenize:
    def test_lowercases(self):
        assert word_tokenize("Instant IMMERSION") == ["instant", "immersion"]

    def test_preserves_special_tokens(self):
        tokens = word_tokenize("[COL] title [VAL] spanish 2.0")
        assert tokens == ["[COL]", "title", "[VAL]", "spanish", "2.0"]

    def test_decimal_numbers_stay_whole(self):
        assert word_tokenize("price 36.11") == ["price", "36.11"]

    def test_punctuation_split(self):
        assert word_tokenize("4th-6th") == ["4th", "-", "6th"]

    def test_empty(self):
        assert word_tokenize("") == []

    def test_markers_without_surrounding_whitespace_stay_whole(self):
        # Regression: markers glued to their neighbours used to shred into
        # "[", "col", "]" garbage tokens.
        assert word_tokenize("[COL]name[VAL]3") == ["[COL]", "name", "[VAL]", "3"]

    def test_adjacent_markers(self):
        assert word_tokenize("[COL][VAL]x") == ["[COL]", "[VAL]", "x"]

    def test_marker_mid_word(self):
        assert word_tokenize("foo[SEP]bar") == ["foo", "[SEP]", "bar"]

    def test_marker_case_sensitive(self):
        # Only the canonical uppercase spelling is a special token; a
        # lowercase look-alike tokenizes as ordinary text.
        assert word_tokenize("[col] x") == ["[", "col", "]", "x"]

    def test_glued_markers_match_spaced_serialization(self):
        spaced = word_tokenize("[COL] name [VAL] 3 [COL] price [VAL] 4.5")
        glued = word_tokenize("[COL]name[VAL]3 [COL]price[VAL]4.5")
        assert glued == spaced


def make_tokenizer():
    corpus = [
        "[COL] title [VAL] instant immersion spanish deluxe 2.0",
        "[COL] title [VAL] adventure workshop 4th-6th grade",
        "[COL] price [VAL] 36.11",
    ]
    return Tokenizer.fit(corpus, vocab_size=100)


class TestTokenizer:
    def test_special_tokens_first(self):
        tok = make_tokenizer()
        for i, token in enumerate(SPECIAL_TOKENS):
            assert tok.vocab[token] == i

    def test_encode_has_cls_and_sep(self):
        tok = make_tokenizer()
        enc = tok.encode("instant spanish", max_len=8)
        assert enc.token_ids[0] == tok.cls_id
        assert enc.token_ids[len(enc) - 1] == tok.sep_id

    def test_encode_pads_to_max_len(self):
        tok = make_tokenizer()
        enc = tok.encode("instant", max_len=10)
        assert enc.token_ids.shape == (10,)
        assert enc.attention_mask.sum() == 3  # CLS + token + SEP
        assert (enc.token_ids[3:] == tok.pad_id).all()

    def test_encode_truncates(self):
        tok = make_tokenizer()
        enc = tok.encode("instant immersion spanish deluxe adventure", max_len=4)
        assert len(enc) == 4
        assert enc.token_ids[-1] == tok.sep_id

    def test_unknown_tokens_map_to_unk(self):
        tok = make_tokenizer()
        enc = tok.encode("zzzzz", max_len=5)
        assert enc.token_ids[1] == tok.unk_id

    def test_encode_pair_segments(self):
        tok = make_tokenizer()
        enc = tok.encode_pair("instant spanish", "adventure grade", max_len=16)
        # Segment 0 covers CLS + left + first SEP; segment 1 the rest.
        sep_positions = np.flatnonzero(enc.token_ids == tok.sep_id)
        assert len(sep_positions) == 2
        first_sep = sep_positions[0]
        assert (enc.segment_ids[: first_sep + 1] == 0).all()
        active = enc.attention_mask == 1
        assert (enc.segment_ids[first_sep + 1 :][active[first_sep + 1 :]] == 1).all()

    def test_encode_pair_truncation_keeps_both_sides(self):
        tok = make_tokenizer()
        left = "instant immersion spanish deluxe instant immersion spanish"
        right = "adventure workshop grade adventure workshop grade"
        enc = tok.encode_pair(left, right, max_len=12)
        assert len(enc) == 12
        assert (enc.segment_ids[enc.attention_mask == 1] == 1).sum() >= 3

    def test_encode_batch_shapes(self):
        tok = make_tokenizer()
        enc = tok.encode_batch(["instant", "spanish deluxe"], max_len=6)
        assert enc.token_ids.shape == (2, 6)
        assert enc.attention_mask.shape == (2, 6)

    def test_decode_roundtrip(self):
        tok = make_tokenizer()
        enc = tok.encode("instant spanish", max_len=8)
        assert tok.decode(enc.token_ids) == "[CLS] instant spanish [SEP]"

    def test_vocab_size_cap(self):
        tok = Tokenizer.fit(["a b c d e f g h"], vocab_size=10)
        assert tok.vocab_size == 10

    def test_min_count_filters(self):
        tok = Tokenizer.fit(["rare common common"], vocab_size=100, min_count=2)
        assert "common" in tok.vocab
        assert "rare" not in tok.vocab

    def test_rejects_bad_vocab_order(self):
        with pytest.raises(ValueError):
            Tokenizer({"x": 0})


@settings(max_examples=30, deadline=None)
@given(
    text=st.text(
        alphabet=st.characters(whitelist_categories=("Ll", "Nd"), max_codepoint=127),
        max_size=40,
    ),
    max_len=st.integers(min_value=4, max_value=32),
)
def test_property_encoding_invariants(text, max_len):
    tok = make_tokenizer()
    enc = tok.encode(text, max_len=max_len)
    assert enc.token_ids.shape == (max_len,)
    # Attention mask is a prefix of ones.
    active = int(enc.attention_mask.sum())
    assert (enc.attention_mask[:active] == 1).all()
    assert (enc.attention_mask[active:] == 0).all()
    # All padding positions hold pad_id.
    assert (enc.token_ids[active:] == tok.pad_id).all()
    # Starts with CLS, last active token is SEP.
    assert enc.token_ids[0] == tok.cls_id
    assert enc.token_ids[active - 1] == tok.sep_id
