"""Tests for TF-IDF, k-means, similarity measures, and the MLM warm start."""

import importlib

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import TransformerConfig, TransformerEncoder
from repro.text import (
    MLMConfig,
    TfidfVectorizer,
    Tokenizer,
    assign_clusters,
    cosine,
    cosine_matrix,
    jaccard,
    kmeans,
    levenshtein,
    minibatch_kmeans,
    mlm_warm_start,
    overlap_coefficient,
    top_k_cosine,
)


class TestTfidf:
    DOCS = [
        "apple banana apple",
        "banana cherry",
        "apple cherry durian",
        "durian durian durian",
    ]

    def test_shapes(self):
        matrix = TfidfVectorizer().fit_transform(self.DOCS)
        assert matrix.shape[0] == 4
        assert matrix.shape[1] == 4  # apple banana cherry durian

    def test_rows_l2_normalized(self):
        matrix = TfidfVectorizer().fit_transform(self.DOCS)
        np.testing.assert_allclose(np.linalg.norm(matrix, axis=1), 1.0, atol=1e-9)

    def test_rare_terms_weighted_higher(self):
        vec = TfidfVectorizer(sublinear_tf=False)
        vec.fit(self.DOCS)
        # "banana" appears in 2 docs, "durian" in 2 docs, "apple" in 2;
        # add a unique term.
        vec2 = TfidfVectorizer(sublinear_tf=False)
        vec2.fit(self.DOCS + ["unique"])
        assert vec2.idf[vec2.vocabulary["unique"]] > vec2.idf[vec2.vocabulary["apple"]]

    def test_similar_docs_high_cosine(self):
        matrix = TfidfVectorizer().fit_transform(self.DOCS)
        sims = matrix @ matrix.T
        assert sims[0, 1] > sims[0, 3]  # doc0 shares banana with doc1, nothing with doc3

    def test_max_features(self):
        vec = TfidfVectorizer(max_features=2)
        vec.fit(self.DOCS)
        assert vec.num_features == 2

    def test_min_df(self):
        vec = TfidfVectorizer(min_df=2)
        vec.fit(["one two", "two three", "three four"])
        assert "one" not in vec.vocabulary
        assert "two" in vec.vocabulary

    def test_transform_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            TfidfVectorizer().transform(["x"])

    def test_sparse_output(self):
        matrix = TfidfVectorizer().fit_transform(self.DOCS, dense=False)
        assert matrix.shape == (4, 4)
        assert hasattr(matrix, "toarray")

    def test_empty_document_row_is_zero(self):
        vec = TfidfVectorizer().fit(self.DOCS)
        matrix = vec.transform([""])
        np.testing.assert_allclose(matrix, 0.0)


class TestKMeans:
    def blobs(self, seed=0):
        rng = np.random.default_rng(seed)
        a = rng.normal(loc=0.0, scale=0.1, size=(20, 2))
        b = rng.normal(loc=5.0, scale=0.1, size=(20, 2))
        c = rng.normal(loc=(0.0, 5.0), scale=0.1, size=(20, 2))
        return np.vstack([a, b, c])

    def test_recovers_blobs(self):
        features = self.blobs()
        result = kmeans(features, 3, np.random.default_rng(1))
        # Each true blob maps to exactly one cluster label.
        for block in range(3):
            labels = result.labels[block * 20 : (block + 1) * 20]
            assert len(set(labels.tolist())) == 1

    def test_clusters_partition_items(self):
        features = self.blobs()
        result = kmeans(features, 3, np.random.default_rng(2))
        all_members = np.concatenate(result.clusters())
        assert sorted(all_members.tolist()) == list(range(60))

    def test_k_capped_at_n(self):
        features = np.eye(3)
        result = kmeans(features, 10, np.random.default_rng(0))
        assert result.centers.shape[0] == 3

    def test_empty_input_raises(self):
        with pytest.raises(ValueError):
            kmeans(np.empty((0, 2)), 2, np.random.default_rng(0))

    def test_deterministic_given_rng_seed(self):
        features = self.blobs()
        r1 = kmeans(features, 3, np.random.default_rng(7))
        r2 = kmeans(features, 3, np.random.default_rng(7))
        np.testing.assert_array_equal(r1.labels, r2.labels)

    def test_inertia_decreases_with_more_clusters(self):
        features = self.blobs()
        i2 = kmeans(features, 2, np.random.default_rng(3)).inertia
        i6 = kmeans(features, 6, np.random.default_rng(3)).inertia
        assert i6 <= i2

    def test_multiple_empty_clusters_reseed_to_distinct_points(self, monkeypatch):
        # Regression: force every init center onto the same point so two
        # clusters go empty in the first iteration.  The reseed must give
        # each empty cluster its *own* farthest point — the old code
        # recomputed argmax from stale distances and parked every empty
        # cluster on one duplicate center.
        kmeans_module = importlib.import_module("repro.text.kmeans")

        features = np.array(
            [[0.0, 0.0], [10.0, 0.0], [0.0, 10.0], [10.0, 10.0], [5.0, 20.0]]
        )
        monkeypatch.setattr(
            kmeans_module,
            "_kmeans_pp_init",
            lambda feats, k, rng: np.vstack([feats[0]] * k),
        )
        result = kmeans_module.kmeans(
            features, 3, np.random.default_rng(0), max_iterations=1
        )
        assert np.unique(result.centers, axis=0).shape[0] == 3

    def test_inertia_increase_is_not_convergence(self, monkeypatch):
        # Regression: script an inertia *increase* at iteration 2 (as a
        # reseed can cause).  The old check treated any improvement
        # < tolerance — including a negative one — as converged and
        # stopped at iteration 2; the fix keeps iterating.
        kmeans_module = importlib.import_module("repro.text.kmeans")

        original = kmeans_module._squared_distances
        calls = {"count": 0}

        def scripted(features, centers):
            calls["count"] += 1
            factor = 10.0 if calls["count"] == 2 else 1.0
            return original(features, centers) * factor

        monkeypatch.setattr(kmeans_module, "_squared_distances", scripted)
        result = kmeans_module.kmeans(
            self.blobs(), 3, np.random.default_rng(1), max_iterations=10
        )
        assert result.iterations > 2


class TestAssignClusters:
    def test_matches_brute_force(self):
        rng = np.random.default_rng(0)
        features = rng.normal(size=(50, 4))
        centers = rng.normal(size=(6, 4))
        labels, costs = assign_clusters(features, centers)
        expected = ((features[:, None, :] - centers[None]) ** 2).sum(axis=2)
        np.testing.assert_array_equal(labels, expected.argmin(axis=1))
        np.testing.assert_allclose(costs, expected.min(axis=1), atol=1e-9)

    def test_empty_features(self):
        labels, costs = assign_clusters(np.empty((0, 3)), np.eye(3))
        assert labels.shape == (0,)
        assert costs.shape == (0,)

    def test_empty_centers_raises(self):
        with pytest.raises(ValueError):
            assign_clusters(np.eye(3), np.empty((0, 3)))


class TestMinibatchKMeans:
    def test_recovers_blobs_on_large_corpus(self):
        rng = np.random.default_rng(0)
        centers = np.array([[0.0, 0.0], [8.0, 0.0], [0.0, 8.0]])
        features = np.vstack(
            [rng.normal(loc=c, scale=0.1, size=(400, 2)) for c in centers]
        )
        result = minibatch_kmeans(
            features, 3, np.random.default_rng(1), batch_size=128
        )
        for block in range(3):
            labels = result.labels[block * 400 : (block + 1) * 400]
            assert len(set(labels.tolist())) == 1

    def test_deterministic_given_rng_seed(self):
        rng = np.random.default_rng(4)
        features = rng.normal(size=(2000, 3))
        r1 = minibatch_kmeans(features, 5, np.random.default_rng(7), batch_size=256)
        r2 = minibatch_kmeans(features, 5, np.random.default_rng(7), batch_size=256)
        np.testing.assert_array_equal(r1.labels, r2.labels)

    def test_small_corpus_falls_back_to_exact(self):
        features = np.random.default_rng(2).normal(size=(40, 2))
        mb = minibatch_kmeans(features, 3, np.random.default_rng(5), batch_size=100)
        exact = kmeans(features, 3, np.random.default_rng(5))
        np.testing.assert_array_equal(mb.labels, exact.labels)

    def test_empty_input_raises(self):
        with pytest.raises(ValueError):
            minibatch_kmeans(np.empty((0, 2)), 2, np.random.default_rng(0))


class TestSimilarity:
    def test_jaccard_identical(self):
        assert jaccard("a b c", "a b c") == 1.0

    def test_jaccard_disjoint(self):
        assert jaccard("a b", "c d") == 0.0

    def test_jaccard_partial(self):
        assert jaccard("a b", "b c") == pytest.approx(1 / 3)

    def test_overlap_coefficient(self):
        assert overlap_coefficient("a b", "b") == 1.0

    def test_cosine_bounds(self):
        assert cosine(np.array([1.0, 0.0]), np.array([0.0, 1.0])) == 0.0
        assert cosine(np.array([2.0, 0.0]), np.array([1.0, 0.0])) == pytest.approx(1.0)

    def test_cosine_zero_vector(self):
        assert cosine(np.zeros(3), np.ones(3)) == 0.0

    def test_levenshtein_basic(self):
        assert levenshtein("kitten", "sitting") == 3
        assert levenshtein("", "abc") == 3
        assert levenshtein("same", "same") == 0

    def test_levenshtein_cap(self):
        assert levenshtein("aaaa", "bbbb", cap=2) == 3  # cap+1 signals "exceeds"

    def test_top_k_cosine_orders_descending(self):
        corpus = np.array([[1.0, 0], [0, 1.0], [0.9, 0.1]])
        queries = np.array([[1.0, 0.0]])
        indices, scores = top_k_cosine(queries, corpus, k=3)
        assert indices[0, 0] == 0
        assert (np.diff(scores[0]) <= 1e-12).all()

    def test_top_k_capped(self):
        corpus = np.eye(2)
        indices, _ = top_k_cosine(np.eye(2), corpus, k=10)
        assert indices.shape == (2, 2)

    def test_top_k_rejects_bad_k(self):
        with pytest.raises(ValueError):
            top_k_cosine(np.eye(2), np.eye(2), k=0)


@settings(max_examples=30, deadline=None)
@given(
    left=st.lists(st.sampled_from("abcdef"), max_size=8),
    right=st.lists(st.sampled_from("abcdef"), max_size=8),
)
def test_property_jaccard_symmetric_bounded(left, right):
    a, b = " ".join(left), " ".join(right)
    value = jaccard(a, b)
    assert 0.0 <= value <= 1.0
    assert value == jaccard(b, a)


@settings(max_examples=30, deadline=None)
@given(
    left=st.text(alphabet="abc", max_size=6),
    right=st.text(alphabet="abc", max_size=6),
)
def test_property_levenshtein_triangle_via_empty(left, right):
    # d(a,b) <= len(a) + len(b) and symmetric.
    d = levenshtein(left, right)
    assert d == levenshtein(right, left)
    assert d <= len(left) + len(right)


class TestMLMWarmStart:
    def test_loss_decreases(self):
        corpus = [
            "[COL] title [VAL] instant immersion spanish deluxe",
            "[COL] title [VAL] adventure workshop grade seven",
            "[COL] price [VAL] 36.11",
            "[COL] title [VAL] spanish deluxe immersion pack",
        ] * 4
        tok = Tokenizer.fit(corpus, vocab_size=60)
        enc = TransformerEncoder(
            TransformerConfig(
                vocab_size=tok.vocab_size,
                dim=16,
                num_layers=1,
                num_heads=2,
                ffn_dim=32,
                max_seq_len=16,
                dropout=0.0,
                seed=0,
            )
        )
        result = mlm_warm_start(
            enc, tok, corpus, MLMConfig(epochs=3, batch_size=8, max_seq_len=16, seed=0)
        )
        assert len(result.losses) == 3
        assert result.losses[-1] < result.losses[0]
