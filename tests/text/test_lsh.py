"""Tests for the LSH approximate nearest-neighbour index."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.text import LSHIndex


def unit_vectors(n, dim, seed=0):
    rng = np.random.default_rng(seed)
    vectors = rng.normal(size=(n, dim))
    return vectors / np.linalg.norm(vectors, axis=1, keepdims=True)


class TestLSHIndex:
    def test_query_before_build_raises(self):
        with pytest.raises(RuntimeError):
            LSHIndex(dim=4).query(np.ones(4), 1)

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            LSHIndex(dim=4).build(np.ones((3, 5)))
        with pytest.raises(ValueError):
            LSHIndex(dim=4, num_tables=0)

    def test_exact_self_retrieval(self):
        vectors = unit_vectors(50, 16)
        index = LSHIndex(dim=16, num_tables=6, num_bits=8).build(vectors)
        indices, scores = index.query(vectors[7], k=1)
        assert indices[0] == 7
        assert scores[0] == pytest.approx(1.0, abs=1e-9)

    def test_high_recall_against_exact(self):
        vectors = unit_vectors(200, 24, seed=1)
        index = LSHIndex(dim=24, num_tables=12, num_bits=4, seed=2).build(vectors)
        recall = index.recall_against_exact(vectors[:40], k=5)
        assert recall > 0.7

    def test_more_tables_more_recall(self):
        vectors = unit_vectors(200, 24, seed=3)
        small = LSHIndex(dim=24, num_tables=2, num_bits=12, seed=4).build(vectors)
        large = LSHIndex(dim=24, num_tables=16, num_bits=12, seed=4).build(vectors)
        queries = vectors[:30]
        assert large.recall_against_exact(queries, 5) >= small.recall_against_exact(
            queries, 5
        )

    def test_query_batch_shapes_and_padding(self):
        vectors = unit_vectors(20, 8, seed=5)
        index = LSHIndex(dim=8, num_tables=4, num_bits=6).build(vectors)
        indices, scores = index.query_batch(vectors[:3], k=4)
        assert indices.shape == (3, 4)
        assert scores.shape == (3, 4)
        # Padding slots (if any) are -1 / -inf.
        mask = indices == -1
        assert (scores[mask] == -np.inf).all()

    def test_scores_sorted_descending(self):
        vectors = unit_vectors(60, 12, seed=6)
        index = LSHIndex(dim=12, num_tables=8, num_bits=6).build(vectors)
        _, scores = index.query(vectors[0], k=5)
        assert (np.diff(scores) <= 1e-12).all()

    def test_deterministic_given_seed(self):
        vectors = unit_vectors(40, 10, seed=7)
        a = LSHIndex(dim=10, seed=11).build(vectors)
        b = LSHIndex(dim=10, seed=11).build(vectors)
        ia, _ = a.query(vectors[3], k=3)
        ib, _ = b.query(vectors[3], k=3)
        np.testing.assert_array_equal(ia, ib)


class TestLSHIndexMutability:
    def test_add_matches_fresh_build(self):
        """Incrementally hashed rows land in the same buckets a fresh
        build would put them in — queries agree exactly."""
        vectors = unit_vectors(60, 12, seed=8)
        incremental = LSHIndex(dim=12, num_tables=8, num_bits=6, seed=0)
        incremental.build(vectors[:40])
        slots = incremental.add(vectors[40:])
        np.testing.assert_array_equal(slots, np.arange(40, 60))
        fresh = LSHIndex(dim=12, num_tables=8, num_bits=6, seed=0).build(vectors)
        for query in vectors[:10]:
            ia, _ = incremental.query(query, k=5)
            ib, _ = fresh.query(query, k=5)
            np.testing.assert_array_equal(np.sort(ia), np.sort(ib))

    def test_remove_patches_buckets(self):
        vectors = unit_vectors(50, 16, seed=9)
        index = LSHIndex(dim=16, num_tables=6, num_bits=4, seed=0).build(vectors)
        index.remove([0, 7])
        assert index.num_alive == 48
        indices, _ = index.query_batch(vectors[:10], k=5)
        returned = set(int(i) for i in indices.ravel() if i >= 0)
        assert 0 not in returned and 7 not in returned
        with pytest.raises(KeyError):
            index.remove([7])  # already tombstoned

    def test_compact_returns_slot_mapping(self):
        vectors = unit_vectors(30, 8, seed=10)
        index = LSHIndex(dim=8, num_tables=4, num_bits=4, seed=0).build(vectors)
        index.remove([1, 3, 5])
        survivors = index.compact()
        np.testing.assert_array_equal(
            survivors, np.asarray([0, 2, 4] + list(range(6, 30)))
        )
        assert index.num_alive == index.num_slots == 27

    def test_recall_diagnostic_ignores_tombstones(self):
        """Regression: the exact reference must exclude removed rows, or
        a perfect index scores spuriously low recall after churn."""
        vectors = unit_vectors(80, 12, seed=11)
        index = LSHIndex(dim=12, num_tables=48, num_bits=3, seed=0).build(vectors)
        index.remove(np.arange(0, 40).tolist())
        recall = index.recall_against_exact(vectors[40:50], k=5)
        assert recall >= 0.95


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=500))
def test_property_lsh_returns_valid_indices(seed):
    vectors = unit_vectors(30, 8, seed=seed)
    index = LSHIndex(dim=8, num_tables=4, num_bits=5, seed=seed).build(vectors)
    indices, _ = index.query(vectors[0], k=5)
    assert ((indices >= 0) & (indices < 30)).all()
    assert len(set(indices.tolist())) == len(indices)
