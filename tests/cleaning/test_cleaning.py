"""Tests for candidate generation, the Sudowoodo cleaner, and baselines."""

import numpy as np
import pytest

from repro.cleaning import (
    BaranCorrector,
    CandidateGenerator,
    FormatTool,
    RahaDetector,
    SudowoodoCleaner,
    TypoTool,
    ValueFrequencyTool,
    cleaning_config,
    run_perfect_ed_baran,
    run_raha_baran,
)
from repro.data.generators import load_cleaning_dataset


@pytest.fixture(scope="module")
def beers():
    return load_cleaning_dataset("beers", scale=0.03)


@pytest.fixture(scope="module")
def generator(beers):
    return CandidateGenerator().fit(beers)


class TestTools:
    def test_frequency_tool_fills_missing(self, beers):
        tool = ValueFrequencyTool(top=3).fit(beers)
        proposals = tool.candidates(0, "style", "")
        assert 1 <= len(proposals) <= 3

    def test_frequency_tool_skips_filled(self, beers):
        tool = ValueFrequencyTool().fit(beers)
        assert tool.candidates(0, "style", "lager") == []

    def test_typo_tool_proposes_frequent_neighbor(self, beers):
        tool = TypoTool().fit(beers)
        proposals = tool.candidates(0, "state", "xx")
        # Either nothing or near-matches; never the input itself.
        assert "xx" not in proposals

    def test_typo_tool_requires_higher_frequency(self, beers):
        tool = TypoTool().fit(beers)
        common_state = beers.dirty.column_values("state")[0]
        # A value as frequent as itself is never "corrected" to a peer
        # with equal or lower frequency.
        proposals = tool.candidates(0, "state", common_state)
        counts = {}
        for v in beers.dirty.column_values("state"):
            counts[v] = counts.get(v, 0) + 1
        for proposal in proposals:
            assert counts[proposal] > counts.get(common_state, 0)

    def test_format_tool_percent(self):
        tool = FormatTool()
        assert "0.085" in tool.candidates(0, "abv", "8.5%")

    def test_format_tool_commas(self):
        tool = FormatTool()
        assert "25000" in tool.candidates(0, "salary", "25,000")

    def test_format_tool_ounce(self):
        tool = FormatTool()
        assert "16" in tool.candidates(0, "ounces", "16.0 ounce")

    def test_format_tool_uppercase(self):
        tool = FormatTool()
        assert "lager" in tool.candidates(0, "style", "LAGER")

    def test_dependency_tool_implies_from_determinant(self, beers, generator):
        # Find a VAD error cell and check the implied value is proposed.
        for (row, attribute), etype in beers.error_types.items():
            if etype == "VAD":
                truth = beers.ground_truth(row, attribute)
                proposals = generator.candidates(row, attribute)
                assert truth in proposals
                break


class TestCandidateGenerator:
    def test_requires_fit(self):
        with pytest.raises(RuntimeError):
            CandidateGenerator().candidates(0, "style")

    def test_original_value_included(self, beers, generator):
        value = beers.dirty[0].get("style")
        assert value in generator.candidates(0, "style")

    def test_stats_fields(self, generator):
        stats = generator.stats()
        assert 0.0 <= stats.coverage <= 1.0
        assert stats.mean_candidates >= 1.0

    def test_coverage_reasonable(self, generator):
        # The tool bank recovers well over half of injected errors.
        assert generator.stats().coverage > 0.5

    def test_cache_consistency(self, beers, generator):
        first = generator.candidates(1, "city")
        second = generator.candidates(1, "city")
        assert first == second
        assert first is not second  # caller-safe copies


class TestRahaDetector:
    def test_detects_majority_of_errors(self, beers):
        metrics = RahaDetector().evaluate(beers)
        assert metrics["recall"] > 0.4

    def test_precision_nontrivial(self, beers):
        metrics = RahaDetector().evaluate(beers)
        assert metrics["precision"] > 0.3

    def test_detect_returns_cells(self, beers):
        detected = RahaDetector().detect(beers)
        for row, attribute in detected:
            assert 0 <= row < len(beers.dirty)
            assert attribute in beers.schema


class TestBaran:
    def test_perfect_ed_beats_raha(self, beers, generator):
        raha = run_raha_baran(beers, generator)
        perfect = run_perfect_ed_baran(beers, generator)
        assert perfect.f1 >= raha.f1

    def test_report_fields(self, beers, generator):
        report = run_perfect_ed_baran(beers, generator)
        assert 0.0 <= report.precision <= 1.0
        assert 0.0 <= report.recall <= 1.0
        assert report.repaired >= 0

    def test_corrector_fit_and_correct(self, beers, generator):
        corrector = BaranCorrector().fit(beers, generator, labeled_rows=10)
        repairs = corrector.correct(beers.error_cells()[:5])
        for cell, candidate in repairs.items():
            assert candidate != beers.dirty[cell[0]].get(cell[1])


class TestSudowoodoCleaner:
    def tiny_cleaner(self):
        config = cleaning_config(
            dim=16,
            num_layers=1,
            num_heads=2,
            ffn_dim=32,
            max_seq_len=24,
            pair_max_seq_len=48,
            vocab_size=600,
            pretrain_epochs=1,
            pretrain_batch_size=8,
            finetune_epochs=2,
            finetune_batch_size=8,
            num_clusters=3,
            corpus_cap=64,
            mlm_warm_start_epochs=0,
            seed=0,
        )
        return SudowoodoCleaner(config)

    def test_fit_and_evaluate(self, beers, generator):
        cleaner = self.tiny_cleaner().fit(beers, generator, labeled_rows=12)
        report = cleaner.evaluate()
        assert 0.0 <= report.f1 <= 1.0
        assert report.dataset == "beers"

    def test_correct_returns_actual_changes(self, beers, generator):
        cleaner = self.tiny_cleaner().fit(beers, generator, labeled_rows=12)
        repairs = cleaner.correct()
        for (row, attribute), candidate in repairs.items():
            assert candidate != beers.dirty[row].get(attribute)

    def test_requires_fit_before_correct(self):
        with pytest.raises(RuntimeError):
            self.tiny_cleaner().correct()

    def test_rejects_bad_serialization(self):
        with pytest.raises(ValueError):
            SudowoodoCleaner(serialization="bogus")

    def test_context_schema_includes_determinant(self, beers, generator):
        cleaner = self.tiny_cleaner()
        window = cleaner._context_schema(beers, "city")
        assert "brewery_id" in window  # brewery_id -> city FD
        assert "city" in window
