"""Deterministic fault injection for the serving front end.

Every failure mode the production broker must survive — slow backends,
poisoned queries, mid-build crashes, deadlines racing the batch window —
is reproduced here *without sleeps or timing luck*:

* :class:`FakeClock` — a controllable monotonic clock satisfying the
  :class:`~repro.serve.frontend.MonotonicClock` protocol.  ``advance``
  moves time explicitly; ``wait_for`` consumes the requested timeout in
  fake time instead of blocking, so deadline/window logic runs at test
  speed and expiry is exact.
* :class:`FaultyBackend` — wraps any
  :class:`~repro.serve.backends.ANNBackend`; ``query`` can add per-call
  latency, block on a gate event (signalling ``entered`` so the test
  knows the batch is mid-flight), raise injected exceptions, or start
  failing after N successful calls.
* :class:`FaultyStore` — an :class:`~repro.serve.store.EmbeddingStore`
  whose ``embed_batch`` / ``upsert_batch`` can be poisoned per text,
  gated, delayed, or set to fail after N calls — the lever for
  "reindex dies halfway through the shadow build" and "one query
  poisons a coalesced batch".

The wrappers inject faults *before* delegating, so a fault never leaves
the wrapped component in a half-mutated state — what fails is the call,
not the invariant.
"""

import threading
import time
from typing import Iterable, Optional, Sequence, Tuple

import numpy as np

from repro.serve.backends import ANNBackend
from repro.serve.store import EmbeddingStore


class InjectedFault(RuntimeError):
    """The error type every injected failure raises (so tests can tell
    injected faults from genuine bugs with one ``pytest.raises``)."""


class FakeClock:
    """A deterministic stand-in for :class:`MonotonicClock`.

    ``now`` returns a counter that only moves via :meth:`advance` (or
    via :meth:`wait_for`, which converts its timeout into fake time).
    ``wait_for`` still honours an already-set event — a leader polling
    for followers sees them immediately — but never blocks the thread,
    so a test controls exactly which deadlines have passed at each step.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._lock = threading.Lock()
        self._now = float(start)

    def now(self) -> float:
        with self._lock:
            return self._now

    def advance(self, seconds: float) -> None:
        """Move fake time forward (never backward)."""
        if seconds < 0:
            raise ValueError("time only moves forward")
        with self._lock:
            self._now += seconds

    def wait_for(self, event: threading.Event, timeout: float) -> bool:
        """Consume ``timeout`` in fake time; report whether ``event`` is
        set.  No real blocking — the waiting loop re-checks its flush
        condition against the advanced clock on return."""
        if not event.is_set():
            self.advance(max(0.0, timeout))
        return event.is_set()


class FaultyBackend(ANNBackend):
    """An :class:`ANNBackend` wrapper with injectable query faults.

    Parameters
    ----------
    inner:
        The real backend every healthy call delegates to.
    query_delay_s:
        Real sleep added to every ``query`` (latency injection).
    gate / entered:
        Optional events: when ``gate`` is given, ``query`` sets
        ``entered`` (if given) and blocks until ``gate`` is set — the
        deterministic way to hold a batch in flight while the test
        arranges a burst, then release it.
    fail_query_after:
        Number of ``query`` calls that succeed before every later call
        raises :class:`InjectedFault`; ``None`` disables.
    fail_batch_larger_than:
        Raise whenever a single ``query`` call carries more than this
        many rows (the "big batches fail, retries alone succeed" fault
        that exercises per-request isolation); ``None`` disables.
    """

    def __init__(
        self,
        inner: ANNBackend,
        query_delay_s: float = 0.0,
        gate: Optional[threading.Event] = None,
        entered: Optional[threading.Event] = None,
        fail_query_after: Optional[int] = None,
        fail_batch_larger_than: Optional[int] = None,
    ) -> None:
        self.inner = inner
        self.query_delay_s = query_delay_s
        self.gate = gate
        self.entered = entered
        self.fail_query_after = fail_query_after
        self.fail_batch_larger_than = fail_batch_larger_than
        self.query_calls = 0
        self.name = f"faulty-{inner.name}"
        self.supports_updates = inner.supports_updates

    def __len__(self) -> int:
        return len(self.inner)

    def build(self, vectors: np.ndarray) -> "FaultyBackend":
        self.inner.build(vectors)
        return self

    def add(self, ids: Sequence[int], vectors: np.ndarray) -> "FaultyBackend":
        self.inner.add(ids, vectors)
        return self

    def remove(self, ids: Sequence[int]) -> "FaultyBackend":
        self.inner.remove(ids)
        return self

    def rebuild(self) -> "FaultyBackend":
        self.inner.rebuild()
        return self

    def query(self, queries: np.ndarray, k: int) -> Tuple[np.ndarray, np.ndarray]:
        self.query_calls += 1
        if self.entered is not None:
            self.entered.set()
        if self.gate is not None:
            self.gate.wait()
        if self.query_delay_s:
            time.sleep(self.query_delay_s)
        if (
            self.fail_query_after is not None
            and self.query_calls > self.fail_query_after
        ):
            raise InjectedFault(
                f"injected backend failure on query call {self.query_calls}"
            )
        if (
            self.fail_batch_larger_than is not None
            and queries.shape[0] > self.fail_batch_larger_than
        ):
            raise InjectedFault(
                f"injected failure on oversized batch of {queries.shape[0]}"
            )
        return self.inner.query(queries, k)


class FaultyStore(EmbeddingStore):
    """An :class:`EmbeddingStore` with injectable embed/upsert faults.

    * ``poison_texts`` — any ``embed_batch`` containing one of these
      texts raises :class:`InjectedFault` (the per-query poison used by
      the coalescer isolation tests).
    * ``fail_upsert_after`` — number of ``upsert_batch`` calls that
      succeed before every later call raises (0 = fail immediately);
      this is how a blue/green shadow build is killed mid-flight.
    * ``embed_gate`` / ``embed_entered`` — like
      :class:`FaultyBackend`'s gate, but around the embed step, which is
      where a search batch spends its time on the real service.
    * ``embed_delay_s`` — real sleep per ``embed_batch`` call.

    Faults fire *before* delegation, so a failed call leaves the cache
    and id maps exactly as they were.
    """

    def __init__(
        self,
        encoder,
        poison_texts: Iterable[str] = (),
        fail_upsert_after: Optional[int] = None,
        embed_gate: Optional[threading.Event] = None,
        embed_entered: Optional[threading.Event] = None,
        embed_delay_s: float = 0.0,
        **kwargs,
    ) -> None:
        super().__init__(encoder, **kwargs)
        self.poison_texts = set(poison_texts)
        self.fail_upsert_after = fail_upsert_after
        self.embed_gate = embed_gate
        self.embed_entered = embed_entered
        self.embed_delay_s = embed_delay_s
        self.embed_calls = 0
        self.upsert_calls = 0

    def _inject_embed_faults(self, texts: Sequence[str]) -> None:
        self.embed_calls += 1
        if self.embed_entered is not None:
            self.embed_entered.set()
        if self.embed_gate is not None:
            self.embed_gate.wait()
        if self.embed_delay_s:
            time.sleep(self.embed_delay_s)
        poisoned = [t for t in texts if t in self.poison_texts]
        if poisoned:
            raise InjectedFault(f"injected poison on embed of {poisoned!r}")

    def embed_batch(self, texts, normalize=False, chunk_size=None, cache=True):
        self._inject_embed_faults(texts)
        return super().embed_batch(
            texts, normalize=normalize, chunk_size=chunk_size, cache=cache
        )

    def upsert_batch(self, texts, normalize=False, chunk_size=None):
        self.upsert_calls += 1
        if (
            self.fail_upsert_after is not None
            and self.upsert_calls > self.fail_upsert_after
        ):
            raise InjectedFault(
                f"injected upsert failure on call {self.upsert_calls}"
            )
        return super().upsert_batch(
            texts, normalize=normalize, chunk_size=chunk_size
        )
