"""IVF-PQ backend: flat/trained lifecycle, recall vs exact, protocol
compliance, registry + sharding + frontend composition, persistence."""

import numpy as np
import pytest

from repro.core import SudowoodoConfig, SudowoodoEncoder, build_tokenizer
from repro.core.persistence import load_ivfpq_index, save_ivfpq_index
from repro.serve import (
    ExactBackend,
    IVFPQBackend,
    ProductQuantizer,
    ServiceFrontend,
    ShardedBackend,
    ShardedMatchService,
    available_backends,
    build_backend,
)

DIM = 32


def clustered_corpus(n=1600, dim=DIM, num_clusters=8, noise=0.15, seed=0):
    """Seeded synthetic corpus with planted cluster structure (the shape
    IVF thrives on), unit-normalized like every backend consumer."""
    rng = np.random.default_rng(seed)
    centers = rng.normal(size=(num_clusters, dim))
    rows = np.repeat(centers, n // num_clusters, axis=0)
    rows = rows + noise * rng.normal(size=rows.shape)
    return rows / np.linalg.norm(rows, axis=1, keepdims=True)


def trained_backend(rows, **overrides):
    params = dict(
        num_cells=8, num_subvectors=16, bits=8, nprobe=8, train_threshold=256
    )
    params.update(overrides)
    return IVFPQBackend(**params).build(rows)


def recall_vs_exact(backend, rows, queries, k=10):
    exact_ids, _ = ExactBackend().build(rows).query(queries, k)
    approx_ids, _ = backend.query(queries, k)
    overlaps = [
        len(set(a[a >= 0].tolist()) & set(e[e >= 0].tolist())) / k
        for a, e in zip(approx_ids, exact_ids)
    ]
    return float(np.mean(overlaps))


# ----------------------------------------------------------------------
class TestProductQuantizer:
    def test_round_trip_error_bounded(self):
        rows = clustered_corpus(n=800)
        pq = ProductQuantizer(num_subvectors=16, bits=8).train(rows)
        recovered = pq.decode(pq.encode(rows))
        assert np.linalg.norm(recovered - rows, axis=1).mean() < 0.15

    def test_codes_are_bytes(self):
        rows = clustered_corpus(n=400)
        pq = ProductQuantizer(num_subvectors=8, bits=4).train(rows)
        codes = pq.encode(rows)
        assert codes.dtype == np.uint8
        assert codes.shape == (400, 8)
        assert codes.max() < 2**4

    def test_distance_tables_match_brute_force(self):
        rows = clustered_corpus(n=300)
        pq = ProductQuantizer(num_subvectors=8, bits=6).train(rows)
        query = rows[0]
        tables = pq.distance_tables(query)
        codes = pq.encode(rows[:20])
        adc = tables[np.arange(8)[None, :], codes].sum(axis=1)
        exact = ((pq.decode(codes) - query) ** 2).sum(axis=1)
        np.testing.assert_allclose(adc, exact, atol=1e-9)

    def test_indivisible_dim_raises(self):
        with pytest.raises(ValueError, match="divisible"):
            ProductQuantizer(num_subvectors=7).train(clustered_corpus(n=100))

    def test_bad_bits_rejected(self):
        with pytest.raises(ValueError):
            ProductQuantizer(bits=9)
        with pytest.raises(ValueError):
            ProductQuantizer(bits=0)

    def test_encode_before_train_raises(self):
        with pytest.raises(RuntimeError):
            ProductQuantizer().encode(np.zeros((1, 32)))


# ----------------------------------------------------------------------
class TestIVFPQLifecycle:
    def test_small_corpus_stays_flat_and_exact(self):
        rows = clustered_corpus(n=64)
        backend = IVFPQBackend(train_threshold=256).build(rows)
        assert not backend.trained
        ids, scores = backend.query(rows[:8], k=5)
        exact_ids, exact_scores = ExactBackend().build(rows).query(rows[:8], k=5)
        np.testing.assert_array_equal(ids, exact_ids)
        np.testing.assert_allclose(scores, exact_scores, atol=1e-6)

    def test_training_triggers_at_threshold(self):
        rows = clustered_corpus(n=512)
        backend = IVFPQBackend(num_cells=8, num_subvectors=16, train_threshold=256)
        backend.build(np.zeros((0, DIM)))
        backend.add(np.arange(200), rows[:200])
        assert not backend.trained
        backend.add(np.arange(200, 512), rows[200:])
        assert backend.trained
        assert len(backend) == 512

    def test_build_then_add_matches_one_shot_build(self):
        rows = clustered_corpus(n=600)
        one_shot = trained_backend(rows)
        incremental = IVFPQBackend(
            num_cells=8, num_subvectors=16, nprobe=8, train_threshold=256
        )
        incremental.build(np.zeros((0, DIM)))
        incremental.add(np.arange(600), rows)
        ids_a, scores_a = one_shot.query(rows[:32], k=10)
        ids_b, scores_b = incremental.query(rows[:32], k=10)
        np.testing.assert_array_equal(ids_a, ids_b)
        np.testing.assert_allclose(scores_a, scores_b, atol=1e-9)

    def test_recall_at_least_080_vs_exact(self):
        rows = clustered_corpus()
        backend = trained_backend(rows)
        assert backend.trained
        assert recall_vs_exact(backend, rows, rows[::16], k=10) >= 0.8

    def test_nprobe_dials_recall(self):
        rows = clustered_corpus()
        wide = trained_backend(rows, nprobe=8)
        narrow = trained_backend(rows, nprobe=1)
        queries = rows[::16]
        assert recall_vs_exact(wide, rows, queries) >= recall_vs_exact(
            narrow, rows, queries
        )

    def test_memory_shrinks_vs_dense_float64(self):
        # At 1600 rows the fixed codebook cost (2**bits codewords per
        # subquantizer) still dominates, so assert a conservative 3x
        # here; the ≥8x claim is asserted at scale by
        # benchmarks/bench_million_scale.py, where per-row code bytes
        # dwarf the codebooks.
        rows = clustered_corpus()
        backend = trained_backend(rows)
        dense = rows.shape[0] * DIM * 8
        assert backend.memory_bytes() * 3 <= dense

    def test_add_after_training_is_searchable(self):
        rows = clustered_corpus(n=600)
        backend = trained_backend(rows[:512])
        backend.add(np.arange(512, 600), rows[512:])
        assert len(backend) == 600
        ids, _ = backend.query(rows[512:516], k=1)
        assert set(ids[:, 0].tolist()) <= set(range(512, 600))

    def test_remove_and_upsert(self):
        rows = clustered_corpus(n=512)
        backend = trained_backend(rows)
        backend.remove([0, 1, 2])
        assert len(backend) == 509
        ids, _ = backend.query(rows[:4], k=5)
        assert not ({0, 1, 2} & set(ids.ravel().tolist()))
        backend.add(np.array([1]), rows[1:2])  # re-insert
        assert len(backend) == 510
        backend.add(np.array([1]), rows[3:4])  # upsert replaces in place
        assert len(backend) == 510

    def test_remove_unknown_id_atomic(self):
        rows = clustered_corpus(n=512)
        backend = trained_backend(rows)
        with pytest.raises(KeyError, match="9999"):
            backend.remove([5, 9999])
        assert len(backend) == 512  # the valid id was not deleted

    def test_query_padding_and_errors(self):
        rows = clustered_corpus(n=64)
        backend = IVFPQBackend().build(rows)
        ids, scores = backend.query(rows[:2], k=100)
        assert ids.shape == (2, 100)
        assert (ids[:, 64:] == -1).all()
        assert np.isneginf(scores[:, 64:]).all()
        with pytest.raises(ValueError):
            backend.query(rows[:1], k=0)
        with pytest.raises(RuntimeError):
            IVFPQBackend().query(rows[:1], k=1)

    def test_deterministic_given_seed(self):
        rows = clustered_corpus()
        a = trained_backend(rows, seed=3)
        b = trained_backend(rows, seed=3)
        ids_a, scores_a = a.query(rows[:16], k=10)
        ids_b, scores_b = b.query(rows[:16], k=10)
        np.testing.assert_array_equal(ids_a, ids_b)
        np.testing.assert_allclose(scores_a, scores_b)


# ----------------------------------------------------------------------
class TestRegistryComposition:
    def test_registered(self):
        assert "ivfpq" in available_backends()

    def test_build_backend_reads_config_knobs(self):
        config = SudowoodoConfig(
            ann_backend="ivfpq", ivf_cells=4, pq_subvectors=16, pq_bits=6, nprobe=2
        )
        backend = build_backend(config)
        assert isinstance(backend, IVFPQBackend)
        assert backend.num_cells == 4
        assert backend.num_subvectors == 16
        assert backend.bits == 6
        assert backend.nprobe == 2

    def test_sharded_composition(self):
        config = SudowoodoConfig(
            ann_backend="ivfpq",
            num_shards=3,
            ivf_cells=4,
            pq_subvectors=16,
            nprobe=4,
        )
        backend = build_backend(config)
        assert isinstance(backend, ShardedBackend)
        rows = clustered_corpus(n=904)  # 8 clusters x 113 rows
        backend.build(rows)
        assert len(backend) == rows.shape[0]
        ids, scores = backend.query(rows[:8], k=10)
        assert ids.shape == (8, 10)
        assert (ids >= 0).all()
        # shard-merged rows keep the protocol order: score desc, id asc.
        assert (np.diff(scores, axis=1) <= 1e-12).all()


# ----------------------------------------------------------------------
CORPUS = [f"[COL] name [VAL] record-{i} [COL] city [VAL] c{i % 5}" for i in range(24)]


class TestServiceFrontendComposition:
    @pytest.fixture(scope="class")
    def frontend(self):
        config = SudowoodoConfig(
            dim=16,
            num_layers=1,
            num_heads=2,
            ffn_dim=32,
            max_seq_len=24,
            pair_max_seq_len=40,
            vocab_size=400,
            mlm_warm_start_epochs=0,
            ann_backend="ivfpq",
            ivf_cells=2,
            pq_subvectors=8,
            nprobe=2,
            num_shards=2,
            coalesce_window_ms=0.0,
            seed=0,
        )
        encoder = SudowoodoEncoder(config, build_tokenizer(CORPUS, config))
        service = ShardedMatchService(encoder, config=config)
        service.index_records(CORPUS)
        return ServiceFrontend(service)

    def test_search_through_frontend(self, frontend):
        ids, scores = frontend.search(CORPUS[:4], k=3)
        assert ids.shape == (4, 3)
        # A corpus record's own nearest neighbour is itself (the flat
        # pre-training state serves exact results at this corpus size).
        assert (ids[:, 0] >= 0).all()

    def test_streaming_mutations_through_frontend(self, frontend):
        new = ["[COL] name [VAL] fresh-row [COL] city [VAL] c9"]
        ids = frontend.upsert_records(new)
        assert ids.shape == (1,)
        found, _ = frontend.search(new, k=1)
        assert found[0, 0] == ids[0]
        frontend.delete_records(new)
        found, _ = frontend.search(new, k=1)
        assert found[0, 0] != ids[0]


# ----------------------------------------------------------------------
class TestPersistence:
    def test_trained_round_trip(self, tmp_path):
        rows = clustered_corpus(n=512)
        backend = trained_backend(rows)
        path = backend.save(tmp_path / "index")
        loaded = IVFPQBackend.load(path)
        assert loaded.trained
        assert len(loaded) == len(backend)
        ids_a, scores_a = backend.query(rows[:16], k=10)
        ids_b, scores_b = loaded.query(rows[:16], k=10)
        np.testing.assert_array_equal(ids_a, ids_b)
        np.testing.assert_allclose(scores_a, scores_b, atol=1e-12)

    def test_untrained_round_trip(self, tmp_path):
        rows = clustered_corpus(n=64)
        backend = IVFPQBackend(train_threshold=256).build(rows)
        loaded = IVFPQBackend.load(backend.save(tmp_path / "flat"))
        assert not loaded.trained
        ids_a, _ = backend.query(rows[:8], k=5)
        ids_b, _ = loaded.query(rows[:8], k=5)
        np.testing.assert_array_equal(ids_a, ids_b)

    def test_save_unbuilt_raises(self, tmp_path):
        with pytest.raises(ValueError):
            save_ivfpq_index(tmp_path / "x", IVFPQBackend())

    def test_corrupt_file_raises_valueerror(self, tmp_path):
        path = tmp_path / "broken.npz"
        path.write_bytes(b"this is not an npz archive")
        with pytest.raises(ValueError, match=str(path)):
            load_ivfpq_index(path)

    def test_tampered_codes_raise_valueerror(self, tmp_path):
        rows = clustered_corpus(n=512)
        path = trained_backend(rows).save(tmp_path / "index")
        archive = dict(np.load(path, allow_pickle=False))
        archive["cell_sizes"] = archive["cell_sizes"][:-1]  # drop a cell
        np.savez(path, **archive)
        with pytest.raises(ValueError, match="corrupt"):
            load_ivfpq_index(path)

    def test_missing_file_raises(self, tmp_path):
        # Missing-vs-corrupt contract shared across core.persistence:
        # a path that does not exist is FileNotFoundError, not ValueError.
        with pytest.raises(FileNotFoundError):
            load_ivfpq_index(tmp_path / "nope.npz")
