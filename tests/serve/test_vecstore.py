"""Memory-mapped vector store: quantization round-trips, stable ids
across reopen, streaming reads, and the corrupt-file ValueError contract."""

import json

import numpy as np
import pytest

from repro.serve import MemmapVectorStore, dequantize_rows, quantize_rows


def unit_rows(n, dim=32, seed=0):
    rng = np.random.default_rng(seed)
    rows = rng.normal(size=(n, dim))
    return rows / np.linalg.norm(rows, axis=1, keepdims=True)


class TestQuantization:
    def test_round_trip_error_small(self):
        rows = unit_rows(64)
        codes, scales = quantize_rows(rows)
        assert codes.dtype == np.int8
        recovered = dequantize_rows(codes, scales)
        # max-abs/127 scalar quantization: per-element error < scale/2.
        assert np.abs(recovered - rows).max() <= (scales.max() / 2) + 1e-7

    def test_zero_row_exact(self):
        rows = np.zeros((2, 8))
        codes, scales = quantize_rows(rows)
        np.testing.assert_array_equal(dequantize_rows(codes, scales), 0.0)

    def test_codes_within_int8_range(self):
        codes, _ = quantize_rows(unit_rows(32) * 100.0)
        assert codes.min() >= -127 and codes.max() <= 127


class TestMemmapVectorStore:
    def test_create_append_get(self, tmp_path):
        store = MemmapVectorStore.create(tmp_path / "s", dim=16, dtype="float32")
        rows = unit_rows(10, dim=16)
        ids = np.arange(100, 110)
        store.append(ids, rows)
        assert len(store) == 10
        np.testing.assert_allclose(store.get([104, 100]), rows[[4, 0]], atol=1e-6)

    def test_int8_rows_dequantize_close(self, tmp_path):
        store = MemmapVectorStore.create(tmp_path / "s", dim=32, dtype="int8")
        rows = unit_rows(20)
        store.append(np.arange(20), rows)
        got = store.get(list(range(20)))
        assert got.dtype == np.float32
        assert np.abs(got - rows).max() < 0.01

    def test_reopen_preserves_stable_ids(self, tmp_path):
        store = MemmapVectorStore.create(tmp_path / "s", dim=8, dtype="int8")
        rows = unit_rows(6, dim=8)
        store.append([5, 9, 2, 7, 11, 3], rows)
        store.flush()
        reopened = MemmapVectorStore.open(tmp_path / "s")
        assert len(reopened) == 6
        np.testing.assert_array_equal(reopened.ids, [5, 9, 2, 7, 11, 3])
        np.testing.assert_allclose(reopened.get([11]), store.get([11]))

    def test_append_only_rejects_known_id(self, tmp_path):
        store = MemmapVectorStore.create(tmp_path / "s", dim=4)
        store.append([1], unit_rows(1, dim=4))
        with pytest.raises(ValueError, match="append-only"):
            store.append([1], unit_rows(1, dim=4))

    def test_unknown_id_raises_keyerror(self, tmp_path):
        store = MemmapVectorStore.create(tmp_path / "s", dim=4)
        with pytest.raises(KeyError):
            store.get([42])

    def test_batches_stream_in_row_order(self, tmp_path):
        store = MemmapVectorStore.create(tmp_path / "s", dim=8, dtype="float32")
        rows = unit_rows(25, dim=8)
        store.append(np.arange(25), rows)
        seen_ids, seen_rows = [], []
        for batch_ids, batch_rows in store.batches(batch_size=10):
            assert batch_rows.shape[0] == batch_ids.shape[0] <= 10
            seen_ids.append(batch_ids)
            seen_rows.append(batch_rows)
        np.testing.assert_array_equal(np.concatenate(seen_ids), np.arange(25))
        np.testing.assert_allclose(np.vstack(seen_rows), rows, atol=1e-6)

    def test_int8_nbytes_under_an_eighth_of_float64(self, tmp_path):
        dim = 32
        store = MemmapVectorStore.create(tmp_path / "s", dim=dim, dtype="int8")
        store.append(np.arange(100), unit_rows(100, dim=dim))
        dense = 100 * dim * 8
        assert store.nbytes < dense / 7  # int8 + 4-byte scale ≈ dim+4 bytes/row

    def test_unknown_dtype_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="dtype"):
            MemmapVectorStore.create(tmp_path / "s", dim=4, dtype="int4")


class TestCorruptStores:
    def make(self, tmp_path, dtype="int8"):
        store = MemmapVectorStore.create(tmp_path / "s", dim=8, dtype=dtype)
        store.append(np.arange(5), unit_rows(5, dim=8))
        return tmp_path / "s"

    def test_missing_meta(self, tmp_path):
        path = self.make(tmp_path)
        (path / "meta.json").unlink()
        with pytest.raises(ValueError, match=str(path)):
            MemmapVectorStore.open(path)

    def test_malformed_meta_json(self, tmp_path):
        path = self.make(tmp_path)
        (path / "meta.json").write_text("{not json", encoding="utf-8")
        with pytest.raises(ValueError, match="corrupt"):
            MemmapVectorStore.open(path)

    def test_wrong_format_version(self, tmp_path):
        path = self.make(tmp_path)
        meta = json.loads((path / "meta.json").read_text())
        meta["format_version"] = 99
        (path / "meta.json").write_text(json.dumps(meta))
        with pytest.raises(ValueError, match="format"):
            MemmapVectorStore.open(path)

    def test_truncated_vectors_file(self, tmp_path):
        path = self.make(tmp_path)
        payload = (path / "vectors.dat").read_bytes()
        (path / "vectors.dat").write_bytes(payload[: len(payload) // 2])
        with pytest.raises(ValueError, match="truncated"):
            MemmapVectorStore.open(path)

    def test_truncated_scales_file(self, tmp_path):
        path = self.make(tmp_path)
        (path / "scales.dat").write_bytes(b"\x00" * 3)
        with pytest.raises(ValueError, match="truncated"):
            MemmapVectorStore.open(path)

    def test_duplicate_ids_rejected(self, tmp_path):
        path = self.make(tmp_path)
        np.asarray([1, 1, 2, 3, 4], dtype=np.int64).tofile(path / "ids.dat")
        with pytest.raises(ValueError, match="ids"):
            MemmapVectorStore.open(path)
