"""Concurrency stress test for the sharded serving layer.

Eight threads hammer one :class:`ShardedMatchService` with a bounded mix
of ``search`` / ``upsert_records`` / ``delete_records`` operations, then
the index invariants are checked: no duplicate ids in any result row,
``index_size`` equals the number of live records, and every surviving
record is findable by its own text.  Marked ``stress`` so the bounded
budget stays the contract — raise the op counts locally when hunting
races, not here.
"""

import threading

import numpy as np
import pytest

from repro.core import SudowoodoConfig, SudowoodoEncoder, build_tokenizer
from repro.serve import ShardedMatchService
from repro.utils import spawn_rng

NUM_THREADS = 8
OPS_PER_THREAD = 18

BASE_CORPUS = [f"[COL] name [VAL] base record {i}" for i in range(16)]
# Disjoint per-thread text pools: no two threads ever upsert the same
# text, so the final live set is exactly what the per-thread op logs
# say it is (cross-thread interleavings still share every shard).
POOLS = {
    t: [f"[COL] name [VAL] thread {t} record {i}" for i in range(10)]
    for t in range(NUM_THREADS)
}
ALL_TEXTS = BASE_CORPUS + [text for pool in POOLS.values() for text in pool]


def tiny_config(**overrides) -> SudowoodoConfig:
    defaults = dict(
        dim=16,
        num_layers=1,
        num_heads=2,
        ffn_dim=32,
        max_seq_len=24,
        pair_max_seq_len=40,
        vocab_size=400,
        mlm_warm_start_epochs=0,
        num_shards=3,
        coalesce_window_ms=0.5,
        max_coalesce_batch=16,
        seed=0,
    )
    defaults.update(overrides)
    return SudowoodoConfig(**defaults)


@pytest.fixture(scope="module")
def encoder():
    # The tokenizer is fitted on the very texts the threads index, so
    # every distinct record gets a distinct token sequence (and vector).
    config = tiny_config()
    return SudowoodoEncoder(config, build_tokenizer(ALL_TEXTS, config))


@pytest.mark.stress
@pytest.mark.parametrize("backend_name", ["exact", "hnsw"])
def test_mixed_search_upsert_delete_stress(encoder, backend_name):
    service = ShardedMatchService(
        encoder, config=tiny_config(ann_backend=backend_name)
    )
    service.index_records(BASE_CORPUS)
    errors = []
    live_by_thread = {t: set() for t in range(NUM_THREADS)}

    def worker(t: int) -> None:
        rng = spawn_rng(t, "serve-stress")
        live = live_by_thread[t]
        pool = POOLS[t]
        try:
            for _ in range(OPS_PER_THREAD):
                op = rng.choice(["search", "upsert", "delete"])
                if op == "upsert":
                    picks = rng.choice(10, size=2, replace=False)
                    texts = [pool[i] for i in picks]
                    ids = service.upsert_records(texts)
                    assert ids.shape == (2,)
                    live.update(texts)
                elif op == "delete":
                    # May include never-indexed texts: documented no-op.
                    picks = rng.choice(10, size=2, replace=False)
                    texts = [pool[i] for i in picks]
                    service.delete_records(texts)
                    live.difference_update(texts)
                else:
                    query = BASE_CORPUS[int(rng.integers(len(BASE_CORPUS)))]
                    found, scores = service.search([query], k=5)
                    assert found.shape == (1, 5) and scores.shape == (1, 5)
                    returned = found[0][found[0] >= 0]
                    # Invariant: no duplicate ids within a result row.
                    assert np.unique(returned).size == returned.size
        except BaseException as exc:  # surface failures from worker threads
            errors.append((t, exc))

    threads = [
        threading.Thread(target=worker, args=(t,)) for t in range(NUM_THREADS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
    # Liveness first: a deadlocked worker would otherwise surface as a
    # confusing invariant failure (or hang the checks below).
    assert not any(thread.is_alive() for thread in threads), (
        "worker threads deadlocked"
    )
    assert not errors, f"worker failures: {errors}"

    # ------------------------------------------------------- invariants
    survivors = set(BASE_CORPUS)
    for live in live_by_thread.values():
        survivors |= live

    # index_size matches the live-record bookkeeping on both sides.
    assert service.index_size == len(survivors)
    assert len(service._live_texts) == len(survivors)
    assert set(service._live_texts.values()) == survivors

    # No duplicate ids anywhere: every live id appears exactly once.
    live_ids = sorted(service._live_texts)
    assert len(set(live_ids)) == len(survivors)

    # Every surviving record is findable by its own text (identical text
    # embeds to the identical vector, so it must be its own top-1 under
    # the exact backend and within top-5 for the approximate graph).
    rank = 1 if backend_name == "exact" else 5
    for record_id, text in sorted(service._live_texts.items()):
        found, _ = service.search([text], k=rank)
        assert record_id in found[0], (
            f"record {record_id} ({text!r}) not findable by its own vector"
        )

    stats = service.coalesce_stats()
    assert stats["requests"] >= 1.0
    assert stats["batches"] <= stats["requests"]
