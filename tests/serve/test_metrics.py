"""Property tests for the serving metrics primitives.

Seeded-random property style (matching ``tests/conftest.py``: fixed
``TEST_SEED``-derived generators, no third-party property-test
dependency): each property is checked across a grid of seeds and input
distributions rather than hand-picked examples.

The two contracts that matter:

* **Histogram quantiles are within tolerance of exact.**  The
  log-bucketed estimate's relative error is bounded by the bucket
  geometry — ``sqrt(growth) - 1`` plus one growth factor of slack for
  boundary log-rounding (~8% total at the default ``growth=1.05``) —
  for every distribution thrown at it, including adversarial
  boundary-heavy and constant streams.
* **Counters are exact under concurrency.**  No increments are lost
  across racing threads (stress-marked, like the rest of
  ``tests/serve``).
"""

import math
import threading

import numpy as np
import pytest

from repro.serve import Counter, Gauge, Histogram, MetricsRegistry

# Relative tolerance for quantile estimates at growth=1.05: geometric
# midpoint error sqrt(1.05)-1 ~ 2.5%, plus up to one extra growth factor
# when float log rounds a boundary value into the neighbouring bucket
# (1.05**1.5 - 1 ~ 7.6%).
GROWTH = 1.05
QUANTILE_RTOL = GROWTH ** 1.5 - 1 + 1e-9

QUANTILES = (0.5, 0.9, 0.99, 1.0)


def exact_quantile(values: np.ndarray, q: float) -> float:
    """The ceil(q*n)-th order statistic — the histogram's target."""
    ordered = np.sort(values)
    rank = max(1, math.ceil(q * len(ordered)))
    return float(ordered[rank - 1])


def distributions(rng: np.random.Generator, size: int):
    """A spread of latency-like shapes, all within the default range."""
    return {
        "uniform": rng.uniform(1e-4, 5.0, size),
        "log_uniform": np.exp(rng.uniform(np.log(1e-5), np.log(1e3), size)),
        "lognormal": np.minimum(rng.lognormal(-3.0, 1.5, size), 9e3),
        "exponential": rng.exponential(0.05, size) + 1e-6,
        "bimodal": np.where(
            rng.random(size) < 0.9,
            rng.uniform(0.001, 0.01, size),
            rng.uniform(1.0, 2.0, size),
        ),
        # Adversarial: values sitting exactly on bucket boundaries.
        "boundaries": 1e-6 * GROWTH ** rng.integers(0, 400, size),
        "constant": np.full(size, 0.0123),
    }


class TestHistogramQuantileProperty:
    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize(
        "dist",
        [
            "uniform",
            "log_uniform",
            "lognormal",
            "exponential",
            "bimodal",
            "boundaries",
            "constant",
        ],
    )
    def test_quantiles_within_tolerance_of_exact(self, seed, dist):
        rng = np.random.default_rng(1000 + seed)
        values = distributions(rng, size=int(rng.integers(100, 4000)))[dist]
        histogram = Histogram(growth=GROWTH)
        for value in values:
            histogram.record(value)
        assert histogram.count == len(values)
        for q in QUANTILES:
            exact = exact_quantile(values, q)
            estimate = histogram.quantile(q)
            assert estimate == pytest.approx(exact, rel=QUANTILE_RTOL), (
                f"{dist} seed={seed} q={q}: estimate {estimate} vs "
                f"exact {exact}"
            )

    @pytest.mark.parametrize("seed", range(3))
    def test_estimates_clamped_to_observed_range(self, seed):
        rng = np.random.default_rng(2000 + seed)
        # Include out-of-range samples: below `lowest` and above `highest`.
        values = np.concatenate(
            [
                rng.uniform(1e-9, 1e-6, 20),  # underflow bucket
                rng.uniform(0.001, 1.0, 200),
                rng.uniform(1e4, 1e6, 20),  # overflow bucket
            ]
        )
        rng.shuffle(values)
        histogram = Histogram()
        for value in values:
            histogram.record(value)
        for q in (0.01, 0.5, 0.99, 1.0):
            estimate = histogram.quantile(q)
            assert values.min() <= estimate <= values.max()
        # The extremes are reported exactly, not as bucket midpoints.
        assert histogram.quantile(1.0) == pytest.approx(values.max())
        snapshot = histogram.snapshot()
        assert snapshot["min"] == pytest.approx(values.min())
        assert snapshot["max"] == pytest.approx(values.max())
        assert snapshot["mean"] == pytest.approx(values.mean())
        assert snapshot["count"] == len(values)

    def test_empty_and_single_sample(self):
        histogram = Histogram()
        assert math.isnan(histogram.quantile(0.5))
        assert histogram.snapshot() == {"count": 0}
        histogram.record(0.25)
        for q in (0.01, 0.5, 1.0):
            assert histogram.quantile(q) == pytest.approx(0.25, rel=QUANTILE_RTOL)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            Histogram(lowest=0.0)
        with pytest.raises(ValueError):
            Histogram(lowest=1.0, highest=0.5)
        with pytest.raises(ValueError):
            Histogram(growth=1.0)
        histogram = Histogram()
        with pytest.raises(ValueError):
            histogram.quantile(0.0)
        with pytest.raises(ValueError):
            histogram.quantile(1.5)


class TestCountersAndGauges:
    def test_counter_increments_exactly(self):
        counter = Counter()
        for _ in range(10):
            counter.increment()
        counter.increment(5)
        assert counter.value == 15

    def test_gauge_last_value_wins(self):
        gauge = Gauge()
        assert gauge.value == 0.0
        gauge.set(3)
        gauge.set(7.5)
        assert gauge.value == 7.5

    @pytest.mark.stress
    @pytest.mark.parametrize("seed", range(3))
    def test_counter_exact_under_concurrent_increments(self, seed):
        rng = np.random.default_rng(3000 + seed)
        counter = Counter()
        amounts = [int(rng.integers(1, 5)) for _ in range(8)]
        per_thread = 5000
        barrier = threading.Barrier(8)

        def hammer(amount):
            barrier.wait()
            for _ in range(per_thread):
                counter.increment(amount)

        threads = [
            threading.Thread(target=hammer, args=(amount,), daemon=True)
            for amount in amounts
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60.0)
        assert counter.value == per_thread * sum(amounts)

    @pytest.mark.stress
    def test_histogram_loses_no_samples_under_concurrency(self):
        histogram = Histogram()
        rng = np.random.default_rng(0)
        per_thread = 4000
        samples = [rng.uniform(1e-4, 10.0, per_thread) for _ in range(8)]
        barrier = threading.Barrier(8)

        def hammer(values):
            barrier.wait()
            for value in values:
                histogram.record(value)

        threads = [
            threading.Thread(target=hammer, args=(values,), daemon=True)
            for values in samples
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60.0)
        merged = np.concatenate(samples)
        assert histogram.count == len(merged)
        snapshot = histogram.snapshot()
        assert snapshot["min"] == pytest.approx(merged.min())
        assert snapshot["max"] == pytest.approx(merged.max())
        assert snapshot["mean"] == pytest.approx(merged.mean())
        # The quantile property holds on the merged stream too.
        for q in (0.5, 0.99):
            assert histogram.quantile(q) == pytest.approx(
                exact_quantile(merged, q), rel=QUANTILE_RTOL
            )


class TestMetricsRegistry:
    def test_get_or_create_returns_same_instance(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("g") is registry.gauge("g")
        assert registry.histogram("h") is registry.histogram("h")
        assert registry.counter("a") is not registry.counter("b")

    def test_snapshot_is_plain_and_sorted(self):
        registry = MetricsRegistry()
        registry.counter("b.count").increment(2)
        registry.counter("a.count").increment()
        registry.gauge("gen").set(3)
        registry.histogram("lat").record(0.5)
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {"a.count": 1, "b.count": 2}
        assert list(snapshot["counters"]) == ["a.count", "b.count"]
        assert snapshot["gauges"] == {"gen": 3.0}
        assert snapshot["histograms"]["lat"]["count"] == 1
        # Wire format: JSON-serializable all the way down.
        import json

        json.dumps(snapshot)

    def test_timed_records_elapsed_with_injected_clock(self):
        ticks = iter([10.0, 10.25, 20.0, 20.5])
        registry = MetricsRegistry(clock=lambda: next(ticks))
        with registry.timed("op"):
            pass
        # Failures are timed too.
        with pytest.raises(RuntimeError):
            with registry.timed("op"):
                raise RuntimeError("boom")
        histogram = registry.histogram("op")
        assert histogram.count == 2
        assert histogram.snapshot()["min"] == pytest.approx(0.25)
        assert histogram.snapshot()["max"] == pytest.approx(0.5)
