"""Fault-injection tests for the production service front end.

Every typed failure path of :class:`~repro.serve.frontend.RequestBroker`
and :class:`~repro.serve.frontend.ServiceFrontend` is driven
deterministically — gates hold batches in flight while bursts are
arranged, a :class:`FakeClock` decides exactly which deadlines have
passed, and :class:`FaultyStore` kills shadow builds mid-flight:

* ``Overloaded``: shed-under-burst with an exactly-full admission queue.
* ``DeadlineExceeded``: expiry at admission and expiry *inside* the
  coalescing window while a batch holds the leader.
* mid-reindex fault: the blue/green build dies and the old index keeps
  serving, byte-for-byte.
* per-item error channel: one poisoned query in a coalesced batch fails
  alone (broker level and end-to-end through ``QueryCoalescer``).
* priority scheduling, metrics threading, and the session entry point.

The stress half — blue/green swap under 8-thread query load with a
no-mixed-results fingerprint check — lives at the bottom, marked
``stress`` like the rest of ``tests/serve``.
"""

import threading

import numpy as np
import pytest

from faults import FakeClock, FaultyBackend, FaultyStore, InjectedFault
from repro.api import SudowoodoSession
from repro.core import SudowoodoConfig, SudowoodoEncoder, build_tokenizer
from repro.serve import (
    DeadlineExceeded,
    MetricsRegistry,
    Overloaded,
    RequestBroker,
    ServiceFrontend,
    ShardedMatchService,
    build_frontend,
)

CORPUS = [f"[COL] name [VAL] record-{i} [COL] city [VAL] c{i % 5}" for i in range(24)]


def tiny_config(**overrides) -> SudowoodoConfig:
    defaults = dict(
        dim=16,
        num_layers=1,
        num_heads=2,
        ffn_dim=32,
        max_seq_len=24,
        pair_max_seq_len=40,
        vocab_size=400,
        mlm_warm_start_epochs=0,
        num_shards=3,
        coalesce_window_ms=0.0,
        max_coalesce_batch=16,
        seed=0,
    )
    defaults.update(overrides)
    return SudowoodoConfig(**defaults)


@pytest.fixture(scope="module")
def encoder():
    config = tiny_config()
    return SudowoodoEncoder(config, build_tokenizer(CORPUS, config))


@pytest.fixture(scope="module")
def encoder_b():
    config = tiny_config(seed=7)
    return SudowoodoEncoder(config, build_tokenizer(CORPUS, config))


def make_frontend(encoder, store=None, clock=None, **config_overrides):
    config = tiny_config(**config_overrides)
    service = ShardedMatchService(encoder, config=config, store=store)
    service.index_records(CORPUS)
    return ServiceFrontend(service, clock=clock)


# ----------------------------------------------------------------------
# Broker-level harness: a fake run_batch with gates and poison
# ----------------------------------------------------------------------
def fake_search(texts, k):
    """Deterministic stand-in for search_batch: row i gets ids
    [h, h+1, ...] derived from the text, scores descending."""
    ids = np.empty((len(texts), k), dtype=np.int64)
    for row, text in enumerate(texts):
        base = sum(ord(c) for c in text) % 1000
        ids[row] = np.arange(base, base + k)
    scores = np.tile(np.linspace(1.0, 0.5, k), (len(texts), 1))
    return ids, scores


class GatedSearch:
    """fake_search plus a gate: the first call blocks (signalling
    ``entered``) until the test releases it; later calls pass through.
    Optionally poisons specific texts and records execution order."""

    def __init__(self, gate_first=True, poison=()):
        self.gate = threading.Event()
        self.entered = threading.Event()
        self.calls = []
        self.poison = set(poison)
        self._gate_armed = gate_first
        self._lock = threading.Lock()

    def __call__(self, texts, k):
        with self._lock:
            self.calls.append(list(texts))
            armed, self._gate_armed = self._gate_armed, False
        if armed:
            self.entered.set()
            assert self.gate.wait(timeout=10.0), "test never released the gate"
        bad = [t for t in texts if t in self.poison]
        if bad:
            raise InjectedFault(f"poisoned: {bad!r}")
        return fake_search(texts, k)


def submit_async(broker, texts, k=3, deadline=None, priority=0):
    """Run broker.submit in a daemon thread; returns (thread, outcome)
    where outcome fills in 'result' or 'error'."""
    outcome = {}

    def run():
        try:
            outcome["result"] = broker.submit(
                texts, k, deadline=deadline, priority=priority
            )
        except BaseException as exc:  # noqa: BLE001 - recorded for asserts
            outcome["error"] = exc

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    return thread, outcome


def wait_until(predicate, timeout=10.0, interval=0.001):
    """Poll ``predicate`` (deadlock guard only — never a timing assert)."""
    import time as _time

    end = _time.monotonic() + timeout
    while _time.monotonic() < end:
        if predicate():
            return
        _time.sleep(interval)
    raise AssertionError("condition not reached within timeout")


# ----------------------------------------------------------------------
# Broker basics
# ----------------------------------------------------------------------
class TestBrokerBasics:
    def test_single_request_round_trip(self):
        broker = RequestBroker(fake_search, window_ms=0.0)
        ids, scores = broker.submit(["alpha", "beta"], 4)
        expected_ids, expected_scores = fake_search(["alpha", "beta"], 4)
        np.testing.assert_array_equal(ids, expected_ids)
        np.testing.assert_allclose(scores, expected_scores)
        assert broker.queue_depth == 0
        assert broker.metrics.counter("frontend.completed").value == 1

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            RequestBroker(fake_search, window_ms=-1.0)
        with pytest.raises(ValueError):
            RequestBroker(fake_search, max_batch=0)
        with pytest.raises(ValueError):
            RequestBroker(fake_search, max_queue_depth=0)
        with pytest.raises(ValueError):
            RequestBroker(fake_search, priority_levels=0)
        broker = RequestBroker(fake_search, priority_levels=2)
        with pytest.raises(ValueError):
            broker.submit(["x"], 1, priority=2)
        with pytest.raises(ValueError):
            broker.submit(["x"], 1, priority=-1)

    def test_trims_each_request_to_its_own_k(self):
        search = GatedSearch()
        broker = RequestBroker(search, window_ms=0.0, max_batch=8)
        lead_thread, lead = submit_async(broker, ["lead"], k=2)
        assert search.entered.wait(timeout=10.0)
        small_thread, small = submit_async(broker, ["small"], k=1)
        big_thread, big = submit_async(broker, ["big"], k=5)
        wait_until(lambda: broker.pending_requests == 2)
        search.gate.set()
        for thread in (lead_thread, small_thread, big_thread):
            thread.join(timeout=10.0)
        assert small["result"][0].shape == (1, 1)
        assert big["result"][0].shape == (1, 5)
        np.testing.assert_array_equal(
            small["result"][0], fake_search(["small"], 1)[0]
        )
        np.testing.assert_array_equal(big["result"][0], fake_search(["big"], 5)[0])


# ----------------------------------------------------------------------
# Admission control: shed under burst
# ----------------------------------------------------------------------
class TestAdmissionControl:
    def test_shed_under_burst_exactly_at_depth(self):
        search = GatedSearch()
        broker = RequestBroker(search, window_ms=0.0, max_queue_depth=3)
        # Leader occupies the batch in flight; two followers fill the
        # queue to exactly max_queue_depth admitted-but-unfinished.
        threads = [submit_async(broker, ["q0"], k=2)]
        assert search.entered.wait(timeout=10.0)
        threads.append(submit_async(broker, ["q1"], k=2))
        threads.append(submit_async(broker, ["q2"], k=2))
        wait_until(lambda: broker.queue_depth == 3)

        with pytest.raises(Overloaded) as excinfo:
            broker.submit(["q3"], 2)
        assert excinfo.value.queue_depth == 3
        assert excinfo.value.max_queue_depth == 3
        assert broker.metrics.counter("frontend.shed").value == 1

        # Release: every admitted request still completes.
        search.gate.set()
        for thread, outcome in threads:
            thread.join(timeout=10.0)
            assert "result" in outcome
        assert broker.queue_depth == 0
        assert broker.metrics.counter("frontend.admitted").value == 3
        assert broker.metrics.counter("frontend.completed").value == 3
        # Capacity is restored after the burst drains.
        broker.submit(["q4"], 2)
        assert broker.metrics.counter("frontend.shed").value == 1

    def test_unbounded_broker_never_sheds(self):
        search = GatedSearch()
        broker = RequestBroker(search, window_ms=0.0, max_queue_depth=None)
        threads = [submit_async(broker, [f"q{i}"], k=2) for i in range(1)]
        assert search.entered.wait(timeout=10.0)
        threads += [submit_async(broker, [f"q{i}"], k=2) for i in range(1, 12)]
        wait_until(lambda: broker.queue_depth == 12)
        search.gate.set()
        for thread, outcome in threads:
            thread.join(timeout=10.0)
            assert "result" in outcome
        assert broker.metrics.counter("frontend.shed").value == 0


# ----------------------------------------------------------------------
# Deadlines
# ----------------------------------------------------------------------
class TestDeadlines:
    def test_expired_at_admission_fails_fast(self):
        clock = FakeClock(start=100.0)
        broker = RequestBroker(fake_search, window_ms=0.0, clock=clock)
        with pytest.raises(DeadlineExceeded) as excinfo:
            broker.submit(["late"], 2, deadline=99.5)
        assert excinfo.value.late_s == pytest.approx(0.5)
        assert broker.queue_depth == 0
        assert broker.metrics.counter("frontend.expired").value == 1
        assert broker.metrics.counter("frontend.admitted").value == 0

    def test_deadline_expiry_inside_coalescer(self):
        """A request admitted in time but stuck behind a slow batch is
        dropped with DeadlineExceeded when its deadline passes."""
        clock = FakeClock(start=0.0)
        search = GatedSearch()
        broker = RequestBroker(search, window_ms=0.0, clock=clock)
        lead_thread, lead = submit_async(broker, ["lead"], k=2)
        assert search.entered.wait(timeout=10.0)
        # Admitted with 50ms of budget while the leader's batch is stuck.
        late_thread, late = submit_async(broker, ["late"], k=2, deadline=0.05)
        ok_thread, ok = submit_async(broker, ["ok"], k=2, deadline=10.0)
        wait_until(lambda: broker.pending_requests == 2)
        clock.advance(0.1)  # now = 0.1 > 0.05: "late" missed its deadline
        search.gate.set()
        for thread in (lead_thread, late_thread, ok_thread):
            thread.join(timeout=10.0)
        assert "result" in lead and "result" in ok
        assert isinstance(late["error"], DeadlineExceeded)
        assert late["error"].late_s == pytest.approx(0.05)
        # The expired request never reached the backend.
        assert ["late"] not in search.calls
        assert broker.metrics.counter("frontend.expired").value == 1
        assert broker.metrics.counter("frontend.completed").value == 2
        assert broker.queue_depth == 0

    def test_deadline_cuts_window_short(self):
        """The leader flushes at the earliest deadline, not the full
        window: with a 10-minute window on a fake clock, a 50ms deadline
        still gets served (fake wait_for consumes the timeout)."""
        clock = FakeClock(start=0.0)
        broker = RequestBroker(
            fake_search, window_ms=600_000.0, clock=clock
        )
        ids, _ = broker.submit(["q"], 2, deadline=0.05)
        np.testing.assert_array_equal(ids, fake_search(["q"], 2)[0])
        # The leader slept only up to the deadline, not the window.
        assert clock.now() <= 0.06


# ----------------------------------------------------------------------
# Priorities
# ----------------------------------------------------------------------
class TestPriorities:
    def test_backlog_drains_priority_zero_first(self):
        search = GatedSearch()
        broker = RequestBroker(
            search, window_ms=0.0, max_batch=1, priority_levels=3
        )
        threads = [submit_async(broker, ["lead"], k=2)]
        assert search.entered.wait(timeout=10.0)
        # Backlog arrives as low, high, low, high (admission order).
        threads.append(submit_async(broker, ["low-a"], k=2, priority=2))
        wait_until(lambda: broker.pending_requests == 1)
        threads.append(submit_async(broker, ["high-a"], k=2, priority=0))
        wait_until(lambda: broker.pending_requests == 2)
        threads.append(submit_async(broker, ["low-b"], k=2, priority=2))
        wait_until(lambda: broker.pending_requests == 3)
        threads.append(submit_async(broker, ["high-b"], k=2, priority=0))
        wait_until(lambda: broker.pending_requests == 4)
        search.gate.set()
        for thread, outcome in threads:
            thread.join(timeout=10.0)
            assert "result" in outcome
        # max_batch=1 forces one request per chunk, exposing drain order:
        # urgent level 0 first, admission order within each level.
        assert search.calls == [
            ["lead"],
            ["high-a"],
            ["high-b"],
            ["low-a"],
            ["low-b"],
        ]


# ----------------------------------------------------------------------
# Per-item error channel
# ----------------------------------------------------------------------
class TestErrorIsolation:
    def test_poisoned_query_fails_alone_in_broker(self):
        search = GatedSearch(poison={"POISON"})
        broker = RequestBroker(search, window_ms=0.0, max_batch=8)
        threads = [submit_async(broker, ["lead"], k=2)]
        assert search.entered.wait(timeout=10.0)
        threads.append(submit_async(broker, ["clean-a"], k=2))
        threads.append(submit_async(broker, ["POISON"], k=2))
        threads.append(submit_async(broker, ["clean-b"], k=2))
        wait_until(lambda: broker.pending_requests == 3)
        search.gate.set()
        outcomes = []
        for thread, outcome in threads:
            thread.join(timeout=10.0)
            outcomes.append(outcome)
        lead, clean_a, poison, clean_b = outcomes
        assert "result" in lead
        assert "result" in clean_a and "result" in clean_b
        np.testing.assert_array_equal(
            clean_a["result"][0], fake_search(["clean-a"], 2)[0]
        )
        assert isinstance(poison["error"], InjectedFault)
        assert broker.metrics.counter("frontend.isolations").value == 1
        assert broker.metrics.counter("frontend.failed").value == 1
        assert broker.metrics.counter("frontend.completed").value == 3
        assert broker.queue_depth == 0

    def test_single_request_failure_is_delivered_directly(self):
        search = GatedSearch(gate_first=False, poison={"POISON"})
        broker = RequestBroker(search, window_ms=0.0)
        with pytest.raises(InjectedFault):
            broker.submit(["POISON"], 2)
        # Already isolated: no split-and-retry for a one-request batch.
        assert broker.metrics.counter("frontend.isolations").value == 0
        assert broker.metrics.counter("frontend.failed").value == 1
        assert broker.queue_depth == 0

    def test_transient_batch_failure_recovers_via_isolation(self, encoder):
        """Regression with FaultyBackend: a backend that rejects
        multi-query batches but serves single queries fine used to fail
        every caller in the coalesced batch; with the per-item error
        channel, isolation reruns each request alone and everyone gets
        an answer."""
        gate = threading.Event()
        entered = threading.Event()
        service = ShardedMatchService(encoder, config=tiny_config())
        service.index_records(CORPUS)
        faulty = FaultyBackend(
            service._live_backend,
            gate=gate,
            entered=entered,
            fail_batch_larger_than=1,
        )
        service._live_backend = faulty

        outcomes = []

        def query(text):
            outcome = {}
            outcomes.append(outcome)

            def run():
                try:
                    outcome["result"] = service.search([text], k=3)
                except BaseException as exc:  # noqa: BLE001
                    outcome["error"] = exc

            thread = threading.Thread(target=run, daemon=True)
            thread.start()
            return thread

        threads = [query(CORPUS[0])]  # leader: 1-row query held at the gate
        assert entered.wait(timeout=10.0)
        threads.append(query(CORPUS[1]))
        threads.append(query(CORPUS[2]))
        wait_until(lambda: len(service._coalescer._pending) == 2)
        gate.set()
        for thread in threads:
            thread.join(timeout=10.0)
        for row, outcome in enumerate(outcomes):
            assert "result" in outcome, outcome.get("error")
            assert int(outcome["result"][0][0, 0]) == row  # self is top-1
        # The 2-query batch failed once, then each ran alone.
        assert service.coalesce_stats()["isolations"] == 1
        assert faulty.query_calls == 4  # leader + failed pair + 2 solos

    def test_coalescer_isolation_end_to_end(self, encoder):
        """Regression for the QueryCoalescer per-item error channel: a
        poisoned query in a coalesced service batch fails alone while
        its batch-mates get answers."""
        gate = threading.Event()
        entered = threading.Event()
        store = FaultyStore(
            encoder,
            poison_texts={"POISON"},
            embed_gate=gate,
            embed_entered=entered,
        )
        service = ShardedMatchService(encoder, config=tiny_config(), store=store)
        gate.set()  # let index_records embed freely
        service.index_records(CORPUS)
        gate.clear()
        entered.clear()

        outcomes = []

        def query(text):
            outcome = {}
            outcomes.append((text, outcome))

            def run():
                try:
                    outcome["result"] = service.search([text], k=3)
                except BaseException as exc:  # noqa: BLE001
                    outcome["error"] = exc

            thread = threading.Thread(target=run, daemon=True)
            thread.start()
            return thread

        threads = [query(CORPUS[0])]  # leader: blocks in the gated embed
        assert entered.wait(timeout=10.0)
        threads.append(query("POISON"))
        threads.append(query(CORPUS[1]))
        wait_until(lambda: len(service._coalescer._pending) == 2)
        gate.set()
        for thread in threads:
            thread.join(timeout=10.0)
        results = dict(outcomes)
        assert "result" in results[CORPUS[0]]
        assert "result" in results[CORPUS[1]]
        assert isinstance(results["POISON"]["error"], InjectedFault)
        # The clean batch-mate's answer is correct, not just present.
        expected_ids, _ = service.search_batch([CORPUS[1]], k=3)
        np.testing.assert_array_equal(
            results[CORPUS[1]]["result"][0], expected_ids
        )
        assert service.coalesce_stats()["isolations"] >= 1


# ----------------------------------------------------------------------
# ServiceFrontend: wiring, deadlines from config, metrics
# ----------------------------------------------------------------------
class TestServiceFrontend:
    def test_search_matches_uncoalesced_service(self, encoder):
        frontend = make_frontend(encoder)
        queries = [CORPUS[2], CORPUS[9], "[COL] name [VAL] record-7"]
        ids, scores = frontend.search(queries, k=5)
        expected_ids, expected_scores = frontend.service.search_batch(queries, 5)
        np.testing.assert_array_equal(ids, expected_ids)
        np.testing.assert_allclose(scores, expected_scores)

    def test_default_deadline_comes_from_config(self, encoder):
        clock = FakeClock(start=50.0)
        frontend = make_frontend(encoder, clock=clock, default_deadline_ms=20.0)
        # Make "now" pass the default deadline while the request is
        # queued: gate the embed step, advance, release.
        gate = threading.Event()
        entered = threading.Event()
        real_run = frontend.service.search_batch

        def gated_run(texts, k):
            entered.set()
            assert gate.wait(timeout=10.0)
            return real_run(texts, k)

        frontend.broker._run_batch = gated_run
        lead_outcome = {}

        def lead():
            try:
                lead_outcome["result"] = frontend.search([CORPUS[0]], k=2)
            except BaseException as exc:  # noqa: BLE001
                lead_outcome["error"] = exc

        lead_thread = threading.Thread(target=lead, daemon=True)
        lead_thread.start()
        assert entered.wait(timeout=10.0)
        late_outcome = {}

        def follower():
            try:
                late_outcome["result"] = frontend.search([CORPUS[1]], k=2)
            except BaseException as exc:  # noqa: BLE001
                late_outcome["error"] = exc

        follower_thread = threading.Thread(target=follower, daemon=True)
        follower_thread.start()
        wait_until(lambda: frontend.broker.pending_requests == 1)
        clock.advance(0.05)  # 50ms > the 20ms default budget
        gate.set()
        lead_thread.join(timeout=10.0)
        follower_thread.join(timeout=10.0)
        assert "result" in lead_outcome
        assert isinstance(late_outcome["error"], DeadlineExceeded)

    def test_explicit_deadline_overrides_config_default(self, encoder):
        clock = FakeClock(start=10.0)
        frontend = make_frontend(encoder, clock=clock, default_deadline_ms=0.001)
        # With the tiny default this would expire at admission, but an
        # explicit generous deadline wins.
        ids, _ = frontend.search([CORPUS[0]], k=3, deadline_ms=10_000.0)
        assert ids.shape == (1, 3)

    def test_metrics_snapshot_threads_all_components(self, encoder):
        frontend = make_frontend(encoder, max_queue_depth=4)
        frontend.search([CORPUS[0], CORPUS[1]], k=3)
        frontend.search([CORPUS[2]], k=3)
        with pytest.raises(DeadlineExceeded):
            frontend.search([CORPUS[3]], k=3, deadline_ms=0.0)
        snapshot = frontend.metrics_snapshot()
        counters = snapshot["counters"]
        assert counters["frontend.admitted"] == 2
        assert counters["frontend.completed"] == 2
        assert counters["frontend.expired"] == 1
        # Store cache counters are threaded through bind_metrics: every
        # searched text was already cached by the index build, so the
        # three served queries are three hits.
        assert counters["store.hits"] == 3
        latency = snapshot["histograms"]["frontend.latency_s"]
        assert latency["count"] == 2
        assert latency["p50"] >= 0.0
        batch_size = snapshot["histograms"]["frontend.batch_size"]
        assert batch_size["count"] == 2
        service_stats = snapshot["service"]
        assert service_stats["generation"] == 0
        assert service_stats["index_size"] == len(CORPUS)
        assert service_stats["num_shards"] == 3
        assert 0.0 <= service_stats["store"]["hit_rate"] <= 1.0
        assert snapshot["gauges"]["frontend.index_generation"] == 0.0

    def test_mutations_pass_through(self, encoder):
        frontend = make_frontend(encoder)
        extra = "[COL] name [VAL] record-extra"
        frontend.upsert_records([extra])
        assert frontend.index_size == len(CORPUS) + 1
        ids, _ = frontend.search([extra], k=1)
        assert frontend.record_text(int(ids[0, 0])) == extra
        frontend.delete_records([extra])
        assert frontend.index_size == len(CORPUS)

    def test_build_frontend_and_session_serve(self, encoder):
        frontend = build_frontend(
            ShardedMatchService(encoder, config=tiny_config())
        )
        assert isinstance(frontend, ServiceFrontend)

        session = SudowoodoSession(tiny_config()).adopt(encoder)
        served = session.serve(
            frontend=True, max_queue_depth=5, priority_levels=2
        )
        assert isinstance(served, ServiceFrontend)
        assert served.broker.max_queue_depth == 5
        assert served.broker.priority_levels == 2
        served.index_records(CORPUS)
        ids, _ = served.search([CORPUS[4]], k=1)
        assert int(ids[0, 0]) == 4
        # Plain serve() still returns the bare service.
        bare = session.serve()
        assert isinstance(bare, ShardedMatchService)
        assert not isinstance(bare, ServiceFrontend)


# ----------------------------------------------------------------------
# Blue/green reindex
# ----------------------------------------------------------------------
class TestReindex:
    def test_reindex_swaps_to_new_encoder(self, encoder, encoder_b):
        frontend = make_frontend(encoder)
        queries = CORPUS[:6]
        before_ids, _ = frontend.search(queries, k=5)
        old_service = frontend.service

        generation = frontend.reindex(encoder_b)
        assert generation == 1
        assert frontend.generation == 1
        assert frontend.service is not old_service
        assert frontend.index_size == len(CORPUS)

        after_ids, _ = frontend.search(queries, k=5)
        # The new index answers exactly like a from-scratch service on
        # the new encoder (ids restart at 0 in corpus order).
        expected_service = ShardedMatchService(encoder_b, config=tiny_config())
        expected_service.index_records(CORPUS)
        expected_ids, _ = expected_service.search_batch(queries, 5)
        np.testing.assert_array_equal(after_ids, expected_ids)
        assert not np.array_equal(after_ids, before_ids)
        snapshot = frontend.metrics_snapshot()
        assert snapshot["counters"]["frontend.reindexes"] == 1
        assert snapshot["gauges"]["frontend.index_generation"] == 1.0
        assert snapshot["service"]["generation"] == 1

    def test_reindex_adopts_warm_token_cache(self, encoder, encoder_b):
        # Clones start with cold caches, so this test cannot perturb (or
        # be perturbed by) the module-scoped fixtures' cache state.
        live = encoder.clone()
        shadow = encoder_b.clone()
        frontend = make_frontend(live)  # index_records warms live's cache
        live_stats = live.token_cache_stats()
        assert live_stats["size"] == len(CORPUS)

        frontend.reindex(shadow)
        # Same vocabulary: the shadow encoder reused the live cache, so
        # the rebuild tokenized nothing from scratch.
        assert shadow.token_cache() is live.token_cache()
        stats = shadow.token_cache_stats()
        assert stats["size"] == len(CORPUS)
        assert stats["hits"] >= live_stats["hits"] + len(CORPUS)
        assert stats["misses"] == live_stats["misses"]

    def test_reindex_failure_mid_build_keeps_old_index(self, encoder, encoder_b):
        frontend = make_frontend(encoder)
        queries = CORPUS[:6]
        before_ids, before_scores = frontend.search(queries, k=5)
        old_service = frontend.service

        faulty = FaultyStore(encoder_b, fail_upsert_after=0)
        with pytest.raises(InjectedFault):
            frontend.reindex(encoder_b, store=faulty)

        # The swap never happened: same service object, same generation,
        # byte-identical answers.
        assert frontend.service is old_service
        assert frontend.generation == 0
        assert frontend.index_size == len(CORPUS)
        after_ids, after_scores = frontend.search(queries, k=5)
        np.testing.assert_array_equal(after_ids, before_ids)
        np.testing.assert_array_equal(after_scores, before_scores)
        snapshot = frontend.metrics_snapshot()
        assert snapshot["counters"]["frontend.reindex_failures"] == 1
        assert "frontend.reindexes" not in snapshot["counters"]
        # And a later healthy reindex still succeeds.
        assert frontend.reindex(encoder_b) == 1

    def test_reindex_preserves_corpus_and_matcher(self, encoder, encoder_b):
        frontend = make_frontend(encoder)
        extra = "[COL] name [VAL] record-upserted"
        frontend.upsert_records([extra])
        frontend.reindex(encoder_b)
        # The default corpus is the *live* corpus, including the upsert.
        assert frontend.index_size == len(CORPUS) + 1
        ids, _ = frontend.search([extra], k=1)
        assert frontend.record_text(int(ids[0, 0])) == extra


# ----------------------------------------------------------------------
# Stress: blue/green swap under concurrent query load
# ----------------------------------------------------------------------
@pytest.mark.stress
class TestReindexUnderLoad:
    def test_no_mixed_results_during_swaps(self, encoder, encoder_b):
        """8 threads hammer search while the main thread swaps the index
        back and forth; every answer must match the complete old or the
        complete new index — never a row mixing the two."""
        frontend = make_frontend(encoder, coalesce_window_ms=0.2)
        queries = CORPUS[:8]
        k = 5

        # Expected answers for both generations, computed on identical
        # from-scratch builds (embeddings are batch-independent, so
        # coalesced batches answer identically).
        expected = {}
        for name, enc in (("blue", encoder), ("green", encoder_b)):
            service = ShardedMatchService(enc, config=tiny_config())
            service.index_records(CORPUS)
            expected[name] = service.search_batch(queries, k)[0]
        assert not np.array_equal(expected["blue"], expected["green"])

        stop = threading.Event()
        failures = []
        mixed = []
        completed = [0] * 8

        def worker(worker_index):
            rng = np.random.default_rng(worker_index)
            while not stop.is_set():
                qi = int(rng.integers(len(queries)))
                try:
                    ids, _ = frontend.search([queries[qi]], k=k)
                except BaseException as exc:  # noqa: BLE001
                    failures.append(exc)
                    return
                row = ids[0]
                if not (
                    np.array_equal(row, expected["blue"][qi])
                    or np.array_equal(row, expected["green"][qi])
                ):
                    mixed.append((qi, row.tolist()))
                    return
                completed[worker_index] += 1

        threads = [
            threading.Thread(target=worker, args=(i,), daemon=True)
            for i in range(8)
        ]
        for thread in threads:
            thread.start()
        try:
            for target in (encoder_b, encoder, encoder_b, encoder):
                frontend.reindex(target)
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=30.0)

        assert not failures, f"queries failed during reindex: {failures!r}"
        assert not mixed, f"mixed old/new results observed: {mixed!r}"
        assert frontend.generation == 4
        assert sum(completed) > 0
        # Final state answers purely from the last-published index.
        final_ids, _ = frontend.search(queries, k=k)
        np.testing.assert_array_equal(final_ids, expected["blue"][: len(queries)])
