"""Serving-layer tests: EmbeddingStore caching + persistence, ANN backend
parity and mutability, the streaming MatchService APIs, incremental
blocking, and single-encoding pipeline integration."""

import numpy as np
import pytest

from repro.core import (
    Blocker,
    SudowoodoConfig,
    SudowoodoEncoder,
    SudowoodoPipeline,
    build_tokenizer,
)
from repro.data.generators import load_em_benchmark
from repro.serve import (
    EmbeddingStore,
    ExactBackend,
    HNSWBackend,
    LSHBackend,
    MatchService,
    available_backends,
    build_backend,
    register_backend,
)
from repro.text import top_k_cosine
from repro.utils import spawn_rng


def tiny_config(**overrides) -> SudowoodoConfig:
    defaults = dict(
        dim=16,
        num_layers=1,
        num_heads=2,
        ffn_dim=32,
        max_seq_len=24,
        pair_max_seq_len=40,
        vocab_size=400,
        pretrain_epochs=1,
        pretrain_batch_size=8,
        num_clusters=3,
        corpus_cap=32,
        mlm_warm_start_epochs=0,
        seed=0,
    )
    defaults.update(overrides)
    return SudowoodoConfig(**defaults)


@pytest.fixture(scope="module")
def dataset():
    return load_em_benchmark("AB", scale=0.02, max_table_size=24)


@pytest.fixture(scope="module")
def encoder(dataset):
    config = tiny_config()
    return SudowoodoEncoder(config, build_tokenizer(dataset.all_items(), config))


# ----------------------------------------------------------------------
class TestEmbeddingStore:
    def test_miss_then_hit(self, dataset, encoder):
        store = EmbeddingStore(encoder)
        texts = dataset.all_items()[:6]
        first = store.embed_batch(texts)
        assert store.misses == len(set(texts))
        assert store.hits == len(texts) - len(set(texts))
        second = store.embed_batch(texts)
        np.testing.assert_array_equal(first, second)
        assert store.misses == len(set(texts))  # nothing re-encoded
        assert store.stats()["hit_rate"] > 0.0

    def test_duplicates_encoded_once(self, dataset, encoder):
        store = EmbeddingStore(encoder)
        text = dataset.all_items()[0]
        matrix = store.embed_batch([text, text, text])
        assert len(store) == 1
        assert store.misses == 1 and store.hits == 2
        np.testing.assert_array_equal(matrix[0], matrix[1])

    def test_matches_direct_encoding(self, dataset, encoder):
        store = EmbeddingStore(encoder, batch_size=4)
        texts = dataset.all_items()[:8]
        np.testing.assert_allclose(
            store.embed_batch(texts),
            encoder.embed_items(texts, normalize=False),
            atol=1e-9,
        )

    def test_normalize_returns_unit_rows(self, dataset, encoder):
        store = EmbeddingStore(encoder)
        matrix = store.embed_batch(dataset.all_items()[:5], normalize=True)
        np.testing.assert_allclose(np.linalg.norm(matrix, axis=1), 1.0, atol=1e-9)

    def test_capacity_lru_eviction(self, dataset, encoder):
        store = EmbeddingStore(encoder, capacity=2)
        texts = dataset.all_items()[:3]
        store.embed_batch(texts)
        assert len(store) == 2
        assert texts[0] not in store  # oldest evicted
        assert texts[2] in store

    def test_persistence_roundtrip(self, dataset, encoder, tmp_path):
        store = EmbeddingStore(encoder)
        texts = dataset.all_items()[:6]
        original = store.embed_batch(texts)
        store.save(tmp_path / "cache.npz")

        fresh = EmbeddingStore(encoder)
        loaded = fresh.load(tmp_path / "cache.npz")
        assert loaded == len(set(texts))
        reloaded = fresh.embed_batch(texts)
        assert fresh.misses == 0  # every lookup served from the loaded cache
        np.testing.assert_allclose(original, reloaded, atol=1e-12)

    def test_load_rejects_other_encoder(self, dataset, encoder, tmp_path):
        store = EmbeddingStore(encoder)
        store.embed_batch(dataset.all_items()[:4])
        path = store.save(tmp_path / "cache.npz")

        other_config = tiny_config(seed=7)
        other = SudowoodoEncoder(
            other_config, build_tokenizer(dataset.all_items(), other_config)
        )
        with pytest.raises(ValueError):
            EmbeddingStore(other).load(path)
        # Same dimension: non-strict load is allowed.
        assert EmbeddingStore(other).load(path, strict=False) == 4

    def test_load_rejects_mutated_weights(self, dataset, tmp_path):
        """In-place fine-tuning changes weights but not config/vocab; a
        strict load must still reject the now-stale cache."""
        config = tiny_config()
        enc = SudowoodoEncoder(config, build_tokenizer(dataset.all_items(), config))
        store = EmbeddingStore(enc)
        store.embed_batch(dataset.all_items()[:4])
        path = store.save(tmp_path / "cache.npz")

        enc.projector.weight.data += 0.5  # simulate fine-tuning drift
        with pytest.raises(ValueError):
            EmbeddingStore(enc).load(path)

    def test_load_rejects_dim_mismatch(self, dataset, encoder, tmp_path):
        store = EmbeddingStore(encoder)
        store.embed_batch(dataset.all_items()[:4])
        path = store.save(tmp_path / "cache.npz")

        small_config = tiny_config(dim=8, ffn_dim=16)
        small = SudowoodoEncoder(
            small_config, build_tokenizer(dataset.all_items(), small_config)
        )
        with pytest.raises(ValueError):
            EmbeddingStore(small).load(path, strict=False)


# ----------------------------------------------------------------------
class TestBackends:
    @pytest.fixture(scope="class")
    def vectors(self):
        rng = spawn_rng(0, "serve-backend-test")
        matrix = rng.normal(size=(200, 16))
        return matrix / np.linalg.norm(matrix, axis=1, keepdims=True)

    def test_exact_matches_top_k_cosine(self, vectors):
        backend = ExactBackend().build(vectors)
        indices, scores = backend.query(vectors[:20], k=5)
        expected_indices, expected_scores = top_k_cosine(vectors[:20], vectors, k=5)
        np.testing.assert_array_equal(indices, expected_indices)
        np.testing.assert_allclose(scores, expected_scores)

    def test_lsh_recall_parity(self, vectors):
        backend = LSHBackend(num_tables=32, num_bits=4, seed=0).build(vectors)
        approx, _ = backend.query(vectors, k=5)
        exact, _ = ExactBackend().build(vectors).query(vectors, k=5)
        hits = sum(
            len(set(exact[row]) & set(i for i in approx[row] if i >= 0))
            for row in range(vectors.shape[0])
        )
        recall = hits / exact.size
        assert recall >= 0.95

    def test_lsh_deterministic(self, vectors):
        first, _ = LSHBackend(num_tables=8, num_bits=6, seed=3).build(vectors).query(
            vectors[:10], k=4
        )
        second, _ = LSHBackend(num_tables=8, num_bits=6, seed=3).build(vectors).query(
            vectors[:10], k=4
        )
        np.testing.assert_array_equal(first, second)

    def test_lsh_pads_short_rows(self, vectors):
        backend = LSHBackend(num_tables=4, num_bits=2, seed=0).build(vectors[:3])
        indices, scores = backend.query(vectors[:2], k=5)
        assert indices.shape == (2, 5)
        assert (indices[:, 3:] == -1).all()
        assert np.isneginf(scores[:, 3:]).all()

    def test_query_before_build_raises(self, vectors):
        with pytest.raises(RuntimeError):
            ExactBackend().query(vectors[:2], k=3)
        with pytest.raises(RuntimeError):
            LSHBackend().query(vectors[:2], k=3)

    def test_registry(self):
        assert {"exact", "lsh"} <= set(available_backends())
        config = SudowoodoConfig(ann_backend="lsh", lsh_num_tables=5, lsh_num_bits=3)
        backend = build_backend(config)
        assert isinstance(backend, LSHBackend)
        assert backend.num_tables == 5 and backend.num_bits == 3
        with pytest.raises(ValueError):
            build_backend(config, name="no-such-index")

    def test_register_custom_backend(self):
        register_backend("custom-exact", lambda config: ExactBackend())
        try:
            backend = build_backend(name="custom-exact")
            assert isinstance(backend, ExactBackend)
        finally:
            from repro.serve import backends as backends_module

            backends_module._BACKENDS.pop("custom-exact", None)


# ----------------------------------------------------------------------
def make_backend(name):
    if name == "exact":
        return ExactBackend()
    if name == "lsh":
        return LSHBackend(num_tables=32, num_bits=4, seed=0)
    return HNSWBackend(seed=0)


class TestMutableBackends:
    """add / remove / rebuild across every built-in backend."""

    @pytest.fixture(scope="class")
    def vectors(self):
        rng = spawn_rng(0, "mutable-backend-test")
        matrix = rng.normal(size=(120, 16))
        return matrix / np.linalg.norm(matrix, axis=1, keepdims=True)

    @pytest.fixture(scope="class")
    def extra(self):
        rng = spawn_rng(1, "mutable-backend-extra")
        matrix = rng.normal(size=(6, 16))
        return matrix / np.linalg.norm(matrix, axis=1, keepdims=True)

    @pytest.mark.parametrize("name", ["exact", "lsh", "hnsw"])
    def test_supports_updates_flag(self, name):
        assert make_backend(name).supports_updates

    @pytest.mark.parametrize("name", ["exact", "lsh", "hnsw"])
    def test_add_new_records_visible(self, name, vectors, extra):
        backend = make_backend(name).build(vectors)
        assert len(backend) == vectors.shape[0]
        ids = np.arange(500, 500 + extra.shape[0])
        backend.add(ids, extra)
        assert len(backend) == vectors.shape[0] + extra.shape[0]
        found, scores = backend.query(extra, k=3)
        for row in range(extra.shape[0]):
            assert ids[row] in found[row]  # each new record is its own NN
            assert scores[row, 0] >= scores[row, 1]

    @pytest.mark.parametrize("name", ["exact", "lsh", "hnsw"])
    def test_remove_hides_records(self, name, vectors, extra):
        backend = make_backend(name).build(vectors)
        ids = np.arange(500, 500 + extra.shape[0])
        backend.add(ids, extra)
        backend.remove(ids[:3])
        assert len(backend) == vectors.shape[0] + 3
        found, _ = backend.query(extra[:3], k=5)
        assert not (np.isin(found, ids[:3])).any()
        # Un-removed additions are still served.
        found_kept, _ = backend.query(extra[3:], k=3)
        for row, record_id in enumerate(ids[3:]):
            assert record_id in found_kept[row]

    @pytest.mark.parametrize("name", ["exact", "lsh", "hnsw"])
    def test_upsert_replaces_vector(self, name, vectors, extra):
        backend = make_backend(name).build(vectors)
        backend.add(np.array([900]), extra[:1])
        backend.add(np.array([900]), extra[1:2])  # same id, new vector
        assert len(backend) == vectors.shape[0] + 1
        found, _ = backend.query(extra[1:2], k=3)
        assert 900 in found[0]

    @pytest.mark.parametrize("name", ["exact", "lsh", "hnsw"])
    def test_rebuild_preserves_ids(self, name, vectors, extra):
        backend = make_backend(name).build(vectors)
        ids = np.arange(500, 500 + extra.shape[0])
        backend.add(ids, extra)
        backend.remove(ids[::2])
        live = len(backend)
        backend.rebuild()
        assert len(backend) == live
        found, _ = backend.query(extra[1::2], k=3)
        for row, record_id in enumerate(ids[1::2]):
            assert record_id in found[row]

    @pytest.mark.parametrize("name", ["exact", "lsh", "hnsw"])
    def test_remove_unknown_id_raises(self, name, vectors):
        backend = make_backend(name).build(vectors)
        with pytest.raises(KeyError):
            backend.remove([10_000])

    @pytest.mark.parametrize("name", ["exact", "lsh", "hnsw"])
    def test_duplicate_ids_in_add_rejected(self, name, vectors, extra):
        backend = make_backend(name).build(vectors)
        with pytest.raises(ValueError):
            backend.add(np.array([7, 7]), extra[:2])

    @pytest.mark.parametrize("name", ["exact", "lsh", "hnsw"])
    def test_duplicate_ids_in_remove_rejected_before_mutation(
        self, name, vectors
    ):
        """Regression: a duplicated id used to corrupt bucket/graph state
        halfway through the patch; it must fail atomically instead."""
        backend = make_backend(name).build(vectors)
        with pytest.raises(ValueError):
            backend.remove([5, 5])
        # Nothing was mutated: the id still resolves and can be removed.
        assert len(backend) == vectors.shape[0]
        backend.remove([5])
        assert len(backend) == vectors.shape[0] - 1

    @pytest.mark.parametrize("name", ["exact", "lsh", "hnsw"])
    def test_build_from_empty_then_add(self, name, extra):
        backend = make_backend(name).build(np.zeros((0, 16)))
        assert len(backend) == 0
        found, scores = backend.query(extra[:2], k=4)
        assert (found == -1).all() and np.isneginf(scores).all()
        backend.add(np.array([3, 9]), extra[:2])
        found, _ = backend.query(extra[:1], k=1)
        assert found[0, 0] == 3

    def test_hnsw_recall_parity(self, vectors):
        backend = HNSWBackend(seed=0).build(vectors)
        approx, _ = backend.query(vectors, k=5)
        exact, _ = ExactBackend().build(vectors).query(vectors, k=5)
        hits = sum(
            len(set(exact[row]) & set(i for i in approx[row] if i >= 0))
            for row in range(vectors.shape[0])
        )
        assert hits / exact.size >= 0.9

    def test_hnsw_deterministic(self, vectors):
        first, _ = HNSWBackend(seed=3).build(vectors).query(vectors[:10], k=4)
        second, _ = HNSWBackend(seed=3).build(vectors).query(vectors[:10], k=4)
        np.testing.assert_array_equal(first, second)

    def test_hnsw_query_under_heavy_churn(self, vectors):
        """Deleting most of the corpus must not starve result rows."""
        backend = HNSWBackend(seed=0).build(vectors)
        backend.remove(np.arange(0, 100))
        found, _ = backend.query(vectors[:5], k=10)
        for row in range(5):
            returned = found[row][found[row] >= 0]
            assert returned.size == 10  # 20 live records remain
            assert (returned >= 100).all()

    def test_hnsw_registry_uses_config_knobs(self):
        config = SudowoodoConfig(
            ann_backend="hnsw", hnsw_m=5, hnsw_ef_construction=30, hnsw_ef_search=9
        )
        backend = build_backend(config)
        assert isinstance(backend, HNSWBackend)
        assert backend.m == 5
        assert backend.ef_construction == 30
        assert backend.ef_search == 9

    def test_static_backend_reports_no_update_support(self):
        class Static(ExactBackend):
            supports_updates = False

        backend = Static()
        assert not backend.supports_updates


# ----------------------------------------------------------------------
class TestStableIds:
    """EmbeddingStore record ids: upsert_batch / evict / persistence."""

    def test_upsert_batch_delta_encodes(self, dataset, encoder):
        store = EmbeddingStore(encoder)
        texts = dataset.all_items()[:6]
        ids, vectors = store.upsert_batch(texts)
        assert vectors.shape == (len(texts), store.dim)
        assert store.misses == len(set(texts))
        # Second upsert of an overlapping batch encodes only the delta.
        more = dataset.all_items()[4:8]
        ids2, _ = store.upsert_batch(more)
        assert store.misses == len(set(texts) | set(more))
        # Overlapping texts keep their ids.
        assert ids2[0] == ids[4] and ids2[1] == ids[5]

    def test_ids_stable_across_lru_eviction(self, dataset, encoder):
        store = EmbeddingStore(encoder, capacity=2)
        texts = dataset.all_items()[:3]
        ids, _ = store.upsert_batch(texts)
        assert texts[0] not in store  # vector evicted by capacity...
        ids_again = store.ids_for(texts)
        np.testing.assert_array_equal(ids, ids_again)  # ...but ids survive

    def test_evict_retires_ids_permanently(self, dataset, encoder):
        store = EmbeddingStore(encoder)
        texts = dataset.all_items()[:4]
        ids, _ = store.upsert_batch(texts)
        retired = store.evict(texts[:2])
        np.testing.assert_array_equal(retired, ids[:2])
        assert not store.has_id(int(ids[0]))
        # A re-upserted evicted text is a new record with a fresh id.
        fresh, _ = store.upsert_batch(texts[:1])
        assert fresh[0] not in ids

    def test_evict_unknown_text_raises(self, dataset, encoder):
        store = EmbeddingStore(encoder)
        with pytest.raises(KeyError):
            store.evict(["never seen this"])

    def test_ids_for_without_assign_raises_on_unknown(self, dataset, encoder):
        store = EmbeddingStore(encoder)
        with pytest.raises(KeyError):
            store.ids_for(["unknown text"], assign=False)

    def test_lru_evicted_ids_survive_save_load(self, dataset, encoder, tmp_path):
        """Regression: id assignments must persist even for records whose
        vectors fell out of the LRU cache before the save."""
        store = EmbeddingStore(encoder, capacity=2)
        texts = dataset.all_items()[:5]
        ids, _ = store.upsert_batch(texts)
        assert len(store) == 2  # vectors 0-2 evicted, ids still assigned
        path = store.save(tmp_path / "cache.npz")

        fresh = EmbeddingStore(encoder, capacity=2)
        fresh.load(path)
        np.testing.assert_array_equal(fresh.ids_for(texts, assign=False), ids)

    def test_load_never_rewinds_id_sequence(self, dataset, encoder, tmp_path):
        """Regression: loading an older cache must not rewind next_id and
        reissue ids this store already handed out (and possibly retired)."""
        old_store = EmbeddingStore(encoder)
        old_store.upsert_batch(dataset.all_items()[:2])  # file next_id == 2
        path = old_store.save(tmp_path / "old.npz")

        store = EmbeddingStore(encoder)
        texts = dataset.all_items()[:10]
        ids, _ = store.upsert_batch(texts)
        store.evict(texts)  # all retired; _key_ids empty again
        store.load(path)
        reissued = store.ids_for(["a brand new streaming record"])[0]
        assert reissued not in set(ids.tolist())
        assert reissued >= ids.max() + 1

    def test_failed_reindex_leaves_live_index_intact(self, dataset, encoder):
        """Regression: index_records with an invalid backend must not
        clobber the frozen mean / live index before failing."""
        service = MatchService(encoder, config=tiny_config())
        corpus = dataset.all_items()[:8]
        ids = service.index_records(corpus)
        mean_before = service._index_mean.copy()

        class Static(ExactBackend):
            supports_updates = False

        register_backend("static-for-test", lambda config: Static())
        try:
            service.config = tiny_config(ann_backend="static-for-test")
            with pytest.raises(ValueError, match="does not support"):
                service.index_records(dataset.all_items()[:4])
        finally:
            from repro.serve import backends as backends_module

            backends_module._BACKENDS.pop("static-for-test", None)
        # Old index still serves, under the unchanged mean.
        np.testing.assert_array_equal(service._index_mean, mean_before)
        found, _ = service.search(corpus[:1], k=2)
        assert ids[0] in found[0]

    def test_search_does_not_grow_store(self, dataset, encoder):
        """Query traffic must not populate (or evict from) the corpus cache."""
        service = MatchService(encoder, config=tiny_config())
        corpus = dataset.all_items()[:8]
        service.index_records(corpus)
        size_before = len(service.store)
        service.search(["transient query one", "transient query two"], k=3)
        assert len(service.store) == size_before

    def test_id_state_persists_across_save_load(self, dataset, encoder, tmp_path):
        store = EmbeddingStore(encoder)
        texts = dataset.all_items()[:5]
        ids, _ = store.upsert_batch(texts)
        store.evict(texts[4:5])  # retire one id so next_id > live max + 1
        path = store.save(tmp_path / "cache.npz")

        fresh = EmbeddingStore(encoder)
        fresh.load(path)
        np.testing.assert_array_equal(
            fresh.ids_for(texts[:4], assign=False), ids[:4]
        )
        # The id sequence continues — the retired id is never reused.
        new_id = fresh.ids_for(["a brand new record"])[0]
        assert new_id >= ids[4] + 1


# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend_name", ["exact", "lsh", "hnsw"])
class TestStreamingService:
    """MatchService live index: index / upsert / delete / search."""

    def service(self, encoder, backend_name):
        return MatchService(
            encoder, config=tiny_config(ann_backend=backend_name)
        )

    def test_index_upsert_search_delete_cycle(self, dataset, encoder, backend_name):
        service = self.service(encoder, backend_name)
        corpus = dataset.all_items()[:10]
        ids = service.index_records(corpus)
        assert service.index_size == len(set(corpus))

        misses = service.store.misses
        new_records = dataset.all_items()[10:13]
        new_ids = service.upsert_records(new_records)
        expected_new = len(set(new_records) - set(corpus))
        assert service.store.misses == misses + expected_new  # delta only

        found, scores = service.search(new_records, k=3)
        assert found.shape == (len(new_records), 3)
        for row in range(len(new_records)):
            assert new_ids[row] in found[row]
            assert service.record_text(int(new_ids[row])) == new_records[row]

        retired = service.delete_records(new_records[:1])
        assert retired[0] == new_ids[0]
        found_after, _ = service.search(new_records[:1], k=5)
        assert new_ids[0] not in found_after[0]

    def test_search_without_index_raises(self, dataset, encoder, backend_name):
        service = self.service(encoder, backend_name)
        with pytest.raises(RuntimeError):
            service.search(["x"], k=2)
        with pytest.raises(RuntimeError):
            service.delete_records(["x"])

    def test_delete_unindexed_text_is_noop(self, dataset, encoder, backend_name):
        """Regression: deleting a text that was never indexed (or already
        deleted) is a documented no-op returning an empty id array — and
        it must not evict cached-but-unindexed texts from the store."""
        service = self.service(encoder, backend_name)
        corpus = dataset.all_items()[:6]
        service.index_records(corpus)
        size = service.index_size

        retired = service.delete_records(["never indexed"])
        assert retired.shape == (0,) and retired.dtype == np.int64
        assert service.index_size == size

        # A text cached by batch traffic but never indexed is skipped too,
        # and its cache entry survives (eviction symmetry with the index).
        cached_only = "[COL] name [VAL] cached but never indexed"
        service.embed_batch([cached_only])
        assert cached_only in service.store
        assert service.delete_records([cached_only]).size == 0
        assert cached_only in service.store

        # Mixed batches retire exactly the indexed subset, once each.
        real = service.delete_records(
            [corpus[0], "never indexed", corpus[0], corpus[1]]
        )
        assert real.size == 2
        assert service.index_size == size - 2
        # Deleting the same records again is now a no-op as well.
        assert service.delete_records([corpus[0], corpus[1]]).size == 0

    def test_deleted_record_never_resurrected(self, dataset, encoder, backend_name):
        service = self.service(encoder, backend_name)
        corpus = dataset.all_items()[:8]
        service.index_records(corpus)
        old_id = int(service.delete_records(corpus[:1])[0])
        new_id = int(service.upsert_records(corpus[:1])[0])
        assert new_id != old_id  # fresh identity for the re-added record
        found, _ = service.search(corpus[:1], k=3)
        assert new_id in found[0] and old_id not in found[0]

    def test_rebuild_index_keeps_serving(self, dataset, encoder, backend_name):
        service = self.service(encoder, backend_name)
        corpus = dataset.all_items()[:10]
        ids = service.index_records(corpus)
        service.delete_records(corpus[:3])
        service.rebuild_index()
        assert service.index_size == len(set(corpus)) - 3
        found, _ = service.search(corpus[3:4], k=2)
        assert ids[3] in found[0]


# ----------------------------------------------------------------------
class TestIncrementalBlocker:
    def test_upsert_b_encodes_only_new(self, dataset, encoder):
        store = EmbeddingStore(encoder)
        blocker = Blocker(encoder, dataset, store=store)
        misses = store.misses
        new_texts = ["[COL] name [VAL] streaming gadget x"]
        ids = blocker.upsert_b(new_texts)
        assert store.misses == misses + 1
        assert blocker.num_live_b == len(dataset.table_b) + 1
        candidate_set = blocker.candidates(k=3)
        assert candidate_set.num_b == blocker.num_live_b
        assert ids[0] == len(dataset.table_b)

    def test_new_record_appears_in_candidates(self, dataset, encoder):
        store = EmbeddingStore(encoder)
        blocker = Blocker(encoder, dataset, store=store)
        # Upsert a clone of A record 0: it must become a top candidate.
        clone = dataset.serialize_a(0)
        ids = blocker.upsert_b([clone])
        candidate_set = blocker.candidates(k=3)
        assert candidate_set.contains(0, int(ids[0]))

    def test_delete_b_hides_candidates(self, dataset, encoder):
        blocker = Blocker(encoder, dataset, store=EmbeddingStore(encoder))
        before = blocker.candidates(k=2)
        target_b = before.pairs[0][1]
        blocker.delete_b([target_b])
        after = blocker.candidates(k=2)
        assert all(b != target_b for _, b in after.pairs)
        assert after.num_b == before.num_b - 1
        with pytest.raises(KeyError):
            blocker.delete_b([target_b])  # already deleted

    def test_rebuild_recenters_without_reencoding(self, dataset, encoder):
        store = EmbeddingStore(encoder)
        blocker = Blocker(encoder, dataset, store=store)
        blocker.upsert_b(["[COL] name [VAL] churn item"])
        ids = blocker.upsert_b(["[COL] name [VAL] second churn item"])
        blocker.delete_b(ids)
        misses = store.misses
        blocker.rebuild()
        assert store.misses == misses  # cache-only rebuild
        candidate_set = blocker.candidates(k=2)
        assert candidate_set.num_b == blocker.num_live_b
        assert all(b != ids[0] for _, b in candidate_set.pairs)

    def test_pipeline_streaming_wrappers(self, dataset):
        pipeline = SudowoodoPipeline(tiny_config())
        pipeline.pretrain_on(dataset)
        pipeline.pseudo_labels(8)
        assert pipeline._pseudo is not None
        ids = pipeline.upsert_records(["[COL] name [VAL] piped record"])
        assert pipeline._pseudo is None  # stale pseudo labels invalidated
        assert pipeline.block(k=2).num_b == len(dataset.table_b) + 1
        pipeline.delete_records(ids)
        assert pipeline.block(k=2).num_b == len(dataset.table_b)


# ----------------------------------------------------------------------
class TestBlockerAndService:
    def test_blocker_shares_store(self, dataset, encoder):
        store = EmbeddingStore(encoder)
        first = Blocker(encoder, dataset, store=store)
        misses_after_first = store.misses
        second = Blocker(encoder, dataset, store=store)
        assert store.misses == misses_after_first  # corpus encoded once
        np.testing.assert_allclose(first.vectors_a, second.vectors_a)

    def test_exact_vs_lsh_blocking_parity(self, dataset, encoder):
        store = EmbeddingStore(encoder)
        exact = Blocker(encoder, dataset, store=store).candidates(k=3)
        lsh = Blocker(
            encoder,
            dataset,
            store=store,
            backend=LSHBackend(num_tables=16, num_bits=2, seed=0),
        ).candidates(k=3)
        overlap = len(set(lsh.pairs) & set(exact.pairs)) / len(exact.pairs)
        assert overlap >= 0.95

    def test_match_service_block_warm_cache(self, dataset, encoder):
        service = MatchService(encoder)
        texts_a = [dataset.serialize_a(i) for i in range(len(dataset.table_a))]
        texts_b = [dataset.serialize_b(j) for j in range(len(dataset.table_b))]
        candidate_set = service.block(texts_a, texts_b, k=3)
        assert candidate_set.num_a == len(texts_a)
        assert candidate_set.num_b == len(texts_b)
        assert all(b >= 0 for _, b in candidate_set.pairs)
        misses = service.store.misses
        service.block(texts_a, texts_b, k=5)  # second request: pure cache hits
        assert service.store.misses == misses

    def test_match_service_self_block(self, dataset, encoder):
        service = MatchService(encoder)
        texts = [dataset.serialize_a(i) for i in range(8)]
        candidate_set = service.block(texts, k=2)
        assert candidate_set.num_a == candidate_set.num_b == len(texts)
        assert all(a != b for a, b in candidate_set.pairs)  # no trivial matches
        per_row = {}
        for a, _ in candidate_set.pairs:
            per_row[a] = per_row.get(a, 0) + 1
        assert max(per_row.values()) <= 2  # budget still k after self-exclusion

    def test_match_pairs_requires_matcher(self, dataset, encoder):
        service = MatchService(encoder)
        with pytest.raises(RuntimeError):
            service.match_pairs([("a", "b")])

    def test_deterministic_across_rebuilds(self, dataset):
        """Same seed => same tokenizer, weights, embeddings, candidates."""
        runs = []
        for _ in range(2):
            config = tiny_config()
            enc = SudowoodoEncoder(config, build_tokenizer(dataset.all_items(), config))
            store = EmbeddingStore(enc)
            blocker = Blocker(
                enc,
                dataset,
                store=store,
                backend=LSHBackend(num_tables=8, num_bits=4, seed=config.seed),
            )
            runs.append(blocker.candidates(k=3).pairs)
        assert runs[0] == runs[1]


# ----------------------------------------------------------------------
class TestPipelineIntegration:
    def test_single_encoding_per_run(self, dataset):
        pipeline = SudowoodoPipeline(tiny_config())
        pipeline.pretrain_on(dataset)
        pipeline.block(k=3)
        corpus_size = len(pipeline.store)
        misses = pipeline.store.misses
        assert misses == corpus_size  # every unique record encoded exactly once

        pipeline.block(k=5)
        pipeline.pseudo_labels(8)
        service = pipeline.match_service()
        service.embed_batch(dataset.all_items())
        assert pipeline.store.misses == misses  # warm cache across tasks

    def test_store_cleared_after_finetune(self, dataset):
        """Fine-tuning mutates the encoder in place, so the pipeline must
        drop cached (now stale) vectors before serving continues."""
        pipeline = SudowoodoPipeline(tiny_config(finetune_epochs=1, multiplier=2))
        pipeline.pretrain_on(dataset)
        pipeline.block(k=3)
        assert len(pipeline.store) > 0
        pipeline.train_matcher(label_budget=16)
        assert len(pipeline.store) == 0  # stale pre-finetune vectors dropped
        service = pipeline.match_service()
        # Regression: an empty store is falsy (defines __len__); the service
        # must still share it rather than silently creating a fresh one.
        assert service.store is pipeline.store
        probabilities = service.match_pairs(
            [(dataset.serialize_a(0), dataset.serialize_b(0))]
        )
        assert probabilities.shape == (1, 2)

    def test_finetune_changes_fingerprint_and_invalidates_cache(
        self, dataset, tmp_path
    ):
        """The PR 1 invalidation contract: in-place fine-tuning mutates the
        encoder, so (a) ``encoder_fingerprint()`` changes and (b) a cache
        saved pre-finetune strict-load-fails into the updated encoder."""
        pipeline = SudowoodoPipeline(tiny_config(finetune_epochs=1, multiplier=2))
        pipeline.pretrain_on(dataset)
        pipeline.block(k=3)
        fingerprint_before = pipeline.store.encoder_fingerprint()
        path = pipeline.store.save(tmp_path / "pre_finetune.npz")

        pipeline.train_matcher(label_budget=16)

        fingerprint_after = pipeline.store.encoder_fingerprint()
        assert fingerprint_after != fingerprint_before
        # Stale vectors were dropped by the pipeline...
        assert len(pipeline.store) == 0
        # ...and the persisted pre-finetune cache is rejected by a strict
        # load into the (mutated) encoder.
        with pytest.raises(ValueError, match="different encoder"):
            pipeline.store.load(path)
        # Non-strict load remains possible for callers that accept drift.
        assert pipeline.store.load(path, strict=False) > 0

    def test_pipeline_lsh_backend(self, dataset):
        config = tiny_config(ann_backend="lsh", lsh_num_tables=16, lsh_num_bits=2)
        pipeline = SudowoodoPipeline(config)
        pipeline.pretrain_on(dataset)
        candidate_set = pipeline.block(k=3)
        assert len(candidate_set) > 0
        assert isinstance(pipeline.blocker.backend, LSHBackend)
