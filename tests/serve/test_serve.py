"""Serving-layer tests: EmbeddingStore caching + persistence, ANN backend
parity, MatchService facade, and single-encoding pipeline integration."""

import numpy as np
import pytest

from repro.core import (
    Blocker,
    SudowoodoConfig,
    SudowoodoEncoder,
    SudowoodoPipeline,
    build_tokenizer,
)
from repro.data.generators import load_em_benchmark
from repro.serve import (
    EmbeddingStore,
    ExactBackend,
    LSHBackend,
    MatchService,
    available_backends,
    build_backend,
    register_backend,
)
from repro.text import top_k_cosine
from repro.utils import spawn_rng


def tiny_config(**overrides) -> SudowoodoConfig:
    defaults = dict(
        dim=16,
        num_layers=1,
        num_heads=2,
        ffn_dim=32,
        max_seq_len=24,
        pair_max_seq_len=40,
        vocab_size=400,
        pretrain_epochs=1,
        pretrain_batch_size=8,
        num_clusters=3,
        corpus_cap=32,
        mlm_warm_start_epochs=0,
        seed=0,
    )
    defaults.update(overrides)
    return SudowoodoConfig(**defaults)


@pytest.fixture(scope="module")
def dataset():
    return load_em_benchmark("AB", scale=0.02, max_table_size=24)


@pytest.fixture(scope="module")
def encoder(dataset):
    config = tiny_config()
    return SudowoodoEncoder(config, build_tokenizer(dataset.all_items(), config))


# ----------------------------------------------------------------------
class TestEmbeddingStore:
    def test_miss_then_hit(self, dataset, encoder):
        store = EmbeddingStore(encoder)
        texts = dataset.all_items()[:6]
        first = store.embed_batch(texts)
        assert store.misses == len(set(texts))
        assert store.hits == len(texts) - len(set(texts))
        second = store.embed_batch(texts)
        np.testing.assert_array_equal(first, second)
        assert store.misses == len(set(texts))  # nothing re-encoded
        assert store.stats()["hit_rate"] > 0.0

    def test_duplicates_encoded_once(self, dataset, encoder):
        store = EmbeddingStore(encoder)
        text = dataset.all_items()[0]
        matrix = store.embed_batch([text, text, text])
        assert len(store) == 1
        assert store.misses == 1 and store.hits == 2
        np.testing.assert_array_equal(matrix[0], matrix[1])

    def test_matches_direct_encoding(self, dataset, encoder):
        store = EmbeddingStore(encoder, batch_size=4)
        texts = dataset.all_items()[:8]
        np.testing.assert_allclose(
            store.embed_batch(texts),
            encoder.embed_items(texts, normalize=False),
            atol=1e-9,
        )

    def test_normalize_returns_unit_rows(self, dataset, encoder):
        store = EmbeddingStore(encoder)
        matrix = store.embed_batch(dataset.all_items()[:5], normalize=True)
        np.testing.assert_allclose(np.linalg.norm(matrix, axis=1), 1.0, atol=1e-9)

    def test_capacity_lru_eviction(self, dataset, encoder):
        store = EmbeddingStore(encoder, capacity=2)
        texts = dataset.all_items()[:3]
        store.embed_batch(texts)
        assert len(store) == 2
        assert texts[0] not in store  # oldest evicted
        assert texts[2] in store

    def test_persistence_roundtrip(self, dataset, encoder, tmp_path):
        store = EmbeddingStore(encoder)
        texts = dataset.all_items()[:6]
        original = store.embed_batch(texts)
        store.save(tmp_path / "cache.npz")

        fresh = EmbeddingStore(encoder)
        loaded = fresh.load(tmp_path / "cache.npz")
        assert loaded == len(set(texts))
        reloaded = fresh.embed_batch(texts)
        assert fresh.misses == 0  # every lookup served from the loaded cache
        np.testing.assert_allclose(original, reloaded, atol=1e-12)

    def test_load_rejects_other_encoder(self, dataset, encoder, tmp_path):
        store = EmbeddingStore(encoder)
        store.embed_batch(dataset.all_items()[:4])
        path = store.save(tmp_path / "cache.npz")

        other_config = tiny_config(seed=7)
        other = SudowoodoEncoder(
            other_config, build_tokenizer(dataset.all_items(), other_config)
        )
        with pytest.raises(ValueError):
            EmbeddingStore(other).load(path)
        # Same dimension: non-strict load is allowed.
        assert EmbeddingStore(other).load(path, strict=False) == 4

    def test_load_rejects_mutated_weights(self, dataset, tmp_path):
        """In-place fine-tuning changes weights but not config/vocab; a
        strict load must still reject the now-stale cache."""
        config = tiny_config()
        enc = SudowoodoEncoder(config, build_tokenizer(dataset.all_items(), config))
        store = EmbeddingStore(enc)
        store.embed_batch(dataset.all_items()[:4])
        path = store.save(tmp_path / "cache.npz")

        enc.projector.weight.data += 0.5  # simulate fine-tuning drift
        with pytest.raises(ValueError):
            EmbeddingStore(enc).load(path)

    def test_load_rejects_dim_mismatch(self, dataset, encoder, tmp_path):
        store = EmbeddingStore(encoder)
        store.embed_batch(dataset.all_items()[:4])
        path = store.save(tmp_path / "cache.npz")

        small_config = tiny_config(dim=8, ffn_dim=16)
        small = SudowoodoEncoder(
            small_config, build_tokenizer(dataset.all_items(), small_config)
        )
        with pytest.raises(ValueError):
            EmbeddingStore(small).load(path, strict=False)


# ----------------------------------------------------------------------
class TestBackends:
    @pytest.fixture(scope="class")
    def vectors(self):
        rng = spawn_rng(0, "serve-backend-test")
        matrix = rng.normal(size=(200, 16))
        return matrix / np.linalg.norm(matrix, axis=1, keepdims=True)

    def test_exact_matches_top_k_cosine(self, vectors):
        backend = ExactBackend().build(vectors)
        indices, scores = backend.query(vectors[:20], k=5)
        expected_indices, expected_scores = top_k_cosine(vectors[:20], vectors, k=5)
        np.testing.assert_array_equal(indices, expected_indices)
        np.testing.assert_allclose(scores, expected_scores)

    def test_lsh_recall_parity(self, vectors):
        backend = LSHBackend(num_tables=32, num_bits=4, seed=0).build(vectors)
        approx, _ = backend.query(vectors, k=5)
        exact, _ = ExactBackend().build(vectors).query(vectors, k=5)
        hits = sum(
            len(set(exact[row]) & set(i for i in approx[row] if i >= 0))
            for row in range(vectors.shape[0])
        )
        recall = hits / exact.size
        assert recall >= 0.95

    def test_lsh_deterministic(self, vectors):
        first, _ = LSHBackend(num_tables=8, num_bits=6, seed=3).build(vectors).query(
            vectors[:10], k=4
        )
        second, _ = LSHBackend(num_tables=8, num_bits=6, seed=3).build(vectors).query(
            vectors[:10], k=4
        )
        np.testing.assert_array_equal(first, second)

    def test_lsh_pads_short_rows(self, vectors):
        backend = LSHBackend(num_tables=4, num_bits=2, seed=0).build(vectors[:3])
        indices, scores = backend.query(vectors[:2], k=5)
        assert indices.shape == (2, 5)
        assert (indices[:, 3:] == -1).all()
        assert np.isneginf(scores[:, 3:]).all()

    def test_query_before_build_raises(self, vectors):
        with pytest.raises(RuntimeError):
            ExactBackend().query(vectors[:2], k=3)
        with pytest.raises(RuntimeError):
            LSHBackend().query(vectors[:2], k=3)

    def test_registry(self):
        assert {"exact", "lsh"} <= set(available_backends())
        config = SudowoodoConfig(ann_backend="lsh", lsh_num_tables=5, lsh_num_bits=3)
        backend = build_backend(config)
        assert isinstance(backend, LSHBackend)
        assert backend.num_tables == 5 and backend.num_bits == 3
        with pytest.raises(ValueError):
            build_backend(config, name="no-such-index")

    def test_register_custom_backend(self):
        register_backend("custom-exact", lambda config: ExactBackend())
        try:
            backend = build_backend(name="custom-exact")
            assert isinstance(backend, ExactBackend)
        finally:
            from repro.serve import backends as backends_module

            backends_module._BACKENDS.pop("custom-exact", None)


# ----------------------------------------------------------------------
class TestBlockerAndService:
    def test_blocker_shares_store(self, dataset, encoder):
        store = EmbeddingStore(encoder)
        first = Blocker(encoder, dataset, store=store)
        misses_after_first = store.misses
        second = Blocker(encoder, dataset, store=store)
        assert store.misses == misses_after_first  # corpus encoded once
        np.testing.assert_allclose(first.vectors_a, second.vectors_a)

    def test_exact_vs_lsh_blocking_parity(self, dataset, encoder):
        store = EmbeddingStore(encoder)
        exact = Blocker(encoder, dataset, store=store).candidates(k=3)
        lsh = Blocker(
            encoder,
            dataset,
            store=store,
            backend=LSHBackend(num_tables=16, num_bits=2, seed=0),
        ).candidates(k=3)
        overlap = len(set(lsh.pairs) & set(exact.pairs)) / len(exact.pairs)
        assert overlap >= 0.95

    def test_match_service_block_warm_cache(self, dataset, encoder):
        service = MatchService(encoder)
        texts_a = [dataset.serialize_a(i) for i in range(len(dataset.table_a))]
        texts_b = [dataset.serialize_b(j) for j in range(len(dataset.table_b))]
        candidate_set = service.block(texts_a, texts_b, k=3)
        assert candidate_set.num_a == len(texts_a)
        assert candidate_set.num_b == len(texts_b)
        assert all(b >= 0 for _, b in candidate_set.pairs)
        misses = service.store.misses
        service.block(texts_a, texts_b, k=5)  # second request: pure cache hits
        assert service.store.misses == misses

    def test_match_service_self_block(self, dataset, encoder):
        service = MatchService(encoder)
        texts = [dataset.serialize_a(i) for i in range(8)]
        candidate_set = service.block(texts, k=2)
        assert candidate_set.num_a == candidate_set.num_b == len(texts)
        assert all(a != b for a, b in candidate_set.pairs)  # no trivial matches
        per_row = {}
        for a, _ in candidate_set.pairs:
            per_row[a] = per_row.get(a, 0) + 1
        assert max(per_row.values()) <= 2  # budget still k after self-exclusion

    def test_match_pairs_requires_matcher(self, dataset, encoder):
        service = MatchService(encoder)
        with pytest.raises(RuntimeError):
            service.match_pairs([("a", "b")])

    def test_deterministic_across_rebuilds(self, dataset):
        """Same seed => same tokenizer, weights, embeddings, candidates."""
        runs = []
        for _ in range(2):
            config = tiny_config()
            enc = SudowoodoEncoder(config, build_tokenizer(dataset.all_items(), config))
            store = EmbeddingStore(enc)
            blocker = Blocker(
                enc,
                dataset,
                store=store,
                backend=LSHBackend(num_tables=8, num_bits=4, seed=config.seed),
            )
            runs.append(blocker.candidates(k=3).pairs)
        assert runs[0] == runs[1]


# ----------------------------------------------------------------------
class TestPipelineIntegration:
    def test_single_encoding_per_run(self, dataset):
        pipeline = SudowoodoPipeline(tiny_config())
        pipeline.pretrain_on(dataset)
        pipeline.block(k=3)
        corpus_size = len(pipeline.store)
        misses = pipeline.store.misses
        assert misses == corpus_size  # every unique record encoded exactly once

        pipeline.block(k=5)
        pipeline.pseudo_labels(8)
        service = pipeline.match_service()
        service.embed_batch(dataset.all_items())
        assert pipeline.store.misses == misses  # warm cache across tasks

    def test_store_cleared_after_finetune(self, dataset):
        """Fine-tuning mutates the encoder in place, so the pipeline must
        drop cached (now stale) vectors before serving continues."""
        pipeline = SudowoodoPipeline(tiny_config(finetune_epochs=1, multiplier=2))
        pipeline.pretrain_on(dataset)
        pipeline.block(k=3)
        assert len(pipeline.store) > 0
        pipeline.train_matcher(label_budget=16)
        assert len(pipeline.store) == 0  # stale pre-finetune vectors dropped
        service = pipeline.match_service()
        # Regression: an empty store is falsy (defines __len__); the service
        # must still share it rather than silently creating a fresh one.
        assert service.store is pipeline.store
        probabilities = service.match_pairs(
            [(dataset.serialize_a(0), dataset.serialize_b(0))]
        )
        assert probabilities.shape == (1, 2)

    def test_pipeline_lsh_backend(self, dataset):
        config = tiny_config(ann_backend="lsh", lsh_num_tables=16, lsh_num_bits=2)
        pipeline = SudowoodoPipeline(config)
        pipeline.pretrain_on(dataset)
        candidate_set = pipeline.block(k=3)
        assert len(candidate_set) > 0
        assert isinstance(pipeline.blocker.backend, LSHBackend)
