"""Sharded serving tests: shard-equivalence against the single-shard
service, recall under churn for the approximate backends, the query
coalescer, and the config/registry/pipeline routing."""

import threading
import time

import numpy as np
import pytest

from repro.core import (
    SudowoodoConfig,
    SudowoodoEncoder,
    SudowoodoPipeline,
    build_tokenizer,
)
from repro.data.generators import load_em_benchmark
from repro.serve import (
    ExactBackend,
    HNSWBackend,
    LSHBackend,
    MatchService,
    QueryCoalescer,
    ReadWriteLock,
    ShardedBackend,
    ShardedMatchService,
    build_backend,
    shard_assignments,
)
from repro.utils import spawn_rng


def tiny_config(**overrides) -> SudowoodoConfig:
    defaults = dict(
        dim=16,
        num_layers=1,
        num_heads=2,
        ffn_dim=32,
        max_seq_len=24,
        pair_max_seq_len=40,
        vocab_size=400,
        pretrain_epochs=1,
        pretrain_batch_size=8,
        num_clusters=3,
        corpus_cap=32,
        mlm_warm_start_epochs=0,
        coalesce_window_ms=0.0,  # tests must not pay an idle window
        seed=0,
    )
    defaults.update(overrides)
    return SudowoodoConfig(**defaults)


@pytest.fixture(scope="module")
def dataset():
    return load_em_benchmark("AB", scale=0.02, max_table_size=24)


@pytest.fixture(scope="module")
def encoder(dataset):
    config = tiny_config()
    return SudowoodoEncoder(config, build_tokenizer(dataset.all_items(), config))


def unit_vectors(seed_name: str, n: int, dim: int = 16) -> np.ndarray:
    rng = spawn_rng(0, seed_name)
    matrix = rng.normal(size=(n, dim))
    return matrix / np.linalg.norm(matrix, axis=1, keepdims=True)


def make_inner(name):
    if name == "exact":
        return lambda: ExactBackend()
    if name == "lsh":
        return lambda: LSHBackend(num_tables=32, num_bits=4, seed=0)
    return lambda: HNSWBackend(seed=0)


# ----------------------------------------------------------------------
class TestShardAssignments:
    def test_deterministic_and_in_range(self):
        ids = np.arange(10_000, dtype=np.int64)
        first = shard_assignments(ids, 7)
        second = shard_assignments(ids, 7)
        np.testing.assert_array_equal(first, second)
        assert first.min() >= 0 and first.max() < 7

    def test_sequential_ids_spread_evenly(self):
        """The store hands out consecutive ids; the hash must still keep
        shards balanced (within 20% of ideal on 10k records)."""
        counts = np.bincount(shard_assignments(np.arange(10_000), 4), minlength=4)
        assert counts.min() >= 0.8 * 10_000 / 4
        assert counts.max() <= 1.2 * 10_000 / 4


# ----------------------------------------------------------------------
class TestShardedBackendEquivalence:
    """For the exact inner backend, sharding must not change results."""

    @pytest.fixture(scope="class")
    def vectors(self):
        return unit_vectors("sharded-equivalence", 180)

    @pytest.mark.parametrize("num_shards", [1, 2, 3, 7])
    def test_exact_query_identical_to_single_shard(self, vectors, num_shards):
        single_ids, single_scores = ExactBackend().build(vectors).query(
            vectors[:40], k=6
        )
        sharded = ShardedBackend(make_inner("exact"), num_shards).build(vectors)
        ids, scores = sharded.query(vectors[:40], k=6)
        np.testing.assert_array_equal(ids, single_ids)
        # Scores agree to float64 resolution.  (Not asserted bitwise:
        # BLAS may tile a (Q, d) x (d, N/shards) matmul differently from
        # the full (Q, d) x (d, N) one, flipping last-bit rounding.)
        np.testing.assert_allclose(scores, single_scores, rtol=0, atol=1e-12)

    @pytest.mark.parametrize("num_shards", [1, 2, 3, 7])
    def test_exact_deterministic_under_score_ties(self, num_shards):
        """Regression: duplicate vectors produce exact score ties, which
        the unstable argpartition selection used to break arbitrarily.
        ExactBackend now uses a total order (score desc, id asc), so the
        single-shard result is deterministic smallest-id-first, and the
        sharded result is deterministic and correct — every returned id
        is a genuine top-k member.  (Which *bit-identical* duplicates
        win across shard boundaries may legitimately differ from the
        single backend: BLAS rounds their scores differently per shard
        shape, see the ShardedBackend docstring.)"""
        base = unit_vectors("sharded-ties", 50)
        vectors = np.vstack([base, np.tile(base[0], (8, 1))])  # 8 duplicates
        tied = {0} | set(range(50, 58))  # ids sharing the query vector
        single_ids, single_scores = ExactBackend().build(vectors).query(
            base[:1], k=4
        )
        # Single shard: deterministic, smallest tied ids first.
        assert single_ids[0].tolist() == [0, 50, 51, 52]
        sharded = ShardedBackend(make_inner("exact"), num_shards).build(vectors)
        ids, scores = sharded.query(base[:1], k=4)
        repeat_ids, _ = sharded.query(base[:1], k=4)
        np.testing.assert_array_equal(ids, repeat_ids)  # deterministic
        assert set(ids[0].tolist()) <= tied  # every pick is a true top-4
        np.testing.assert_allclose(scores, single_scores, rtol=0, atol=1e-12)

    def test_exact_tie_fallback_beyond_partition_pad(self):
        """A tie spanning more candidates than the argpartition pad must
        trigger the exact per-row fallback: the winners are still the
        smallest tied ids, not whatever the partition happened to keep."""
        base = unit_vectors("sharded-wide-ties", 80)
        duplicates = np.tile(base[0], (ExactBackend._TIE_PAD + 20, 1))
        vectors = np.vstack([base, duplicates])  # tie spans 1 + pad + 20 ids
        ids, scores = ExactBackend().build(vectors).query(base[:1], k=4)
        assert ids[0].tolist() == [0, 80, 81, 82]  # smallest tied ids win
        np.testing.assert_allclose(scores[0], 1.0, atol=1e-12)

    @pytest.mark.parametrize("num_shards", [1, 2, 3, 7])
    def test_exact_equivalence_survives_churn(self, vectors, num_shards):
        extra = unit_vectors("sharded-equivalence-extra", 24)
        replacement = unit_vectors("sharded-equivalence-replacement", 5)
        single = ExactBackend().build(vectors)
        sharded = ShardedBackend(make_inner("exact"), num_shards).build(vectors)
        new_ids = np.arange(900, 900 + extra.shape[0])
        for backend in (single, sharded):
            backend.add(new_ids, extra)
            backend.remove(np.arange(0, 60, 2))
            backend.add(new_ids[:5], replacement)  # upsert: replace vectors
        assert len(single) == len(sharded)
        single_ids, single_scores = single.query(vectors[100:140], k=8)
        ids, scores = sharded.query(vectors[100:140], k=8)
        np.testing.assert_array_equal(ids, single_ids)
        np.testing.assert_allclose(scores, single_scores, rtol=0, atol=1e-12)

    @pytest.mark.parametrize("name", ["lsh", "hnsw"])
    def test_approximate_recall_after_churn(self, name):
        """Sharded LSH/HNSW must keep >= 0.9 recall of the exact top-k
        after a randomized upsert/delete churn sequence."""
        rng = spawn_rng(0, f"sharded-churn-{name}")
        vectors = unit_vectors(f"sharded-churn-base-{name}", 300)
        sharded = ShardedBackend(make_inner(name), 3).build(vectors)
        exact = ExactBackend().build(vectors)

        next_id = vectors.shape[0]
        live = list(range(vectors.shape[0]))
        for _ in range(6):
            batch = rng.normal(size=(20, 16))
            batch /= np.linalg.norm(batch, axis=1, keepdims=True)
            ids = np.arange(next_id, next_id + batch.shape[0])
            next_id += batch.shape[0]
            sharded.add(ids, batch)
            exact.add(ids, batch)
            live.extend(ids.tolist())
            doomed = rng.choice(len(live), size=12, replace=False)
            doomed_ids = np.asarray(sorted(live[i] for i in doomed))
            sharded.remove(doomed_ids)
            exact.remove(doomed_ids)
            live = [i for i in live if i not in set(doomed_ids.tolist())]

        queries = unit_vectors(f"sharded-churn-queries-{name}", 60)
        approx, _ = sharded.query(queries, k=5)
        truth, _ = exact.query(queries, k=5)
        hits = sum(
            len(
                set(int(i) for i in truth[row] if i >= 0)
                & set(int(i) for i in approx[row] if i >= 0)
            )
            for row in range(queries.shape[0])
        )
        total = sum(1 for row in truth for i in row if i >= 0)
        assert hits / total >= 0.9

    def test_remove_unknown_id_fails_atomically(self, vectors):
        sharded = ShardedBackend(make_inner("exact"), 3).build(vectors)
        size = len(sharded)
        with pytest.raises(KeyError):
            sharded.remove([0, 1, 10_000])  # one bad id poisons the batch
        assert len(sharded) == size  # nothing was removed
        found, _ = sharded.query(vectors[:1], k=1)
        assert found[0, 0] == 0  # id 0 still served

    def test_concurrent_overlapping_removes_stay_consistent(self, vectors):
        """Regression: remove() used to validate ids before taking the
        write locks, so two racing removes with overlapping ids could
        both pass validation and tear the cross-shard state.  Exactly
        one of them must win; the loser must fail atomically."""
        sharded = ShardedBackend(make_inner("exact"), 3).build(vectors)
        size = len(sharded)
        outcomes = []

        def remove(ids):
            try:
                sharded.remove(ids)
                outcomes.append("ok")
            except KeyError:
                outcomes.append("keyerror")

        for _ in range(10):  # repeat to give the race a chance to fire
            sharded.add(np.array([500, 501]), vectors[:2])
            threads = [
                threading.Thread(target=remove, args=([500],)),
                threading.Thread(target=remove, args=([500, 501],)),
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            # Whatever the interleaving, both ids are gone exactly once
            # and the bookkeeping matches the shards.
            assert len(sharded) in (size, size + 1)
            if len(sharded) == size + 1:
                sharded.remove([501])  # [500,501] lost the race entirely
            assert len(sharded) == size
        assert "ok" in outcomes

    def test_query_before_build_raises(self):
        with pytest.raises(RuntimeError):
            ShardedBackend(make_inner("exact"), 2).query(np.zeros((1, 16)), k=2)


# ----------------------------------------------------------------------
@pytest.mark.parametrize("num_shards", [1, 2, 3, 7])
class TestShardedServiceEquivalence:
    """ShardedMatchService.search must match MatchService byte-for-byte
    on ids for the exact backend, at any shard count."""

    def test_search_identical(self, dataset, encoder, num_shards):
        corpus = dataset.all_items()[:20]
        single = MatchService(encoder, config=tiny_config())
        sharded = ShardedMatchService(
            encoder, config=tiny_config(num_shards=num_shards)
        )
        ids_single = single.index_records(corpus)
        ids_sharded = sharded.index_records(corpus)
        np.testing.assert_array_equal(ids_single, ids_sharded)
        assert single.index_size == sharded.index_size

        found_single, scores_single = single.search(corpus[:8], k=4)
        found_sharded, scores_sharded = sharded.search(corpus[:8], k=4)
        np.testing.assert_array_equal(found_sharded, found_single)
        np.testing.assert_allclose(
            scores_sharded, scores_single, rtol=0, atol=1e-12
        )

    def test_upsert_delete_parity(self, dataset, encoder, num_shards):
        corpus = dataset.all_items()[:12]
        extra = dataset.all_items()[12:16]
        single = MatchService(encoder, config=tiny_config())
        sharded = ShardedMatchService(
            encoder, config=tiny_config(num_shards=num_shards)
        )
        for service in (single, sharded):
            service.index_records(corpus)
            service.upsert_records(extra)
            service.delete_records(corpus[:3])
        assert single.index_size == sharded.index_size
        found_single, _ = single.search(extra, k=5)
        found_sharded, _ = sharded.search(extra, k=5)
        np.testing.assert_array_equal(found_sharded, found_single)


# ----------------------------------------------------------------------
class TestQueryCoalescer:
    def run_batch_spy(self):
        calls = []

        def run_batch(texts, k):
            calls.append((list(texts), k))
            ids = np.arange(len(texts) * k, dtype=np.int64).reshape(len(texts), k)
            scores = np.full((len(texts), k), 0.5)
            return ids, scores

        return calls, run_batch

    def test_single_caller_passthrough(self):
        calls, run_batch = self.run_batch_spy()
        coalescer = QueryCoalescer(run_batch, window_ms=0.0, max_batch=8)
        ids, scores = coalescer.submit(["a", "b"], k=3)
        assert ids.shape == (2, 3) and scores.shape == (2, 3)
        assert calls == [(["a", "b"], 3)]
        assert coalescer.stats()["batches"] == 1.0

    def test_concurrent_callers_share_one_batch(self):
        """Callers blocked behind a slow batch coalesce into the next one,
        each getting its own rows trimmed to its own k."""
        release = threading.Event()
        calls = []

        def run_batch(texts, k):
            calls.append((list(texts), k))
            if len(calls) == 1:
                release.wait(timeout=5)  # hold batch 1 until followers queue
            ids = np.tile(np.arange(k, dtype=np.int64), (len(texts), 1))
            return ids, np.zeros((len(texts), k))

        coalescer = QueryCoalescer(run_batch, window_ms=50.0, max_batch=3)
        results = {}

        def caller(name, k):
            results[name] = coalescer.submit([name], k)

        leader = threading.Thread(target=caller, args=("leader", 2))
        leader.start()
        while not calls:  # leader is now inside run_batch
            pass
        followers = [
            threading.Thread(target=caller, args=(f"f{i}", 2 + i))
            for i in range(3)
        ]
        for thread in followers:
            thread.start()
        release.set()
        leader.join()
        for thread in followers:
            thread.join()

        assert len(calls) == 2  # 3 followers -> one coalesced batch
        followers_texts, followers_k = calls[1]
        assert sorted(followers_texts) == ["f0", "f1", "f2"]
        assert followers_k == 4  # max requested k
        for i in range(3):
            ids, scores = results[f"f{i}"]
            assert ids.shape == (1, 2 + i)  # trimmed back to the caller's k
        stats = coalescer.stats()
        assert stats["requests"] == 4.0 and stats["batches"] == 2.0

    def test_max_batch_caps_each_chunk(self):
        """Regression: the leader used to drain the whole queue into one
        run_batch call; chunks must respect max_batch (one oversized
        request still runs alone, since requests are never split)."""
        calls, run_batch = self.run_batch_spy()
        coalescer = QueryCoalescer(run_batch, window_ms=0.0, max_batch=4)
        coalescer.submit([f"q{i}" for i in range(10)], k=2)
        assert [len(texts) for texts, _ in calls] == [10]  # oversized, alone

        release = threading.Event()
        chunked_calls = []

        def chunked_run(texts, k):
            chunked_calls.append(list(texts))
            if len(chunked_calls) == 1:
                release.wait(timeout=5)
            return (
                np.zeros((len(texts), k), dtype=np.int64),
                np.zeros((len(texts), k)),
            )

        chunked = QueryCoalescer(chunked_run, window_ms=50.0, max_batch=4)
        leader = threading.Thread(target=chunked.submit, args=(["lead"], 2))
        leader.start()
        while not chunked_calls:
            pass
        followers = [
            threading.Thread(target=chunked.submit, args=([f"f{i}a", f"f{i}b"], 2))
            for i in range(5)
        ]
        for thread in followers:
            thread.start()
        while chunked._pending is not None and len(chunked._pending) < 5:
            pass
        release.set()
        leader.join(timeout=5)
        for thread in followers:
            thread.join(timeout=5)
        # 10 follower queries drained in chunks of <= 4.
        assert sum(len(texts) for texts in chunked_calls) == 11
        assert all(len(texts) <= 4 for texts in chunked_calls[1:])

    def test_error_propagates_to_all_waiters(self):
        def run_batch(texts, k):
            raise ValueError("backend exploded")

        coalescer = QueryCoalescer(run_batch, window_ms=0.0, max_batch=4)
        with pytest.raises(ValueError, match="exploded"):
            coalescer.submit(["x"], k=2)
        # The coalescer stays usable after a failed batch.
        with pytest.raises(ValueError, match="exploded"):
            coalescer.submit(["y"], k=2)

    def test_validates_parameters(self):
        run = lambda texts, k: (np.zeros((1, 1), dtype=np.int64), np.zeros((1, 1)))
        with pytest.raises(ValueError):
            QueryCoalescer(run, window_ms=-1.0)
        with pytest.raises(ValueError):
            QueryCoalescer(run, max_batch=0)


# ----------------------------------------------------------------------
class TestReadWriteLock:
    def test_readers_share_writers_exclusive(self):
        lock = ReadWriteLock()
        lock.acquire_read()
        lock.acquire_read()  # second reader enters while first holds
        lock.release_read()
        lock.release_read()
        with lock.write_locked():
            pass  # writer acquires once readers drain

    def test_waiting_writer_blocks_new_readers(self):
        lock = ReadWriteLock()
        order = []
        lock.acquire_read()
        writer = threading.Thread(
            target=lambda: (lock.acquire_write(), order.append("w"))
        )
        writer.start()
        while not lock._writers_waiting:  # writer is queued
            pass
        reader = threading.Thread(
            target=lambda: (lock.acquire_read(), order.append("r"))
        )
        reader.start()
        lock.release_read()
        writer.join(timeout=5)
        lock.release_write()
        reader.join(timeout=5)
        assert order == ["w", "r"]  # writer preference


# ----------------------------------------------------------------------
class TestConfigAndRouting:
    def test_config_validates_sharding_knobs(self):
        with pytest.raises(ValueError):
            SudowoodoConfig(num_shards=0).validate()
        with pytest.raises(ValueError):
            SudowoodoConfig(coalesce_window_ms=-1.0).validate()
        with pytest.raises(ValueError):
            SudowoodoConfig(max_coalesce_batch=0).validate()
        SudowoodoConfig(num_shards=4).validate()

    def test_build_backend_wraps_when_sharded(self):
        backend = build_backend(SudowoodoConfig(num_shards=4))
        assert isinstance(backend, ShardedBackend)
        assert backend.num_shards == 4
        assert backend.name == "sharded-exact"
        assert isinstance(build_backend(SudowoodoConfig()), ExactBackend)
        # Explicit opt-out despite a sharded config.
        assert isinstance(
            build_backend(SudowoodoConfig(num_shards=4), sharded=False),
            ExactBackend,
        )
        # Explicit opt-in wraps even a single-shard config: callers ask
        # for sharded=True to get the lock-guarded wrapper.
        forced = build_backend(SudowoodoConfig(), sharded=True)
        assert isinstance(forced, ShardedBackend)
        assert forced.num_shards == 1

    def test_sharded_blocking_matches_single_shard(self, dataset, encoder):
        from repro.core import Blocker
        from repro.serve import EmbeddingStore

        store = EmbeddingStore(encoder)
        single = Blocker(
            encoder, dataset, store=store, backend=build_backend(tiny_config())
        ).candidates(k=3)
        sharded = Blocker(
            encoder,
            dataset,
            store=store,
            backend=build_backend(tiny_config(num_shards=3)),
        ).candidates(k=3)
        assert sharded.pairs == single.pairs

    def test_pipeline_routes_sharded_service(self, dataset):
        pipeline = SudowoodoPipeline(tiny_config(num_shards=2))
        pipeline.pretrain_on(dataset)
        service = pipeline.match_service()
        assert isinstance(service, ShardedMatchService)
        assert service.num_shards == 2
        assert service.store is pipeline.store  # shared warm cache

        unsharded = SudowoodoPipeline(tiny_config())
        unsharded.pretrain_on(dataset)
        assert not isinstance(unsharded.match_service(), ShardedMatchService)

    def test_service_overrides_do_not_mutate_shared_config(self, encoder):
        config = tiny_config(num_shards=2)
        service = ShardedMatchService(encoder, config=config, num_shards=5)
        assert service.num_shards == 5
        assert config.num_shards == 2  # caller's config untouched

    def test_single_shard_service_still_gets_locked_backend(
        self, dataset, encoder
    ):
        """Regression: with num_shards=1 the live backend used to be a
        raw (lock-free) inner backend, so searches raced mutations."""
        service = ShardedMatchService(encoder, config=tiny_config(num_shards=1))
        service.index_records(dataset.all_items()[:8])
        assert isinstance(service._live_backend, ShardedBackend)
        assert service._live_backend.num_shards == 1

    def test_services_sharing_a_store_share_its_lock(self, dataset, encoder):
        """Regression: each service used to carry a private store mutex,
        so two services over one store raced inside the (not
        thread-safe) EmbeddingStore despite each being 'thread-safe'."""
        from repro.serve import EmbeddingStore

        store = EmbeddingStore(encoder)
        first = ShardedMatchService(
            encoder, config=tiny_config(num_shards=2), store=store
        )
        second = ShardedMatchService(
            encoder, config=tiny_config(num_shards=3), store=store
        )
        assert first._store_lock is store.lock
        assert second._store_lock is store.lock

    def test_full_leader_batch_skips_the_window(self, encoder):
        """Regression: a leader whose own request already filled the
        batch used to idle out the whole coalesce window regardless."""
        run = lambda texts, k: (
            np.zeros((len(texts), k), dtype=np.int64),
            np.zeros((len(texts), k)),
        )
        coalescer = QueryCoalescer(run, window_ms=500.0, max_batch=4)
        start = time.perf_counter()
        coalescer.submit(["a", "b", "c", "d"], k=1)  # fills max_batch alone
        assert time.perf_counter() - start < 0.25  # no 500 ms idle wait
