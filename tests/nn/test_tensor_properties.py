"""Property-based tests for the autograd engine (``nn/tensor.py``).

Seeded randomized trials (no extra dependency — shapes and data come
from the ``seeded_rng`` fixture convention of ``tests/conftest.py``)
check two properties over the broadcasting arithmetic ops and matmul:

* **Forward**: ``Tensor`` results equal the plain-numpy computation on
  the same arrays, for random broadcast-compatible shapes and both
  supported dtypes.
* **Backward**: analytic gradients match central finite differences of
  a random scalar projection of the output, in float64 (via
  ``autograd_dtype`` — float32 finite differences are too coarse).
"""

import numpy as np
import pytest

from repro.nn.tensor import Tensor, autograd_dtype, numerical_gradient

NUM_TRIALS = 6
GRAD_ATOL = 1e-6
GRAD_RTOL = 1e-5


def random_broadcast_shapes(rng: np.random.Generator):
    """A pair of random shapes that numpy-broadcast against each other.

    Draws a full shape of 1-3 axes (sizes 1-4), then independently
    degrades each operand: any axis may be squeezed to 1, and leading
    axes may be dropped entirely — the two classic broadcast paths.
    """
    ndim = int(rng.integers(1, 4))
    full = [int(rng.integers(1, 5)) for _ in range(ndim)]

    def degrade(shape):
        out = [1 if rng.random() < 0.3 else dim for dim in shape]
        drop = int(rng.integers(0, len(out)))  # drop 0..ndim-1 leading axes
        return tuple(out[drop:])

    return degrade(full), degrade(full)


def scalar_loss(output: Tensor, projection: np.ndarray) -> Tensor:
    """Reduce ``output`` to a scalar through a fixed random projection,
    so every output element influences the gradient."""
    return (output * Tensor(projection)).sum()


OPS = {
    "add": (lambda a, b: a + b, lambda a, b: a + b),
    "mul": (lambda a, b: a * b, lambda a, b: a * b),
}


@pytest.mark.parametrize("op_name", sorted(OPS))
def test_broadcast_forward_matches_numpy(op_name, seeded_rng):
    tensor_op, numpy_op = OPS[op_name]
    for trial in range(NUM_TRIALS):
        shape_a, shape_b = random_broadcast_shapes(seeded_rng)
        a = seeded_rng.normal(size=shape_a)
        b = seeded_rng.normal(size=shape_b)
        expected = numpy_op(a, b)
        result = tensor_op(Tensor(a), Tensor(b))
        assert result.shape == expected.shape, (trial, shape_a, shape_b)
        np.testing.assert_allclose(
            result.data, expected.astype(np.float32), rtol=1e-6, atol=1e-6
        )


@pytest.mark.parametrize("dtype", [np.float32, np.float64])
@pytest.mark.parametrize("op_name", sorted(OPS))
def test_forward_respects_dtype(op_name, dtype, seeded_rng):
    tensor_op, numpy_op = OPS[op_name]
    a = seeded_rng.normal(size=(3, 1, 4))
    b = seeded_rng.normal(size=(2, 4))
    with autograd_dtype(dtype):
        result = tensor_op(Tensor(a), Tensor(b))
    assert result.data.dtype == dtype
    np.testing.assert_allclose(
        result.data, numpy_op(a, b).astype(dtype), rtol=1e-6, atol=1e-6
    )


@pytest.mark.parametrize("op_name", sorted(OPS))
def test_broadcast_gradients_match_finite_differences(op_name, seeded_rng):
    tensor_op, _ = OPS[op_name]
    with autograd_dtype(np.float64):
        for trial in range(NUM_TRIALS):
            shape_a, shape_b = random_broadcast_shapes(seeded_rng)
            a_data = seeded_rng.normal(size=shape_a)
            b_data = seeded_rng.normal(size=shape_b)
            projection = seeded_rng.normal(
                size=np.broadcast_shapes(shape_a, shape_b)
            )

            a = Tensor(a_data.copy(), requires_grad=True)
            b = Tensor(b_data.copy(), requires_grad=True)
            scalar_loss(tensor_op(a, b), projection).backward()

            for tensor, other in ((a, b), (b, a)):
                numeric = numerical_gradient(
                    lambda t, o=other: scalar_loss(
                        tensor_op(t, o.detach())
                        if tensor is a
                        else tensor_op(o.detach(), t),
                        projection,
                    ),
                    tensor,
                )
                np.testing.assert_allclose(
                    tensor.grad,
                    numeric,
                    rtol=GRAD_RTOL,
                    atol=GRAD_ATOL,
                    err_msg=f"{op_name} trial {trial} {shape_a}x{shape_b}",
                )


def random_matmul_shapes(rng: np.random.Generator):
    """Random conformable matmul operand shapes, covering the 2-D case,
    batched 3-D x 2-D broadcasting, and matrix-vector products."""
    n, m, p = (int(rng.integers(1, 5)) for _ in range(3))
    kind = int(rng.integers(0, 4))
    if kind == 0:
        return (n, m), (m, p)
    if kind == 1:
        batch = int(rng.integers(1, 4))
        return (batch, n, m), (m, p)
    if kind == 2:
        return (n, m), (m,)  # matrix @ vector
    return (m,), (m, p)  # vector @ matrix


def test_matmul_forward_matches_numpy(seeded_rng):
    for trial in range(NUM_TRIALS):
        shape_a, shape_b = random_matmul_shapes(seeded_rng)
        a = seeded_rng.normal(size=shape_a)
        b = seeded_rng.normal(size=shape_b)
        expected = np.matmul(a, b)
        result = Tensor(a).matmul(Tensor(b))
        assert result.shape == expected.shape, (trial, shape_a, shape_b)
        np.testing.assert_allclose(
            result.data, expected.astype(np.float32), rtol=1e-5, atol=1e-5
        )


def test_matmul_gradients_match_finite_differences(seeded_rng):
    with autograd_dtype(np.float64):
        for trial in range(NUM_TRIALS):
            shape_a, shape_b = random_matmul_shapes(seeded_rng)
            a_data = seeded_rng.normal(size=shape_a)
            b_data = seeded_rng.normal(size=shape_b)
            out_shape = np.matmul(a_data, b_data).shape
            projection = seeded_rng.normal(size=out_shape)

            a = Tensor(a_data.copy(), requires_grad=True)
            b = Tensor(b_data.copy(), requires_grad=True)
            scalar_loss(a.matmul(b), projection).backward()

            numeric_a = numerical_gradient(
                lambda t: scalar_loss(t.matmul(b.detach()), projection), a
            )
            numeric_b = numerical_gradient(
                lambda t: scalar_loss(a.detach().matmul(t), projection), b
            )
            np.testing.assert_allclose(
                a.grad, numeric_a, rtol=GRAD_RTOL, atol=GRAD_ATOL,
                err_msg=f"matmul lhs trial {trial} {shape_a}x{shape_b}",
            )
            np.testing.assert_allclose(
                b.grad, numeric_b, rtol=GRAD_RTOL, atol=GRAD_ATOL,
                err_msg=f"matmul rhs trial {trial} {shape_a}x{shape_b}",
            )
