"""Gradient-check and semantics tests for the autograd engine."""

import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import Tensor, autograd_dtype, concat, no_grad, numerical_gradient, stack


@pytest.fixture(autouse=True)
def _float64():
    """Finite-difference checks need float64 precision."""
    with autograd_dtype(np.float64):
        yield


def check_gradient(func, shape, seed=0, atol=1e-5):
    rng = np.random.default_rng(seed)
    x = Tensor(rng.normal(size=shape), requires_grad=True)
    out = func(x)
    out.backward()
    analytic = x.grad.copy()
    x.grad = None
    numeric = numerical_gradient(func, x)
    np.testing.assert_allclose(analytic, numeric, atol=atol)


class TestElementwiseGradients:
    def test_add(self):
        check_gradient(lambda t: (t + 2.5).sum(), (3, 4))

    def test_mul(self):
        check_gradient(lambda t: (t * t).sum(), (3, 4))

    def test_div(self):
        check_gradient(lambda t: (1.0 / (t * t + 2.0)).sum(), (4,))

    def test_pow(self):
        check_gradient(lambda t: ((t * t + 1.0) ** 1.5).sum(), (5,))

    def test_exp_log(self):
        check_gradient(lambda t: ((t.exp() + 1.0).log()).sum(), (3, 3))

    def test_sqrt(self):
        check_gradient(lambda t: (t * t + 1.0).sqrt().sum(), (6,))

    def test_abs(self):
        check_gradient(lambda t: (t.abs() * 3.0).sum(), (7,), seed=3)

    def test_tanh(self):
        check_gradient(lambda t: t.tanh().sum(), (3, 4))

    def test_sigmoid(self):
        check_gradient(lambda t: t.sigmoid().sum(), (3, 4))

    def test_relu(self):
        check_gradient(lambda t: (t.relu() * t).sum(), (10,), seed=5)

    def test_gelu(self):
        check_gradient(lambda t: t.gelu().sum(), (3, 4), atol=1e-4)

    def test_neg_sub(self):
        check_gradient(lambda t: (5.0 - t - t).sum(), (3,))

    def test_rtruediv(self):
        check_gradient(lambda t: (2.0 / (t * t + 1.0)).sum(), (3,))


class TestBroadcastingGradients:
    def test_add_broadcast_rows(self):
        rng = np.random.default_rng(1)
        bias = Tensor(rng.normal(size=(4,)), requires_grad=True)
        x = Tensor(rng.normal(size=(3, 4)))

        def f(b):
            return (x + b).sum()

        out = f(bias)
        out.backward()
        np.testing.assert_allclose(bias.grad, np.full(4, 3.0))

    def test_mul_broadcast_scalar_shape(self):
        rng = np.random.default_rng(2)
        scale = Tensor(rng.normal(size=(1, 1)), requires_grad=True)
        x = Tensor(rng.normal(size=(2, 5)))
        (x * scale).sum().backward()
        np.testing.assert_allclose(scale.grad, [[x.data.sum()]])

    def test_keepdims_broadcast_div(self):
        check_gradient(
            lambda t: (t / (t.sum(axis=-1, keepdims=True) + 10.0)).sum(), (3, 4)
        )


class TestReductionsAndShape:
    def test_sum_axis(self):
        check_gradient(lambda t: (t.sum(axis=0) ** 2.0).sum(), (3, 4))

    def test_sum_axis_keepdims(self):
        check_gradient(lambda t: (t.sum(axis=1, keepdims=True) * t).sum(), (3, 4))

    def test_mean(self):
        check_gradient(lambda t: (t.mean(axis=-1) ** 2.0).sum(), (2, 5))

    def test_max(self):
        check_gradient(lambda t: (t.max(axis=1) * 2.0).sum(), (3, 4), seed=7)

    def test_reshape(self):
        check_gradient(lambda t: (t.reshape(6, 2) ** 2.0).sum(), (3, 4))

    def test_transpose(self):
        check_gradient(lambda t: (t.transpose(1, 0) @ t).sum(), (3, 4))

    def test_getitem_slice(self):
        check_gradient(lambda t: (t[1:, :2] ** 2.0).sum(), (3, 4))

    def test_getitem_fancy(self):
        idx = np.array([0, 2, 2])

        def f(t):
            return (t[idx] * 3.0).sum()

        check_gradient(f, (4, 2))


class TestMatmulGradients:
    def test_2d_2d(self):
        rng = np.random.default_rng(0)
        w = Tensor(rng.normal(size=(4, 5)))
        check_gradient(lambda t: (t @ w).sum(), (3, 4))

    def test_grad_wrt_rhs(self):
        rng = np.random.default_rng(0)
        x = Tensor(rng.normal(size=(3, 4)))
        check_gradient(lambda t: ((x @ t) ** 2.0).sum(), (4, 2))

    def test_batched(self):
        rng = np.random.default_rng(0)
        w = Tensor(rng.normal(size=(2, 4, 5)))
        check_gradient(lambda t: (t @ w).sum(), (2, 3, 4))

    def test_batched_rhs_grad(self):
        rng = np.random.default_rng(0)
        x = Tensor(rng.normal(size=(2, 3, 4)))
        check_gradient(lambda t: (x @ t).sum(), (2, 4, 5))

    def test_matrix_vector(self):
        rng = np.random.default_rng(0)
        v = Tensor(rng.normal(size=(4,)))
        check_gradient(lambda t: (t @ v).sum(), (3, 4))

    def test_vector_grad(self):
        rng = np.random.default_rng(0)
        x = Tensor(rng.normal(size=(3, 4)))
        check_gradient(lambda t: ((x @ t) ** 2.0).sum(), (4,))


class TestCompositePrimitives:
    def test_softmax(self):
        check_gradient(lambda t: (t.softmax(axis=-1) ** 2.0).sum(), (3, 4))

    def test_softmax_other_axis(self):
        check_gradient(lambda t: (t.softmax(axis=0) ** 2.0).sum(), (3, 4))

    def test_log_softmax(self):
        check_gradient(lambda t: (t.log_softmax(axis=-1) * 0.5).sum(), (3, 4))

    def test_log_softmax_matches_composition(self):
        rng = np.random.default_rng(0)
        x = Tensor(rng.normal(size=(4, 6)))
        np.testing.assert_allclose(
            x.log_softmax(axis=-1).data, x.softmax(axis=-1).log().data, atol=1e-10
        )

    def test_layer_norm_input_grad(self):
        rng = np.random.default_rng(0)
        weight = Tensor(rng.normal(size=(4,)) + 1.0)
        bias = Tensor(rng.normal(size=(4,)))
        check_gradient(
            lambda t: (t.layer_norm(weight, bias) ** 2.0).sum(), (3, 4), atol=1e-4
        )

    def test_layer_norm_param_grads(self):
        rng = np.random.default_rng(0)
        x = Tensor(rng.normal(size=(3, 4)))
        weight = Tensor(np.ones(4), requires_grad=True)
        bias = Tensor(np.zeros(4), requires_grad=True)
        (x.layer_norm(weight, bias) ** 2.0).sum().backward()
        assert weight.grad is not None and bias.grad is not None
        analytic_w = weight.grad.copy()
        numeric_w = numerical_gradient(
            lambda w: (x.layer_norm(w, bias) ** 2.0).sum(), weight
        )
        np.testing.assert_allclose(analytic_w, numeric_w, atol=1e-4)

    def test_layer_norm_statistics(self):
        rng = np.random.default_rng(0)
        x = Tensor(rng.normal(size=(5, 8)) * 7.0 + 3.0)
        weight = Tensor(np.ones(8))
        bias = Tensor(np.zeros(8))
        out = x.layer_norm(weight, bias).data
        np.testing.assert_allclose(out.mean(axis=-1), 0.0, atol=1e-6)
        np.testing.assert_allclose(out.std(axis=-1), 1.0, atol=1e-3)

    def test_embedding(self):
        idx = np.array([[0, 1], [1, 2]])

        def f(t):
            return (t.embedding(idx) ** 2.0).sum()

        check_gradient(f, (3, 4))

    def test_embedding_repeated_rows_accumulate(self):
        table = Tensor(np.ones((3, 2)), requires_grad=True)
        out = table.embedding(np.array([1, 1, 1]))
        out.sum().backward()
        np.testing.assert_allclose(table.grad[1], [3.0, 3.0])
        np.testing.assert_allclose(table.grad[0], [0.0, 0.0])

    def test_masked_fill(self):
        mask = np.array([[True, False], [False, True]])

        def f(t):
            return (t.masked_fill(mask, -100.0) * t.detach()).sum()

        rng = np.random.default_rng(0)
        x = Tensor(rng.normal(size=(2, 2)), requires_grad=True)
        f(x).backward()
        # Gradient is zero at masked positions.
        assert x.grad[0, 0] == 0.0 and x.grad[1, 1] == 0.0
        assert x.grad[0, 1] != 0.0

    def test_l2_normalize(self):
        rng = np.random.default_rng(0)
        x = Tensor(rng.normal(size=(4, 6)))
        norms = np.linalg.norm(x.l2_normalize().data, axis=-1)
        np.testing.assert_allclose(norms, 1.0, atol=1e-6)

    def test_l2_normalize_grad(self):
        check_gradient(lambda t: (t.l2_normalize() * 2.0).sum(), (3, 4), atol=1e-4)


class TestConcatStack:
    def test_concat_grad(self):
        rng = np.random.default_rng(0)
        a = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
        b = Tensor(rng.normal(size=(2, 2)), requires_grad=True)
        out = concat([a, b], axis=1)
        assert out.shape == (2, 5)
        (out * out).sum().backward()
        np.testing.assert_allclose(a.grad, 2 * a.data, atol=1e-10)
        np.testing.assert_allclose(b.grad, 2 * b.data, atol=1e-10)

    def test_stack_grad(self):
        rng = np.random.default_rng(0)
        tensors = [Tensor(rng.normal(size=(3,)), requires_grad=True) for _ in range(4)]
        out = stack(tensors, axis=0)
        assert out.shape == (4, 3)
        (out.sum(axis=1) ** 2.0).sum().backward()
        for t in tensors:
            assert t.grad is not None


class TestGraphSemantics:
    def test_grad_accumulates_over_multiple_uses(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        y = x * x + x * 3.0
        y.backward()
        np.testing.assert_allclose(x.grad, [7.0])

    def test_backward_requires_scalar(self):
        x = Tensor(np.ones((2, 2)), requires_grad=True)
        with pytest.raises(ValueError):
            (x * 2.0).backward()

    def test_detach_blocks_gradient(self):
        x = Tensor(np.array([3.0]), requires_grad=True)
        y = x.detach() * x
        y.backward()
        np.testing.assert_allclose(x.grad, [3.0])

    def test_detach_shares_data_buffer(self):
        x = Tensor(np.ones((2, 3)), requires_grad=True)
        d = x.detach()
        assert d.data is x.data
        assert not d.requires_grad
        assert d._parents == ()
        assert d.grad is None

    def test_detach_keeps_dtype_across_autograd_dtype(self):
        # Regression: detach() used to rebuild the array at the *current*
        # default dtype, silently copying (and upcasting) float32 buffers
        # whenever a different-precision context was active.  (This file's
        # autouse fixture pins the default to float64, so the float32
        # tensor below disagrees with the ambient default.)
        with autograd_dtype(np.float32):
            x = Tensor(np.ones(4, dtype=np.float32))
        d = x.detach()
        assert d.data.dtype == np.float32
        assert d.data is x.data

    def test_no_grad_builds_no_graph(self):
        x = Tensor(np.ones(3), requires_grad=True)
        with no_grad():
            y = (x * 2.0).sum()
        assert not y.requires_grad
        assert y._parents == ()

    def test_no_grad_is_thread_local(self):
        # Regression: grad mode was one process-global flag, so a serving
        # thread sitting inside no_grad() switched autograd off for every
        # other thread — and overlapping save/restore pairs across threads
        # could leave it off permanently.
        entered = threading.Event()
        release = threading.Event()

        def worker():
            with no_grad():
                entered.set()
                release.wait(5.0)

        thread = threading.Thread(target=worker)
        thread.start()
        try:
            assert entered.wait(5.0)
            # While the worker holds no_grad, this thread still builds
            # graphs and backpropagates.
            x = Tensor(np.ones(3), requires_grad=True)
            (x * x).sum().backward()
            np.testing.assert_allclose(x.grad, 2.0 * np.ones(3))
        finally:
            release.set()
            thread.join()

    def test_graph_released_after_backward(self):
        x = Tensor(np.ones(3), requires_grad=True)
        y = (x * 2.0).sum()
        assert y._parents
        y.backward()
        assert y._parents == ()
        assert y._backward is None

    def test_dropout_eval_is_identity(self):
        rng = np.random.default_rng(0)
        x = Tensor(np.ones((4, 4)))
        out = x.dropout(0.5, rng, training=False)
        np.testing.assert_array_equal(out.data, x.data)

    def test_dropout_preserves_expectation(self):
        rng = np.random.default_rng(0)
        x = Tensor(np.ones((200, 200)))
        out = x.dropout(0.3, rng, training=True)
        assert abs(out.data.mean() - 1.0) < 0.02

    def test_requires_grad_false_drops_parents(self):
        x = Tensor(np.ones(3))
        y = x * 2.0
        assert y._parents == ()


@settings(max_examples=25, deadline=None)
@given(
    rows=st.integers(min_value=1, max_value=4),
    cols=st.integers(min_value=1, max_value=4),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_property_softmax_rows_sum_to_one(rows, cols, seed):
    with autograd_dtype(np.float64):
        rng = np.random.default_rng(seed)
        x = Tensor(rng.normal(scale=5.0, size=(rows, cols)))
        out = x.softmax(axis=-1).data
        np.testing.assert_allclose(out.sum(axis=-1), 1.0, atol=1e-9)
        assert (out >= 0).all()


@settings(max_examples=25, deadline=None)
@given(
    shape=st.tuples(
        st.integers(min_value=1, max_value=3), st.integers(min_value=1, max_value=3)
    ),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_property_chain_rule_linear(shape, seed):
    """d/dx of (a*x + b).sum() is a everywhere, for random a, b."""
    with autograd_dtype(np.float64):
        rng = np.random.default_rng(seed)
        a = rng.normal(size=shape)
        b = rng.normal(size=shape)
        x = Tensor(rng.normal(size=shape), requires_grad=True)
        (Tensor(a) * x + Tensor(b)).sum().backward()
        np.testing.assert_allclose(x.grad, a, atol=1e-10)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_property_matmul_matches_numpy(seed):
    with autograd_dtype(np.float64):
        rng = np.random.default_rng(seed)
        a = rng.normal(size=(3, 4))
        b = rng.normal(size=(4, 2))
        out = Tensor(a) @ Tensor(b)
        np.testing.assert_allclose(out.data, a @ b, atol=1e-12)
