"""Focused tests for nn/attention.py and nn/transformer.py: masking
correctness, output shapes, and numeric-vs-autograd gradient checks."""

import numpy as np
import pytest

from repro.nn import (
    Tensor,
    TransformerConfig,
    TransformerEncoder,
    autograd_dtype,
    make_padding_mask,
    no_grad,
    numerical_gradient,
)
from repro.nn.attention import MultiHeadSelfAttention


def rng():
    return np.random.default_rng(0)


def tiny_encoder(**overrides) -> TransformerEncoder:
    defaults = dict(
        vocab_size=20,
        dim=8,
        num_layers=1,
        num_heads=2,
        ffn_dim=16,
        max_seq_len=8,
        dropout=0.0,
        seed=5,
    )
    defaults.update(overrides)
    return TransformerEncoder(TransformerConfig(**defaults))


# ----------------------------------------------------------------------
class TestAttentionMasking:
    def test_mask_shape_and_polarity(self):
        mask = make_padding_mask(np.array([[1, 1, 0], [1, 0, 0]]))
        assert mask.shape == (2, 1, 1, 3)
        # True marks *blocked* positions.
        np.testing.assert_array_equal(
            mask[:, 0, 0], np.array([[False, False, True], [False, True, True]])
        )

    def test_masked_positions_cannot_influence_unmasked(self):
        attn = MultiHeadSelfAttention(8, 2, rng())
        attn.eval()
        gen = np.random.default_rng(1)
        x = gen.normal(size=(1, 5, 8))
        mask = make_padding_mask(np.array([[1, 1, 1, 0, 0]]))
        base = attn(Tensor(x.copy()), mask).data[:, :3]
        x[0, 3:] = 1e3  # blow up masked positions only
        perturbed = attn(Tensor(x), mask).data[:, :3]
        np.testing.assert_allclose(base, perturbed, atol=1e-5)

    def test_mask_changes_output_at_kept_positions(self):
        """Masking must actually do something: dropping a real token from
        the attention pool changes other positions' outputs."""
        attn = MultiHeadSelfAttention(8, 2, rng())
        attn.eval()
        x = np.random.default_rng(2).normal(size=(1, 4, 8))
        full = attn(Tensor(x.copy())).data[:, :3]
        masked = attn(
            Tensor(x.copy()), make_padding_mask(np.array([[1, 1, 1, 0]]))
        ).data[:, :3]
        assert not np.allclose(full, masked)

    def test_per_row_masks_are_independent(self):
        """Row 0's padding must not leak into row 1's outputs."""
        attn = MultiHeadSelfAttention(8, 2, rng())
        attn.eval()
        gen = np.random.default_rng(3)
        x = gen.normal(size=(2, 4, 8))
        mask_a = np.array([[1, 1, 1, 0], [1, 1, 1, 1]])
        out_joint = attn(Tensor(x.copy()), make_padding_mask(mask_a)).data[1]
        out_solo = attn(
            Tensor(x[1:].copy()), make_padding_mask(mask_a[1:])
        ).data[0]
        np.testing.assert_allclose(out_joint, out_solo, atol=1e-6)


# ----------------------------------------------------------------------
class TestAttentionShapes:
    @pytest.mark.parametrize(
        "batch,seq,dim,heads", [(1, 3, 8, 1), (2, 5, 8, 2), (3, 7, 12, 4)]
    )
    def test_output_matches_input_shape(self, batch, seq, dim, heads):
        attn = MultiHeadSelfAttention(dim, heads, rng())
        out = attn(Tensor(np.random.default_rng(4).normal(size=(batch, seq, dim))))
        assert out.shape == (batch, seq, dim)

    def test_head_dim_must_divide(self):
        with pytest.raises(ValueError):
            MultiHeadSelfAttention(10, 4, rng())

    def test_encoder_hidden_and_pooled_shapes(self):
        enc = tiny_encoder()
        ids = np.array([[2, 5, 6, 0], [2, 7, 0, 0]])
        hidden = enc(ids)
        assert hidden.shape == (2, 4, 8)
        with no_grad():
            assert enc.pooled(ids, pooling="cls").shape == (2, 8)
            assert enc.pooled(ids, pooling="mean").shape == (2, 8)

    def test_mean_pooling_keeps_hidden_dtype(self, monkeypatch):
        # Regression: the pooling mask/counts were built as float64
        # constants.  The Tensor constructor's coercion to the default
        # dtype happened to wash that out in the output, but a float32
        # forward pass was still allocating float64 temporaries for every
        # mean-pooled batch.  Pin that `pooled` never *constructs* a
        # float64 tensor for a float32 model.
        from repro.nn import transformer as transformer_module

        constructed_dtypes = []

        class SpyTensor(Tensor):
            def __init__(self, data, *args, **kwargs):
                constructed_dtypes.append(np.asarray(data).dtype)
                super().__init__(data, *args, **kwargs)

        monkeypatch.setattr(transformer_module, "Tensor", SpyTensor)
        enc = tiny_encoder()
        ids = np.array([[2, 5, 6, 0], [2, 7, 0, 0]])
        mask = np.array([[1, 1, 1, 0], [1, 1, 0, 0]])
        with no_grad():
            hidden = enc(ids, attention_mask=mask)
            pooled = enc.pooled(ids, attention_mask=mask, pooling="mean")
        assert hidden.data.dtype == np.float32
        assert pooled.data.dtype == np.float32
        assert constructed_dtypes, "pooled() no longer builds mask tensors?"
        assert np.dtype(np.float64) not in constructed_dtypes


# ----------------------------------------------------------------------
class TestGradientChecks:
    """Central-difference vs autograd, in float64 for stable numerics."""

    ATOL = 1e-6
    RTOL = 1e-4

    def test_attention_input_gradient(self):
        with autograd_dtype(np.float64):
            attn = MultiHeadSelfAttention(6, 2, rng())
            attn.eval()
            gen = np.random.default_rng(6)
            x = Tensor(gen.normal(size=(1, 3, 6)), requires_grad=True)
            mask = make_padding_mask(np.array([[1, 1, 0]]))
            weights = gen.normal(size=(1, 3, 6))

            def loss_fn(tensor):
                return (attn(tensor, mask) * Tensor(weights)).sum()

            loss = loss_fn(x)
            loss.backward()
            numeric = numerical_gradient(loss_fn, x)
            np.testing.assert_allclose(
                x.grad, numeric, atol=self.ATOL, rtol=self.RTOL
            )

    def test_attention_parameter_gradients(self):
        with autograd_dtype(np.float64):
            attn = MultiHeadSelfAttention(6, 2, rng())
            attn.eval()
            gen = np.random.default_rng(7)
            x = Tensor(gen.normal(size=(2, 3, 6)))
            weights = gen.normal(size=(2, 3, 6))

            def loss_fn(_):
                return (attn(x) * Tensor(weights)).sum()

            for name in ("query", "key", "value", "output"):
                parameter = getattr(attn, name).weight
                loss = loss_fn(None)
                attn.zero_grad()
                loss.backward()
                analytic = parameter.grad.copy()
                numeric = numerical_gradient(loss_fn, parameter)
                np.testing.assert_allclose(
                    analytic,
                    numeric,
                    atol=self.ATOL,
                    rtol=self.RTOL,
                    err_msg=f"gradient mismatch for attn.{name}.weight",
                )

    def test_transformer_embedding_gradient(self):
        with autograd_dtype(np.float64):
            enc = tiny_encoder()
            enc.eval()
            ids = np.array([[2, 5, 6, 0]])
            mask = np.array([[1, 1, 1, 0]])
            gen = np.random.default_rng(8)
            weights = gen.normal(size=(1, 8))
            parameter = enc.token_embedding.weight

            def loss_fn(_):
                pooled = enc.pooled(ids, attention_mask=mask, pooling="mean")
                return (pooled * Tensor(weights)).sum()

            loss = loss_fn(None)
            enc.zero_grad()
            loss.backward()
            analytic = parameter.grad.copy()
            numeric = numerical_gradient(loss_fn, parameter)
            np.testing.assert_allclose(
                analytic, numeric, atol=self.ATOL, rtol=self.RTOL
            )

    def test_transformer_layer_parameter_gradient(self):
        with autograd_dtype(np.float64):
            enc = tiny_encoder()
            enc.eval()
            ids = np.array([[2, 5, 6, 7]])
            gen = np.random.default_rng(9)
            weights = gen.normal(size=(1, 4, 8))
            parameter = enc.layers[0].ffn.fc1.weight

            def loss_fn(_):
                return (enc(ids) * Tensor(weights)).sum()

            loss = loss_fn(None)
            enc.zero_grad()
            loss.backward()
            analytic = parameter.grad.copy()
            numeric = numerical_gradient(loss_fn, parameter)
            np.testing.assert_allclose(
                analytic, numeric, atol=self.ATOL, rtol=self.RTOL
            )
