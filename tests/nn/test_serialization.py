"""Round-trip and corruption tests for nn/serialization.py checkpoints."""

import numpy as np
import pytest

from repro.nn import (
    MLP,
    Linear,
    Tensor,
    TransformerConfig,
    TransformerEncoder,
    load_checkpoint,
    no_grad,
    save_checkpoint,
)


def rng():
    return np.random.default_rng(0)


class TestRoundTrip:
    def test_identical_outputs_after_reload(self, tmp_path):
        model = MLP(6, 12, 4, rng())
        path = save_checkpoint(model, tmp_path / "mlp.npz")
        restored = MLP(6, 12, 4, np.random.default_rng(99))
        load_checkpoint(restored, path)
        x = Tensor(np.random.default_rng(1).normal(size=(3, 6)))
        np.testing.assert_array_equal(model(x).data, restored(x).data)

    def test_transformer_embeddings_identical(self, tmp_path):
        config = TransformerConfig(
            vocab_size=30, dim=8, num_layers=1, num_heads=2, ffn_dim=16,
            max_seq_len=6, dropout=0.0, seed=3,
        )
        encoder = TransformerEncoder(config)
        path = save_checkpoint(encoder, tmp_path / "enc.npz")
        restored = TransformerEncoder(
            TransformerConfig(
                vocab_size=30, dim=8, num_layers=1, num_heads=2, ffn_dim=16,
                max_seq_len=6, dropout=0.0, seed=77,  # different init seed
            )
        )
        load_checkpoint(restored, path)
        ids = np.array([[2, 5, 6]])
        with no_grad():
            np.testing.assert_array_equal(
                encoder.pooled(ids).data, restored.pooled(ids).data
            )

    def test_metadata_roundtrip(self, tmp_path):
        model = Linear(3, 3, rng())
        path = save_checkpoint(
            model, tmp_path / "m.npz", metadata={"note": "hello", "step": 7}
        )
        metadata = load_checkpoint(Linear(3, 3, rng()), path)
        assert metadata == {"note": "hello", "step": 7}

    def test_suffixless_path_resolves(self, tmp_path):
        model = Linear(2, 2, rng())
        save_checkpoint(model, tmp_path / "ckpt")
        load_checkpoint(Linear(2, 2, rng()), tmp_path / "ckpt")


class TestCorruption:
    def test_garbage_file_raises_value_error(self, tmp_path):
        path = tmp_path / "garbage.npz"
        path.write_bytes(b"this is definitely not a zip archive")
        with pytest.raises(ValueError, match="corrupt or unreadable"):
            load_checkpoint(Linear(2, 2, rng()), path)

    def test_truncated_file_raises_value_error(self, tmp_path):
        model = MLP(6, 12, 4, rng())
        path = save_checkpoint(model, tmp_path / "full.npz")
        data = path.read_bytes()
        truncated = tmp_path / "truncated.npz"
        truncated.write_bytes(data[: len(data) // 3])
        with pytest.raises(ValueError, match="corrupt or unreadable"):
            load_checkpoint(MLP(6, 12, 4, rng()), truncated)

    def test_non_checkpoint_npz_raises_value_error(self, tmp_path):
        path = tmp_path / "plain.npz"
        np.savez(path, stuff=np.ones(3))  # no __metadata__, no param:: keys
        with pytest.raises(ValueError, match="corrupt or unreadable"):
            load_checkpoint(Linear(2, 2, rng()), path)

    def test_wrong_architecture_raises_key_error(self, tmp_path):
        path = save_checkpoint(Linear(3, 3, rng()), tmp_path / "lin.npz")
        with pytest.raises(KeyError):
            load_checkpoint(MLP(3, 3, 3, rng()), path)

    def test_missing_file_raises_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_checkpoint(Linear(2, 2, rng()), tmp_path / "nope.npz")
