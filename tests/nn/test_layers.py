"""Tests for layers, modules, attention, and the Transformer encoder."""

import numpy as np
import pytest

from repro.nn import (
    MLP,
    SGD,
    AdamW,
    Dropout,
    Embedding,
    LayerNorm,
    Linear,
    Module,
    Parameter,
    Sequential,
    Tensor,
    TransformerConfig,
    TransformerEncoder,
    cross_entropy,
    make_padding_mask,
    no_grad,
)
from repro.nn.attention import MultiHeadSelfAttention


def rng():
    return np.random.default_rng(0)


class TestLinear:
    def test_shapes(self):
        layer = Linear(4, 7, rng())
        out = layer(Tensor(np.ones((3, 4))))
        assert out.shape == (3, 7)

    def test_no_bias(self):
        layer = Linear(4, 7, rng(), bias=False)
        assert layer.bias is None
        out = layer(Tensor(np.zeros((2, 4))))
        np.testing.assert_allclose(out.data, 0.0)

    def test_batched_input(self):
        layer = Linear(4, 5, rng())
        out = layer(Tensor(np.ones((2, 3, 4))))
        assert out.shape == (2, 3, 5)

    def test_parameters_trainable(self):
        layer = Linear(4, 2, rng())
        out = layer(Tensor(np.ones((1, 4)))).sum()
        out.backward()
        assert layer.weight.grad is not None
        assert layer.bias.grad is not None


class TestEmbedding:
    def test_lookup(self):
        emb = Embedding(10, 4, rng())
        out = emb(np.array([[1, 2], [3, 4]]))
        assert out.shape == (2, 2, 4)
        np.testing.assert_array_equal(out.data[0, 0], emb.weight.data[1])

    def test_padding_idx_zero_initialized(self):
        emb = Embedding(10, 4, rng(), padding_idx=0)
        np.testing.assert_allclose(emb.weight.data[0], 0.0)

    def test_padding_idx_gets_no_gradient(self):
        # Regression: pad lookups used to accumulate gradient into the pad
        # row, so the "always zero" embedding drifted with every batch.
        emb = Embedding(10, 4, rng(), padding_idx=0)
        out = emb(np.array([[0, 1, 2], [0, 0, 3]]))
        out.sum().backward()
        np.testing.assert_array_equal(emb.weight.grad[0], 0.0)
        assert np.any(emb.weight.grad[1] != 0.0)

    def test_padding_row_stays_zero_after_optimizer_step(self):
        emb = Embedding(10, 4, rng(), padding_idx=0)
        optimizer = SGD(emb.parameters(), lr=0.5)
        for _ in range(3):
            optimizer.zero_grad()
            out = emb(np.array([[0, 1, 2, 0]]))
            # A value-independent loss: every looked-up row (including the
            # zero-initialized pad row) gets a nonzero gradient, so this
            # fails if the pad row is allowed to drift.
            out.sum().backward()
            optimizer.step()
        np.testing.assert_array_equal(emb.weight.data[0], 0.0)

    def test_no_padding_idx_pad_row_trains(self):
        emb = Embedding(10, 4, rng())
        out = emb(np.array([[0, 1]]))
        out.sum().backward()
        assert np.any(emb.weight.grad[0] != 0.0)


class TestModuleProtocol:
    def test_named_parameters_nested(self):
        class Inner(Module):
            def __init__(self):
                super().__init__()
                self.fc = Linear(2, 2, rng())

        class Outer(Module):
            def __init__(self):
                super().__init__()
                self.inner = Inner()
                self.scale = Parameter(np.ones(1))
                self.blocks = [Linear(2, 2, rng()), Linear(2, 2, rng())]

        model = Outer()
        names = {name for name, _ in model.named_parameters()}
        assert "inner.fc.weight" in names
        assert "scale" in names
        assert "blocks.0.weight" in names and "blocks.1.bias" in names

    def test_state_dict_roundtrip(self):
        model = MLP(4, 8, 2, rng())
        state = model.state_dict()
        other = MLP(4, 8, 2, np.random.default_rng(99))
        other.load_state_dict(state)
        x = Tensor(np.ones((2, 4)))
        np.testing.assert_allclose(model(x).data, other(x).data)

    def test_load_state_dict_rejects_mismatch(self):
        model = Linear(3, 3, rng())
        with pytest.raises(KeyError):
            model.load_state_dict({"bogus": np.ones(3)})

    def test_train_eval_propagates(self):
        model = Sequential(Linear(3, 3, rng()), Dropout(0.5, rng()))
        model.eval()
        assert not model.steps[1].training
        model.train()
        assert model.steps[1].training

    def test_num_parameters(self):
        model = Linear(3, 4, rng())
        assert model.num_parameters() == 3 * 4 + 4


class TestAttention:
    def test_output_shape(self):
        attn = MultiHeadSelfAttention(8, 2, rng())
        out = attn(Tensor(np.random.default_rng(1).normal(size=(2, 5, 8))))
        assert out.shape == (2, 5, 8)

    def test_rejects_bad_heads(self):
        with pytest.raises(ValueError):
            MultiHeadSelfAttention(7, 2, rng())

    def test_padding_mask_blocks_positions(self):
        """Changing a masked position's content must not change outputs at
        unmasked positions."""
        attn = MultiHeadSelfAttention(8, 2, rng())
        attn.eval()
        gen = np.random.default_rng(2)
        x = gen.normal(size=(1, 4, 8))
        mask = make_padding_mask(np.array([[1, 1, 1, 0]]))
        out1 = attn(Tensor(x.copy()), mask).data[:, :3]
        x[0, 3] = 100.0
        out2 = attn(Tensor(x), mask).data[:, :3]
        np.testing.assert_allclose(out1, out2, atol=1e-5)

    def test_make_padding_mask_shape(self):
        mask = make_padding_mask(np.ones((3, 7)))
        assert mask.shape == (3, 1, 1, 7)
        assert not mask.any()


class TestTransformer:
    def make(self, **overrides):
        defaults = dict(
            vocab_size=30,
            dim=16,
            num_layers=2,
            num_heads=2,
            ffn_dim=32,
            max_seq_len=10,
            dropout=0.0,
            seed=3,
        )
        defaults.update(overrides)
        return TransformerEncoder(TransformerConfig(**defaults))

    def test_forward_shape(self):
        enc = self.make()
        out = enc(np.array([[2, 5, 6, 0, 0]]))
        assert out.shape == (1, 5, 16)

    def test_pooled_cls_and_mean(self):
        enc = self.make()
        ids = np.array([[2, 5, 6, 7, 0]])
        mask = np.array([[1, 1, 1, 1, 0]])
        cls = enc.pooled(ids, attention_mask=mask, pooling="cls")
        mean = enc.pooled(ids, attention_mask=mask, pooling="mean")
        assert cls.shape == (1, 16) and mean.shape == (1, 16)
        assert not np.allclose(cls.data, mean.data)

    def test_rejects_long_sequence(self):
        enc = self.make(max_seq_len=4)
        with pytest.raises(ValueError):
            enc(np.ones((1, 5), dtype=np.int64))

    def test_padding_invariance(self):
        """Extending a sequence with PAD tokens must not change its pooled
        representation (the property blocking relies on)."""
        enc = self.make()
        enc.eval()
        ids_short = np.array([[2, 5, 6]])
        ids_padded = np.array([[2, 5, 6, 0, 0]])
        with no_grad():
            a = enc.pooled(ids_short, pooling="cls").data
            b = enc.pooled(ids_padded, pooling="cls").data
        np.testing.assert_allclose(a, b, atol=1e-5)

    def test_segment_embedding_changes_output(self):
        enc = self.make()
        enc.eval()
        ids = np.array([[2, 5, 6]])
        with no_grad():
            plain = enc.pooled(ids, pooling="cls").data
            seg = enc.pooled(
                ids, segment_ids=np.array([[0, 1, 1]]), pooling="cls"
            ).data
        assert not np.allclose(plain, seg)

    def test_embedding_transform_hook_applied(self):
        """The cutoff hook path: zeroing all embeddings must change output."""
        enc = self.make()
        enc.eval()
        ids = np.array([[2, 5, 6]])

        def zero_all(embeddings, attention_mask):
            return embeddings * 0.0

        with no_grad():
            plain = enc.pooled(ids, pooling="cls").data
            zeroed = enc.pooled(
                ids, pooling="cls", embedding_transform=zero_all
            ).data
        assert not np.allclose(plain, zeroed)

    def test_can_overfit_tiny_classification(self):
        """End-to-end learning sanity: loss decreases by 10x on 4 examples."""
        enc = self.make(dropout=0.0)
        head = Linear(16, 2, rng())
        ids = np.array(
            [[2, 5, 6, 7], [2, 8, 9, 10], [2, 5, 6, 7], [2, 8, 9, 10]]
        )
        labels = np.array([0, 1, 0, 1])
        opt = AdamW(enc.parameters() + head.parameters(), lr=5e-3)
        first = None
        for _ in range(40):
            logits = head(enc.pooled(ids, pooling="cls"))
            loss = cross_entropy(logits, labels)
            if first is None:
                first = loss.item()
            opt.zero_grad()
            loss.backward()
            opt.step()
        assert loss.item() < first / 10.0

    def test_deterministic_given_seed(self):
        a = self.make(seed=11)
        b = self.make(seed=11)
        ids = np.array([[2, 3, 4]])
        with no_grad():
            np.testing.assert_array_equal(
                a.pooled(ids).data, b.pooled(ids).data
            )
