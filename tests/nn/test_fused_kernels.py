"""Fused kernels vs. their reference compositions: bit-identical, both
directions, grad and no-grad.

The fused ``linear`` / ``bias_gelu`` / ``attention_scores`` kernels (and
the ``no_grad`` scratch-buffer fast paths behind the same switch) promise
*exactly* the values of the unfused op composition — same numpy
operations in the same order.  These tests pin that invariant with
byte-level comparisons; the training byte-identity contracts in
tests/train/ depend on it.
"""

import math

import numpy as np
import pytest

from repro.nn import (
    LayerNorm,
    Tensor,
    TransformerConfig,
    TransformerEncoder,
    attention_scores,
    bias_gelu,
    fused_kernels,
    fused_kernels_enabled,
    linear,
    no_grad,
    set_fused_kernels,
)


@pytest.fixture(autouse=True)
def _restore_fused_switch():
    yield
    set_fused_kernels(True)


def gen(seed=0):
    return np.random.default_rng(seed)


def run_both(build_loss, params_fn):
    """Forward + backward under each kernel mode; return (values, grads)."""
    results = []
    for enabled in (True, False):
        with fused_kernels(enabled):
            loss, out, params = build_loss()
            loss.backward()
        results.append(
            (out.data.copy(), [p.grad.copy() for p in params_fn(params)])
        )
    return results


class TestSwitch:
    def test_default_enabled(self):
        assert fused_kernels_enabled()

    def test_context_manager_restores(self):
        with fused_kernels(False):
            assert not fused_kernels_enabled()
            with fused_kernels(True):
                assert fused_kernels_enabled()
            assert not fused_kernels_enabled()
        assert fused_kernels_enabled()


class TestLinear:
    def test_forward_backward_identical(self):
        x0 = gen(1).normal(size=(4, 6, 8)).astype(np.float32)
        w0 = gen(2).normal(size=(8, 5)).astype(np.float32)
        b0 = gen(3).normal(size=(5,)).astype(np.float32)

        def build():
            x = Tensor(x0.copy(), requires_grad=True)
            w = Tensor(w0.copy(), requires_grad=True)
            b = Tensor(b0.copy(), requires_grad=True)
            out = linear(x, w, b)
            return (out * out).sum(), out, (x, w, b)

        (fused_out, fused_grads), (ref_out, ref_grads) = run_both(
            build, lambda params: params
        )
        np.testing.assert_array_equal(fused_out, ref_out)
        for fused_grad, ref_grad in zip(fused_grads, ref_grads):
            np.testing.assert_array_equal(fused_grad, ref_grad)

    def test_no_bias(self):
        x0 = gen(4).normal(size=(3, 8)).astype(np.float32)
        w0 = gen(5).normal(size=(8, 5)).astype(np.float32)
        with fused_kernels(True):
            fused = linear(Tensor(x0), Tensor(w0)).data
        with fused_kernels(False):
            ref = linear(Tensor(x0), Tensor(w0)).data
        np.testing.assert_array_equal(fused, ref)

    def test_vector_input_weight_grad(self):
        x0 = gen(6).normal(size=(8,)).astype(np.float32)
        w0 = gen(7).normal(size=(8, 5)).astype(np.float32)

        def build():
            x = Tensor(x0.copy(), requires_grad=True)
            w = Tensor(w0.copy(), requires_grad=True)
            out = linear(x, w)
            return (out * out).sum(), out, (x, w)

        (fused_out, fused_grads), (ref_out, ref_grads) = run_both(
            build, lambda params: params
        )
        np.testing.assert_array_equal(fused_out, ref_out)
        for fused_grad, ref_grad in zip(fused_grads, ref_grads):
            np.testing.assert_array_equal(fused_grad, ref_grad)

    def test_accepts_raw_ndarray(self):
        x0 = gen(8).normal(size=(3, 8)).astype(np.float32)
        w = Tensor(gen(9).normal(size=(8, 5)).astype(np.float32))
        out = linear(x0, w)
        np.testing.assert_array_equal(out.data, linear(Tensor(x0), w).data)


class TestBiasGelu:
    def test_forward_backward_identical(self):
        x0 = gen(10).normal(size=(4, 6, 16)).astype(np.float32)
        b0 = gen(11).normal(size=(16,)).astype(np.float32)

        def build():
            x = Tensor(x0.copy(), requires_grad=True)
            b = Tensor(b0.copy(), requires_grad=True)
            out = bias_gelu(x, b)
            return (out * out).sum(), out, (x, b)

        (fused_out, fused_grads), (ref_out, ref_grads) = run_both(
            build, lambda params: params
        )
        np.testing.assert_array_equal(fused_out, ref_out)
        for fused_grad, ref_grad in zip(fused_grads, ref_grads):
            np.testing.assert_array_equal(fused_grad, ref_grad)

    def test_no_grad_scratch_path_identical(self):
        x = Tensor(gen(12).normal(size=(4, 6, 16)).astype(np.float32))
        b = Tensor(gen(13).normal(size=(16,)).astype(np.float32))
        with fused_kernels(True):
            grad_mode = bias_gelu(x, b).data.copy()
            with no_grad():
                first = bias_gelu(x, b).data.copy()
                second = bias_gelu(x, b).data.copy()  # scratch reuse
            with no_grad(), fused_kernels(False):
                ref = bias_gelu(x, b).data.copy()
        np.testing.assert_array_equal(first, grad_mode)
        np.testing.assert_array_equal(first, second)
        np.testing.assert_array_equal(first, ref)

    def test_no_grad_output_not_clobbered_by_next_call(self):
        # Outputs must own their buffers: a second call through the same
        # scratch pool cannot mutate an earlier result.
        x = Tensor(gen(14).normal(size=(4, 16)).astype(np.float32))
        y = Tensor(gen(15).normal(size=(4, 16)).astype(np.float32))
        b = Tensor(np.zeros(16, dtype=np.float32))
        with no_grad():
            first = bias_gelu(x, b)
            snapshot = first.data.copy()
            bias_gelu(y, b)
        np.testing.assert_array_equal(first.data, snapshot)


class TestAttentionScores:
    SHAPE = (2, 2, 5, 4)  # (batch, heads, seq, head_dim)

    def _mask(self):
        mask = np.zeros((2, 1, 1, 5), dtype=bool)
        mask[:, :, :, 3:] = True
        return mask

    @pytest.mark.parametrize("with_mask", [True, False])
    def test_forward_backward_identical(self, with_mask):
        q0 = gen(16).normal(size=self.SHAPE).astype(np.float32)
        k0 = gen(17).normal(size=self.SHAPE).astype(np.float32)
        scale = 1.0 / math.sqrt(self.SHAPE[-1])
        mask = self._mask() if with_mask else None

        def build():
            q = Tensor(q0.copy(), requires_grad=True)
            k = Tensor(k0.copy(), requires_grad=True)
            out = attention_scores(q, k, scale, mask)
            return (out * out).sum(), out, (q, k)

        (fused_out, fused_grads), (ref_out, ref_grads) = run_both(
            build, lambda params: params
        )
        np.testing.assert_array_equal(fused_out, ref_out)
        for fused_grad, ref_grad in zip(fused_grads, ref_grads):
            np.testing.assert_array_equal(fused_grad, ref_grad)

    def test_rows_sum_to_one_and_mask_zeroed(self):
        q = Tensor(gen(18).normal(size=self.SHAPE).astype(np.float32))
        k = Tensor(gen(19).normal(size=self.SHAPE).astype(np.float32))
        mask = self._mask()
        weights = attention_scores(q, k, 0.5, mask).data
        np.testing.assert_allclose(weights.sum(axis=-1), 1.0, atol=1e-6)
        assert weights[:, :, :, 3:].max() < 1e-6

    def test_no_grad_scratch_path_identical(self):
        q = Tensor(gen(20).normal(size=self.SHAPE).astype(np.float32))
        k = Tensor(gen(21).normal(size=self.SHAPE).astype(np.float32))
        scale = 1.0 / math.sqrt(self.SHAPE[-1])
        mask = self._mask()
        with fused_kernels(True):
            grad_mode = attention_scores(q, k, scale, mask).data.copy()
            with no_grad():
                first = attention_scores(q, k, scale, mask)
                snapshot = first.data.copy()
                second = attention_scores(q, k, scale, mask).data.copy()
            with no_grad(), fused_kernels(False):
                ref = attention_scores(q, k, scale, mask).data.copy()
        np.testing.assert_array_equal(snapshot, grad_mode)
        np.testing.assert_array_equal(snapshot, second)
        np.testing.assert_array_equal(snapshot, ref)
        # The first output survived the second call's scratch reuse.
        np.testing.assert_array_equal(first.data, snapshot)


class TestLayerNormFastPath:
    def test_no_grad_fast_path_identical(self):
        norm = LayerNorm(16)
        norm.weight.data[:] = gen(22).normal(size=16).astype(np.float32)
        norm.bias.data[:] = gen(23).normal(size=16).astype(np.float32)
        x = Tensor(gen(24).normal(size=(4, 6, 16)).astype(np.float32))
        train_mode = norm(x).data.copy()
        with no_grad():
            with fused_kernels(True):
                fast = norm(x).data.copy()
            with fused_kernels(False):
                slow = norm(x).data.copy()
        np.testing.assert_array_equal(fast, train_mode)
        np.testing.assert_array_equal(fast, slow)


class TestFullEncoder:
    """End-to-end: a 2-layer encoder forward + backward, fused vs unfused."""

    def _inputs(self):
        generator = gen(25)
        ids = generator.integers(1, 50, size=(4, 12))
        mask = np.ones((4, 12), dtype=np.int64)
        mask[:, 9:] = 0
        segments = np.zeros((4, 12), dtype=np.int64)
        return ids, mask, segments

    def _config(self):
        return TransformerConfig(
            vocab_size=50,
            dim=16,
            num_layers=2,
            num_heads=4,
            ffn_dim=32,
            max_seq_len=12,
            dropout=0.0,
            seed=11,
        )

    def test_inference_forward_identical(self):
        ids, mask, segments = self._inputs()
        outs = []
        for enabled in (True, False):
            with fused_kernels(enabled):
                model = TransformerEncoder(self._config())
                model.eval()
                with no_grad():
                    pooled = model.pooled(
                        ids,
                        attention_mask=mask,
                        segment_ids=segments,
                        pooling="mean",
                    )
                outs.append(pooled.data.copy())
        np.testing.assert_array_equal(outs[0], outs[1])

    def test_training_gradients_identical(self):
        ids, mask, segments = self._inputs()
        grads = []
        for enabled in (True, False):
            with fused_kernels(enabled):
                model = TransformerEncoder(self._config())
                model.train()
                pooled = model.pooled(
                    ids,
                    attention_mask=mask,
                    segment_ids=segments,
                    pooling="mean",
                )
                (pooled * pooled).sum().backward()
                grads.append([p.grad.copy() for p in model.parameters()])
        assert len(grads[0]) == len(grads[1]) > 0
        for fused_grad, ref_grad in zip(grads[0], grads[1]):
            np.testing.assert_array_equal(fused_grad, ref_grad)
