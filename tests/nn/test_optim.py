"""Tests for optimizers, schedules, losses, and checkpointing."""

import numpy as np
import pytest

from repro.nn import (
    SGD,
    Adam,
    AdamW,
    ConstantSchedule,
    Linear,
    LinearWarmupDecay,
    Parameter,
    Tensor,
    accuracy,
    binary_cross_entropy_with_logits,
    cosine_similarity_matrix,
    cosine_similarity_rows,
    cross_entropy,
    load_checkpoint,
    mse_loss,
    save_checkpoint,
    weighted_cross_entropy,
)


def quadratic_param():
    return Parameter(np.array([5.0, -3.0]))


def minimize(optimizer_factory, steps=200):
    param = quadratic_param()
    opt = optimizer_factory([param])
    for _ in range(steps):
        loss = (param * param).sum()
        opt.zero_grad()
        loss.backward()
        opt.step()
    return param.data


class TestOptimizers:
    def test_sgd_minimizes_quadratic(self):
        final = minimize(lambda p: SGD(p, lr=0.1))
        np.testing.assert_allclose(final, 0.0, atol=1e-6)

    def test_sgd_momentum_minimizes(self):
        final = minimize(lambda p: SGD(p, lr=0.05, momentum=0.9))
        np.testing.assert_allclose(final, 0.0, atol=1e-4)

    def test_adam_minimizes(self):
        final = minimize(lambda p: Adam(p, lr=0.1))
        np.testing.assert_allclose(final, 0.0, atol=1e-3)

    def test_adamw_minimizes(self):
        final = minimize(lambda p: AdamW(p, lr=0.1, weight_decay=0.0))
        np.testing.assert_allclose(final, 0.0, atol=1e-3)

    def test_adamw_weight_decay_shrinks_matrices(self):
        param = Parameter(np.ones((2, 2)) * 10.0)
        opt = AdamW([param], lr=0.1, weight_decay=0.5)
        # No gradient signal: pure decay should shrink weights.
        param.grad = np.zeros_like(param.data)
        for _ in range(10):
            opt.step()
        assert np.abs(param.data).max() < 10.0

    def test_adamw_skips_decay_on_vectors(self):
        bias = Parameter(np.ones(3) * 4.0)
        opt = AdamW([bias], lr=0.1, weight_decay=0.5)
        bias.grad = np.zeros_like(bias.data)
        opt.step()
        np.testing.assert_allclose(bias.data, 4.0)

    def test_empty_params_rejected(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_clip_grad_norm(self):
        param = Parameter(np.array([3.0, 4.0]))
        param.grad = np.array([30.0, 40.0])
        opt = SGD([param], lr=0.1)
        norm = opt.clip_grad_norm(5.0)
        assert norm == pytest.approx(50.0)
        assert np.linalg.norm(param.grad) == pytest.approx(5.0)


class TestSchedules:
    def test_constant(self):
        param = quadratic_param()
        opt = SGD([param], lr=0.5)
        sched = ConstantSchedule(opt)
        for _ in range(3):
            assert sched.step() == 0.5

    def test_linear_warmup_then_decay(self):
        param = quadratic_param()
        opt = SGD([param], lr=0.0)
        sched = LinearWarmupDecay(opt, peak_lr=1.0, total_steps=10, warmup_fraction=0.2)
        lrs = [sched.step() for _ in range(10)]
        assert lrs[0] < lrs[1]  # warming up
        assert lrs[1] == pytest.approx(1.0)  # peak at warmup end
        assert lrs[-1] < lrs[2]  # decaying
        assert lrs[-1] == pytest.approx(0.0)

    def test_rejects_nonpositive_total(self):
        param = quadratic_param()
        with pytest.raises(ValueError):
            LinearWarmupDecay(SGD([param], lr=0.1), peak_lr=1.0, total_steps=0)


class TestLosses:
    def test_cross_entropy_perfect_prediction(self):
        logits = Tensor(np.array([[10.0, -10.0], [-10.0, 10.0]]))
        loss = cross_entropy(logits, np.array([0, 1]))
        assert loss.item() < 1e-4

    def test_cross_entropy_uniform(self):
        logits = Tensor(np.zeros((4, 3)))
        loss = cross_entropy(logits, np.array([0, 1, 2, 0]))
        assert loss.item() == pytest.approx(np.log(3), abs=1e-6)

    def test_cross_entropy_shape_validation(self):
        with pytest.raises(ValueError):
            cross_entropy(Tensor(np.zeros((2, 3, 4))), np.array([0, 1]))
        with pytest.raises(ValueError):
            cross_entropy(Tensor(np.zeros((2, 3))), np.array([0, 1, 2]))

    def test_weighted_cross_entropy_downweights(self):
        logits = Tensor(np.array([[0.0, 2.0], [0.0, 2.0]]))
        labels = np.array([0, 1])
        # All weight on the correct example -> lower loss than uniform.
        focused = weighted_cross_entropy(logits, labels, np.array([0.01, 1.0]))
        uniform = weighted_cross_entropy(logits, labels, np.array([1.0, 1.0]))
        assert focused.item() < uniform.item()

    def test_weighted_cross_entropy_validates(self):
        with pytest.raises(ValueError):
            weighted_cross_entropy(
                Tensor(np.zeros((2, 2))), np.array([0, 1]), np.array([1.0])
            )

    def test_bce_with_logits_matches_manual(self):
        logits = Tensor(np.array([0.5, -1.0, 2.0]))
        targets = np.array([1.0, 0.0, 1.0])
        loss = binary_cross_entropy_with_logits(logits, targets).item()
        probs = 1 / (1 + np.exp(-logits.data))
        manual = -(targets * np.log(probs) + (1 - targets) * np.log(1 - probs)).mean()
        assert loss == pytest.approx(manual, abs=1e-6)

    def test_mse(self):
        pred = Tensor(np.array([1.0, 2.0]))
        assert mse_loss(pred, np.array([0.0, 0.0])).item() == pytest.approx(2.5)

    def test_cosine_similarity_matrix(self):
        a = Tensor(np.array([[1.0, 0.0], [0.0, 1.0]]))
        sims = cosine_similarity_matrix(a, a).data
        np.testing.assert_allclose(sims, np.eye(2), atol=1e-6)

    def test_cosine_similarity_rows(self):
        a = Tensor(np.array([[1.0, 0.0], [1.0, 0.0]]))
        b = Tensor(np.array([[1.0, 0.0], [0.0, 1.0]]))
        sims = cosine_similarity_rows(a, b).data
        np.testing.assert_allclose(sims, [1.0, 0.0], atol=1e-6)

    def test_accuracy(self):
        logits = Tensor(np.array([[2.0, 1.0], [0.0, 3.0]]))
        assert accuracy(logits, np.array([0, 1])) == 1.0
        assert accuracy(logits, np.array([1, 0])) == 0.0


class TestCheckpointing:
    def test_roundtrip(self, tmp_path):
        rng = np.random.default_rng(0)
        model = Linear(3, 4, rng)
        path = tmp_path / "model.npz"
        save_checkpoint(model, path, metadata={"epoch": 3})
        fresh = Linear(3, 4, np.random.default_rng(42))
        meta = load_checkpoint(fresh, path)
        assert meta == {"epoch": 3}
        np.testing.assert_allclose(fresh.weight.data, model.weight.data)

    def test_load_missing_suffix(self, tmp_path):
        rng = np.random.default_rng(0)
        model = Linear(2, 2, rng)
        save_checkpoint(model, tmp_path / "ckpt")
        fresh = Linear(2, 2, np.random.default_rng(1))
        load_checkpoint(fresh, tmp_path / "ckpt")
        np.testing.assert_allclose(fresh.weight.data, model.weight.data)
