"""Tests for the EM baselines (Ditto, Rotom, DeepMatcher, ZeroER,
Auto-FuzzyJoin, DL-Block)."""

import numpy as np
import pytest

from repro import SudowoodoConfig
from repro.baselines import (
    DLBlockBlocker,
    augmented_copies,
    build_warm_encoder,
    dlblock_curve,
    manual_examples,
    pair_similarity_features,
    run_autofuzzyjoin,
    run_zeroer,
    train_deepmatcher,
    train_ditto,
    train_rotom,
)
from repro.core.matcher import TrainingExample
from repro.data.generators import load_em_benchmark


def tiny_config(**overrides):
    defaults = dict(
        dim=16,
        num_layers=1,
        num_heads=2,
        ffn_dim=32,
        max_seq_len=24,
        pair_max_seq_len=40,
        vocab_size=600,
        pretrain_epochs=1,
        pretrain_batch_size=8,
        finetune_epochs=2,
        finetune_batch_size=8,
        num_clusters=3,
        corpus_cap=48,
        multiplier=2,
        mlm_warm_start_epochs=1,
        seed=0,
    )
    defaults.update(overrides)
    return SudowoodoConfig(**defaults)


@pytest.fixture(scope="module")
def dataset():
    # DA is the easiest dataset — baselines produce meaningful output fast.
    return load_em_benchmark("DA", scale=0.02, max_table_size=40)


class TestWarmEncoder:
    def test_builds_and_embeds(self, dataset):
        encoder = build_warm_encoder(dataset, tiny_config())
        vectors = encoder.embed_items(dataset.all_items()[:5])
        assert vectors.shape == (5, 16)

    def test_manual_examples_budget(self, dataset):
        examples = manual_examples(dataset, 20, tiny_config())
        assert len(examples) == 20
        assert {e.label for e in examples} <= {0, 1}


class TestDitto:
    def test_report_structure(self, dataset):
        report = train_ditto(dataset, label_budget=24, config=tiny_config())
        assert report.dataset == "DA"
        assert report.name.startswith("Ditto")
        assert 0.0 <= report.f1 <= 1.0
        assert "finetune" in report.timings


class TestRotom:
    def test_augmented_copies_preserve_labels(self):
        examples = [
            TrainingExample("[COL] t [VAL] a b c", "[COL] t [VAL] a b c", 1, 1.0)
        ]
        copies = augmented_copies(
            examples, "token_del", 0.5, np.random.default_rng(0)
        )
        assert len(copies) == 1
        assert copies[0].label == 1
        assert copies[0].weight == 0.5

    def test_runs_end_to_end(self, dataset):
        report = train_rotom(
            dataset, label_budget=24, config=tiny_config(), rounds=1
        )
        assert 0.0 <= report.f1 <= 1.0


class TestDeepMatcher:
    def test_runs_and_reports(self, dataset):
        report = train_deepmatcher(
            dataset, label_budget=24, config=tiny_config(), epochs=3
        )
        assert report.name == "DeepMatcher (24)"
        assert 0.0 <= report.f1 <= 1.0

    def test_full_budget_name(self, dataset):
        report = train_deepmatcher(
            dataset, label_budget=None, config=tiny_config(), epochs=1
        )
        assert report.name == "DeepMatcher (full)"


class TestZeroER:
    def test_features_shape_and_range(self, dataset):
        pairs = [(p.left, p.right) for p in dataset.pairs.test[:10]]
        features = pair_similarity_features(dataset, pairs)
        assert features.shape == (10, 5)
        assert (features >= -1e-9).all() and (features <= 1 + 1e-9).all()

    def test_matches_score_higher(self, dataset):
        positives = [
            (p.left, p.right) for p in dataset.pairs.all_pairs() if p.label == 1
        ][:10]
        negatives = [
            (p.left, p.right) for p in dataset.pairs.all_pairs() if p.label == 0
        ][:10]
        pos_features = pair_similarity_features(dataset, positives)
        neg_features = pair_similarity_features(dataset, negatives)
        assert pos_features[:, 0].mean() > neg_features[:, 0].mean()

    def test_zeroer_beats_trivial_on_easy_data(self, dataset):
        report = run_zeroer(dataset)
        # DA-style data is nearly separable on similarity features.
        assert report.f1 > 0.5


class TestAutoFuzzyJoin:
    def test_runs_and_scores(self, dataset):
        report = run_autofuzzyjoin(dataset)
        assert report.name == "Auto-FuzzyJoin"
        assert 0.0 <= report.f1 <= 1.0

    def test_easy_data_good_f1(self, dataset):
        report = run_autofuzzyjoin(dataset)
        assert report.f1 > 0.4


class TestDLBlock:
    def test_blocker_candidates(self, dataset):
        blocker = DLBlockBlocker(dataset, tiny_config())
        candidates = blocker.candidates(3)
        assert len(candidates) == len(dataset.table_a) * 3

    def test_curve(self, dataset):
        rows = dlblock_curve(dataset, [1, 3], tiny_config())
        assert [r["k"] for r in rows] == [1, 3]
        assert rows[0]["recall"] <= rows[1]["recall"]
