"""Tests for column matching, clustering, and Sherlock/Sato baselines."""

import numpy as np
import pytest

from repro.columns import (
    ColumnMatchingPipeline,
    SatoFeaturizer,
    SherlockFeaturizer,
    cluster_columns,
    cluster_purity,
    column_config,
    discover_types,
    evaluate_feature_baseline,
    find_subtype_clusters,
    pair_features,
)
from repro.data.generators import generate_column_corpus


@pytest.fixture(scope="module")
def corpus():
    return generate_column_corpus(80, seed=5)


def tiny_column_config():
    return column_config(
        dim=16,
        num_layers=1,
        num_heads=2,
        ffn_dim=32,
        max_seq_len=24,
        pair_max_seq_len=48,
        vocab_size=800,
        pretrain_epochs=1,
        pretrain_batch_size=8,
        finetune_epochs=2,
        finetune_batch_size=8,
        num_clusters=4,
        corpus_cap=80,
        mlm_warm_start_epochs=0,
        seed=0,
    )


@pytest.fixture(scope="module")
def pipeline(corpus):
    return ColumnMatchingPipeline(
        tiny_column_config(), max_values_per_column=5
    ).pretrain_on(corpus)


class TestColumnMatching:
    def test_candidate_pairs_no_self_matches(self, pipeline):
        candidates = pipeline.candidate_pairs(k=3)
        for i, j in candidates:
            assert i < j

    def test_labeled_split_ratio(self, pipeline):
        candidates = pipeline.candidate_pairs(k=5)
        splits = pipeline.build_labeled_pairs(candidates, 40)
        assert len(splits["train"]) == 20
        assert len(splits["valid"]) == 10

    def test_train_and_evaluate(self, pipeline):
        report = pipeline.train_and_evaluate(k=5, num_labels=60)
        assert 0.0 <= report.test_metrics["f1"] <= 1.0
        assert report.num_candidates > 0
        assert 0.0 <= report.positive_rate <= 1.0

    def test_predict_edges_subset_of_candidates(self, pipeline):
        candidates = pipeline.candidate_pairs(k=3)[:30]
        edges = pipeline.predict_edges(candidates)
        assert set(edges) <= set(candidates)

    def test_blocking_finds_same_type_neighbors(self, pipeline, corpus):
        """kNN candidates should be enriched in same-type pairs."""
        candidates = pipeline.candidate_pairs(k=5)
        same = sum(corpus.same_type(i, j) for i, j in candidates)
        rate_candidates = same / len(candidates)
        rng = np.random.default_rng(0)
        random_pairs = [
            tuple(sorted(rng.choice(len(corpus), size=2, replace=False)))
            for _ in range(300)
        ]
        rate_random = sum(corpus.same_type(i, j) for i, j in random_pairs) / len(
            random_pairs
        )
        assert rate_candidates > rate_random


class TestClustering:
    def test_connected_components(self, corpus):
        edges = [(0, 1), (1, 2), (5, 6)]
        clusters = cluster_columns(corpus, edges)
        as_sets = [set(c) for c in clusters]
        assert {0, 1, 2} in as_sets
        assert {5, 6} in as_sets

    def test_purity_perfect_for_ground_truth_clusters(self, corpus):
        by_type = {}
        for i, column in enumerate(corpus.columns):
            by_type.setdefault(column.semantic_type, []).append(i)
        purity = cluster_purity(corpus, list(by_type.values()))
        assert purity == 1.0

    def test_purity_mixed_cluster(self, corpus):
        # One big mixed cluster: purity = frequency of the majority type.
        cluster = list(range(len(corpus)))
        purity = cluster_purity(corpus, [cluster])
        counts = corpus.type_counts()
        assert purity == pytest.approx(max(counts.values()) / len(corpus))

    def test_subtype_discovery(self, corpus):
        # Build clusters aligned with subtypes of "city".
        city_columns = {}
        for i, column in enumerate(corpus.columns):
            if column.semantic_type == "city":
                city_columns.setdefault(column.subtype, []).append(i)
        clusters = [v for v in city_columns.values() if len(v) >= 3]
        if clusters:
            discoveries = find_subtype_clusters(corpus, clusters)
            assert len(discoveries) == len(clusters)
            for discovery in discoveries:
                assert discovery["type"] == "city"

    def test_discover_types_report(self, corpus):
        edges = [(0, 1)]
        report = discover_types(corpus, edges)
        assert report.num_clusters == len(corpus) - 1
        assert 0.0 <= report.mean_purity <= 1.0


class TestFeaturizers:
    def test_sherlock_feature_shape_consistent(self, corpus):
        featurizer = SherlockFeaturizer().fit(corpus)
        matrix = featurizer.matrix(corpus)
        assert matrix.shape[0] == len(corpus)
        assert matrix.shape[1] == featurizer.features(corpus[0]).shape[0]

    def test_sato_adds_topic_dims(self, corpus):
        sherlock = SherlockFeaturizer().fit(corpus)
        sato = SatoFeaturizer(topics=8).fit(corpus)
        assert (
            sato.features(corpus[0]).shape[0]
            == sherlock.features(corpus[0]).shape[0] + 16
        )

    def test_same_type_columns_closer_in_feature_space(self, corpus):
        featurizer = SherlockFeaturizer().fit(corpus)
        matrix = featurizer.matrix(corpus)
        same, diff = [], []
        for i in range(0, 40):
            for j in range(i + 1, 40):
                distance = np.linalg.norm(matrix[i] - matrix[j])
                (same if corpus.same_type(i, j) else diff).append(distance)
        if same and diff:
            assert np.mean(same) < np.mean(diff)

    def test_pair_features_shape(self):
        va, vb = np.ones(4), np.zeros(4)
        assert pair_features(va, vb).shape == (12,)

    @pytest.mark.parametrize("classifier", ["LR", "GBT", "SIM"])
    def test_feature_baseline_evaluation(self, corpus, classifier):
        pipeline = ColumnMatchingPipeline(
            tiny_column_config(), max_values_per_column=5
        ).pretrain_on(corpus)
        candidates = pipeline.candidate_pairs(k=5)
        splits = pipeline.build_labeled_pairs(candidates, 60)
        result = evaluate_feature_baseline(
            corpus, SherlockFeaturizer(), splits, classifier
        )
        assert set(result) == {"valid", "test"}
        assert 0.0 <= result["test"]["f1"] <= 1.0
