"""Tests for the classical-ML substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml import (
    DecisionTreeClassifier,
    DecisionTreeRegressor,
    GaussianMixture,
    GradientBoostedTrees,
    LinearSVM,
    LogisticRegression,
    RandomForest,
    accuracy,
    precision_recall_f1,
)


def linearly_separable(n=60, seed=0):
    rng = np.random.default_rng(seed)
    pos = rng.normal(loc=(2.0, 2.0), scale=0.5, size=(n // 2, 2))
    neg = rng.normal(loc=(-2.0, -2.0), scale=0.5, size=(n // 2, 2))
    features = np.vstack([pos, neg])
    labels = np.array([1] * (n // 2) + [0] * (n // 2))
    return features, labels


def xor_data(n=120, seed=1):
    rng = np.random.default_rng(seed)
    x = rng.uniform(-1, 1, size=(n, 2))
    labels = ((x[:, 0] > 0) ^ (x[:, 1] > 0)).astype(int)
    return x, labels


CLASSIFIERS = [
    ("lr", lambda: LogisticRegression()),
    ("svm", lambda: LinearSVM()),
    ("tree", lambda: DecisionTreeClassifier(max_depth=5)),
    ("forest", lambda: RandomForest(num_trees=10, max_depth=5)),
    ("gbt", lambda: GradientBoostedTrees()),
]


@pytest.mark.parametrize("name,factory", CLASSIFIERS)
def test_classifiers_solve_separable(name, factory):
    features, labels = linearly_separable()
    model = factory().fit(features, labels)
    assert accuracy(labels, model.predict(features)) >= 0.95


@pytest.mark.parametrize(
    "name,factory",
    [c for c in CLASSIFIERS if c[0] in ("tree", "forest", "gbt")],
)
def test_nonlinear_models_solve_xor(name, factory):
    features, labels = xor_data()
    model = factory().fit(features, labels)
    assert accuracy(labels, model.predict(features)) >= 0.9


def test_linear_models_fail_xor():
    """Sanity check that XOR really is non-linear for our linear models."""
    features, labels = xor_data()
    lr = LogisticRegression().fit(features, labels)
    assert accuracy(labels, lr.predict(features)) < 0.75


@pytest.mark.parametrize("name,factory", CLASSIFIERS)
def test_predict_proba_valid(name, factory):
    features, labels = linearly_separable(seed=3)
    model = factory().fit(features, labels)
    probs = model.predict_proba(features)
    assert probs.shape == (len(labels), 2)
    np.testing.assert_allclose(probs.sum(axis=1), 1.0, atol=1e-9)
    assert (probs >= 0).all()


class TestDecisionTree:
    def test_depth_limits_honored(self):
        features, labels = xor_data()
        stump = DecisionTreeClassifier(max_depth=1).fit(features, labels)
        deep = DecisionTreeClassifier(max_depth=6).fit(features, labels)
        assert accuracy(labels, deep.predict(features)) > accuracy(
            labels, stump.predict(features)
        )

    def test_pure_leaf_stops(self):
        features = np.array([[0.0], [1.0], [2.0]])
        labels = np.array([1, 1, 1])
        tree = DecisionTreeClassifier().fit(features, labels)
        assert tree._root.is_leaf
        assert tree._root.value == 1.0

    def test_regressor_fits_step(self):
        features = np.linspace(0, 1, 50).reshape(-1, 1)
        targets = (features[:, 0] > 0.5).astype(float) * 10.0
        tree = DecisionTreeRegressor(max_depth=2).fit(features, targets)
        predictions = tree.predict(features)
        assert np.abs(predictions - targets).mean() < 0.5


class TestRandomForest:
    def test_requires_fit(self):
        with pytest.raises(RuntimeError):
            RandomForest().predict(np.ones((2, 2)))

    def test_deterministic_given_seed(self):
        features, labels = xor_data()
        a = RandomForest(num_trees=5, seed=7).fit(features, labels)
        b = RandomForest(num_trees=5, seed=7).fit(features, labels)
        np.testing.assert_array_equal(a.predict(features), b.predict(features))


class TestGBT:
    def test_more_rounds_improve_fit(self):
        features, labels = xor_data(seed=5)
        weak = GradientBoostedTrees(num_rounds=2).fit(features, labels)
        strong = GradientBoostedTrees(num_rounds=40).fit(features, labels)
        assert accuracy(labels, strong.predict(features)) >= accuracy(
            labels, weak.predict(features)
        )

    def test_base_score_reflects_prior(self):
        features = np.ones((10, 1))
        labels = np.array([1] * 9 + [0])
        gbt = GradientBoostedTrees(num_rounds=0).fit(features, labels)
        assert gbt._base_score > 0  # positive prior -> positive logit


class TestGMM:
    def test_separates_two_blobs(self):
        rng = np.random.default_rng(0)
        low = rng.normal(0.1, 0.05, size=(100, 1))
        high = rng.normal(0.9, 0.05, size=(30, 1))
        data = np.vstack([low, high])
        gmm = GaussianMixture(num_components=2).fit(data)
        labels = gmm.predict(data)
        # All lows in one component, all highs in the other.
        assert len(set(labels[:100])) == 1
        assert len(set(labels[100:])) == 1
        assert labels[0] != labels[-1]

    def test_component_order_by_mean(self):
        rng = np.random.default_rng(1)
        data = np.vstack(
            [rng.normal(0, 0.1, size=(50, 1)), rng.normal(5, 0.1, size=(50, 1))]
        )
        gmm = GaussianMixture(num_components=2).fit(data)
        order = gmm.component_order_by_mean()
        assert gmm.means[order[0]].sum() < gmm.means[order[1]].sum()

    def test_weights_sum_to_one(self):
        rng = np.random.default_rng(2)
        gmm = GaussianMixture(num_components=3).fit(rng.normal(size=(60, 2)))
        assert gmm.weights.sum() == pytest.approx(1.0)

    def test_rejects_tiny_input(self):
        with pytest.raises(ValueError):
            GaussianMixture(num_components=2).fit(np.ones((1, 2)))

    def test_posterior_rows_sum_to_one(self):
        rng = np.random.default_rng(3)
        data = rng.normal(size=(40, 2))
        gmm = GaussianMixture(num_components=2).fit(data)
        probs = gmm.predict_proba(data)
        np.testing.assert_allclose(probs.sum(axis=1), 1.0, atol=1e-9)


class TestMetrics:
    def test_prf(self):
        m = precision_recall_f1(np.array([1, 1, 0, 0]), np.array([1, 0, 1, 0]))
        assert m["precision"] == 0.5 and m["recall"] == 0.5

    def test_prf_validates_shapes(self):
        with pytest.raises(ValueError):
            precision_recall_f1(np.array([1]), np.array([1, 0]))

    def test_accuracy_empty(self):
        assert accuracy(np.array([]), np.array([])) == 0.0


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=300))
def test_property_lr_probability_monotone_along_weights(seed):
    features, labels = linearly_separable(seed=seed)
    model = LogisticRegression(iterations=150).fit(features, labels)
    probs = model.predict_proba(features)[:, 1]
    # Points deep in the positive blob get higher probability than deep
    # negative ones.
    assert probs[:30].mean() > probs[30:].mean()
