"""Million-record storage benchmark — IVF-PQ + memmap store vs the dense
serve path (no paper table; see docs/benchmarks.md).

The ROADMAP north star is "millions of users": this benchmark builds a
large synthetic embedding corpus (clustered unit vectors — the shape a
contrastively trained encoder emits and IVF partitioning thrives on) and
measures what the storage tier of that story costs:

* **Memory** — the IVF-PQ index (PQ codes + ids + codebooks) and the
  int8 :class:`~repro.serve.vecstore.MemmapVectorStore` payload vs the
  dense float64 matrix the seed's serve path holds in RAM.  Acceptance:
  the index is at least **8x** smaller than dense.
* **Recall** — IVF-PQ top-10 overlap with the exact backend at the
  configured ``nprobe``.  Acceptance: at least **0.8**.
* **QPS** — batched query throughput of exact / LSH / HNSW / IVF-PQ on
  the same corpus (HNSW's per-row insert cost keeps it out of the smoke
  profile).

Run as a pytest benchmark for the full-scale numbers, or as a script for
a quick CI smoke check::

    PYTHONPATH=src python -m pytest benchmarks/bench_million_scale.py -q -s
    PYTHONPATH=src python benchmarks/bench_million_scale.py --smoke
"""

import argparse
import tempfile
import time
from pathlib import Path

import numpy as np

from repro import SudowoodoConfig
from repro.eval import format_table
from repro.serve import MemmapVectorStore, build_backend

K = 10
NUM_QUERIES = 100


def synthetic_corpus(n: int, dim: int, num_clusters: int, seed: int = 0) -> np.ndarray:
    """Clustered unit vectors: ``num_clusters`` Gaussian blobs, L2-normalized."""
    rng = np.random.default_rng(seed)
    centers = rng.normal(size=(num_clusters, dim))
    assignments = rng.integers(num_clusters, size=n)
    rows = centers[assignments] + 0.15 * rng.normal(size=(n, dim))
    return rows / np.linalg.norm(rows, axis=1, keepdims=True)


def _time_queries(backend, queries: np.ndarray) -> float:
    start = time.perf_counter()
    backend.query(queries, K)
    elapsed = time.perf_counter() - start
    return queries.shape[0] / elapsed


def _recall(ids: np.ndarray, exact_ids: np.ndarray) -> float:
    overlaps = [
        len(set(a[a >= 0].tolist()) & set(e[e >= 0].tolist())) / K
        for a, e in zip(ids, exact_ids)
    ]
    return float(np.mean(overlaps))


def run(
    corpus_size: int = 200_000,
    dim: int = 32,
    num_clusters: int = 64,
    include_hnsw: bool = True,
) -> dict:
    """Build every backend over one synthetic corpus; measure RSS/recall/QPS."""
    config = SudowoodoConfig(
        dim=dim,
        ivf_cells=min(64, max(4, corpus_size // 256)),
        pq_subvectors=16,
        pq_bits=8,
        nprobe=8,
        seed=0,
    )
    rows = synthetic_corpus(corpus_size, dim, num_clusters)
    queries = rows[:: max(1, corpus_size // NUM_QUERIES)][:NUM_QUERIES]
    dense_bytes = rows.shape[0] * dim * 8  # the seed's float64 matrix

    backends = {}
    timings = {}
    for name in ["exact", "lsh"] + (["hnsw"] if include_hnsw else []) + ["ivfpq"]:
        backend = build_backend(config, name=name, sharded=False)
        start = time.perf_counter()
        backend.build(rows)
        timings[name] = time.perf_counter() - start
        backends[name] = backend

    exact_ids, _ = backends["exact"].query(queries, K)
    results = {"corpus": corpus_size, "dim": dim, "dense_mb": dense_bytes / 2**20}
    rows_out = []
    for name, backend in backends.items():
        qps = _time_queries(backend, queries)
        recall = (
            1.0 if name == "exact" else _recall(backend.query(queries, K)[0], exact_ids)
        )
        results[name] = {"qps": qps, "recall": recall, "build_s": timings[name]}
        rows_out.append([name, f"{timings[name]:.1f}", f"{qps:.0f}", f"{recall:.3f}"])
    results["table"] = rows_out

    ivfpq_bytes = backends["ivfpq"].memory_bytes()
    results["ivfpq_mb"] = ivfpq_bytes / 2**20
    results["compression"] = dense_bytes / ivfpq_bytes
    results["ivfpq_trained"] = backends["ivfpq"].trained

    # Memmap store: the on-disk int8 payload that replaces the in-RAM
    # dense matrix, plus a read-back sanity check through the OS pager.
    with tempfile.TemporaryDirectory() as tmp:
        store = MemmapVectorStore.create(Path(tmp) / "corpus", dim=dim, dtype="int8")
        start = time.perf_counter()
        for begin in range(0, corpus_size, 8192):
            stop = min(begin + 8192, corpus_size)
            store.append(np.arange(begin, stop), rows[begin:stop])
        results["memmap_write_s"] = time.perf_counter() - start
        results["memmap_mb"] = store.nbytes / 2**20
        results["memmap_compression"] = dense_bytes / store.nbytes
        sample = store.get(list(range(0, corpus_size, max(1, corpus_size // 64))))
        results["memmap_max_err"] = float(
            np.abs(sample - rows[:: max(1, corpus_size // 64)][: len(sample)]).max()
        )
    return results


def print_report(results: dict) -> None:
    print(
        "\n"
        + format_table(
            ["backend", "build s", "QPS", "recall@10 vs exact"],
            results["table"],
            title=(
                f"ANN backends on {results['corpus']} synthetic "
                f"{results['dim']}-d vectors (k={K})"
            ),
        )
    )
    print(
        "\n"
        + format_table(
            ["storage", "MB", "vs dense float64"],
            [
                ["dense float64 (seed)", f"{results['dense_mb']:.1f}", "1.0x"],
                [
                    "ivfpq codes+ids+codebooks",
                    f"{results['ivfpq_mb']:.1f}",
                    f"{results['compression']:.1f}x",
                ],
                [
                    "memmap int8 (on disk)",
                    f"{results['memmap_mb']:.1f}",
                    f"{results['memmap_compression']:.1f}x",
                ],
            ],
            title=(
                f"Vector storage (memmap int8 max reconstruction error "
                f"{results['memmap_max_err']:.4f})"
            ),
        )
    )


def _assert_acceptance(results: dict) -> None:
    assert results["ivfpq_trained"], "corpus never crossed the train threshold"
    assert results["compression"] >= 8.0, (
        f"IVF-PQ only {results['compression']:.1f}x smaller than dense float64"
    )
    assert results["ivfpq"]["recall"] >= 0.8, (
        f"IVF-PQ recall {results['ivfpq']['recall']:.3f} below 0.8"
    )
    assert results["memmap_compression"] >= 7.0, (
        f"memmap int8 only {results['memmap_compression']:.1f}x smaller"
    )
    assert results["memmap_max_err"] < 0.02, results["memmap_max_err"]


def test_million_scale(benchmark):
    from _scale import FULL, once

    func = run if FULL else (lambda: run(corpus_size=40_000))
    results = once(benchmark, func)
    print_report(results)
    _assert_acceptance(results)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="12k-row corpus without HNSW (CI-friendly, under a minute)",
    )
    args = parser.parse_args()
    if args.smoke:
        results = run(corpus_size=12_000, num_clusters=32, include_hnsw=False)
    else:
        results = run()
    print_report(results)
    _assert_acceptance(results)
    print("\nmillion-scale storage benchmark: ok")


if __name__ == "__main__":
    main()
