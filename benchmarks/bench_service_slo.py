"""Admission-control SLO benchmark — load shedding keeps admitted-request
tail latency bounded under overload (no paper table; see
docs/benchmarks.md).

Scenario: *open-loop* traffic — requests arrive on their own schedule at
~3x the service's measured capacity, whether or not earlier requests
finished (closed-loop clients, as in ``bench_sharded_serving``, slow
down when the service does and therefore cannot produce sustained
overload).  Two :class:`~repro.serve.frontend.ServiceFrontend` profiles
face the same burst schedule:

* **no shedding** (``max_queue_depth=None``) — every request is
  admitted; the queue grows for the whole run and late arrivals inherit
  the entire backlog, so p99 latency scales with run length instead of
  service time.
* **shedding** (bounded ``max_queue_depth``) — beyond the bound,
  arrivals are rejected instantly with typed ``Overloaded``; the backlog
  an admitted request can sit behind is capped, so admitted p99 stays
  within a capacity-derived SLO.

Acceptance targets: with shedding, admitted p99 <= SLO (4x the
worst-case bounded backlog drain time) while the no-shedding baseline
exceeds that same SLO; shedding actually triggered; nothing failed.  Run
as a pytest benchmark for the full-scale numbers, or as a script for a
quick CI smoke check::

    PYTHONPATH=src python -m pytest benchmarks/bench_service_slo.py -q -s
    PYTHONPATH=src python benchmarks/bench_service_slo.py --smoke
"""

import argparse
import threading
import time

import numpy as np

from repro import SudowoodoConfig, SudowoodoEncoder
from repro.core import build_tokenizer
from repro.eval import format_table
from repro.serve import Overloaded, ServiceFrontend, ShardedMatchService

K = 10
MAX_BATCH = 4  # small batches keep measured capacity low and stable
MAX_QUEUE_DEPTH = 8
OVERLOAD_FACTOR = 3.0
BURST = 20  # requests dispatched per burst of the open-loop schedule


def _config(**overrides) -> SudowoodoConfig:
    defaults = dict(
        dim=32,
        num_layers=2,
        num_heads=4,
        ffn_dim=64,
        max_seq_len=32,
        vocab_size=2000,
        serve_batch_size=32,
        num_shards=2,
        coalesce_window_ms=1.0,
        max_coalesce_batch=MAX_BATCH,
        seed=0,
    )
    defaults.update(overrides)
    return SudowoodoConfig(**defaults)


def _make_frontend(encoder, corpus, max_queue_depth):
    config = _config(max_queue_depth=max_queue_depth)
    service = ShardedMatchService(encoder, config=config)
    service.index_records(corpus)
    return ServiceFrontend(service)


def _measure_capacity(frontend, queries) -> float:
    """Sustainable queries/second through full ``MAX_BATCH`` batches."""
    batch = queries[:MAX_BATCH]
    frontend.service.search_batch(batch, K)  # warm-up
    start = time.perf_counter()
    rounds = 8
    for _ in range(rounds):
        frontend.service.search_batch(batch, K)
    elapsed = time.perf_counter() - start
    return rounds * len(batch) / elapsed


def _open_loop(frontend, queries, rate_qps):
    """Fire every query at ``rate_qps`` regardless of completions.

    Requests dispatch in bursts of ``BURST`` on their own threads; the
    schedule never waits for the service, which is what makes the
    overload real.  Returns admitted latencies plus shed/error counts.
    """
    latencies = []
    shed = [0]
    errors = []
    lock = threading.Lock()
    threads = []
    interval = BURST / rate_qps
    start = time.perf_counter()

    def fire(text):
        begin = time.perf_counter()
        try:
            frontend.search([text], k=K)
        except Overloaded:
            with lock:
                shed[0] += 1
            return
        except BaseException as exc:  # noqa: BLE001 - report, don't mask
            with lock:
                errors.append(exc)
            return
        with lock:
            latencies.append(time.perf_counter() - begin)

    for burst_index in range(0, len(queries), BURST):
        due = start + (burst_index / BURST) * interval
        delay = due - time.perf_counter()
        if delay > 0:
            time.sleep(delay)
        for text in queries[burst_index : burst_index + BURST]:
            thread = threading.Thread(target=fire, args=(text,), daemon=True)
            thread.start()
            threads.append(thread)
    for thread in threads:
        thread.join(timeout=120.0)
    return np.asarray(latencies), shed[0], errors


def run(corpus_size: int = 2_000, num_queries: int = 400) -> dict:
    """Open-loop overload against shedding vs no-shedding frontends."""
    corpus = [
        f"[COL] name [VAL] item-{i} [COL] bucket [VAL] b{i % 17}"
        for i in range(corpus_size)
    ]
    # Novel query texts: every request pays the encoder, as unbounded
    # production query traffic does.
    queries = [
        f"{corpus[i % len(corpus)]} [COL] variant [VAL] q{i}"
        for i in range(num_queries)
    ]
    config = _config()
    encoder = SudowoodoEncoder(config, build_tokenizer(corpus, config))
    encoder.embed_items(corpus[:64])  # warm up caches / thread pools

    shedding = _make_frontend(encoder, corpus, MAX_QUEUE_DEPTH)
    baseline = _make_frontend(encoder, corpus, None)

    capacity = _measure_capacity(shedding, queries)
    rate = OVERLOAD_FACTOR * capacity
    # SLO: 4x the time to drain a full bounded backlog plus one batch —
    # the worst queue an *admitted* request can possibly sit behind
    # (the 4x absorbs coalescing-window waits and scheduler jitter).
    slo_s = 4.0 * (MAX_QUEUE_DEPTH + MAX_BATCH) / capacity

    base_lat, base_shed, base_errors = _open_loop(baseline, queries, rate)
    shed_lat, shed_count, shed_errors = _open_loop(shedding, queries, rate)
    assert not base_errors, base_errors
    assert not shed_errors, shed_errors
    assert base_shed == 0, "unbounded frontend must never shed"

    snapshot = shedding.metrics_snapshot()
    return {
        "corpus": corpus_size,
        "queries": num_queries,
        "capacity_qps": capacity,
        "offered_qps": rate,
        "slo_ms": slo_s * 1e3,
        "baseline_admitted": len(base_lat),
        "baseline_p50_ms": float(np.percentile(base_lat, 50)) * 1e3,
        "baseline_p99_ms": float(np.percentile(base_lat, 99)) * 1e3,
        "shed_admitted": len(shed_lat),
        "shed_count": shed_count,
        "shed_p50_ms": float(np.percentile(shed_lat, 50)) * 1e3,
        "shed_p99_ms": float(np.percentile(shed_lat, 99)) * 1e3,
        "metrics_shed": snapshot["counters"].get("frontend.shed", 0),
        "streamed_p99_ms": snapshot["histograms"]["frontend.latency_s"]["p99"]
        * 1e3,
    }


def print_report(results: dict) -> None:
    print(
        "\n"
        + format_table(
            ["admission policy", "admitted", "shed", "p50 ms", "p99 ms"],
            [
                [
                    "unbounded queue",
                    results["baseline_admitted"],
                    0,
                    results["baseline_p50_ms"],
                    results["baseline_p99_ms"],
                ],
                [
                    f"shed beyond depth {MAX_QUEUE_DEPTH}",
                    results["shed_admitted"],
                    results["shed_count"],
                    results["shed_p50_ms"],
                    results["shed_p99_ms"],
                ],
            ],
            title=(
                f"open-loop overload at {results['offered_qps']:.0f} qps "
                f"({OVERLOAD_FACTOR:.0f}x capacity "
                f"{results['capacity_qps']:.0f} qps), "
                f"SLO {results['slo_ms']:.0f} ms"
            ),
        )
    )


def _check(results: dict, smoke: bool) -> None:
    assert results["shed_count"] > 0, "overload never triggered shedding"
    assert results["shed_admitted"] > 0, "shedding frontend served nothing"
    assert results["metrics_shed"] == results["shed_count"], (
        "metrics counter disagrees with observed Overloaded errors"
    )
    assert results["shed_p99_ms"] < results["baseline_p99_ms"], (
        "shedding did not improve admitted tail latency"
    )
    if not smoke:
        # The SLO win: bounded admission keeps the admitted tail inside
        # the capacity-derived budget that the unbounded queue blows.
        assert results["shed_p99_ms"] <= results["slo_ms"], (
            f"admitted p99 {results['shed_p99_ms']:.1f} ms exceeds "
            f"SLO {results['slo_ms']:.1f} ms despite shedding"
        )
        assert results["baseline_p99_ms"] > results["slo_ms"], (
            "baseline met the SLO — offered load was not an overload"
        )


def test_service_slo(benchmark):
    from _scale import once

    results = once(benchmark, run)
    print_report(results)
    _check(results, smoke=False)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny corpus, plumbing-only checks (CI-friendly, ~seconds)",
    )
    args = parser.parse_args()
    if args.smoke:
        results = run(corpus_size=400, num_queries=120)
    else:
        results = run()
    print_report(results)
    _check(results, smoke=args.smoke)
    print("\nservice SLO benchmark: ok")


if __name__ == "__main__":
    main()
