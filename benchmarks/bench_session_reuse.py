"""Session-reuse benchmark — pretrain-once + 3 tasks vs. 3 standalone
drivers (no paper table; the economics behind the multi-purpose claim).

The dominant cost of every Sudowoodo workload is contrastive
pre-training.  The legacy drivers (``SudowoodoPipeline``,
``SudowoodoCleaner``, ``ColumnMatchingPipeline``) each pre-train their
own encoder; a :class:`repro.api.SudowoodoSession` pre-trains **once**
on the union corpus and attaches all three tasks to the shared encoder.

Acceptance target: the session path completes entity matching + error
correction + column matching in **<= 1/2** the wall-clock of the three
standalone drivers (>= 2x end-to-end speedup), at comparable task
metrics (each task's F1 within ``METRIC_TOLERANCE`` of its standalone
run — the tasks see identical labels; only the pre-training corpus
differs, union vs. per-task).

Run as a pytest benchmark for full-scale numbers, or as a script for a
quick CI smoke check::

    PYTHONPATH=src python -m pytest benchmarks/bench_session_reuse.py -q -s
    PYTHONPATH=src python benchmarks/bench_session_reuse.py --smoke
"""

import argparse
import time
import warnings

from repro.api import SudowoodoConfig, SudowoodoSession
from repro.cleaning import CandidateGenerator, SudowoodoCleaner, cleaning_corpus
from repro.columns import ColumnMatchingPipeline
from repro.core import SudowoodoPipeline
from repro.data.generators import (
    generate_column_corpus,
    load_cleaning_dataset,
    load_em_benchmark,
)
from repro.eval import format_table

METRIC_TOLERANCE = 0.35  # |session F1 - standalone F1| per task (small-scale noise)


def _config(smoke: bool, **overrides) -> SudowoodoConfig:
    """Pretraining-heavy, finetuning-light: the regime the paper runs in
    (3 pretrain epochs over 10k items vs. a few hundred labels)."""
    defaults = dict(
        dim=24,
        num_layers=2,
        num_heads=4,
        ffn_dim=48,
        max_seq_len=32,
        pair_max_seq_len=56,
        vocab_size=1200,
        pretrain_epochs=3 if smoke else 4,
        pretrain_batch_size=16,
        mlm_warm_start_epochs=1,
        finetune_epochs=2 if smoke else 4,
        finetune_batch_size=16,
        num_clusters=4,
        corpus_cap=240 if smoke else 600,
        multiplier=2,
        blocking_k=3,
        seed=0,
    )
    defaults.update(overrides)
    return SudowoodoConfig(**defaults)


def _datasets(smoke: bool):
    em = load_em_benchmark(
        "AB", scale=0.04 if smoke else 0.1, max_table_size=60 if smoke else 150
    )
    beers = load_cleaning_dataset("beers", scale=0.03 if smoke else 0.05)
    columns = generate_column_corpus(60 if smoke else 140, seed=7)
    return em, beers, columns


def run(smoke: bool = False) -> dict:
    """Time 3 standalone drivers vs. one session serving all 3 tasks."""
    em, beers, columns = _datasets(smoke)
    generator = CandidateGenerator().fit(beers)
    budget = 30 if smoke else 60
    labeled_rows = 12 if smoke else 20
    column_k, column_labels = 5, 80 if smoke else 200
    max_values = 5

    # ----------------------------------------------- standalone drivers
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        start = time.perf_counter()
        pipeline = SudowoodoPipeline(_config(smoke))
        em_report = pipeline.run(em, label_budget=budget)
        cleaner = SudowoodoCleaner(
            SudowoodoConfig.for_task("clean", **_overridable(_config(smoke)))
        )
        cleaner.fit(beers, generator, labeled_rows=labeled_rows)
        clean_report = cleaner.evaluate()
        column_pipeline = ColumnMatchingPipeline(
            SudowoodoConfig.for_task("column_match", **_overridable(_config(smoke))),
            max_values_per_column=max_values,
        )
        column_pipeline.pretrain_on(columns)
        column_report = column_pipeline.train_and_evaluate(
            k=column_k, num_labels=column_labels
        )
        legacy_seconds = time.perf_counter() - start

    # ------------------------------------------------- one shared session
    start = time.perf_counter()
    session = SudowoodoSession(_config(smoke))
    union_corpus = (
        em.all_items()
        + cleaning_corpus(beers, generator)
        + columns.serialized(max_values=max_values)
    )
    session.pretrain(union_corpus)
    session_match = session.task("match").fit(em, label_budget=budget)
    session_match_metrics = session_match.evaluate("test")
    session_clean = session.task("clean").fit(
        beers, generator, labeled_rows=labeled_rows
    )
    session_clean_metrics = session_clean.evaluate()
    session_columns = session.task(
        "column_match", max_values_per_column=max_values
    ).fit(columns, k=column_k, num_labels=column_labels)
    session_column_metrics = session_columns.evaluate()
    session_seconds = time.perf_counter() - start

    return {
        "legacy_seconds": legacy_seconds,
        "session_seconds": session_seconds,
        "speedup": legacy_seconds / session_seconds,
        "pretrain_seconds": session.timer.total("pretrain"),
        "metrics": {
            "match": (em_report.f1, session_match_metrics.get("f1", 0.0)),
            "clean": (clean_report.f1, session_clean_metrics.get("f1", 0.0)),
            "column_match": (
                column_report.test_metrics.get("f1", 0.0),
                session_column_metrics.get("f1", 0.0),
            ),
        },
    }


def _overridable(config: SudowoodoConfig) -> dict:
    """The shared scale knobs, reusable as for_task() overrides."""
    keys = (
        "dim", "num_layers", "num_heads", "ffn_dim", "vocab_size",
        "pretrain_epochs", "pretrain_batch_size", "mlm_warm_start_epochs",
        "finetune_epochs", "finetune_batch_size", "num_clusters",
        "corpus_cap", "multiplier", "blocking_k", "seed",
    )
    flat = config.to_dict(nested=False)
    return {key: flat[key] for key in keys}


def print_report(results: dict) -> None:
    rows = [
        ["3 standalone drivers (3 pretrains)", results["legacy_seconds"]],
        ["1 session (pretrain once, 3 tasks)", results["session_seconds"]],
    ]
    print(
        "\n"
        + format_table(
            ["path", "seconds"],
            rows,
            title=(
                f"End-to-end wall-clock, speedup = {results['speedup']:.1f}x "
                f"(shared pretrain: {results['pretrain_seconds']:.1f}s)"
            ),
        )
    )
    metric_rows = [
        [task, standalone, shared, abs(standalone - shared)]
        for task, (standalone, shared) in results["metrics"].items()
    ]
    print(
        "\n"
        + format_table(
            ["task", "standalone F1", "session F1", "|delta|"],
            metric_rows,
            title="Task metrics, standalone vs. shared session",
        )
    )


def _assert_targets(results: dict, smoke: bool) -> None:
    assert results["speedup"] >= 2.0, (
        f"session path only {results['speedup']:.2f}x faster than three "
        "standalone drivers (target: >= 2x)"
    )
    tolerance = METRIC_TOLERANCE if smoke else 0.2
    for task, (standalone, shared) in results["metrics"].items():
        # One-sided: sharing the pretrain must not degrade a task beyond
        # small-scale noise (doing better than standalone is fine).
        assert standalone - shared <= tolerance, (
            f"{task}: session F1 {shared:.3f} degraded vs standalone "
            f"{standalone:.3f} by more than {tolerance}"
        )


def test_session_reuse(benchmark):
    from _scale import once

    results = once(benchmark, run)
    print_report(results)
    _assert_targets(results, smoke=False)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny corpora, plumbing + speedup checks (CI-friendly)",
    )
    args = parser.parse_args()
    results = run(smoke=args.smoke)
    print_report(results)
    _assert_targets(results, smoke=args.smoke)
    print("\nsession reuse benchmark: ok")


if __name__ == "__main__":
    main()
