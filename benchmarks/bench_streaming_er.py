"""Streaming-ER benchmark — sustained QPS with bounded index staleness
under a live upsert/delete/search feed (no paper table; see
docs/discovery.md).

Scenario: a dirty-duplicates table is split — half seeds the index, the
rest arrives as a deterministic interleaved feed of upserts, deletions,
and searches replayed through a
:class:`~repro.serve.frontend.ServiceFrontend` (admission control,
deadlines, metrics).  Writes are buffered and flushed every
``flush_every`` events, the ingest pattern that creates staleness; a
:class:`~repro.serve.metrics.StalenessGauge` stamps each write at
arrival and at flush, so every number below comes from the service's own
metrics registry, not from benchmark-side bookkeeping.

Acceptance targets: sustained search QPS meets the floor, p99 staleness
stays under the bound, the feed actually deleted records mid-stream, and
the write buffer fully drained.  Run as a pytest benchmark for the
full-scale numbers, or as a script for a quick CI smoke check::

    PYTHONPATH=src python -m pytest benchmarks/bench_streaming_er.py -q -s
    PYTHONPATH=src python benchmarks/bench_streaming_er.py --smoke
"""

import argparse

from repro.api import SudowoodoConfig, SudowoodoSession
from repro.data.generators import generate_dirty_duplicates
from repro.data.records import serialize_record
from repro.eval import format_table

QPS_FLOOR = 40.0  # sustained completed searches per second
SMOKE_QPS_FLOOR = 10.0
STALENESS_P99_BOUND_S = 2.0  # arrival -> searchable, batched ingest


def _config(**overrides) -> SudowoodoConfig:
    defaults = dict(
        dim=24,
        num_layers=1,
        num_heads=2,
        ffn_dim=48,
        max_seq_len=32,
        vocab_size=1500,
        pretrain_epochs=2,
        pretrain_batch_size=8,
        num_clusters=3,
        corpus_cap=256,
        multiplier=2,
        mlm_warm_start_epochs=0,
        serve_batch_size=32,
        seed=0,
    )
    defaults.update(overrides)
    return SudowoodoConfig(**defaults)


def run(
    num_entities: int = 40, num_events: int = 200, flush_every: int = 8
) -> dict:
    bundle = generate_dirty_duplicates(num_entities=num_entities, seed=4)
    corpus = [
        serialize_record(record, bundle.table.schema) for record in bundle.table
    ]
    session = SudowoodoSession(_config())
    session.pretrain(corpus)

    task = session.task("streaming_er").fit(
        bundle,
        num_events=num_events,
        search_fraction=0.5,
        delete_fraction=0.2,
        seed=5,
    )
    frontend = session.serve(task, frontend=True)
    stats = task.predict(frontend=frontend, flush_every=flush_every)

    # Cross-check against the service's own registry: the scorecard must
    # be derived from the metrics the frontend already exports.
    snapshot = frontend.metrics_snapshot()
    staleness = snapshot["histograms"].get("streaming_er.staleness_s", {})
    stats["metrics_staleness_count"] = staleness.get("count", 0)
    stats["metrics_pending_writes"] = snapshot["gauges"].get(
        "streaming_er.pending_writes", -1.0
    )
    return stats


def print_report(stats: dict) -> None:
    print(
        format_table(
            [
                "events",
                "upserts",
                "deletes",
                "searches",
                "qps",
                "stale p50 ms",
                "stale p99 ms",
                "index",
            ],
            [
                [
                    int(stats["events"]),
                    int(stats["upserts"]),
                    int(stats["deletes"]),
                    int(stats["searches"]),
                    stats["qps"],
                    stats["staleness_p50_s"] * 1e3,
                    stats["staleness_p99_s"] * 1e3,
                    int(stats["final_index_size"]),
                ]
            ],
            title=(
                f"streaming ER over {stats['elapsed_s']:.2f}s "
                f"(shed {int(stats['shed'])}, expired {int(stats['expired'])})"
            ),
            float_digits=1,
        )
    )


def _check(stats: dict, smoke: bool) -> None:
    assert stats["deletes"] > 0, "feed never deleted mid-stream"
    assert stats["upserts"] > 0 and stats["searches_completed"] > 0
    assert stats["pending_writes"] == 0.0, "write buffer did not drain"
    assert stats["metrics_pending_writes"] == 0.0, (
        "registry gauge disagrees with the drained buffer"
    )
    assert stats["metrics_staleness_count"] == (
        stats["upserts"] + stats["deletes"]
    ), "staleness histogram missed writes"
    assert stats["staleness_p99_s"] <= STALENESS_P99_BOUND_S, (
        f"p99 staleness {stats['staleness_p99_s']:.3f}s exceeds "
        f"{STALENESS_P99_BOUND_S:.1f}s"
    )
    floor = SMOKE_QPS_FLOOR if smoke else QPS_FLOOR
    assert stats["qps"] >= floor, (
        f"sustained {stats['qps']:.1f} qps below floor {floor:.1f}"
    )


def test_streaming_er(benchmark):
    from _scale import once

    stats = once(benchmark, run)
    print_report(stats)
    _check(stats, smoke=False)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="short feed, plumbing-only floors (CI-friendly, ~seconds)",
    )
    args = parser.parse_args()
    if args.smoke:
        stats = run(num_entities=12, num_events=60, flush_every=4)
    else:
        stats = run()
    print_report(stats)
    _check(stats, smoke=args.smoke)
    print("\nstreaming ER benchmark: ok")


if __name__ == "__main__":
    main()
