"""Table V — F1 scores for semi-supervised matching (EM).

Rows: Ditto / Rotom at the label budget, SimCLR (no optimizations),
Sudowoodo ablations, and full Sudowoodo.  The quick profile runs the rows
that carry the paper's story: Sudowoodo > SimCLR, pseudo-labeling is the
largest single optimization.  ``REPRO_BENCH=full`` adds every ablation row
and all five datasets.
"""

from _scale import FULL, SCALE, em_config, once

from repro import SudowoodoPipeline
from repro.baselines import train_ditto, train_rotom
from repro.data.generators import load_em_benchmark
from repro.eval import f1_row, format_table

RESULTS = {}


def load(key):
    return load_em_benchmark(
        key, scale=SCALE.em_scale, max_table_size=SCALE.em_max_table
    )


def sudowoodo_variant(dataset, label, **flags):
    config = em_config().ablated(**flags) if flags else em_config()
    report = SudowoodoPipeline(config).run(
        dataset, label_budget=SCALE.em_label_budget
    )
    RESULTS.setdefault(label, {})[dataset.name] = report.test_metrics
    return report


def test_table05_semisupervised_em(benchmark):
    budget = SCALE.em_label_budget

    def run():
        for key in SCALE.em_datasets:
            dataset = load(key)
            ditto = train_ditto(dataset, budget, em_config())
            RESULTS.setdefault(f"Ditto ({budget})", {})[key] = ditto.test_metrics
            rotom = train_rotom(dataset, budget, em_config(), rounds=1)
            RESULTS.setdefault(f"Rotom ({budget})", {})[key] = rotom.test_metrics
            simclr_config = em_config().as_simclr()
            simclr = SudowoodoPipeline(simclr_config).run(dataset, budget)
            RESULTS.setdefault("SimCLR", {})[key] = simclr.test_metrics
            sudowoodo_variant(dataset, "Sudowoodo (-PL)", use_pseudo_labeling=False)
            sudowoodo_variant(dataset, "Sudowoodo (-cls)", use_cluster_sampling=False)
            if FULL:
                sudowoodo_variant(dataset, "Sudowoodo (-cut)", use_cutoff=False)
                sudowoodo_variant(dataset, "Sudowoodo (-RR)", use_barlow_twins=False)
                sudowoodo_variant(
                    dataset,
                    "Sudowoodo (-cut,-RR)",
                    use_cutoff=False,
                    use_barlow_twins=False,
                )
                sudowoodo_variant(
                    dataset,
                    "Sudowoodo (-cut,-RR,-cls)",
                    use_cutoff=False,
                    use_barlow_twins=False,
                    use_cluster_sampling=False,
                )
            sudowoodo_variant(dataset, "Sudowoodo")
        return RESULTS

    results = once(benchmark, run)
    order = [f"Ditto ({budget})", f"Rotom ({budget})", "SimCLR",
             "Sudowoodo (-PL)", "Sudowoodo (-cls)"]
    if FULL:
        order += ["Sudowoodo (-cut)", "Sudowoodo (-RR)", "Sudowoodo (-cut,-RR)",
                  "Sudowoodo (-cut,-RR,-cls)"]
    order.append("Sudowoodo")
    rows = [f1_row(name, results.get(name, {}), SCALE.em_datasets) for name in order]
    print(
        "\n"
        + format_table(
            ["method", *SCALE.em_datasets, "average"],
            rows,
            title=f"Table V: semi-supervised EM F1 ({budget} labels, scaled)",
        )
    )

    def average(name):
        metrics = results[name]
        return sum(m["f1"] for m in metrics.values()) / len(metrics)

    # The paper's headline shapes.  At tiny-encoder scale the per-dataset
    # PL effect is high-variance (pseudo-positive precision ranges 0.2-1.0
    # across datasets; cf. Table XI), so the PL claim is asserted as:
    # average parity or better, plus at least one dataset with the paper's
    # large PL win (the paper's own Table V has -PL swinging -2..-25 by
    # dataset).
    assert average("Sudowoodo") > average("SimCLR") - 0.05
    assert average("Sudowoodo") >= average("Sudowoodo (-PL)") - 0.05
    assert any(
        results["Sudowoodo"][k]["f1"]
        > results["Sudowoodo (-PL)"][k]["f1"] + 0.10
        for k in SCALE.em_datasets
    )
