"""Serving microbenchmark — batched vs per-record encoding, LSH vs exact
blocking, on a generated 10k-record corpus (no paper table; see
docs/benchmarks.md).

Acceptance targets: batched ``EmbeddingStore`` encoding must be >= 2x the
per-record throughput of calling the encoder one record at a time, and the
LSH backend must retain >= 0.95 of the exact backend's top-k neighbours at
the same candidate budget.  The encoder is randomly initialised (serving
throughput does not depend on representation quality), so the benchmark
runs in well under a minute on CPU.
"""

import time

import numpy as np

from _scale import once

from repro import SudowoodoConfig, SudowoodoEncoder
from repro.core import build_tokenizer
from repro.data.generators import load_em_benchmark
from repro.eval import format_table
from repro.serve import EmbeddingStore, ExactBackend, LSHBackend

MAX_TABLE = 5_000  # 5k + 5k records = the paper's fixed 10k corpus size
PER_RECORD_SAMPLE = 500
K = 10
# (num_tables, num_bits) ladder: escalate tables until LSH hits the recall
# target; more tables = more collision chances = higher recall.
LSH_LADDER = [(32, 6), (48, 6), (64, 6)]


def _center_normalize(raw_a, raw_b):
    mean = np.vstack([raw_a, raw_b]).mean(axis=0, keepdims=True)
    vectors = []
    for raw in (raw_a, raw_b):
        centered = raw - mean
        norms = np.maximum(np.linalg.norm(centered, axis=1, keepdims=True), 1e-12)
        vectors.append(centered / norms)
    return vectors


def test_serve_throughput(benchmark):
    def run():
        dataset = load_em_benchmark("AB", scale=5.0, max_table_size=MAX_TABLE)
        texts_a = [dataset.serialize_a(i) for i in range(len(dataset.table_a))]
        texts_b = [dataset.serialize_b(j) for j in range(len(dataset.table_b))]
        corpus = texts_a + texts_b

        config = SudowoodoConfig(
            dim=32,
            num_layers=2,
            num_heads=4,
            ffn_dim=64,
            max_seq_len=32,
            vocab_size=2000,
            serve_batch_size=32,
            seed=0,
        )
        encoder = SudowoodoEncoder(config, build_tokenizer(corpus, config))
        encoder.embed_items(corpus[:64])  # warm up caches / thread pools

        # -- per-record path: one encoder call per record (request-at-a-time)
        sample = corpus[:PER_RECORD_SAMPLE]
        start = time.perf_counter()
        for text in sample:
            encoder.embed_items([text], batch_size=1, normalize=False)
        per_record_rps = len(sample) / (time.perf_counter() - start)

        # -- batched path: EmbeddingStore chunks the whole corpus
        store = EmbeddingStore(encoder, batch_size=config.serve_batch_size)
        start = time.perf_counter()
        raw_a = store.embed_batch(texts_a)
        raw_b = store.embed_batch(texts_b)
        batched_rps = len(corpus) / (time.perf_counter() - start)

        # -- warm-cache path: every vector served from the fingerprint cache
        misses_after_batched = store.stats()["misses"]
        start = time.perf_counter()
        store.embed_batch(corpus)
        cached_rps = len(corpus) / (time.perf_counter() - start)
        misses_after_warm = store.stats()["misses"]

        # -- blocking: exact vs LSH at the same candidate budget K
        vectors_a, vectors_b = _center_normalize(raw_a, raw_b)
        start = time.perf_counter()
        exact = ExactBackend().build(vectors_b)
        exact_indices, _ = exact.query(vectors_a, K)
        exact_seconds = time.perf_counter() - start

        lsh_rows = []
        chosen = None
        for num_tables, num_bits in LSH_LADDER:
            start = time.perf_counter()
            lsh = LSHBackend(num_tables=num_tables, num_bits=num_bits, seed=0)
            lsh.build(vectors_b)
            approx_indices, _ = lsh.query(vectors_a, K)
            lsh_seconds = time.perf_counter() - start
            hits = sum(
                len(
                    set(exact_indices[row])
                    & set(int(i) for i in approx_indices[row] if i >= 0)
                )
                for row in range(vectors_a.shape[0])
            )
            recall = hits / exact_indices.size
            lsh_rows.append(
                {
                    "tables": num_tables,
                    "bits": num_bits,
                    "recall": recall,
                    "seconds": lsh_seconds,
                }
            )
            if recall >= 0.95:
                chosen = lsh_rows[-1]
                break

        return {
            "corpus": len(corpus),
            "per_record_rps": per_record_rps,
            "batched_rps": batched_rps,
            "cached_rps": cached_rps,
            "speedup": batched_rps / per_record_rps,
            "exact_seconds": exact_seconds,
            "lsh_rows": lsh_rows,
            "lsh": chosen if chosen is not None else lsh_rows[-1],
            "misses_after_batched": misses_after_batched,
            "misses_after_warm": misses_after_warm,
        }

    results = once(benchmark, run)

    print(
        "\n"
        + format_table(
            ["path", "records/s"],
            [
                ["per-record encode", results["per_record_rps"]],
                ["batched EmbeddingStore", results["batched_rps"]],
                ["warm cache re-read", results["cached_rps"]],
            ],
            title=f"Serving throughput ({results['corpus']}-record corpus), "
            f"batched speedup = {results['speedup']:.2f}x",
        )
    )
    print(
        "\n"
        + format_table(
            ["backend", "recall vs exact", "seconds"],
            [["exact", 1.0, results["exact_seconds"]]]
            + [
                [f"lsh T={row['tables']} b={row['bits']}", row["recall"], row["seconds"]]
                for row in results["lsh_rows"]
            ],
            title=f"Blocking backends at k={K}",
        )
    )

    assert results["speedup"] >= 2.0, (
        f"batched encoding only {results['speedup']:.2f}x per-record"
    )
    assert results["lsh"]["recall"] >= 0.95, (
        f"LSH recall {results['lsh']['recall']:.3f} below 0.95 of exact"
    )
    # The warm read must not re-encode a single record.
    assert results["misses_after_warm"] == results["misses_after_batched"]
    assert results["cached_rps"] > results["batched_rps"]
