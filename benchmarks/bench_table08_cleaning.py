"""Table VIII — error-correction F1: Raha+Baran, Perfect-ED+Baran,
RoBERTa-base (no contrastive pre-training), and Sudowoodo."""

from _scale import FULL, SCALE, ec_config, once

from repro.cleaning import (
    CandidateGenerator,
    SudowoodoCleaner,
    run_perfect_ed_baran,
    run_raha_baran,
)
from repro.data.generators import CLEANING_DATASET_KEYS, load_cleaning_dataset
from repro.eval import format_table

DATASETS = CLEANING_DATASET_KEYS if FULL else ["beers", "hospital", "rayyan"]


def test_table08_error_correction(benchmark):
    def run():
        results = {}
        for name in DATASETS:
            dataset = load_cleaning_dataset(name, scale=SCALE.cleaning_scale)
            generator = CandidateGenerator().fit(dataset)
            results.setdefault("Raha + Baran", {})[name] = run_raha_baran(
                dataset, generator, SCALE.cleaning_labeled_rows
            ).f1
            results.setdefault("Perfect ED + Baran", {})[name] = run_perfect_ed_baran(
                dataset, generator, SCALE.cleaning_labeled_rows
            ).f1
            warm_only = SudowoodoCleaner(ec_config()).fit(
                dataset,
                generator,
                labeled_rows=SCALE.cleaning_labeled_rows,
                contrastive=False,
            )
            results.setdefault("RoBERTa-base (warm only)", {})[name] = (
                warm_only.evaluate().f1
            )
            sudowoodo = SudowoodoCleaner(ec_config()).fit(
                dataset, generator, labeled_rows=SCALE.cleaning_labeled_rows
            )
            results.setdefault("Sudowoodo", {})[name] = sudowoodo.evaluate().f1
        return results

    results = once(benchmark, run)
    methods = [
        "Raha + Baran",
        "Perfect ED + Baran",
        "RoBERTa-base (warm only)",
        "Sudowoodo",
    ]
    rows = []
    for method in methods:
        values = [100.0 * results[method][d] for d in DATASETS]
        rows.append([method, *values, sum(values) / len(values)])
    print(
        "\n"
        + format_table(
            ["method", *DATASETS, "average"],
            rows,
            title="Table VIII: error correction F1 (scaled)",
        )
    )

    def avg(method):
        return sum(results[method].values()) / len(results[method])

    # Shapes that hold at this substrate scale: perfect ED bounds Raha from
    # above, and contrastive pre-training helps over the warm-only encoder.
    assert avg("Perfect ED + Baran") >= avg("Raha + Baran") - 0.02
    assert avg("Sudowoodo") >= avg("RoBERTa-base (warm only)") - 0.02
    # NOTE: the paper's "Sudowoodo > Perfect ED + Baran" result does NOT
    # reproduce at 2-layer/dim-32 encoder scale; see EXPERIMENTS.md.
