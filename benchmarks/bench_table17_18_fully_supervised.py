"""Table XVII + XVIII — fully-supervised EM: dataset statistics and F1 for
DeepMatcher, Ditto, Sudowoodo (w/o RR), and Sudowoodo on the extended
benchmark set (incl. Beer / Fodors-Zagats / iTunes-Amazon)."""

from _scale import FULL, SCALE, em_config, once

from repro import SudowoodoPipeline
from repro.baselines import train_deepmatcher, train_ditto
from repro.data.generators import load_em_benchmark
from repro.eval import format_table

DATASETS = (
    ["AB", "AG", "Beer", "DA", "DS", "FZ", "IA", "WA"]
    if FULL
    else ["DA", "FZ", "Beer"]
)


def test_table17_18_fully_supervised(benchmark):
    def run():
        results = {}
        stats_rows = []
        for key in DATASETS:
            dataset = load_em_benchmark(
                key, scale=SCALE.em_scale, max_table_size=SCALE.em_max_table
            )
            stats = dataset.stats()
            stats_rows.append(
                [
                    key,
                    stats["table_a"],
                    stats["table_b"],
                    stats["train_valid"],
                    stats["test"],
                    100.0 * stats["pos_rate"],
                ]
            )
            full_budget = len(dataset.pairs.train) + len(dataset.pairs.valid)
            config = em_config(
                finetune_lr=6e-5,  # the paper drops the LR when fully supervised
                finetune_epochs=4 if not FULL else 8,  # full label sets: few passes
                use_pseudo_labeling=False,  # all labels available: PL unnecessary
            )
            results.setdefault("DeepMatcher", {})[key] = train_deepmatcher(
                dataset, None, config, epochs=10
            ).test_metrics
            results.setdefault("Ditto", {})[key] = train_ditto(
                dataset, full_budget, config
            ).test_metrics
            no_rr = config.ablated(use_barlow_twins=False)
            results.setdefault("Sudowoodo (w/o RR)", {})[key] = (
                SudowoodoPipeline(no_rr).run(dataset, full_budget).test_metrics
            )
            results.setdefault("Sudowoodo", {})[key] = (
                SudowoodoPipeline(config).run(dataset, full_budget).test_metrics
            )
        return results, stats_rows

    results, stats_rows = once(benchmark, run)
    print(
        "\n"
        + format_table(
            ["dataset", "|A|", "|B|", "train+valid", "test", "%pos"],
            stats_rows,
            title="Table XVII: extended EM dataset statistics (scaled)",
        )
    )
    rows = []
    for method in ["DeepMatcher", "Ditto", "Sudowoodo (w/o RR)", "Sudowoodo"]:
        values = [100.0 * results[method][d]["f1"] for d in DATASETS]
        rows.append([method, *values, sum(values) / len(values)])
    print(
        "\n"
        + format_table(
            ["method", *DATASETS, "average"],
            rows,
            title="Table XVIII: fully-supervised EM F1 (scaled)",
        )
    )

    def avg(method):
        return sum(results[method][d]["f1"] for d in DATASETS) / len(DATASETS)

    # Paper shape: Sudowoodo 97.5 > Ditto 92.3 > DeepMatcher 83.8 average.
    # On fully-labeled *clean synthetic* data the from-scratch DeepMatcher
    # aggregate saturates the easy datasets (its real-data weakness is
    # robustness to noise), so the DeepMatcher comparison carries a wider
    # tolerance; see EXPERIMENTS.md.
    assert avg("Sudowoodo") > avg("DeepMatcher") - 0.12
    assert avg("Sudowoodo") > avg("Ditto") - 0.08
