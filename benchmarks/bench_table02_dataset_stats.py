"""Table II — statistics of the EM datasets."""

from _scale import SCALE, once

from repro.data.generators import dataset_statistics
from repro.eval import format_table


def test_table02_dataset_statistics(benchmark):
    rows = once(
        benchmark,
        lambda: dataset_statistics(SCALE.em_datasets, scale=SCALE.em_scale),
    )
    table = format_table(
        ["dataset", "|A|", "|B|", "train+valid", "test", "%pos"],
        [
            [
                r["dataset"],
                r["table_a"],
                r["table_b"],
                r["train_valid"],
                r["test"],
                100.0 * r["pos_rate"],
            ]
            for r in rows
        ],
        title="Table II: statistics of EM datasets (scaled)",
    )
    print("\n" + table)
    for row in rows:
        assert 0.05 <= row["pos_rate"] <= 0.30
