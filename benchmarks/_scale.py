"""Shared CPU-scale profiles for the benchmark harness.

Set ``REPRO_BENCH=full`` to run every row of every table at larger scale
(slow: tens of minutes on one CPU); the default ``quick`` profile keeps
the whole suite to a few minutes while preserving the paper's shapes
(method orderings, ablation ordering, blocking frontier).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import List

from repro import SudowoodoConfig
from repro.cleaning import cleaning_config
from repro.columns import column_config

PROFILE = os.environ.get("REPRO_BENCH", "quick")
FULL = PROFILE == "full"


@dataclass(frozen=True)
class Scale:
    em_scale: float
    em_max_table: int
    em_label_budget: int
    em_datasets: List[str]
    cleaning_scale: float
    cleaning_labeled_rows: int
    num_columns: int
    column_labels: int


SCALE = (
    Scale(
        em_scale=0.12,
        em_max_table=240,
        em_label_budget=160,
        em_datasets=["AB", "AG", "DA", "DS", "WA"],
        cleaning_scale=0.12,
        cleaning_labeled_rows=20,
        num_columns=400,
        column_labels=400,
    )
    if FULL
    else Scale(
        em_scale=0.08,
        em_max_table=160,
        # The paper's 500 labels are ~5% of its labeled pools; 60 of ~600
        # pairs reproduces that label-scarce regime, where pseudo-labeling
        # pays off (with abundant labels PL adds little — also true in the
        # paper's fully-supervised Table XVIII, which drops PL entirely).
        em_label_budget=60,
        em_datasets=["AB", "DA", "WA"],
        cleaning_scale=0.08,
        cleaning_labeled_rows=20,
        num_columns=220,
        column_labels=240,
    )
)


def em_config(seed: int = 0, **overrides) -> SudowoodoConfig:
    """The calibrated CPU-scale EM configuration."""
    defaults = dict(
        dim=32,
        num_layers=2,
        num_heads=4,
        ffn_dim=64,
        max_seq_len=40,
        pair_max_seq_len=72,
        vocab_size=2000,
        pretrain_epochs=3,
        pretrain_batch_size=16,
        finetune_epochs=15,
        finetune_batch_size=16,
        num_clusters=8,
        corpus_cap=256,
        multiplier=3,
        positive_ratio=0.10,
        pseudo_positive_fraction=0.5,
        seed=seed,
    )
    defaults.update(overrides)
    return SudowoodoConfig(**defaults)


def ec_config(seed: int = 0, **overrides) -> SudowoodoConfig:
    defaults = dict(
        dim=32,
        num_layers=2,
        num_heads=4,
        ffn_dim=64,
        max_seq_len=40,
        pair_max_seq_len=80,
        vocab_size=1500,
        pretrain_epochs=2,
        pretrain_batch_size=16,
        finetune_epochs=10,
        num_clusters=8,
        corpus_cap=256,
        seed=seed,
    )
    defaults.update(overrides)
    return cleaning_config(**defaults)


def col_config(seed: int = 0, **overrides) -> SudowoodoConfig:
    defaults = dict(
        dim=32,
        num_layers=2,
        num_heads=4,
        ffn_dim=64,
        vocab_size=2000,
        pretrain_epochs=3,
        pretrain_batch_size=16,
        finetune_epochs=15,
        finetune_batch_size=16,
        num_clusters=8,
        corpus_cap=256,
        seed=seed,
    )
    defaults.update(overrides)
    return column_config(**defaults)


def once(benchmark, func):
    """Run ``func`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, rounds=1, iterations=1, warmup_rounds=0)
