"""Incremental index maintenance benchmark — upsert path vs rebuild, and
HNSW vs exact query latency, on a generated 10k-record corpus (no paper
table; see docs/benchmarks.md).

Two acceptance targets for the streaming serving layer:

* **Upsert speed** — streaming 1k new records into a warm
  ``EmbeddingStore`` + mutable ANN backend (encode only the delta,
  patch the index in place) must be at least **5x** faster than
  rebuilding the store and index from scratch over the grown corpus.
* **HNSW quality** — the graph backend must retain >= 0.9 of the exact
  backend's top-k neighbours while answering single queries faster
  (request-at-a-time latency, the streaming serving scenario).

The encoder is randomly initialised (maintenance cost does not depend on
representation quality).  Run as a pytest benchmark for the full-scale
numbers, or as a script for a quick CI smoke check::

    PYTHONPATH=src python -m pytest benchmarks/bench_incremental_index.py -q -s
    PYTHONPATH=src python benchmarks/bench_incremental_index.py --smoke
"""

import argparse
import time

import numpy as np

from repro import SudowoodoConfig, SudowoodoEncoder
from repro.core import build_tokenizer
from repro.data.generators import load_em_benchmark
from repro.eval import format_table
from repro.serve import EmbeddingStore, build_backend

K = 10
QUERY_SAMPLE = 200  # single-query latency sample size


def _config(**overrides) -> SudowoodoConfig:
    defaults = dict(
        dim=32,
        num_layers=2,
        num_heads=4,
        ffn_dim=64,
        max_seq_len=32,
        vocab_size=2000,
        serve_batch_size=32,
        seed=0,
    )
    defaults.update(overrides)
    return SudowoodoConfig(**defaults)


def _center_normalize(raw: np.ndarray, mean: np.ndarray) -> np.ndarray:
    centered = raw - mean
    norms = np.maximum(np.linalg.norm(centered, axis=1, keepdims=True), 1e-12)
    return centered / norms


def run(corpus_size: int = 10_000, upsert_size: int = 1_000) -> dict:
    """Measure upsert-vs-rebuild latency and HNSW-vs-exact quality."""
    dataset = load_em_benchmark(
        "AB", scale=corpus_size / 2_000.0, max_table_size=corpus_size // 2
    )
    texts = [dataset.serialize_a(i) for i in range(len(dataset.table_a))]
    texts += [dataset.serialize_b(j) for j in range(len(dataset.table_b))]
    base, delta = texts[:-upsert_size], texts[-upsert_size:]

    config = _config()
    encoder = SudowoodoEncoder(config, build_tokenizer(texts, config))
    encoder.embed_items(base[:64])  # warm up caches / thread pools

    # ------------------------------------------------------ initial corpus
    store = EmbeddingStore(encoder, batch_size=config.serve_batch_size)
    ids, raw = store.upsert_batch(base)
    mean = raw.mean(axis=0, keepdims=True)
    vectors = _center_normalize(raw, mean)
    unique_ids, first_rows = np.unique(ids, return_index=True)

    exact = build_backend(config, name="exact").build(np.zeros((0, config.dim)))
    exact.add(unique_ids, vectors[first_rows])
    hnsw = build_backend(config, name="hnsw")
    hnsw_build_start = time.perf_counter()
    hnsw.build(np.zeros((0, config.dim)))
    hnsw.add(unique_ids, vectors[first_rows])
    hnsw_build_seconds = time.perf_counter() - hnsw_build_start

    # ------------------------------------------- HNSW vs exact, per query
    queries = vectors[:: max(1, vectors.shape[0] // QUERY_SAMPLE)][:QUERY_SAMPLE]
    start = time.perf_counter()
    exact_results = [exact.query(query[np.newaxis], K)[0][0] for query in queries]
    exact_query_us = (time.perf_counter() - start) / len(queries) * 1e6
    start = time.perf_counter()
    hnsw_results = [hnsw.query(query[np.newaxis], K)[0][0] for query in queries]
    hnsw_query_us = (time.perf_counter() - start) / len(queries) * 1e6
    hits = sum(
        len(
            set(int(i) for i in exact_results[row] if i >= 0)
            & set(int(i) for i in hnsw_results[row] if i >= 0)
        )
        for row in range(len(queries))
    )
    total = sum(
        sum(1 for i in exact_results[row] if i >= 0) for row in range(len(queries))
    )
    recall = hits / total if total else 0.0

    # ------------------------------------- upsert path vs full rebuild
    start = time.perf_counter()
    delta_ids, delta_raw = store.upsert_batch(delta)  # encodes only the delta
    delta_vectors = _center_normalize(delta_raw, mean)  # frozen mean
    unique_delta, delta_rows = np.unique(delta_ids, return_index=True)
    fresh_mask = ~np.isin(unique_delta, unique_ids)
    hnsw.add(unique_delta[fresh_mask], delta_vectors[delta_rows][fresh_mask])
    upsert_seconds = time.perf_counter() - start

    start = time.perf_counter()
    rebuild_store = EmbeddingStore(encoder, batch_size=config.serve_batch_size)
    all_ids, all_raw = rebuild_store.upsert_batch(texts)  # re-encode everything
    all_vectors = _center_normalize(all_raw, all_raw.mean(axis=0, keepdims=True))
    rebuilt = build_backend(config, name="hnsw")
    unique_all, all_rows = np.unique(all_ids, return_index=True)
    rebuilt.build(np.zeros((0, config.dim)))
    rebuilt.add(unique_all, all_vectors[all_rows])
    rebuild_seconds = time.perf_counter() - start

    return {
        "corpus": len(base),
        "upserts": len(delta),
        "index_size": len(hnsw),
        "exact_query_us": exact_query_us,
        "hnsw_query_us": hnsw_query_us,
        "hnsw_build_seconds": hnsw_build_seconds,
        "recall": recall,
        "upsert_seconds": upsert_seconds,
        "rebuild_seconds": rebuild_seconds,
        "speedup": rebuild_seconds / upsert_seconds,
    }


def print_report(results: dict) -> None:
    print(
        "\n"
        + format_table(
            ["backend", "per-query us", "recall vs exact"],
            [
                ["exact", results["exact_query_us"], 1.0],
                ["hnsw", results["hnsw_query_us"], results["recall"]],
            ],
            title=(
                f"Single-query blocking latency at k={K} "
                f"({results['corpus']}-record corpus)"
            ),
        )
    )
    print(
        "\n"
        + format_table(
            ["path", "seconds"],
            [
                [f"upsert {results['upserts']} records (delta)", results["upsert_seconds"]],
                ["rebuild store + index from scratch", results["rebuild_seconds"]],
            ],
            title=(
                f"Incremental maintenance, speedup = {results['speedup']:.1f}x "
                f"(index size {results['index_size']})"
            ),
        )
    )


def test_incremental_index(benchmark):
    from _scale import once

    results = once(benchmark, run)
    print_report(results)
    assert results["speedup"] >= 5.0, (
        f"upsert path only {results['speedup']:.1f}x faster than rebuild"
    )
    assert results["recall"] >= 0.9, (
        f"HNSW recall {results['recall']:.3f} below 0.9 of exact"
    )
    assert results["hnsw_query_us"] < results["exact_query_us"], (
        f"HNSW per-query {results['hnsw_query_us']:.0f}us not faster than "
        f"exact {results['exact_query_us']:.0f}us"
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny corpus, plumbing-only checks (CI-friendly, ~seconds)",
    )
    args = parser.parse_args()
    if args.smoke:
        results = run(corpus_size=1_000, upsert_size=100)
    else:
        results = run()
    print_report(results)
    # The latency edge needs full scale; at smoke scale only correctness
    # and the delta-vs-rebuild advantage are asserted.
    assert results["speedup"] >= (2.0 if args.smoke else 5.0), results["speedup"]
    assert results["recall"] >= 0.9, results["recall"]
    if not args.smoke:
        assert results["hnsw_query_us"] < results["exact_query_us"]
    print("\nincremental index benchmark: ok")


if __name__ == "__main__":
    main()
