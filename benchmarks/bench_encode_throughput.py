"""Single-core inference fast-path benchmark — serving token cache and
fused encode kernels (no paper table; see docs/serving.md).

The serving regime this measures: ``reindex()`` (or any re-encode of a
corpus the service has already seen) pays tokenization again unless the
encoder's token cache is warm.  Tokenization cost scales with the *raw*
record length — the tokenizer splits the whole serialized record before
truncating to ``max_seq_len`` — while the forward pass is capped by the
sequence budget, so on realistic long-text records (product pages with
multi-paragraph descriptions) re-tokenizing dominates the encode.

Three interleaved measurements over the same corpus, median of several
rounds (interleaving keeps CPU frequency drift from biasing one arm):

* ``cold``  — fused kernels, token cache bypassed (tokenize + forward)
* ``warm``  — fused kernels, token cache hot (forward only)
* ``unfused`` — reference composition kernels, token cache hot

Acceptance targets: warm-cache re-encode >= 3x the cold encode, and the
fused kernels >= 1.3x the unfused composition at equal (warm) token
cost.  Fused and unfused paths are bit-identical (pinned by
tests/nn/test_fused_kernels.py), so the speedup is free.

Run as a pytest benchmark for full-scale numbers, or as a script for a
quick CI smoke check::

    PYTHONPATH=src python -m pytest benchmarks/bench_encode_throughput.py -q -s
    PYTHONPATH=src python benchmarks/bench_encode_throughput.py --smoke
"""

import argparse
import statistics
import time

import numpy as np

from repro import SudowoodoConfig, SudowoodoEncoder
from repro.core import build_tokenizer
from repro.eval import format_table, profile_encode
from repro.nn import set_fused_kernels

#: Words used to synthesize attribute values and description text.
_WORDS = [
    "alpha", "bravo", "charlie", "delta", "echo", "foxtrot", "golf",
    "hotel", "india", "juliet", "kilo", "lima", "mike", "november",
    "oscar", "papa",
]
NUM_COLUMNS = 8
DESCRIPTION_WORDS = 1400  # ~ a scraped multi-paragraph product page
BATCH_SIZE = 64
ROUNDS = 7


def build_corpus(num_records: int, description_words: int, seed: int = 7):
    """Serialized product records: short attribute columns plus one long
    free-text description column (the WDC-style dirty-web regime)."""
    rng = np.random.default_rng(seed)
    records = []
    for i in range(num_records):
        parts = [
            f"[COL] attr{c} [VAL] {_WORDS[(i + c) % len(_WORDS)]} "
            f"{rng.integers(0, 9999)}"
            for c in range(NUM_COLUMNS)
        ]
        parts.append(
            "[COL] description [VAL] "
            + " ".join(
                _WORDS[int(w) % len(_WORDS)]
                for w in rng.integers(0, len(_WORDS), description_words)
            )
        )
        records.append(" ".join(parts))
    return records


def run(smoke: bool = False) -> dict:
    num_records = 60 if smoke else 300
    rounds = 3 if smoke else ROUNDS
    texts = build_corpus(num_records, DESCRIPTION_WORDS)

    config = SudowoodoConfig()
    encoder = SudowoodoEncoder(config, build_tokenizer(texts[:50], config))

    def encode(use_cache: bool) -> float:
        start = time.perf_counter()
        encoder.embed_items(
            texts, batch_size=BATCH_SIZE, use_token_cache=use_cache
        )
        return time.perf_counter() - start

    # Warm everything once per arm: token cache, scratch buffers, BLAS.
    set_fused_kernels(True)
    cold_vectors = encoder.embed_items(
        texts, batch_size=BATCH_SIZE, use_token_cache=False
    )
    warm_vectors = encoder.embed_items(texts, batch_size=BATCH_SIZE)
    set_fused_kernels(False)
    unfused_vectors = encoder.embed_items(texts, batch_size=BATCH_SIZE)

    cold_times, warm_times, unfused_times = [], [], []
    try:
        for _ in range(rounds):
            set_fused_kernels(True)
            cold_times.append(encode(use_cache=False))
            warm_times.append(encode(use_cache=True))
            set_fused_kernels(False)
            unfused_times.append(encode(use_cache=True))
    finally:
        set_fused_kernels(True)

    profile = profile_encode(encoder, texts, batch_size=BATCH_SIZE)

    cold = statistics.median(cold_times)
    warm = statistics.median(warm_times)
    unfused = statistics.median(unfused_times)
    return {
        "num_records": num_records,
        "cold_seconds": cold,
        "warm_seconds": warm,
        "unfused_seconds": unfused,
        "warm_speedup": cold / warm,
        "fused_speedup": unfused / warm,
        "warm_rps": num_records / warm,
        "cold_rps": num_records / cold,
        "cache_stats": encoder.token_cache_stats(),
        "profile_table": profile.table(),
        "byte_identical": bool(np.array_equal(cold_vectors, warm_vectors))
        and bool(np.array_equal(cold_vectors, unfused_vectors)),
    }


def print_report(results: dict) -> None:
    rows = [
        ["cold (tokenize + fused forward)", results["cold_seconds"],
         results["cold_rps"]],
        ["warm token cache, fused", results["warm_seconds"],
         results["warm_rps"]],
        ["warm token cache, unfused", results["unfused_seconds"],
         results["num_records"] / results["unfused_seconds"]],
    ]
    print(
        "\n"
        + format_table(
            ["encode path", "seconds", "records/s"],
            rows,
            title=(
                f"Encode throughput ({results['num_records']} records): "
                f"warm-cache speedup {results['warm_speedup']:.2f}x, "
                f"fused-kernel speedup {results['fused_speedup']:.2f}x"
            ),
        )
    )
    print("\nOp profile of one warm fused pass:")
    print(results["profile_table"])


def _assert_targets(results: dict, smoke: bool) -> None:
    assert results["byte_identical"], (
        "cached / fused / unfused encodes must be byte-identical"
    )
    # Smoke corpora are too small for stable ratios; only require that the
    # cache and the fused kernels help at all.
    warm_target = 1.5 if smoke else 3.0
    fused_target = 1.05 if smoke else 1.3
    assert results["warm_speedup"] >= warm_target, (
        f"warm-cache re-encode only {results['warm_speedup']:.2f}x the cold "
        f"encode (target: >= {warm_target}x)"
    )
    assert results["fused_speedup"] >= fused_target, (
        f"fused kernels only {results['fused_speedup']:.2f}x the unfused "
        f"composition (target: >= {fused_target}x)"
    )


def test_encode_throughput(benchmark):
    from _scale import once

    results = once(benchmark, run)
    print_report(results)
    _assert_targets(results, smoke=False)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small corpus, relaxed ratio targets (CI-friendly)",
    )
    args = parser.parse_args()
    results = run(smoke=args.smoke)
    print_report(results)
    _assert_targets(results, smoke=args.smoke)
    print("\nencode throughput benchmark: ok")


if __name__ == "__main__":
    main()
