"""Table VI — F1 scores for unsupervised matching (EM).

Sudowoodo uses zero manual labels (only the positive-ratio prior, which
the paper treats as an available dataset statistic) against ZeroER and
Auto-FuzzyJoin.
"""

from _scale import SCALE, em_config, once

from repro import SudowoodoPipeline
from repro.baselines import run_autofuzzyjoin, run_zeroer
from repro.data.generators import benchmark_entry, load_em_benchmark
from repro.eval import f1_row, format_table


def test_table06_unsupervised_em(benchmark):
    def run():
        results = {}
        for key in SCALE.em_datasets:
            dataset = load_em_benchmark(
                key, scale=SCALE.em_scale, max_table_size=SCALE.em_max_table
            )
            results.setdefault("ZeroER", {})[key] = run_zeroer(dataset).test_metrics
            results.setdefault("Auto-FuzzyJoin", {})[key] = run_autofuzzyjoin(
                dataset
            ).test_metrics
            config = em_config(
                positive_ratio=max(0.05, round(benchmark_entry(key).positive_rate, 2))
            )
            report = SudowoodoPipeline(config).run(dataset, label_budget=0)
            results.setdefault("Sudowoodo", {})[key] = report.test_metrics
        return results

    results = once(benchmark, run)
    rows = [
        f1_row(name, results[name], SCALE.em_datasets)
        for name in ["ZeroER", "Auto-FuzzyJoin", "Sudowoodo"]
    ]
    print(
        "\n"
        + format_table(
            ["method", *SCALE.em_datasets, "average"],
            rows,
            title="Table VI: unsupervised EM F1 (scaled)",
        )
    )

    def average(name):
        metrics = results[name]
        return sum(m["f1"] for m in metrics.values()) / len(metrics)

    # Paper shape: Sudowoodo leads both unsupervised baselines (74.3 vs
    # 66.6 / 65.4 avg).  NOTE: on the *synthetic* benchmarks the classical
    # baselines overperform relative to the paper's real corpora — TF-IDF
    # similarity features are cleaner here than on real product feeds — so
    # only a sanity floor and the easy-dataset win are asserted; see
    # EXPERIMENTS.md for the full discussion.
    assert average("Sudowoodo") > 0.25
    assert results["Sudowoodo"]["DA"]["f1"] > 0.6
