"""Sharded + coalesced serving benchmark — multi-threaded QPS and tail
latency versus the single-shard baseline, on a generated 10k-record
corpus (no paper table; see docs/benchmarks.md).

Scenario: ``num_threads`` closed-loop clients each issue single-query
``search()`` calls against a live streaming index.

* **Baseline** — one :class:`MatchService` (not thread-safe) guarded by
  a global mutex: every request encodes its own query and scans the one
  index, strictly serialized — the best a correct deployment of the
  unsharded service can do.
* **Sharded + coalesced** — one :class:`ShardedMatchService`:
  concurrent callers are micro-batched into single batched
  encoder/backend calls (batched encoding is ~2.5x faster per record)
  and each batch fans out across ``num_shards`` partitions in parallel.

Acceptance targets: >= 2x multi-threaded QPS at full scale, with
exact-backend results identical to the single-shard service.  Run as a
pytest benchmark for the full-scale numbers, or as a script for a quick
CI smoke check::

    PYTHONPATH=src python -m pytest benchmarks/bench_sharded_serving.py -q -s
    PYTHONPATH=src python benchmarks/bench_sharded_serving.py --smoke
"""

import argparse
import threading
import time
from dataclasses import replace

import numpy as np

from repro import SudowoodoConfig, SudowoodoEncoder
from repro.core import build_tokenizer
from repro.data.generators import load_em_benchmark
from repro.eval import format_table
from repro.serve import EmbeddingStore, MatchService, ShardedMatchService

K = 10
NUM_THREADS = 8
NUM_SHARDS = 4


def _config(**overrides) -> SudowoodoConfig:
    defaults = dict(
        dim=32,
        num_layers=2,
        num_heads=4,
        ffn_dim=64,
        max_seq_len=32,
        vocab_size=2000,
        serve_batch_size=32,
        coalesce_window_ms=2.0,
        max_coalesce_batch=64,
        seed=0,
    )
    defaults.update(overrides)
    return SudowoodoConfig(**defaults)


def _drive(search, queries, num_threads):
    """Closed-loop load: threads pull queries off one shared cursor.

    Returns (qps, latencies_seconds) with per-request latency measured
    around the full call — lock wait and coalescing window included,
    because that is what a caller experiences.
    """
    cursor = {"next": 0}
    cursor_lock = threading.Lock()
    latencies = []
    latencies_lock = threading.Lock()

    def worker():
        local = []
        while True:
            with cursor_lock:
                position = cursor["next"]
                if position >= len(queries):
                    break
                cursor["next"] = position + 1
            start = time.perf_counter()
            search([queries[position]], K)
            local.append(time.perf_counter() - start)
        with latencies_lock:
            latencies.extend(local)

    threads = [threading.Thread(target=worker) for _ in range(num_threads)]
    wall_start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - wall_start
    return len(queries) / wall, np.asarray(latencies)


def run(
    corpus_size: int = 10_000,
    num_queries: int = 480,
    num_threads: int = NUM_THREADS,
    num_shards: int = NUM_SHARDS,
) -> dict:
    """Measure sharded+coalesced vs mutex-guarded single-shard serving."""
    dataset = load_em_benchmark(
        "AB", scale=corpus_size / 2_000.0, max_table_size=corpus_size // 2
    )
    corpus = [dataset.serialize_a(i) for i in range(len(dataset.table_a))]
    corpus += [dataset.serialize_b(j) for j in range(len(dataset.table_b))]
    # Novel query texts (not in the corpus cache): every request pays the
    # encoder, as unbounded production query traffic does.
    queries = [
        f"{corpus[i % len(corpus)]} [COL] variant [VAL] q{i}"
        for i in range(num_queries)
    ]

    config = _config()
    encoder = SudowoodoEncoder(config, build_tokenizer(corpus, config))
    encoder.embed_items(corpus[:64])  # warm up caches / thread pools

    store = EmbeddingStore(encoder, batch_size=config.serve_batch_size)
    single = MatchService(encoder, config=config, store=store)
    single.index_records(corpus)
    sharded = ShardedMatchService(
        encoder, config=replace(config, num_shards=num_shards), store=store
    )
    sharded.index_records(corpus)

    # ------------------------------------------------- correctness gate
    # Sequential spot-check (batches of one query each): the sharded +
    # coalesced path must return exactly the single-shard ids.
    for query in queries[:32]:
        expected, _ = single.search([query], k=K)
        got, _ = sharded.search([query], k=K)
        np.testing.assert_array_equal(got, expected)

    # ------------------------------------------------------ throughput
    single_lock = threading.Lock()

    def baseline_search(texts, k):
        with single_lock:  # MatchService is not thread-safe
            return single.search(texts, k=k)

    baseline_qps, baseline_lat = _drive(baseline_search, queries, num_threads)
    sharded_qps, sharded_lat = _drive(
        lambda texts, k: sharded.search(texts, k=k), queries, num_threads
    )
    stats = sharded.coalesce_stats()

    return {
        "corpus": len(corpus),
        "queries": num_queries,
        "threads": num_threads,
        "shards": num_shards,
        "baseline_qps": baseline_qps,
        "sharded_qps": sharded_qps,
        "speedup": sharded_qps / baseline_qps,
        "baseline_p50_ms": float(np.percentile(baseline_lat, 50)) * 1e3,
        "baseline_p99_ms": float(np.percentile(baseline_lat, 99)) * 1e3,
        "sharded_p50_ms": float(np.percentile(sharded_lat, 50)) * 1e3,
        "sharded_p99_ms": float(np.percentile(sharded_lat, 99)) * 1e3,
        "mean_batch_size": stats["mean_batch_size"],
    }


def print_report(results: dict) -> None:
    print(
        "\n"
        + format_table(
            ["serving mode", "QPS", "p50 ms", "p99 ms"],
            [
                [
                    "single shard + global mutex",
                    results["baseline_qps"],
                    results["baseline_p50_ms"],
                    results["baseline_p99_ms"],
                ],
                [
                    f"{results['shards']} shards + coalescing",
                    results["sharded_qps"],
                    results["sharded_p50_ms"],
                    results["sharded_p99_ms"],
                ],
            ],
            title=(
                f"{results['threads']}-thread search throughput, "
                f"{results['corpus']}-record corpus, k={K} "
                f"(speedup {results['speedup']:.1f}x, "
                f"mean coalesced batch {results['mean_batch_size']:.1f})"
            ),
        )
    )


def test_sharded_serving(benchmark):
    from _scale import once

    results = once(benchmark, run)
    print_report(results)
    assert results["speedup"] >= 2.0, (
        f"sharded+coalesced only {results['speedup']:.2f}x the single-shard QPS"
    )
    assert results["mean_batch_size"] > 1.0, "coalescer never batched"


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny corpus, plumbing-only checks (CI-friendly, ~seconds)",
    )
    args = parser.parse_args()
    if args.smoke:
        results = run(corpus_size=1_000, num_queries=160)
    else:
        results = run()
    print_report(results)
    # Full scale demands the 2x QPS win; the smoke profile asserts the
    # machinery works and batching still pays at all.
    assert results["speedup"] >= (1.2 if args.smoke else 2.0), results["speedup"]
    assert results["mean_batch_size"] > 1.0, "coalescer never batched"
    print("\nsharded serving benchmark: ok")


if __name__ == "__main__":
    main()
