"""Table III — statistics of the data-cleaning datasets (size, %error,
error types, candidate coverage, #candidates)."""

from _scale import SCALE, once

from repro.cleaning import CandidateGenerator
from repro.data.generators import CLEANING_DATASET_KEYS, load_cleaning_dataset
from repro.eval import format_table


def test_table03_cleaning_statistics(benchmark):
    def run():
        rows = []
        for name in CLEANING_DATASET_KEYS:
            dataset = load_cleaning_dataset(name, scale=SCALE.cleaning_scale)
            generator = CandidateGenerator().fit(dataset)
            stats = generator.stats()
            info = dataset.stats()
            rows.append(
                [
                    name,
                    f"{info['rows']} x {info['columns']}",
                    100.0 * dataset.error_rate(),
                    info["error_types"],
                    100.0 * stats.coverage,
                    stats.mean_candidates,
                ]
            )
        return rows

    rows = once(benchmark, run)
    print(
        "\n"
        + format_table(
            ["dataset", "size", "%error", "error types", "%coverage", "#cand"],
            rows,
            title="Table III: statistics of data cleaning datasets (scaled)",
        )
    )
    coverage = {row[0]: row[4] for row in rows}
    # Rayyan has the weakest coverage in the paper (51.4%); preserve the
    # orderings coverage(rayyan) < coverage(beers / tax).
    assert coverage["rayyan"] <= coverage["beers"]
    assert coverage["rayyan"] <= coverage["tax"]
