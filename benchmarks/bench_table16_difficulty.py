"""Table XVI — Sudowoodo vs Ditto across Jaccard difficulty levels."""

from _scale import FULL, SCALE, em_config, once

from repro import SudowoodoPipeline
from repro.baselines import build_warm_encoder, manual_examples
from repro.core.matcher import PairwiseMatcher, evaluate_f1, finetune_matcher
from repro.data.generators import load_em_benchmark
from repro.eval import format_table, split_by_difficulty

DATASETS = SCALE.em_datasets if FULL else ["AB", "DA"]


def test_table16_difficulty_profile(benchmark):
    def run():
        results = {}
        for key in DATASETS:
            dataset = load_em_benchmark(
                key, scale=SCALE.em_scale, max_table_size=SCALE.em_max_table
            )
            # Ditto.
            config = em_config()
            encoder = build_warm_encoder(dataset, config)
            ditto = PairwiseMatcher(encoder, head="concat")
            examples = manual_examples(dataset, SCALE.em_label_budget, config)
            finetune_matcher(ditto, examples, examples, config)
            # Sudowoodo.
            pipeline = SudowoodoPipeline(em_config())
            pipeline.run(dataset, label_budget=SCALE.em_label_budget)

            per_level = {}
            for level in split_by_difficulty(dataset):
                if not level.pairs:
                    continue
                pairs = [dataset.serialize_pair(p) for p in level.pairs]
                labels = [p.label for p in level.pairs]
                per_level[level.level] = {
                    "ditto": evaluate_f1(ditto, pairs, labels)["f1"],
                    "sudowoodo": evaluate_f1(pipeline.matcher, pairs, labels)["f1"],
                    "pos_range": level.positive_jaccard_range,
                    "neg_range": level.negative_jaccard_range,
                }
            results[key] = per_level
        return results

    results = once(benchmark, run)
    for key, per_level in results.items():
        rows = []
        for level in sorted(per_level, reverse=True):
            data = per_level[level]
            gain = (
                data["sudowoodo"] / data["ditto"] if data["ditto"] > 0 else float("nan")
            )
            rows.append(
                [
                    level,
                    100.0 * data["ditto"],
                    100.0 * data["sudowoodo"],
                    f"x{gain:.2f}" if gain == gain else "-",
                    f"[{data['pos_range'][0]:.2f}, {data['pos_range'][1]:.2f}]",
                    f"[{data['neg_range'][0]:.2f}, {data['neg_range'][1]:.2f}]",
                ]
            )
        print(
            "\n"
            + format_table(
                ["level", "Ditto F1", "Sudowoodo F1", "gain", "pos Jaccard", "neg Jaccard"],
                rows,
                title=f"Table XVI ({key}): difficulty-level breakdown (scaled)",
            )
        )
    # Paper shape: Sudowoodo >= Ditto on average across levels.
    for key, per_level in results.items():
        sudo = sum(d["sudowoodo"] for d in per_level.values())
        ditto = sum(d["ditto"] for d in per_level.values())
        assert sudo >= ditto - 0.2
