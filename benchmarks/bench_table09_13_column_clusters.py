"""Table IX + Table XIII — discovered column clusters: counts, purity,
blocking/matching statistics, and fine-grained subtype discoveries.

Runs through the session API: one ``SudowoodoSession`` pre-trained on the
serialized columns, with the ``column_match`` task providing candidates,
pair metrics, and same-type edges for type discovery.
"""

from _scale import SCALE, col_config, once

from repro.api import SudowoodoSession
from repro.columns import discover_types
from repro.data.generators import generate_column_corpus
from repro.eval import format_table


def test_table09_13_column_clusters(benchmark):
    def run():
        corpus = generate_column_corpus(SCALE.num_columns, seed=31)
        session = SudowoodoSession(col_config())
        session.pretrain(corpus.serialized(max_values=6))
        task = session.task("column_match", max_values_per_column=6)
        task.fit(corpus, k=10, num_labels=SCALE.column_labels)
        report = task.report()
        candidates = task.pipeline.candidate_pairs(k=10)
        # High-precision edges: connected components amplify false edges,
        # so discovery uses a strict probability cut (Section V-B notes the
        # clustering step controls granularity).
        edges = task.predict(candidates, threshold=0.97)
        clusters = discover_types(corpus, edges)
        return corpus, candidates, report, clusters

    corpus, candidates, report, clusters = once(benchmark, run)
    print(
        "\n"
        + format_table(
            ["#columns", "#candidates", "%pos", "|train|", "#clusters", "purity"],
            [
                [
                    len(corpus),
                    len(candidates),
                    100.0 * report.positive_rate,
                    SCALE.column_labels // 2,
                    clusters.num_clusters,
                    100.0 * clusters.mean_purity,
                ]
            ],
            title="Table XIII: column blocking/matching statistics (scaled)",
        )
    )
    if clusters.subtype_discoveries:
        print(
            "\n"
            + format_table(
                ["type", "subtype", "size", "example value"],
                [
                    [d["type"], d["subtype"], d["size"], d["example"]]
                    for d in clusters.subtype_discoveries[:8]
                ],
                title="Table IX: fine-grained subtype clusters discovered",
            )
        )
    # Paper shapes: high cluster purity (89.9% in the paper) and at least
    # one discovered cluster finer than the ground-truth types.
    assert clusters.mean_purity > 0.7
    assert clusters.num_clusters > 5
