"""Table VII + Figure 7 — blocking: recall and candidate-set size vs
DL-Block, plus the recall-CSSR curves."""

from _scale import SCALE, em_config, once

from repro import SudowoodoPipeline
from repro.baselines import DLBlockBlocker
from repro.data.generators import load_em_benchmark
from repro.eval import format_table

KS = list(range(1, 21, 3))


def test_table07_fig07_blocking(benchmark):
    def run():
        results = {}
        for key in SCALE.em_datasets:
            dataset = load_em_benchmark(
                key, scale=SCALE.em_scale, max_table_size=SCALE.em_max_table
            )
            pipeline = SudowoodoPipeline(em_config())
            pipeline.pretrain_on(dataset)
            sudowoodo_curve = pipeline.blocker.recall_cssr_curve(KS)
            dl_curve = DLBlockBlocker(dataset, em_config()).recall_cssr_curve(KS)
            # Table VII protocol: DL-Block's k=10 recall is the target;
            # Sudowoodo reports the first k that beats it.
            target = next(r for r in dl_curve if r["k"] >= 10)
            matched = pipeline.blocker.first_k_beating_recall(
                target["recall"], max_k=20
            )
            results[key] = {
                "sudowoodo_curve": sudowoodo_curve,
                "dlblock_curve": dl_curve,
                "dl_recall": target["recall"],
                "dl_cands": target["num_candidates"],
                "sudo_recall": matched.recall(dataset.matches) if matched else 0.0,
                "sudo_cands": float(len(matched)) if matched else float("nan"),
            }
        return results

    results = once(benchmark, run)
    rows = []
    for key, data in results.items():
        rows.append(
            [
                key,
                100.0 * data["dl_recall"],
                int(data["dl_cands"]),
                100.0 * data["sudo_recall"],
                int(data["sudo_cands"]) if data["sudo_cands"] == data["sudo_cands"] else None,
            ]
        )
    print(
        "\n"
        + format_table(
            ["dataset", "DL-Block R", "DL-Block #cand", "Sudowoodo R", "Sudowoodo #cand"],
            rows,
            title="Table VII: blocking recall and candidate counts (scaled)",
        )
    )
    for key, data in results.items():
        curve_rows = [
            [r["k"], 100.0 * r["recall"], 100.0 * r["cssr"],
             100.0 * d["recall"], 100.0 * d["cssr"]]
            for r, d in zip(data["sudowoodo_curve"], data["dlblock_curve"])
        ]
        print(
            "\n"
            + format_table(
                ["k", "Sudowoodo R", "Sudowoodo CSSR", "DL-Block R", "DL-Block CSSR"],
                curve_rows,
                title=f"Figure 7 ({key}): recall vs CSSR",
            )
        )
        # Figure 7's shape: at the same k, Sudowoodo's recall dominates
        # (identical CSSR by construction of kNN blocking).
        sudo_final = data["sudowoodo_curve"][-1]["recall"]
        dl_final = data["dlblock_curve"][-1]["recall"]
        assert sudo_final >= dl_final - 0.05
