"""Table XIV — candidate coverage / sizes; Table XV — cleaning ablations."""

from _scale import FULL, SCALE, ec_config, once

from repro.cleaning import CandidateGenerator, SudowoodoCleaner
from repro.data.generators import CLEANING_DATASET_KEYS, load_cleaning_dataset
from repro.eval import format_table

DATASETS = CLEANING_DATASET_KEYS if FULL else ["beers", "hospital"]
ABLATIONS = (
    {
        "Sudowoodo (-cutoff)": {"use_cutoff": False},
        "Sudowoodo (-RR)": {"use_barlow_twins": False},
        "Sudowoodo (-cls)": {"use_cluster_sampling": False},
        "Sudowoodo (full)": {},
    }
    if FULL
    else {
        "Sudowoodo (-cls)": {"use_cluster_sampling": False},
        "Sudowoodo (full)": {},
    }
)


def test_table14_candidate_statistics(benchmark):
    def run():
        rows = []
        for name in CLEANING_DATASET_KEYS:
            dataset = load_cleaning_dataset(name, scale=SCALE.cleaning_scale)
            stats = CandidateGenerator().fit(dataset).stats()
            rows.append([name, 100.0 * stats.coverage, stats.mean_candidates])
        return rows

    rows = once(benchmark, run)
    print(
        "\n"
        + format_table(
            ["dataset", "%coverage", "#cand"],
            rows,
            title="Table XIV: correction candidate statistics (scaled)",
        )
    )
    for row in rows:
        assert row[1] > 40.0  # every dataset keeps usable coverage


def test_table15_cleaning_ablation(benchmark):
    def run():
        results = {}
        for name in DATASETS:
            dataset = load_cleaning_dataset(name, scale=SCALE.cleaning_scale)
            generator = CandidateGenerator().fit(dataset)
            for label, flags in ABLATIONS.items():
                config = ec_config().ablated(**flags) if flags else ec_config()
                cleaner = SudowoodoCleaner(config).fit(
                    dataset, generator, SCALE.cleaning_labeled_rows
                )
                results.setdefault(label, {})[name] = cleaner.evaluate().f1
        return results

    results = once(benchmark, run)
    rows = []
    for label, values in results.items():
        f1s = [100.0 * values[d] for d in DATASETS]
        rows.append([label, *f1s, sum(f1s) / len(f1s)])
    print(
        "\n"
        + format_table(
            ["variant", *DATASETS, "average"],
            rows,
            title="Table XV: cleaning ablations (scaled)",
        )
    )
    # Paper shape: cleaning is relatively insensitive to the pre-training
    # optimizations (all variants within a few points of each other).
    averages = [row[-1] for row in rows]
    assert max(averages) - min(averages) < 25.0
