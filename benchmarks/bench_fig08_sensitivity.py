"""Figure 8 — hyper-parameter sensitivity: cutoff_ratio, num_clusters
(F1 and false-negative rate), alpha_bt, and the pseudo-label multiplier."""

import numpy as np
from _scale import FULL, SCALE, em_config, once

from repro import SudowoodoPipeline
from repro.core import ClusterBatcher
from repro.data.generators import load_em_benchmark
from repro.eval import format_table

DATASET = "AB"
GRID = {
    "cutoff_ratio": [0.01, 0.03, 0.05, 0.08] if FULL else [0.01, 0.05],
    "num_clusters": [4, 8, 12, 16] if FULL else [4, 12],
    "alpha_bt": [1e-4, 1e-3, 1e-2, 1e-1] if FULL else [1e-3, 1e-1],
    "multiplier": [2, 4, 6, 8] if FULL else [2, 6],
}


def run_with(**overrides):
    dataset = load_em_benchmark(
        DATASET, scale=SCALE.em_scale, max_table_size=SCALE.em_max_table
    )
    config = em_config(**overrides)
    report = SudowoodoPipeline(config).run(
        dataset, label_budget=SCALE.em_label_budget
    )
    return report.f1


def test_fig08_sensitivity(benchmark):
    def run():
        results = {}
        for parameter, values in GRID.items():
            results[parameter] = {v: run_with(**{parameter: v}) for v in values}
        return results

    results = once(benchmark, run)
    for parameter, values in results.items():
        rows = [[v, 100.0 * f1] for v, f1 in values.items()]
        print(
            "\n"
            + format_table(
                [parameter, "F1"],
                rows,
                title=f"Figure 8 ({parameter}) on {DATASET} (scaled)",
            )
        )
        scores = list(values.values())
        # Paper shape: F1 is fairly stable across each grid (the paper
        # reports ~0.4-0.6 point average swings; allow wider at tiny scale).
        assert max(scores) - min(scores) < 0.35

    # Figure 8 row 3: the false-negative rate of clustering-based sampling
    # grows with the number of clusters.
    dataset = load_em_benchmark(
        DATASET, scale=SCALE.em_scale, max_table_size=SCALE.em_max_table
    )
    corpus = dataset.all_items()
    offset = len(dataset.table_a)
    matches = [(a, offset + b) for a, b in dataset.matches]
    fnr = {}
    for k in GRID["num_clusters"]:
        batcher = ClusterBatcher(corpus, k, np.random.default_rng(0))
        fnr[k] = batcher.false_negative_rate(
            matches, 16, np.random.default_rng(1)
        )
    print(
        "\n"
        + format_table(
            ["num_clusters", "FNR"],
            [[k, 100.0 * v] for k, v in fnr.items()],
            title="Figure 8 (row 3): false-negative rate vs num_clusters",
        )
    )
    ks = sorted(fnr)
    assert fnr[ks[-1]] >= fnr[ks[0]]
