"""Lake-scale discovery benchmark — the incremental profile cache, the
batch scorer, and the streaming dedupe memory model (no paper table; see
docs/discovery.md).

Scenario: a lake of ~1,000 tables (pods of joinable tables under
distinct name prefixes).  A cold pass profiles every column into a
persistent :class:`~repro.discovery.lake.ProfileStore`; then 5% of the
tables mutate (appended corrupted rows) and the lake is re-profiled
twice — once warm through the same store (only changed columns
recomputed) and once cold into a fresh store (the pre-cache baseline).

Acceptance targets:

* warm incremental re-profile is >= 5x faster than the cold re-profile
  (>= 2x in ``--smoke``), and recomputes *exactly* the mutated tables'
  columns;
* the bounded-memory batch scorer ranks byte-identically to the legacy
  per-pair path over the delta-maintained live index;
* streaming dedupe (union-find over an edge *generator*) peaks below
  the materializing networkx oracle and stays near-flat as the edge
  count quadruples.

Run as a pytest benchmark for full-scale numbers, or as a script for a
quick CI smoke check::

    PYTHONPATH=src python -m pytest benchmarks/bench_lake_scale_discovery.py -q -s
    PYTHONPATH=src python benchmarks/bench_lake_scale_discovery.py --smoke
"""

import argparse
import time
import tracemalloc

import numpy as np

from repro.api import SudowoodoConfig, SudowoodoSession
from repro.data.generators import generate_lake, mutate_lake
from repro.discovery import (
    LakeIndex,
    ProfileStore,
    iter_duplicate_clusters,
    profile_lake,
    rank_lake_candidates,
)
from repro.discovery.dedupe import _networkx_clusters
from repro.discovery.join import profile_tables
from repro.eval import format_table

SPEEDUP_FLOOR = 5.0
SMOKE_SPEEDUP_FLOOR = 2.0
# Union-find holds two O(records) arrays regardless of the edge count;
# allow slack for allocator noise, but 4x the edges must stay well under
# 1.5x the peak.
STREAMING_GROWTH_CEILING = 1.5


def _session(tables) -> SudowoodoSession:
    """A small pretrained session — embedding goes through the real
    encoder, the cost the profile cache exists to avoid."""
    config = SudowoodoConfig(
        dim=32,
        num_layers=2,
        num_heads=4,
        ffn_dim=64,
        max_seq_len=32,
        vocab_size=2000,
        pretrain_epochs=1,
        pretrain_batch_size=16,
        num_clusters=4,
        corpus_cap=128,
        multiplier=2,
        mlm_warm_start_epochs=0,
        seed=0,
    )
    sample = dict(list(tables.items())[:30])
    session = SudowoodoSession(config)
    session.pretrain([p.text for p in profile_tables(sample)])
    return session


def _profile(tables, store, session):
    embed = lambda texts: session.embed(texts, normalize=True)
    started = time.perf_counter()
    lake = profile_lake(tables, store, embed, max_values=8, sketch_k=64)
    return lake, time.perf_counter() - started


def _edge_feed(num_records, num_edges, seed, chunk=2048):
    # Chunked draws keep the feed itself O(chunk) — the point of the
    # memory comparison is that *nothing* holds all edges at once.
    rng = np.random.default_rng(seed)
    remaining = num_edges
    while remaining > 0:
        block = rng.integers(0, num_records, size=(min(chunk, remaining), 2))
        for a, b in block.tolist():
            yield (a, b)
        remaining -= len(block)


def _dedupe_peaks(num_records, num_edges, seed=3):
    """Peak traced bytes: streaming union-find vs materializing oracle."""
    tracemalloc.start()
    streamed = list(
        iter_duplicate_clusters(
            num_records, _edge_feed(num_records, num_edges, seed)
        )
    )
    _, streaming_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    tracemalloc.start()
    materialized = _networkx_clusters(
        num_records, list(_edge_feed(num_records, num_edges, seed))
    )
    _, networkx_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    assert streamed == materialized, "streaming partition diverged"
    return streaming_peak, networkx_peak


def run(
    num_tables: int = 1000,
    rows: int = 18,
    k: int = 4,
    mutate_fraction: float = 0.05,
    dedupe_records: int = 20000,
    dedupe_edges: int = 50000,
    tmp_root=None,
) -> dict:
    import tempfile

    root = tmp_root or tempfile.mkdtemp(prefix="sudowoodo-lake-bench-")
    from pathlib import Path

    root = Path(root)

    tables = generate_lake(num_tables=num_tables, rows=rows, seed=1).tables
    session = _session(tables)
    store = ProfileStore(root / "cache")
    _, cold_s = _profile(tables, store, session)

    mutated, names = mutate_lake(tables, fraction=mutate_fraction, seed=2)
    changed_columns = sum(len(mutated[name].schema) for name in names)

    # Pre-cache baseline: re-profile the mutated lake from scratch — a
    # fresh store AND a fresh embedding cache around the same encoder
    # weights (``adopt`` shares weights, not the warm text cache).
    baseline = SudowoodoSession(session.config).adopt(session.encoder)
    _, full_s = _profile(mutated, ProfileStore(root / "full"), baseline)
    # Incremental: the live store from the cold pass, deltas only.
    warm_lake, warm_s = _profile(mutated, store, session)

    assert warm_lake.computed == changed_columns, (
        f"warm pass recomputed {warm_lake.computed} columns, "
        f"expected exactly the {changed_columns} mutated ones"
    )

    index = LakeIndex(SudowoodoConfig())
    index.update(warm_lake)
    batched = rank_lake_candidates(warm_lake, index, k=k, scorer="batched")
    pairwise = rank_lake_candidates(warm_lake, index, k=k, scorer="pairwise")
    scorer_identical = [(c.pair, c.score) for c in batched] == [
        (c.pair, c.score) for c in pairwise
    ]

    stream_1, nx_1 = _dedupe_peaks(dedupe_records, dedupe_edges)
    stream_4, nx_4 = _dedupe_peaks(dedupe_records, 4 * dedupe_edges)

    return {
        "num_tables": num_tables,
        "num_columns": len(warm_lake.profiles),
        "changed_columns": changed_columns,
        "recomputed": warm_lake.computed,
        "cold_s": cold_s,
        "full_s": full_s,
        "warm_s": warm_s,
        "speedup": full_s / max(warm_s, 1e-9),
        "num_candidates": len(batched),
        "scorer_identical": scorer_identical,
        "dedupe_records": dedupe_records,
        "dedupe_edges": dedupe_edges,
        "streaming_peak_mb": stream_1 / 2**20,
        "networkx_peak_mb": nx_1 / 2**20,
        "streaming_peak_4x_mb": stream_4 / 2**20,
        "networkx_peak_4x_mb": nx_4 / 2**20,
        "streaming_growth": stream_4 / max(stream_1, 1),
    }


def print_report(results: dict) -> None:
    print(
        format_table(
            ["pass", "seconds", "columns"],
            [
                ["cold profile", results["cold_s"], results["num_columns"]],
                ["full re-profile", results["full_s"], results["num_columns"]],
                ["warm incremental", results["warm_s"], results["recomputed"]],
            ],
            title=(
                f"lake profile cache ({results['num_tables']} tables, "
                f"{results['changed_columns']} columns mutated, "
                f"{results['speedup']:.1f}x speedup)"
            ),
            float_digits=3,
        )
    )
    print(
        format_table(
            ["edges", "streaming MB", "networkx MB"],
            [
                [
                    results["dedupe_edges"],
                    results["streaming_peak_mb"],
                    results["networkx_peak_mb"],
                ],
                [
                    4 * results["dedupe_edges"],
                    results["streaming_peak_4x_mb"],
                    results["networkx_peak_4x_mb"],
                ],
            ],
            title=(
                f"streaming dedupe peaks ({results['dedupe_records']} records, "
                f"growth {results['streaming_growth']:.2f}x; batch scorer "
                f"identical: {results['scorer_identical']}, "
                f"{results['num_candidates']} candidates)"
            ),
            float_digits=2,
        )
    )


def _check(results: dict, smoke: bool) -> None:
    floor = SMOKE_SPEEDUP_FLOOR if smoke else SPEEDUP_FLOOR
    assert results["speedup"] >= floor, (
        f"warm re-profile only {results['speedup']:.1f}x faster than cold "
        f"(floor {floor:.1f}x)"
    )
    assert results["recomputed"] == results["changed_columns"], (
        "cache invalidation is not fingerprint-granular"
    )
    assert results["scorer_identical"], (
        "batch scorer diverged from the per-pair oracle"
    )
    assert results["num_candidates"] > 0, "no candidates proposed"
    assert results["streaming_peak_mb"] < results["networkx_peak_mb"], (
        "streaming dedupe peaked above the materializing oracle"
    )
    assert results["streaming_growth"] < STREAMING_GROWTH_CEILING, (
        f"streaming dedupe peak grew {results['streaming_growth']:.2f}x "
        f"with 4x the edges (ceiling {STREAMING_GROWTH_CEILING:.1f}x)"
    )


def test_lake_scale_discovery(benchmark, tmp_path):
    from _scale import once

    results = once(benchmark, lambda: run(tmp_root=tmp_path))
    print_report(results)
    _check(results, smoke=False)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny lake, relaxed speedup floor (CI-friendly, ~seconds)",
    )
    args = parser.parse_args()
    if args.smoke:
        results = run(
            num_tables=60,
            rows=12,
            mutate_fraction=0.05,
            dedupe_records=4000,
            dedupe_edges=10000,
        )
    else:
        results = run()
    print_report(results)
    _check(results, smoke=args.smoke)
    print("\nlake-scale discovery benchmark: ok")


if __name__ == "__main__":
    main()
