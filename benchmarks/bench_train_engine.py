"""Training-engine benchmark: gradient-worker scaling and token caching.

Two measurements over the shared step-loop runtime (``repro.train``):

* **Worker scaling** — steps/sec of contrastive pre-training at 1, 2, and
  4 gradient workers on a matmul-heavy configuration.  numpy releases the
  GIL inside the hot-path matmuls, so data-parallel worker threads overlap
  forward/backward across encoder replicas.  Acceptance target (asserted
  when the machine actually has >= 4 cores): **>= 1.5x** steps/sec at 4
  workers over serial.
* **Token caching** — cold vs. warm ``TokenCache.encode_batch`` over the
  pre-training corpus.  Every later epoch (and every view of an item the
  cache has seen) skips regex tokenization entirely; the warm pass must
  run >= 1.5x faster than the cold pass.

Run as a script for full numbers, or with ``--smoke`` for the CI check::

    PYTHONPATH=src python benchmarks/bench_train_engine.py
    PYTHONPATH=src python benchmarks/bench_train_engine.py --smoke
"""

# Pin BLAS to one thread *before* numpy loads: the serial baseline must
# not secretly parallelize inside the matmuls, or worker scaling would be
# measured against an already-parallel opponent.
import os

for _var in ("OPENBLAS_NUM_THREADS", "OMP_NUM_THREADS", "MKL_NUM_THREADS"):
    os.environ.setdefault(_var, "1")

import argparse
import time

import numpy as np

from repro.core import SudowoodoConfig
from repro.core.encoder import SudowoodoEncoder, build_tokenizer
from repro.core.pretrain import ContrastivePretrainProgram, prepare_corpus
from repro.eval import format_table
from repro.nn import AdamW
from repro.train import TokenCache, Trainer
from repro.utils import RngStream

WORKER_TARGET = 1.5  # steps/sec at 4 workers vs. serial (>= 4 cores only)
CACHE_TARGET = 1.5  # warm vs. cold token-cache encode


def _corpus(size: int):
    rng = np.random.default_rng(11)
    brands = ["acme", "orbit", "vertex", "zenith", "nadir", "apex"]
    kinds = ["sensor", "widget", "probe", "gadget", "module", "relay"]
    return [
        f"[COL] name [VAL] {kinds[int(rng.integers(len(kinds)))]} {i} "
        f"rev {int(rng.integers(100))} "
        f"[COL] brand [VAL] {brands[int(rng.integers(len(brands)))]} "
        f"[COL] price [VAL] {int(rng.integers(900))}.{int(rng.integers(100)):02d}"
        for i in range(size)
    ]


def _config(smoke: bool, **overrides) -> SudowoodoConfig:
    """Matmul-heavy calibration: wide enough that forward/backward numpy
    time dominates the python step overhead (the regime where worker
    threads pay off, and the regime production encoders live in)."""
    defaults = dict(
        dim=32 if smoke else 160,
        num_layers=1 if smoke else 2,
        num_heads=4,
        ffn_dim=64 if smoke else 320,
        max_seq_len=24 if smoke else 40,
        pair_max_seq_len=40 if smoke else 64,
        vocab_size=600,
        pretrain_epochs=1,
        pretrain_batch_size=16 if smoke else 96,
        num_clusters=4,
        corpus_cap=None,
        mlm_warm_start_epochs=0,
        seed=0,
    )
    defaults.update(overrides)
    return SudowoodoConfig(**defaults)


def measure_steps_per_second(corpus, config: SudowoodoConfig) -> float:
    """Steps/sec of the engine's contrastive loop (tokenizer warm)."""
    config.validate()
    rngs = RngStream(config.seed)
    corpus = prepare_corpus(corpus, config, rngs.get("corpus"))
    tokenizer = build_tokenizer(corpus, config)
    encoder = SudowoodoEncoder(config, tokenizer)
    cache = TokenCache(tokenizer)
    cache.warm(corpus, config.max_seq_len)  # isolate compute from tokenize
    program = ContrastivePretrainProgram(
        corpus, config, rngs, tokenizer, token_cache=cache
    )
    trainer = Trainer(
        encoder,
        program,
        AdamW(encoder.parameters(), lr=config.pretrain_lr),
        config=config.train,
        rngs=rngs,
    )
    start = time.perf_counter()
    state = trainer.fit(max_epochs=config.pretrain_epochs)
    elapsed = time.perf_counter() - start
    return state.step / elapsed


def measure_token_cache(corpus, config: SudowoodoConfig) -> dict:
    """Cold vs. warm encode_batch over the corpus (median of 3 warm runs)."""
    tokenizer = build_tokenizer(corpus, config)
    cache = TokenCache(tokenizer)
    start = time.perf_counter()
    cache.encode_batch(corpus, config.max_seq_len)
    cold = time.perf_counter() - start
    warm_runs = []
    for _ in range(3):
        start = time.perf_counter()
        cache.encode_batch(corpus, config.max_seq_len)
        warm_runs.append(time.perf_counter() - start)
    warm = float(np.median(warm_runs))
    return {
        "cold_seconds": cold,
        "warm_seconds": warm,
        "cache_speedup": cold / warm if warm > 0 else float("inf"),
        "hits": cache.hits,
        "misses": cache.misses,
    }


def run(smoke: bool = False) -> dict:
    corpus = _corpus(300 if smoke else 1000)
    results: dict = {"cores": len(os.sched_getaffinity(0))}
    results.update(measure_token_cache(corpus, _config(smoke)))
    worker_counts = (1, 2) if smoke else (1, 2, 4)
    steps = {}
    for workers in worker_counts:
        steps[workers] = measure_steps_per_second(
            list(corpus), _config(smoke, train_workers=workers)
        )
    results["steps_per_second"] = steps
    serial = steps[1]
    results["worker_speedup"] = {
        workers: rate / serial for workers, rate in steps.items()
    }
    return results


def print_report(results: dict) -> None:
    rows = [
        (
            f"{workers} worker(s)",
            f"{rate:.2f} steps/s",
            f"{results['worker_speedup'][workers]:.2f}x",
        )
        for workers, rate in sorted(results["steps_per_second"].items())
    ]
    print(format_table(["engine", "throughput", "vs serial"], rows))
    print(
        f"token cache: cold {results['cold_seconds'] * 1e3:.1f} ms, "
        f"warm {results['warm_seconds'] * 1e3:.1f} ms "
        f"({results['cache_speedup']:.1f}x, "
        f"{results['hits']} hits / {results['misses']} misses)"
    )
    print(f"cores available: {results['cores']}")


def _assert_targets(results: dict, smoke: bool) -> None:
    assert results["cache_speedup"] >= (1.0 if smoke else CACHE_TARGET), (
        f"warm token cache speedup {results['cache_speedup']:.2f}x below "
        f"target"
    )
    if smoke:
        return
    if results["cores"] >= 4 and 4 in results["worker_speedup"]:
        speedup = results["worker_speedup"][4]
        assert speedup >= WORKER_TARGET, (
            f"4-worker speedup {speedup:.2f}x below {WORKER_TARGET}x target"
        )
    else:
        print(
            "note: < 4 cores available — worker-scaling target not "
            "asserted on this machine"
        )


def test_train_engine(benchmark):
    """Pytest-benchmark entry point (full scale)."""
    results = run(smoke=False)
    print_report(results)
    _assert_targets(results, smoke=False)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny sizes for CI (skips the worker-scaling assertion)",
    )
    args = parser.parse_args()
    results = run(smoke=args.smoke)
    print_report(results)
    _assert_targets(results, smoke=args.smoke)
    print("ok")


if __name__ == "__main__":
    main()
