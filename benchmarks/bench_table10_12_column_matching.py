"""Table X + Table XII — column matching vs Sherlock/Sato classifiers.

Sherlock and Sato column vectors feed LR / SVM / GBT / RF / SIM pairwise
classifiers over ``concat(v_a, v_b, |v_a - v_b|)``; Sudowoodo fine-tunes
its contrastive encoder.  The paper's result: Sudowoodo beats the best
(GBT) variants of both featurizers on test F1.
"""

from _scale import FULL, SCALE, col_config, once

from repro.api import SudowoodoSession
from repro.columns import (
    SatoFeaturizer,
    SherlockFeaturizer,
    evaluate_feature_baseline,
)
from repro.data.generators import generate_column_corpus
from repro.eval import format_table

CLASSIFIERS = ["LR", "SVM", "GBT", "RF", "SIM"] if FULL else ["LR", "GBT", "SIM"]


def test_table10_12_column_matching(benchmark):
    def run():
        corpus = generate_column_corpus(SCALE.num_columns, seed=31)
        session = SudowoodoSession(col_config())
        session.pretrain(corpus.serialized(max_values=6))
        task = session.task("column_match", max_values_per_column=6)
        task.fit(corpus, k=10, num_labels=SCALE.column_labels)
        # The baselines reuse the task's candidate pairs and labeled
        # splits (both deterministic under the shared seed).
        candidates = task.pipeline.candidate_pairs(k=10)
        splits = task.pipeline.build_labeled_pairs(candidates, SCALE.column_labels)
        results = {}
        for featurizer_name, featurizer_factory in [
            ("Sherlock", SherlockFeaturizer),
            ("Sato", SatoFeaturizer),
        ]:
            for classifier in CLASSIFIERS:
                metrics = evaluate_feature_baseline(
                    corpus, featurizer_factory(), splits, classifier
                )
                results[f"{featurizer_name}-{classifier}"] = metrics
        report = task.report()
        results["Sudowoodo"] = {
            "valid": report.valid_metrics,
            "test": report.metrics,
        }
        return results

    results = once(benchmark, run)
    rows = []
    for name, metrics in results.items():
        rows.append(
            [
                name,
                100.0 * metrics["valid"]["precision"],
                100.0 * metrics["valid"]["recall"],
                100.0 * metrics["valid"]["f1"],
                100.0 * metrics["test"]["precision"],
                100.0 * metrics["test"]["recall"],
                100.0 * metrics["test"]["f1"],
            ]
        )
    print(
        "\n"
        + format_table(
            ["method", "valid P", "valid R", "valid F1", "test P", "test R", "test F1"],
            rows,
            title="Table XII: column matching, full grid (scaled)",
        )
    )
    best_sherlock = max(
        results[k]["test"]["f1"] for k in results if k.startswith("Sherlock")
    )
    best_sato = max(
        results[k]["test"]["f1"] for k in results if k.startswith("Sato")
    )
    sudowoodo = results["Sudowoodo"]["test"]["f1"]
    print(
        f"\nTable X summary: Sudowoodo={100*sudowoodo:.1f} "
        f"best-Sherlock={100*best_sherlock:.1f} best-Sato={100*best_sato:.1f}"
    )
    # Paper shape: Sudowoodo 88.3 > Sato-GBT 84.5 > Sherlock-GBT 83.9.
    # On *clean synthetic* typed columns the hand-crafted statistical
    # features (char-class distributions, cardinality, value lengths) are
    # nearly a perfect signal and the feature baselines overperform their
    # real-VizNet results — this comparison INVERTS at reproduction scale
    # and is documented as a substrate artifact in EXPERIMENTS.md.  The
    # assertions check what does transfer: the learned matcher is a strong
    # classifier in absolute terms and beats the similarity-only (SIM)
    # family, the paper's weakest baseline group.
    sim_best = max(
        results[k]["test"]["f1"] for k in results if k.endswith("-SIM")
    ) if any(k.endswith("-SIM") for k in results) else 0.0
    assert sudowoodo > 0.5
    assert sudowoodo > sim_best - 0.05
