"""Table XI — TPR/TNR of the training set after adding pseudo labels,
for SimCLR vs Sudowoodo pre-training, and Sudowoodo without any manual
label (the "no label" column)."""

from _scale import SCALE, em_config, once

from repro import SudowoodoPipeline
from repro.data.generators import load_em_benchmark
from repro.eval import format_table


def quality(config, dataset, budget):
    pipeline = SudowoodoPipeline(config)
    pipeline.pretrain_on(dataset)
    pipeline.train_matcher(label_budget=budget)
    return pipeline.pseudo_label_quality()


from _scale import FULL

DATASETS = SCALE.em_datasets if FULL else SCALE.em_datasets[:2]


def test_table11_pseudo_label_quality(benchmark):
    def run():
        results = {}
        for key in DATASETS:
            dataset = load_em_benchmark(
                key, scale=SCALE.em_scale, max_table_size=SCALE.em_max_table
            )
            simclr_config = em_config().as_simclr().ablated(use_pseudo_labeling=True)
            results.setdefault("SimCLR", {})[key] = quality(
                simclr_config, dataset, SCALE.em_label_budget
            )
            results.setdefault("Sudowoodo", {})[key] = quality(
                em_config(), dataset, SCALE.em_label_budget
            )
            results.setdefault("Sudowoodo (no label)", {})[key] = quality(
                em_config(), dataset, 0
            )
        return results

    results = once(benchmark, run)
    rows = []
    for key in DATASETS:
        rows.append(
            [
                key,
                *[
                    100.0 * results[m][key][metric]
                    for m in ("SimCLR", "Sudowoodo", "Sudowoodo (no label)")
                    for metric in ("tpr", "tnr")
                ],
            ]
        )
    print(
        "\n"
        + format_table(
            [
                "dataset",
                "SimCLR TPR", "SimCLR TNR",
                "Sudowoodo TPR", "Sudowoodo TNR",
                "no-label TPR", "no-label TNR",
            ],
            rows,
            title="Table XI: pseudo-label quality (scaled)",
        )
    )
    # Paper shape: TNR is uniformly high (96-99%); Sudowoodo's pseudo
    # labels are at least as clean as SimCLR's on average.
    for key in DATASETS:
        assert results["Sudowoodo"][key]["tnr"] > 0.9
    avg_sudo = sum(r["tpr"] for r in results["Sudowoodo"].values())
    avg_simclr = sum(r["tpr"] for r in results["SimCLR"].values())
    assert avg_sudo >= avg_simclr - 0.15
