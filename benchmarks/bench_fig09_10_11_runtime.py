"""Figures 9/10/11 — running time: semi-supervised EM by method, blocking
time per dataset, and cleaning (RoBERTa warm-only vs Sudowoodo)."""

import time

from _scale import SCALE, ec_config, em_config, once

from repro import SudowoodoPipeline
from repro.baselines import train_ditto
from repro.cleaning import CandidateGenerator, SudowoodoCleaner
from repro.data.generators import load_cleaning_dataset, load_em_benchmark
from repro.eval import format_table


def test_fig09_10_11_runtime(benchmark):
    def run():
        em_rows = []
        blocking_rows = []
        for key in SCALE.em_datasets:
            dataset = load_em_benchmark(
                key, scale=SCALE.em_scale, max_table_size=SCALE.em_max_table
            )
            start = time.perf_counter()
            train_ditto(dataset, SCALE.em_label_budget, em_config())
            ditto_time = time.perf_counter() - start

            pipeline = SudowoodoPipeline(em_config())
            start = time.perf_counter()
            pipeline.run(dataset, label_budget=SCALE.em_label_budget)
            sudowoodo_time = time.perf_counter() - start
            em_rows.append([key, ditto_time, sudowoodo_time])
            blocking_rows.append(
                [key, pipeline.timer.total("pretrain"), pipeline.timer.total("blocking")]
            )

        cleaning_rows = []
        for name in ["beers", "hospital"]:
            dataset = load_cleaning_dataset(name, scale=SCALE.cleaning_scale)
            generator = CandidateGenerator().fit(dataset)
            start = time.perf_counter()
            SudowoodoCleaner(ec_config()).fit(
                dataset, generator, SCALE.cleaning_labeled_rows, contrastive=False
            ).evaluate()
            warm_time = time.perf_counter() - start
            start = time.perf_counter()
            SudowoodoCleaner(ec_config()).fit(
                dataset, generator, SCALE.cleaning_labeled_rows
            ).evaluate()
            sudowoodo_time = time.perf_counter() - start
            cleaning_rows.append([name, warm_time, sudowoodo_time])
        return em_rows, blocking_rows, cleaning_rows

    em_rows, blocking_rows, cleaning_rows = once(benchmark, run)
    print(
        "\n"
        + format_table(
            ["dataset", "Ditto (s)", "Sudowoodo (s)"],
            em_rows,
            title="Figure 9: running time for semi-supervised EM (this substrate)",
        )
    )
    print(
        "\n"
        + format_table(
            ["dataset", "pretrain (s)", "blocking (s)"],
            blocking_rows,
            title="Figure 10: blocking time (this substrate)",
        )
    )
    print(
        "\n"
        + format_table(
            ["dataset", "warm-only (s)", "Sudowoodo (s)"],
            cleaning_rows,
            title="Figure 11: cleaning time, warm-only LM vs Sudowoodo",
        )
    )
    # Figure 10's shape: blocking is a small fraction of pre-training time.
    for _, pretrain_s, blocking_s in blocking_rows:
        assert blocking_s < pretrain_s
    # Figure 11's shape: the contrastive step adds bounded overhead.
    for _, warm_s, sudo_s in cleaning_rows:
        assert sudo_s < warm_s * 6
