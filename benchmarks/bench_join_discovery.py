"""Join-discovery benchmark — ranked joinable-column recall over a
generated table lake (no paper table; see docs/discovery.md).

Scenario: a lake of tables with planted joinable column groups
(``generate_joinable_tables``: shared value pools under different column
names, plus per-table noise columns).  One pre-trained session profiles
every column (serialized text + containment sketch), embeds through the
shared store, and ranks cross-table pairs with the blended
containment/cosine score — the ``join_discovery`` task end to end.

Acceptance targets: recall@T of the ranking (T = number of true
joinable pairs) meets the floor, and the ranking is byte-identical
across ``num_shards`` in {1, 2, 3} — the shard-invariance contract of
the exact backend.  Run as a pytest benchmark for full-scale numbers, or
as a script for a quick CI smoke check::

    PYTHONPATH=src python -m pytest benchmarks/bench_join_discovery.py -q -s
    PYTHONPATH=src python benchmarks/bench_join_discovery.py --smoke
"""

import argparse
import time

from repro.api import SudowoodoConfig, SudowoodoSession
from repro.data.generators import generate_joinable_tables
from repro.discovery.join import profile_tables
from repro.eval import format_table

RECALL_FLOOR = 0.6
SMOKE_RECALL_FLOOR = 0.4  # tiny encoder, tiny lake: plumbing + sanity


def _config(**overrides) -> SudowoodoConfig:
    defaults = dict(
        dim=24,
        num_layers=1,
        num_heads=2,
        ffn_dim=48,
        max_seq_len=32,
        vocab_size=1500,
        pretrain_epochs=3,
        pretrain_batch_size=8,
        num_clusters=3,
        corpus_cap=256,
        multiplier=2,
        mlm_warm_start_epochs=0,
        seed=0,
    )
    defaults.update(overrides)
    return SudowoodoConfig(**defaults)


def run(num_tables: int = 5, rows: int = 40, k: int = 8) -> dict:
    bundle = generate_joinable_tables(
        num_tables=num_tables, rows=rows, num_domains=4, seed=1
    )
    profiles = profile_tables(bundle.tables)
    session = SudowoodoSession(_config())

    started = time.perf_counter()
    session.pretrain([profile.text for profile in profiles])
    pretrain_s = time.perf_counter() - started

    started = time.perf_counter()
    task = session.task("join_discovery").fit(bundle, k=k)
    fit_s = time.perf_counter() - started
    metrics = task.evaluate()

    rankings = []
    for num_shards in (1, 2, 3):
        sharded = session.task("join_discovery", fresh=True).fit(
            bundle, k=k, num_shards=num_shards
        )
        rankings.append(
            [(c.pair, round(c.score, 12)) for c in sharded.predict()]
        )

    return {
        "num_tables": num_tables,
        "num_columns": len(profiles),
        "truth_pairs": len(bundle.joinable),
        "num_candidates": metrics["num_candidates"],
        "recall_at": metrics["recall_at"],
        "precision_at": metrics["precision_at"],
        "shard_invariant": rankings[0] == rankings[1] == rankings[2],
        "pretrain_s": pretrain_s,
        "fit_s": fit_s,
    }


def print_report(results: dict) -> None:
    print(
        format_table(
            ["tables", "columns", "truth", "candidates", "recall@T", "prec@T"],
            [
                [
                    results["num_tables"],
                    results["num_columns"],
                    results["truth_pairs"],
                    int(results["num_candidates"]),
                    results["recall_at"],
                    results["precision_at"],
                ]
            ],
            title=(
                f"join discovery (pretrain {results['pretrain_s']:.1f}s, "
                f"fit {results['fit_s']:.1f}s, shard-invariant: "
                f"{results['shard_invariant']})"
            ),
            float_digits=2,
        )
    )


def _check(results: dict, smoke: bool) -> None:
    assert results["shard_invariant"], (
        "join rankings changed with the shard count"
    )
    assert results["num_candidates"] > 0, "no candidates proposed"
    floor = SMOKE_RECALL_FLOOR if smoke else RECALL_FLOOR
    assert results["recall_at"] >= floor, (
        f"recall@T {results['recall_at']:.2f} below floor {floor:.2f}"
    )


def test_join_discovery(benchmark):
    from _scale import once

    results = once(benchmark, run)
    print_report(results)
    _check(results, smoke=False)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny lake, plumbing-only floors (CI-friendly, ~seconds)",
    )
    args = parser.parse_args()
    if args.smoke:
        results = run(num_tables=3, rows=20, k=5)
    else:
        results = run()
    print_report(results)
    _check(results, smoke=args.smoke)
    print("\njoin discovery benchmark: ok")


if __name__ == "__main__":
    main()
