"""Joinable-column discovery: ANN candidates + containment-blended scores.

Discovery is the stage *before* matching: given many tables, find the
column pairs a join could run over.  The repo already owns every
ingredient — column serialization, the shared embedding store, and the
pluggable (sharded) ANN backends — so the engine here is deliberately
thin:

1. :func:`profile_tables` reduces each column to a
   :class:`ColumnProfile`: its serialized text (what the session encoder
   embeds) plus a :class:`~repro.serve.sketch.ContainmentSketch` of its
   distinct values (O(k) memory, deterministic).
2. :func:`rank_join_candidates` indexes the column embeddings into ONE
   ANN backend (any registered backend — exact, LSH, HNSW, IVF-PQ — via
   ``build_backend``), pulls each column's nearest neighbours as
   candidates, and scores every cross-table candidate pair with
   ``alpha * containment + (1 - alpha) * cosine``.

Scores are computed from the *exact* embeddings and sketches (never from
backend-reported distances), and ties break on the sorted column refs —
which is why the ranking is invariant to ``num_shards`` for the exact
backend (the sharded top-k provably equals the single-shard top-k, see
``repro.serve.sharding``) and fully deterministic everywhere else.

Lake-scale mechanics (PR 10): the normalized column matrix is held in
``config.store_dtype`` (not forced float64), backend queries and scoring
run over **streamed batches** of ``config.discovery_batch_size`` columns
(upcast to float64 per batch), containments come from the batched
:meth:`~repro.serve.sketch.ContainmentSketch.intersection_many` kernel,
and with ``top`` set a bounded heap keeps peak memory at O(top + batch)
instead of O(all candidate pairs).  The batched scorer is byte-identical
to the preserved per-pair scorer (``scorer="pairwise"``) — the
determinism/shard-invariance contract above is the regression oracle,
and ``benchmarks/bench_lake_scale_discovery.py`` asserts the parity.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, replace
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..api.results import JoinCandidate
from ..core.config import SudowoodoConfig
from ..data.records import Table, serialize_column
from ..serve.backends import ANNBackend, build_backend
from ..serve.sketch import ContainmentSketch

#: A column reference: (table name, column name).
ColumnRef = Tuple[str, str]

#: Scorer implementations accepted by :func:`rank_join_candidates` /
#: :func:`score_candidate_batches`.  ``"batched"`` is the production
#: path; ``"pairwise"`` is the legacy per-pair loop kept as the
#: byte-identity regression oracle.
SCORERS: Tuple[str, ...] = ("batched", "pairwise")


@dataclass(frozen=True)
class ColumnProfile:
    """Everything join discovery keeps per column: identity, the
    serialized text the encoder embeds, and the value sketch."""

    table: str
    column: str
    text: str
    sketch: ContainmentSketch
    num_values: int

    @property
    def ref(self) -> ColumnRef:
        return (self.table, self.column)


def profile_tables(
    tables: Dict[str, Table],
    max_values: int = 12,
    sketch_k: int = 256,
) -> List[ColumnProfile]:
    """Profile every column of every table, in deterministic order.

    ``max_values`` caps how many cell values enter the *serialized text*
    (embedding cost is per token); the sketch always sees every distinct
    value — containment must not be truncated with the prompt.
    """
    profiles: List[ColumnProfile] = []
    for table_name, table in tables.items():
        for attribute in table.schema:
            values = [v for v in table.column_values(attribute) if v]
            profiles.append(
                ColumnProfile(
                    table=table_name,
                    column=attribute,
                    text=serialize_column(values, max_values=max_values),
                    sketch=ContainmentSketch.from_values(values, k=sketch_k),
                    num_values=len(values),
                )
            )
    return profiles


def _normalize_rows(
    vectors: np.ndarray, dtype: np.dtype = np.dtype(np.float64)
) -> np.ndarray:
    """Unit-normalize rows (in float64 for stable norms), stored as
    ``dtype`` — the configured ``store_dtype``, so the full column matrix
    is never forced into a float64 copy."""
    vectors = np.asarray(vectors, dtype=np.float64)
    norms = np.linalg.norm(vectors, axis=1, keepdims=True)
    normalized = vectors / np.maximum(norms, 1e-12)
    return normalized.astype(dtype, copy=False)


# ----------------------------------------------------------------------
# Candidate scoring (shared by the table path and the lake path)
# ----------------------------------------------------------------------
class _HeapEntry:
    """Heap node ordered so the *worst* candidate is the heap minimum:
    lower score is worse; on score ties the larger pair is worse (the
    final ranking sorts by descending score, ascending pair)."""

    __slots__ = ("score", "pair", "candidate")

    def __init__(
        self,
        score: float,
        pair: Tuple[ColumnRef, ColumnRef],
        candidate: JoinCandidate,
    ) -> None:
        self.score = score
        self.pair = pair
        self.candidate = candidate

    def __lt__(self, other: "_HeapEntry") -> bool:
        return (self.score, other.pair) < (other.score, self.pair)


class _CandidateCollector:
    """Accumulates scored candidates with cross-batch dedup.

    With ``top`` set, a bounded min-heap of the ``top`` best candidates
    keeps peak memory at O(top) no matter how many candidate pairs
    stream through; without it every surviving candidate is kept (the
    caller asked for the full ranking).  A pair proposed by both of its
    endpoints' neighbour lists scores identically, so the second
    occurrence is dropped.
    """

    def __init__(self, top: Optional[int]) -> None:
        if top is not None and top < 1:
            raise ValueError("top must be positive or None")
        self.top = top
        self._heap: List[_HeapEntry] = []
        self._in_heap: Dict[Tuple[ColumnRef, ColumnRef], None] = {}
        self._all: Dict[Tuple[ColumnRef, ColumnRef], JoinCandidate] = {}

    def offer(self, candidate: JoinCandidate) -> None:
        pair = candidate.pair
        if self.top is None:
            self._all.setdefault(pair, candidate)
            return
        if pair in self._in_heap:
            return
        entry = _HeapEntry(candidate.score, pair, candidate)
        if len(self._heap) < self.top:
            heapq.heappush(self._heap, entry)
            self._in_heap[pair] = None
        elif self._heap[0] < entry:
            evicted = heapq.heappushpop(self._heap, entry)
            del self._in_heap[evicted.pair]
            self._in_heap[pair] = None

    def ranked(self) -> List[JoinCandidate]:
        if self.top is None:
            candidates = list(self._all.values())
        else:
            candidates = [entry.candidate for entry in self._heap]
        candidates.sort(key=lambda c: (-c.score, c.pair))
        return candidates


def _make_candidate(
    profiles: Sequence[ColumnProfile],
    i: int,
    j: int,
    score: float,
    containment: float,
    cosine: float,
) -> JoinCandidate:
    first, second = sorted((profiles[i].ref, profiles[j].ref))
    return JoinCandidate(
        table_a=first[0],
        column_a=first[1],
        table_b=second[0],
        column_b=second[1],
        score=score,
        containment=containment,
        cosine=cosine,
    )


def _batch_containments(
    profiles: Sequence[ColumnProfile], left: np.ndarray, right: np.ndarray
) -> np.ndarray:
    """Symmetric containment ``max(|A∩B|/|A|, |A∩B|/|B|)`` for a batch of
    pairs, grouped by left profile so each group runs ONE
    ``intersection_many`` call instead of two ``containment`` calls per
    pair.  The intersection estimate is symmetric, so both directions
    come from the single batched pass — bit-identical to the scalar
    two-call form."""
    out = np.zeros(left.size, dtype=np.float64)
    order = np.argsort(left, kind="stable")
    sorted_left = left[order]
    start = 0
    while start < sorted_left.size:
        stop = start
        while stop < sorted_left.size and sorted_left[stop] == sorted_left[start]:
            stop += 1
        rows = order[start:stop]
        anchor = profiles[int(sorted_left[start])].sketch
        others = [profiles[int(j)].sketch for j in right[rows]]
        intersections = anchor.intersection_many(others)
        card_a = anchor.cardinality()
        card_b = np.asarray([sketch.cardinality() for sketch in others])
        forward = (
            np.minimum(1.0, intersections / card_a)
            if card_a > 0
            else np.zeros(intersections.size)
        )
        safe_b = np.where(card_b > 0, card_b, 1.0)
        backward = np.where(
            card_b > 0, np.minimum(1.0, intersections / safe_b), 0.0
        )
        out[rows] = np.maximum(forward, backward)
        start = stop
    return out


def _score_batched(
    profiles: Sequence[ColumnProfile],
    normalized: np.ndarray,
    pairs: np.ndarray,
    alpha: float,
    min_score: float,
    collector: _CandidateCollector,
) -> None:
    """Score a ``(B, 2)`` batch of candidate index pairs in one shot:
    a single float64 einsum for every cosine, one grouped containment
    pass, then elementwise blending."""
    left, right = pairs[:, 0], pairs[:, 1]
    left_rows = normalized[left].astype(np.float64, copy=False)
    right_rows = normalized[right].astype(np.float64, copy=False)
    cosines = np.einsum("ij,ij->i", left_rows, right_rows)
    containments = _batch_containments(profiles, left, right)
    scores = alpha * containments + (1.0 - alpha) * np.maximum(cosines, 0.0)
    for position in range(pairs.shape[0]):
        score = float(scores[position])
        if score < min_score:
            continue
        collector.offer(
            _make_candidate(
                profiles,
                int(left[position]),
                int(right[position]),
                score,
                float(containments[position]),
                float(cosines[position]),
            )
        )


def _score_pairwise(
    profiles: Sequence[ColumnProfile],
    normalized: np.ndarray,
    pairs: np.ndarray,
    alpha: float,
    min_score: float,
    collector: _CandidateCollector,
) -> None:
    """The legacy per-pair scoring loop (one kernel call per candidate),
    preserved as the byte-identity oracle for the batched path."""
    for i, j in pairs.tolist():
        row_i = normalized[i : i + 1].astype(np.float64, copy=False)
        row_j = normalized[j : j + 1].astype(np.float64, copy=False)
        cosine = float(np.einsum("ij,ij->i", row_i, row_j)[0])
        containment = max(
            profiles[i].sketch.containment(profiles[j].sketch),
            profiles[j].sketch.containment(profiles[i].sketch),
        )
        score = alpha * containment + (1.0 - alpha) * max(cosine, 0.0)
        if score < min_score:
            continue
        collector.offer(
            _make_candidate(profiles, i, j, score, containment, cosine)
        )


def score_candidate_batches(
    profiles: Sequence[ColumnProfile],
    normalized: np.ndarray,
    pair_batches: Iterable[np.ndarray],
    alpha: float = 0.5,
    min_score: float = 0.0,
    top: Optional[int] = None,
    scorer: str = "batched",
) -> List[JoinCandidate]:
    """Rank candidate column pairs streamed as ``(B, 2)`` index batches.

    This is the scoring half of :func:`rank_join_candidates`, exposed so
    the lake path (``repro.discovery.lake``) can feed candidates from a
    *live* incrementally-maintained index through the identical scorer.
    Pairs must be canonical ``(min, max)`` rows; duplicates across
    batches are deduplicated (they score identically).
    """
    if scorer not in SCORERS:
        raise ValueError(
            f"unknown scorer {scorer!r}; valid options: {', '.join(SCORERS)}"
        )
    if not 0.0 <= alpha <= 1.0:
        raise ValueError("alpha must be in [0, 1]")
    score_batch = _score_batched if scorer == "batched" else _score_pairwise
    collector = _CandidateCollector(top)
    for pairs in pair_batches:
        pairs = np.asarray(pairs, dtype=np.int64)
        if pairs.size == 0:
            continue
        score_batch(profiles, normalized, pairs, alpha, min_score, collector)
    return collector.ranked()


def iter_candidate_pairs(
    profiles: Sequence[ColumnProfile],
    normalized: np.ndarray,
    backend: ANNBackend,
    k: int,
    batch_size: int = 256,
    include_intra_table: bool = False,
) -> Iterator[np.ndarray]:
    """Stream canonical candidate index pairs from a built backend.

    Queries run over ``batch_size`` columns at a time (each batch upcast
    to float64 for the backend), so the neighbour matrix held at any
    moment is O(batch x k), not O(N x k).  Backend ids must equal
    profile positions.  Pairs within one batch are deduplicated; a pair
    surfacing from two different batches is the collector's job.
    """
    if batch_size < 1:
        raise ValueError("batch_size must be positive")
    n = len(profiles)
    table_codes = _table_codes(profiles)
    kq = min(k + 1, n)  # every column's nearest neighbour is itself
    for start in range(0, n, batch_size):
        stop = min(start + batch_size, n)
        block = np.asarray(normalized[start:stop], dtype=np.float64)
        neighbor_ids, _ = backend.query(block, kq)
        query_ids = np.repeat(np.arange(start, stop, dtype=np.int64), kq)
        partner_ids = neighbor_ids.reshape(-1).astype(np.int64)
        valid = (partner_ids >= 0) & (partner_ids != query_ids)
        query_ids, partner_ids = query_ids[valid], partner_ids[valid]
        if not include_intra_table:
            cross = table_codes[query_ids] != table_codes[partner_ids]
            query_ids, partner_ids = query_ids[cross], partner_ids[cross]
        pairs = np.stack(
            [
                np.minimum(query_ids, partner_ids),
                np.maximum(query_ids, partner_ids),
            ],
            axis=1,
        )
        if pairs.shape[0]:
            yield np.unique(pairs, axis=0)


def _table_codes(profiles: Sequence[ColumnProfile]) -> np.ndarray:
    """Integer table id per profile (vectorized intra-table filtering)."""
    codes: Dict[str, int] = {}
    out = np.empty(len(profiles), dtype=np.int64)
    for position, profile in enumerate(profiles):
        out[position] = codes.setdefault(profile.table, len(codes))
    return out


def rank_join_candidates(
    profiles: Sequence[ColumnProfile],
    vectors: np.ndarray,
    config: Optional[SudowoodoConfig] = None,
    k: int = 10,
    alpha: float = 0.5,
    min_score: float = 0.0,
    include_intra_table: bool = False,
    num_shards: Optional[int] = None,
    top: Optional[int] = None,
    batch_size: Optional[int] = None,
    scorer: str = "batched",
) -> List[JoinCandidate]:
    """Ranked joinable column pairs over profiled columns.

    ``vectors`` are the column embeddings (row i belongs to
    ``profiles[i]``); the backend named by ``config.ann_backend`` (with
    ``num_shards`` optionally overridden) proposes each column's ``k``
    nearest columns, and every surviving cross-table pair is scored
    ``alpha * containment + (1 - alpha) * max(cosine, 0)`` from the
    exact sketches and embeddings.  Pairs scoring below ``min_score``
    are dropped; the result is sorted by descending score with ties
    broken on the sorted column refs, so rankings are reproducible and
    (for the exact backend) independent of the shard count.

    The normalized matrix is stored in ``config.store_dtype`` and
    queried/scored in float64 batches of ``batch_size`` (default
    ``config.discovery_batch_size``).  ``top`` bounds the result to the
    best ``top`` candidates through a fixed-size heap — identical to
    the full ranking truncated, at O(top + batch) peak memory.
    ``scorer="pairwise"`` runs the legacy per-pair loop, kept as the
    byte-identity oracle for the batched default.
    """
    if len(profiles) != vectors.shape[0]:
        raise ValueError(
            f"{len(profiles)} profiles but {vectors.shape[0]} vectors"
        )
    if not 0.0 <= alpha <= 1.0:
        raise ValueError("alpha must be in [0, 1]")
    config = config or SudowoodoConfig()
    if num_shards is not None:
        config = replace(config, num_shards=num_shards)
    if len(profiles) < 2:
        return []

    normalized = _normalize_rows(vectors, dtype=np.dtype(config.store_dtype))
    backend = build_backend(config, sharded=True)
    backend.build(normalized)
    batches = iter_candidate_pairs(
        profiles,
        normalized,
        backend,
        k,
        batch_size=batch_size or config.discovery_batch_size,
        include_intra_table=include_intra_table,
    )
    return score_candidate_batches(
        profiles,
        normalized,
        batches,
        alpha=alpha,
        min_score=min_score,
        top=top,
        scorer=scorer,
    )


def group_by_table(
    candidates: Sequence[JoinCandidate],
) -> Dict[str, List[JoinCandidate]]:
    """Per-table view: every table -> its candidates, rank order kept.

    A candidate joins two tables, so it appears under both — the shape a
    "what can I join *this* table with?" UI wants.
    """
    grouped: Dict[str, List[JoinCandidate]] = {}
    for candidate in candidates:
        grouped.setdefault(candidate.table_a, []).append(candidate)
        if candidate.table_b != candidate.table_a:
            grouped.setdefault(candidate.table_b, []).append(candidate)
    return grouped
