"""Joinable-column discovery: ANN candidates + containment-blended scores.

Discovery is the stage *before* matching: given many tables, find the
column pairs a join could run over.  The repo already owns every
ingredient — column serialization, the shared embedding store, and the
pluggable (sharded) ANN backends — so the engine here is deliberately
thin:

1. :func:`profile_tables` reduces each column to a
   :class:`ColumnProfile`: its serialized text (what the session encoder
   embeds) plus a :class:`~repro.serve.sketch.ContainmentSketch` of its
   distinct values (O(k) memory, deterministic).
2. :func:`rank_join_candidates` indexes the column embeddings into ONE
   ANN backend (any registered backend — exact, LSH, HNSW, IVF-PQ — via
   ``build_backend``), pulls each column's nearest neighbours as
   candidates, and scores every cross-table candidate pair with
   ``alpha * containment + (1 - alpha) * cosine``.

Scores are computed from the *exact* embeddings and sketches (never from
backend-reported distances), and ties break on the sorted column refs —
which is why the ranking is invariant to ``num_shards`` for the exact
backend (the sharded top-k provably equals the single-shard top-k, see
``repro.serve.sharding``) and fully deterministic everywhere else.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..api.results import JoinCandidate
from ..core.config import SudowoodoConfig
from ..data.records import Table, serialize_column
from ..serve.backends import build_backend
from ..serve.sketch import ContainmentSketch

#: A column reference: (table name, column name).
ColumnRef = Tuple[str, str]


@dataclass(frozen=True)
class ColumnProfile:
    """Everything join discovery keeps per column: identity, the
    serialized text the encoder embeds, and the value sketch."""

    table: str
    column: str
    text: str
    sketch: ContainmentSketch
    num_values: int

    @property
    def ref(self) -> ColumnRef:
        return (self.table, self.column)


def profile_tables(
    tables: Dict[str, Table],
    max_values: int = 12,
    sketch_k: int = 256,
) -> List[ColumnProfile]:
    """Profile every column of every table, in deterministic order.

    ``max_values`` caps how many cell values enter the *serialized text*
    (embedding cost is per token); the sketch always sees every distinct
    value — containment must not be truncated with the prompt.
    """
    profiles: List[ColumnProfile] = []
    for table_name, table in tables.items():
        for attribute in table.schema:
            values = [v for v in table.column_values(attribute) if v]
            profiles.append(
                ColumnProfile(
                    table=table_name,
                    column=attribute,
                    text=serialize_column(values, max_values=max_values),
                    sketch=ContainmentSketch.from_values(values, k=sketch_k),
                    num_values=len(values),
                )
            )
    return profiles


def _normalize_rows(vectors: np.ndarray) -> np.ndarray:
    norms = np.linalg.norm(vectors, axis=1, keepdims=True)
    return vectors / np.maximum(norms, 1e-12)


def rank_join_candidates(
    profiles: Sequence[ColumnProfile],
    vectors: np.ndarray,
    config: Optional[SudowoodoConfig] = None,
    k: int = 10,
    alpha: float = 0.5,
    min_score: float = 0.0,
    include_intra_table: bool = False,
    num_shards: Optional[int] = None,
) -> List[JoinCandidate]:
    """Ranked joinable column pairs over profiled columns.

    ``vectors`` are the column embeddings (row i belongs to
    ``profiles[i]``); the backend named by ``config.ann_backend`` (with
    ``num_shards`` optionally overridden) proposes each column's ``k``
    nearest columns, and every surviving cross-table pair is scored
    ``alpha * containment + (1 - alpha) * max(cosine, 0)`` from the
    exact sketches and embeddings.  Pairs scoring below ``min_score``
    are dropped; the result is sorted by descending score with ties
    broken on the sorted column refs, so rankings are reproducible and
    (for the exact backend) independent of the shard count.
    """
    if len(profiles) != vectors.shape[0]:
        raise ValueError(
            f"{len(profiles)} profiles but {vectors.shape[0]} vectors"
        )
    if not 0.0 <= alpha <= 1.0:
        raise ValueError("alpha must be in [0, 1]")
    config = config or SudowoodoConfig()
    if num_shards is not None:
        config = replace(config, num_shards=num_shards)
    if len(profiles) < 2:
        return []

    normalized = _normalize_rows(np.asarray(vectors, dtype=np.float64))
    backend = build_backend(config, sharded=True)
    backend.build(normalized)
    # k + 1 because every column's nearest neighbour is itself.
    neighbor_ids, _ = backend.query(normalized, min(k + 1, len(profiles)))

    candidate_pairs: Set[Tuple[int, int]] = set()
    for i, row in enumerate(neighbor_ids):
        for j in row:
            j = int(j)
            if j < 0 or j == i:
                continue
            if not include_intra_table and profiles[i].table == profiles[j].table:
                continue
            candidate_pairs.add((min(i, j), max(i, j)))

    candidates: List[JoinCandidate] = []
    for i, j in candidate_pairs:
        cosine = float(np.dot(normalized[i], normalized[j]))
        containment = max(
            profiles[i].sketch.containment(profiles[j].sketch),
            profiles[j].sketch.containment(profiles[i].sketch),
        )
        score = alpha * containment + (1.0 - alpha) * max(cosine, 0.0)
        if score < min_score:
            continue
        first, second = sorted((profiles[i].ref, profiles[j].ref))
        candidates.append(
            JoinCandidate(
                table_a=first[0],
                column_a=first[1],
                table_b=second[0],
                column_b=second[1],
                score=score,
                containment=containment,
                cosine=cosine,
            )
        )
    candidates.sort(key=lambda c: (-c.score, c.pair))
    return candidates


def group_by_table(
    candidates: Sequence[JoinCandidate],
) -> Dict[str, List[JoinCandidate]]:
    """Per-table view: every table -> its candidates, rank order kept.

    A candidate joins two tables, so it appears under both — the shape a
    "what can I join *this* table with?" UI wants.
    """
    grouped: Dict[str, List[JoinCandidate]] = {}
    for candidate in candidates:
        grouped.setdefault(candidate.table_a, []).append(candidate)
        if candidate.table_b != candidate.table_a:
            grouped.setdefault(candidate.table_b, []).append(candidate)
    return grouped
