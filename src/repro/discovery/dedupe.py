"""Dedupe-and-merge: EM matching over ONE dirty table, then consolidation.

Deduplication is entity matching where both sides are the same table: a
*self-join* :class:`~repro.data.em_dataset.EMDataset` lets the existing
matching engine (blocking + pseudo-labels + fine-tuned matcher) score
record pairs, and everything after the matcher is plain graph work:

    match probabilities -> edges -> connected components (networkx)
    -> one canonical record per component (conflict-resolution policy)

The helpers here own the non-matcher half.  They are deterministic by
construction — sorted components, sorted clusters, deterministic
tie-breaks inside every merge policy — so dedupe results are
reproducible across runs and platforms.
"""

from __future__ import annotations

from collections import Counter
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

import networkx as nx
import numpy as np

from ..data.records import LabeledPair, PairSplit, Record, Table

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..data.em_dataset import EMDataset

#: An unordered record pair, stored as (min index, max index).
RecordPair = Tuple[int, int]


def normalize_pairs(pairs: Iterable[Tuple[int, int]]) -> Set[RecordPair]:
    """Canonicalize pairs to ``(min, max)`` and drop self-pairs."""
    return {(min(a, b), max(a, b)) for a, b in pairs if a != b}


def self_match_dataset(
    table: Table,
    truth_pairs: Optional[Iterable[Tuple[int, int]]] = None,
    negative_ratio: int = 4,
    seed: int = 0,
) -> "EMDataset":
    """A self-join :class:`~repro.data.em_dataset.EMDataset` over ``table``.

    Both sides are the *same* table, so the matching engine's blocking,
    pseudo-labeling and fine-tuning all apply unchanged.  With
    ``truth_pairs`` (known duplicate pairs) a labeled 3:1:1
    train/valid/test split is built — each positive is paired with
    ``negative_ratio`` seeded random non-duplicate negatives — enabling
    label budgets and held-out evaluation; without it the splits are
    empty and training must run purely on pseudo-labels.
    """
    from ..data.em_dataset import EMDataset

    positives = sorted(normalize_pairs(truth_pairs or ()))
    labeled: List[LabeledPair] = [LabeledPair(a, b, 1) for a, b in positives]
    if positives:
        rng = np.random.default_rng(seed)
        truth = set(positives)
        negatives: Set[RecordPair] = set()
        target = negative_ratio * len(positives)
        # Rejection-sample; cap attempts so tiny tables can't spin forever.
        for _ in range(20 * target):
            if len(negatives) >= target:
                break
            a, b = rng.integers(0, len(table), size=2)
            if a == b:
                continue
            pair = (min(int(a), int(b)), max(int(a), int(b)))
            if pair in truth or pair in negatives:
                continue
            negatives.add(pair)
        labeled.extend(LabeledPair(a, b, 0) for a, b in sorted(negatives))
        order = rng.permutation(len(labeled))
        labeled = [labeled[i] for i in order]
    n_train = (3 * len(labeled)) // 5
    n_valid = (4 * len(labeled)) // 5
    return EMDataset(
        name=f"{table.name}-self",
        table_a=table,
        table_b=table,
        pairs=PairSplit(
            train=labeled[:n_train],
            valid=labeled[n_train:n_valid],
            test=labeled[n_valid:],
        ),
        matches=set(positives),
    )


def duplicate_clusters(
    num_records: int, edges: Iterable[Tuple[int, int]]
) -> List[List[int]]:
    """Connected components of the match graph, as sorted clusters.

    Every record appears exactly once — unmatched records come back as
    singleton clusters — and clusters are sorted internally and by their
    first member, so the output is a deterministic partition of
    ``range(num_records)``.
    """
    graph = nx.Graph()
    graph.add_nodes_from(range(num_records))
    for a, b in normalize_pairs(edges):
        if 0 <= a < num_records and 0 <= b < num_records:
            graph.add_edge(a, b)
    clusters = [sorted(component) for component in nx.connected_components(graph)]
    clusters.sort(key=lambda cluster: cluster[0])
    return clusters


# ----------------------------------------------------------------------
# Conflict-resolution policies
# ----------------------------------------------------------------------
def _resolve_longest(values: Sequence[str], records: Sequence[Record]) -> str:
    present = [v for v in values if v]
    if not present:
        return ""
    # Longest wins; equal lengths break to the lexicographically smallest.
    return min(present, key=lambda v: (-len(v), v))


def _resolve_most_frequent(values: Sequence[str], records: Sequence[Record]) -> str:
    present = [v for v in values if v]
    if not present:
        return ""
    counts = Counter(present)
    return min(counts, key=lambda v: (-counts[v], v))


def _make_newest(timestamp_attribute: str) -> Callable[..., str]:
    def _resolve_newest(values: Sequence[str], records: Sequence[Record]) -> str:
        stamped = [
            (record.get(timestamp_attribute), position, value)
            for position, (value, record) in enumerate(zip(values, records))
            if value
        ]
        if not stamped:
            return ""
        # Latest timestamp wins; ties break to the last record in cluster
        # order, so the resolution is total.
        return max(stamped)[2]

    return _resolve_newest


#: Names accepted by :func:`merge_records` / the ``dedupe`` task.
MERGE_POLICIES: Tuple[str, ...] = ("longest", "most_frequent", "newest")


def merge_records(
    records: Sequence[Record],
    policy: str = "longest",
    timestamp_attribute: str = "updated",
    record_id: int = 0,
    schema: Optional[Sequence[str]] = None,
) -> Record:
    """One canonical record from a duplicate cluster.

    Each attribute is resolved independently by ``policy``:

    ``longest``
        The longest non-empty value (most information survives).
    ``most_frequent``
        Majority vote over non-empty values.
    ``newest``
        The value from the record with the greatest
        ``timestamp_attribute`` (ISO-style strings compare correctly).

    Empty values never win while any member has content, and every
    policy has a deterministic tie-break, so merging is reproducible.
    """
    if not records:
        raise ValueError("cannot merge an empty cluster")
    if policy not in MERGE_POLICIES:
        raise ValueError(
            f"unknown merge policy {policy!r}; choose from "
            f"{', '.join(MERGE_POLICIES)}"
        )
    if schema is None:
        seen: List[str] = []
        for record in records:
            for attribute in record.attributes:
                if attribute not in seen:
                    seen.append(attribute)
        schema = seen
    if policy == "newest":
        resolve = _make_newest(timestamp_attribute)
    elif policy == "most_frequent":
        resolve = _resolve_most_frequent
    else:
        resolve = _resolve_longest
    attributes = {
        attribute: resolve([record.get(attribute) for record in records], records)
        for attribute in schema
    }
    return Record(record_id=record_id, attributes=attributes)


def pairwise_metrics(
    predicted_pairs: Iterable[Tuple[int, int]],
    truth_pairs: Iterable[Tuple[int, int]],
) -> Dict[str, float]:
    """Pairwise precision / recall / F1 of a dedupe result.

    ``predicted_pairs`` should be the *transitive closure* of the final
    clusters (every co-clustered pair), which is what
    :meth:`~repro.data.generators.discovery.DirtyDuplicates.duplicate_pairs`
    provides for the truth side — so the metric scores the clustering,
    not just the raw matcher edges.
    """
    predicted = normalize_pairs(predicted_pairs)
    truth = normalize_pairs(truth_pairs)
    true_positives = len(predicted & truth)
    precision = true_positives / len(predicted) if predicted else 0.0
    recall = true_positives / len(truth) if truth else 0.0
    f1 = (
        2 * precision * recall / (precision + recall)
        if precision + recall
        else 0.0
    )
    return {"precision": precision, "recall": recall, "f1": f1}


def cluster_pairs(clusters: Sequence[Sequence[int]]) -> Set[RecordPair]:
    """Transitive closure: every unordered pair co-clustered anywhere."""
    pairs: Set[RecordPair] = set()
    for cluster in clusters:
        members = sorted(cluster)
        for i, a in enumerate(members):
            for b in members[i + 1 :]:
                pairs.add((a, b))
    return pairs
