"""Dedupe-and-merge: EM matching over ONE dirty table, then consolidation.

Deduplication is entity matching where both sides are the same table: a
*self-join* :class:`~repro.data.em_dataset.EMDataset` lets the existing
matching engine (blocking + pseudo-labels + fine-tuned matcher) score
record pairs, and everything after the matcher is plain graph work:

    match probabilities -> edges -> connected components -> one
    canonical record per component (conflict-resolution policy)

The helpers here own the non-matcher half.  They are deterministic by
construction — sorted components, sorted clusters, deterministic
tie-breaks inside every merge policy — so dedupe results are
reproducible across runs and platforms.

Lake-scale mechanics (PR 10): components come from an incremental
:class:`DisjointSet` (union-find with path compression + union by size,
two flat int64 arrays) that consumes match edges *as the matcher emits
them*, and :func:`iter_duplicate_clusters` streams merged canonical
records cluster-by-cluster — dedupe never materializes a networkx match
graph.  :func:`duplicate_clusters` stays as a thin wrapper with its
exact historical output; the old networkx path survives only as the
``_networkx_clusters`` regression oracle.
"""

from __future__ import annotations

from collections import Counter
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

import numpy as np

from ..data.records import LabeledPair, PairSplit, Record, Table

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..data.em_dataset import EMDataset

#: An unordered record pair, stored as (min index, max index).
RecordPair = Tuple[int, int]


def normalize_pairs(pairs: Iterable[Tuple[int, int]]) -> Set[RecordPair]:
    """Canonicalize pairs to ``(min, max)`` and drop self-pairs."""
    return {(min(a, b), max(a, b)) for a, b in pairs if a != b}


def self_match_dataset(
    table: Table,
    truth_pairs: Optional[Iterable[Tuple[int, int]]] = None,
    negative_ratio: int = 4,
    seed: int = 0,
) -> "EMDataset":
    """A self-join :class:`~repro.data.em_dataset.EMDataset` over ``table``.

    Both sides are the *same* table, so the matching engine's blocking,
    pseudo-labeling and fine-tuning all apply unchanged.  With
    ``truth_pairs`` (known duplicate pairs) a labeled 3:1:1
    train/valid/test split is built — each positive is paired with
    ``negative_ratio`` seeded random non-duplicate negatives — enabling
    label budgets and held-out evaluation; without it the splits are
    empty and training must run purely on pseudo-labels.
    """
    from ..data.em_dataset import EMDataset

    positives = sorted(normalize_pairs(truth_pairs or ()))
    labeled: List[LabeledPair] = [LabeledPair(a, b, 1) for a, b in positives]
    if positives:
        rng = np.random.default_rng(seed)
        truth = set(positives)
        negatives: Set[RecordPair] = set()
        target = negative_ratio * len(positives)
        # Rejection-sample; cap attempts so tiny tables can't spin forever.
        for _ in range(20 * target):
            if len(negatives) >= target:
                break
            a, b = rng.integers(0, len(table), size=2)
            if a == b:
                continue
            pair = (min(int(a), int(b)), max(int(a), int(b)))
            if pair in truth or pair in negatives:
                continue
            negatives.add(pair)
        labeled.extend(LabeledPair(a, b, 0) for a, b in sorted(negatives))
        order = rng.permutation(len(labeled))
        labeled = [labeled[i] for i in order]
    n_train = (3 * len(labeled)) // 5
    n_valid = (4 * len(labeled)) // 5
    return EMDataset(
        name=f"{table.name}-self",
        table_a=table,
        table_b=table,
        pairs=PairSplit(
            train=labeled[:n_train],
            valid=labeled[n_train:n_valid],
            test=labeled[n_valid:],
        ),
        matches=set(positives),
    )


class DisjointSet:
    """Incremental union-find over ``range(num_records)``.

    Path compression (halving) plus union by size give effectively-
    constant amortized unions, and the whole structure is two flat int64
    arrays — O(n) memory regardless of how many match edges stream
    through, which is what lets dedupe consume edges as the matcher
    emits them instead of buffering a match graph.
    """

    __slots__ = ("_parent", "_size")

    def __init__(self, num_records: int) -> None:
        if num_records < 0:
            raise ValueError("num_records must be non-negative")
        self._parent = np.arange(num_records, dtype=np.int64)
        self._size = np.ones(num_records, dtype=np.int64)

    def __len__(self) -> int:
        return int(self._parent.size)

    def find(self, node: int) -> int:
        """Root of ``node``'s component, compressing the path walked."""
        parent = self._parent
        while parent[node] != node:
            parent[node] = parent[parent[node]]  # path halving
            node = int(parent[node])
        return node

    def union(self, a: int, b: int) -> bool:
        """Join the components of ``a`` and ``b``; True if they were
        separate (an actual merge happened)."""
        root_a, root_b = self.find(a), self.find(b)
        if root_a == root_b:
            return False
        if self._size[root_a] < self._size[root_b]:
            root_a, root_b = root_b, root_a
        self._parent[root_b] = root_a
        self._size[root_a] += self._size[root_b]
        return True

    def connected(self, a: int, b: int) -> bool:
        return self.find(a) == self.find(b)

    def add_edges(self, edges: Iterable[Tuple[int, int]]) -> int:
        """Consume a stream of match edges; self-loops and out-of-range
        endpoints are ignored (matcher output can reference dropped
        rows).  Returns the number of merges performed."""
        n = len(self)
        merges = 0
        for a, b in edges:
            if a == b:
                continue
            if 0 <= a < n and 0 <= b < n:
                if self.union(int(a), int(b)):
                    merges += 1
        return merges

    def iter_clusters(self) -> Iterator[List[int]]:
        """Yield each component as an ascending member list, ordered by
        smallest member — the canonical partition order."""
        by_root: Dict[int, List[int]] = {}
        for node in range(len(self)):
            by_root.setdefault(self.find(node), []).append(node)
        # Scanning 0..n-1 makes every member list ascending and keys
        # first-member ordered (dicts preserve insertion order).
        yield from by_root.values()


def iter_duplicate_clusters(
    num_records: int,
    edges: Iterable[Tuple[int, int]],
    records: Optional[Sequence[Record]] = None,
    policy: str = "longest",
    timestamp_attribute: str = "updated",
    schema: Optional[Sequence[str]] = None,
) -> Iterator[Union[List[int], Tuple[List[int], Record]]]:
    """Stream duplicate clusters (and optionally canonical records).

    Edges are folded into a :class:`DisjointSet` as they arrive — a
    generator of matcher emissions works and is never materialized —
    then components stream out one at a time.  Without ``records`` each
    yield is a sorted member list; with ``records`` (one per record id)
    each yield is ``(members, canonical)`` where ``canonical`` is the
    cluster merged by :func:`merge_records` under ``policy``, so callers
    can consolidate a table while holding one cluster at a time.

    The concatenated member lists are exactly the
    :func:`duplicate_clusters` partition.
    """
    if records is not None and len(records) != num_records:
        raise ValueError(
            f"{num_records} records declared but {len(records)} provided"
        )
    components = DisjointSet(num_records)
    components.add_edges(edges)
    for position, members in enumerate(components.iter_clusters()):
        if records is None:
            yield members
        else:
            yield members, merge_records(
                [records[member] for member in members],
                policy=policy,
                timestamp_attribute=timestamp_attribute,
                record_id=position,
                schema=schema,
            )


def duplicate_clusters(
    num_records: int, edges: Iterable[Tuple[int, int]]
) -> List[List[int]]:
    """Connected components of the match graph, as sorted clusters.

    Every record appears exactly once — unmatched records come back as
    singleton clusters — and clusters are sorted internally and by their
    first member, so the output is a deterministic partition of
    ``range(num_records)``.  Thin wrapper over
    :func:`iter_duplicate_clusters`.
    """
    return list(iter_duplicate_clusters(num_records, edges))


def _networkx_clusters(
    num_records: int, edges: Iterable[Tuple[int, int]]
) -> List[List[int]]:
    """The pre-union-find implementation, kept as a regression oracle:
    tests and the lake benchmark pin the streaming partition equal to
    the networkx connected-components partition."""
    import networkx as nx

    graph = nx.Graph()
    graph.add_nodes_from(range(num_records))
    for a, b in normalize_pairs(edges):
        if 0 <= a < num_records and 0 <= b < num_records:
            graph.add_edge(a, b)
    clusters = [sorted(component) for component in nx.connected_components(graph)]
    clusters.sort(key=lambda cluster: cluster[0])
    return clusters


# ----------------------------------------------------------------------
# Conflict-resolution policies
# ----------------------------------------------------------------------
def _resolve_longest(values: Sequence[str], records: Sequence[Record]) -> str:
    present = [v for v in values if v]
    if not present:
        return ""
    # Longest wins; equal lengths break to the lexicographically smallest.
    return min(present, key=lambda v: (-len(v), v))


def _resolve_most_frequent(values: Sequence[str], records: Sequence[Record]) -> str:
    present = [v for v in values if v]
    if not present:
        return ""
    counts = Counter(present)
    return min(counts, key=lambda v: (-counts[v], v))


def _make_newest(timestamp_attribute: str) -> Callable[..., str]:
    def _resolve_newest(values: Sequence[str], records: Sequence[Record]) -> str:
        stamped = [
            (record.get(timestamp_attribute), position, value)
            for position, (value, record) in enumerate(zip(values, records))
            if value
        ]
        if not stamped:
            return ""
        # Latest timestamp wins; ties break to the last record in cluster
        # order, so the resolution is total.
        return max(stamped)[2]

    return _resolve_newest


#: Names accepted by :func:`merge_records` / the ``dedupe`` task.
MERGE_POLICIES: Tuple[str, ...] = ("longest", "most_frequent", "newest")


def merge_records(
    records: Sequence[Record],
    policy: str = "longest",
    timestamp_attribute: str = "updated",
    record_id: int = 0,
    schema: Optional[Sequence[str]] = None,
) -> Record:
    """One canonical record from a duplicate cluster.

    Each attribute is resolved independently by ``policy``:

    ``longest``
        The longest non-empty value (most information survives).
    ``most_frequent``
        Majority vote over non-empty values.
    ``newest``
        The value from the record with the greatest
        ``timestamp_attribute`` (ISO-style strings compare correctly).

    Empty values never win while any member has content, and every
    policy has a deterministic tie-break, so merging is reproducible.
    """
    if not records:
        raise ValueError("cannot merge an empty cluster")
    if policy not in MERGE_POLICIES:
        raise ValueError(
            f"unknown merge policy {policy!r}; choose from "
            f"{', '.join(MERGE_POLICIES)}"
        )
    if schema is None:
        seen: List[str] = []
        for record in records:
            for attribute in record.attributes:
                if attribute not in seen:
                    seen.append(attribute)
        schema = seen
    if policy == "newest":
        resolve = _make_newest(timestamp_attribute)
    elif policy == "most_frequent":
        resolve = _resolve_most_frequent
    else:
        resolve = _resolve_longest
    attributes = {
        attribute: resolve([record.get(attribute) for record in records], records)
        for attribute in schema
    }
    return Record(record_id=record_id, attributes=attributes)


def pairwise_metrics(
    predicted_pairs: Iterable[Tuple[int, int]],
    truth_pairs: Iterable[Tuple[int, int]],
) -> Dict[str, float]:
    """Pairwise precision / recall / F1 of a dedupe result.

    ``predicted_pairs`` should be the *transitive closure* of the final
    clusters (every co-clustered pair), which is what
    :meth:`~repro.data.generators.discovery.DirtyDuplicates.duplicate_pairs`
    provides for the truth side — so the metric scores the clustering,
    not just the raw matcher edges.
    """
    predicted = normalize_pairs(predicted_pairs)
    truth = normalize_pairs(truth_pairs)
    true_positives = len(predicted & truth)
    precision = true_positives / len(predicted) if predicted else 0.0
    recall = true_positives / len(truth) if truth else 0.0
    f1 = (
        2 * precision * recall / (precision + recall)
        if precision + recall
        else 0.0
    )
    return {"precision": precision, "recall": recall, "f1": f1}


def cluster_pairs(clusters: Sequence[Sequence[int]]) -> Set[RecordPair]:
    """Transitive closure: every unordered pair co-clustered anywhere.

    Pairs are enumerated with one ``triu_indices`` per cluster instead
    of a nested Python loop — O(cluster^2) work runs in numpy, and the
    output stays the historical set of ``(min, max)`` int tuples.
    """
    pairs: Set[RecordPair] = set()
    for cluster in clusters:
        members = np.sort(np.asarray(cluster, dtype=np.int64))
        if members.size < 2:
            continue
        rows, cols = np.triu_indices(members.size, k=1)
        pairs.update(zip(members[rows].tolist(), members[cols].tolist()))
    return pairs
