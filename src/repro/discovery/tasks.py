"""Discovery tasks for the session registry: join_discovery,
lake_discovery, dedupe, streaming_er.

These tasks turn the session API into an end-to-end integration
pipeline: *discover* joinable columns across a lake of tables (at lake
scale, incrementally against a persistent profile cache), *dedupe* a
dirty table into canonical records, and *stress* the consolidated
index under a live upsert/delete/search feed — all against the one
pre-trained encoder the session already paid for.

>>> session.task("join_discovery").fit(tables).report()     # doctest: +SKIP
>>> session.task("lake_discovery").fit(lake).report()       # doctest: +SKIP
>>> session.task("dedupe").fit(dirty).report()              # doctest: +SKIP
>>> session.task("streaming_er").fit(dirty).predict()       # doctest: +SKIP
"""

from __future__ import annotations

import shutil
import tempfile
import weakref
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence, Union

from ..api.registry import register_task
from ..api.results import (
    DedupeResult,
    JoinCandidate,
    JoinDiscoveryResult,
    StreamingERResult,
)
from ..api.tasks import SessionTask
from ..core.pipeline import SudowoodoPipeline
from ..data.generators.discovery import DirtyDuplicates, JoinableTables
from ..data.records import Record, Table, serialize_record
from .dedupe import (
    MERGE_POLICIES,
    cluster_pairs,
    iter_duplicate_clusters,
    normalize_pairs,
    pairwise_metrics,
    self_match_dataset,
)
from .join import ColumnProfile, group_by_table, profile_tables, rank_join_candidates
from .lake import (
    LakeIndex,
    LakeProfile,
    ProfileStore,
    profile_lake,
    rank_lake_candidates,
)
from .streaming import FeedEvent, iter_match_edges, make_feed, run_streaming_er

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.matcher import PairwiseMatcher
    from ..serve.frontend import ServiceFrontend


@register_task("join_discovery")
class JoinDiscoveryTask(SessionTask):
    """Joinable-column discovery across many tables: profile every column
    (serialized text + containment sketch), embed through the shared
    store, index into one ANN backend, and rank cross-table pairs by
    blended containment/cosine score."""

    def __init__(self, session: Any) -> None:
        super().__init__(session)
        self._tables: Dict[str, Table] = {}
        self._truth: Optional[set] = None
        self._profiles: List[ColumnProfile] = []
        self._candidates: List[JoinCandidate] = []

    def fit(
        self,
        data: Union[JoinableTables, Dict[str, Table]],
        k: int = 10,
        alpha: float = 0.5,
        max_values: int = 12,
        sketch_k: int = 256,
        min_score: float = 0.0,
        num_shards: Optional[int] = None,
    ) -> "JoinDiscoveryTask":
        """Profile, embed, and rank.  ``data`` is either a generated
        :class:`~repro.data.generators.discovery.JoinableTables` (its
        ground truth then powers :meth:`evaluate`) or a plain
        ``{name: Table}`` dict.  ``num_shards`` overrides the config's
        shard count for the candidate backend — rankings are invariant
        to it (scores come from exact embeddings and sketches)."""
        if isinstance(data, JoinableTables):
            self._tables = dict(data.tables)
            self._truth = {tuple(pair) for pair in data.joinable}
        else:
            self._tables = dict(data)
            self._truth = None
        self._profiles = profile_tables(
            self._tables, max_values=max_values, sketch_k=sketch_k
        )
        vectors = self.session.embed(
            [profile.text for profile in self._profiles], normalize=True
        )
        self._candidates = rank_join_candidates(
            self._profiles,
            vectors,
            config=self.session.config,
            k=k,
            alpha=alpha,
            min_score=min_score,
            num_shards=num_shards,
        )
        self.fitted = True
        return self

    def predict(
        self, top: Optional[int] = None, table: Optional[str] = None
    ) -> List[JoinCandidate]:
        """The ranked candidates — optionally only those touching
        ``table``, optionally truncated to the ``top`` best."""
        self._require_fitted("predict()")
        candidates = self._candidates
        if table is not None:
            candidates = group_by_table(candidates).get(table, [])
        return candidates[:top] if top is not None else list(candidates)

    def evaluate(
        self, at: Optional[int] = None, **_: Any
    ) -> Dict[str, float]:
        """Recall / precision of the top-``at`` ranking against the
        generator's ground truth (``at`` defaults to the number of true
        joinable pairs); empty when no truth is available."""
        self._require_fitted("evaluate()")
        if not self._truth:
            return {"num_candidates": float(len(self._candidates))}
        n = at if at is not None else len(self._truth)
        top = {candidate.pair for candidate in self._candidates[:n]}
        hits = len(top & self._truth)
        return {
            "recall_at": hits / len(self._truth),
            "precision_at": hits / n if n else 0.0,
            "num_candidates": float(len(self._candidates)),
        }

    def corpus_texts(self) -> List[str]:
        """The serialized columns — served as a live column index."""
        return [profile.text for profile in self._profiles]

    def report(self) -> JoinDiscoveryResult:
        """Ranked candidates plus the per-table grouping."""
        self._require_fitted("report()")
        return JoinDiscoveryResult(
            task=self.name,
            metrics=self.evaluate(),
            timings=self.session.timer.summary(),
            num_tables=len(self._tables),
            num_columns=len(self._profiles),
            candidates=list(self._candidates),
            by_table=group_by_table(self._candidates),
        )


@register_task("lake_discovery")
class LakeDiscoveryTask(SessionTask):
    """Join discovery at lake scale: incremental profiling against a
    persistent fingerprint-keyed :class:`~repro.discovery.lake.ProfileStore`
    (memmapped vectors), a delta-maintained live ANN index, and the
    bounded-memory batch scorer.  Re-fitting the *same task instance*
    after tables mutate only recomputes and re-indexes the changed
    columns — the whole point of the lake path."""

    def __init__(self, session: Any) -> None:
        super().__init__(session)
        self._tables: Dict[str, Table] = {}
        self._truth: Optional[set] = None
        self._store: Optional[ProfileStore] = None
        self._index: Optional[LakeIndex] = None
        self._lake: Optional[LakeProfile] = None
        self._candidates: List[JoinCandidate] = []
        self._stats: Dict[str, float] = {}

    def _ensure_store(self) -> ProfileStore:
        if self._store is None:
            cache_dir = self.session.config.profile_cache_dir
            if cache_dir is None:
                # Private per-task store: incremental across re-fits of
                # this instance, discarded with it.
                cache_dir = tempfile.mkdtemp(prefix="sudowoodo-lake-")
                weakref.finalize(
                    self, shutil.rmtree, cache_dir, ignore_errors=True
                )
            self._store = ProfileStore(
                cache_dir, store_dtype=self.session.config.store_dtype
            )
        return self._store

    def fit(
        self,
        data: Union[JoinableTables, Dict[str, Table]],
        k: int = 10,
        alpha: float = 0.5,
        max_values: int = 12,
        sketch_k: int = 256,
        min_score: float = 0.0,
        top: Optional[int] = None,
        store: Optional[ProfileStore] = None,
        scorer: str = "batched",
    ) -> "LakeDiscoveryTask":
        """Profile incrementally, sync the live index, and rank.

        ``data`` is a :class:`~repro.data.generators.discovery.JoinableTables`
        (e.g. from ``generate_lake``; its truth powers :meth:`evaluate`)
        or a plain ``{name: Table}`` dict.  An explicit ``store``
        overrides the config's ``profile_cache_dir`` (and the private
        temporary store used when neither is set).  ``top`` bounds the
        ranking through the fixed-size heap.
        """
        if isinstance(data, JoinableTables):
            self._tables = dict(data.tables)
            self._truth = {tuple(pair) for pair in data.joinable}
        else:
            self._tables = dict(data)
            self._truth = None
        if store is not None:
            self._store = store
            self._tempdir = None
        config = self.session.config
        self._lake = profile_lake(
            self._tables,
            self._ensure_store(),
            lambda texts: self.session.embed(texts, normalize=True),
            max_values=max_values,
            sketch_k=sketch_k,
            batch_size=config.discovery_batch_size,
        )
        if self._index is None:
            self._index = LakeIndex(config)
        delta = self._index.update(self._lake)
        self._candidates = rank_lake_candidates(
            self._lake,
            self._index,
            config=config,
            k=k,
            alpha=alpha,
            min_score=min_score,
            top=top,
            scorer=scorer,
        )
        self._stats = {
            "profiles_reused": float(self._lake.reused),
            "profiles_computed": float(self._lake.computed),
            **{f"index_{name}": float(count) for name, count in delta.items()},
        }
        self.fitted = True
        return self

    def predict(
        self, top: Optional[int] = None, table: Optional[str] = None
    ) -> List[JoinCandidate]:
        """The ranked candidates — optionally only those touching
        ``table``, optionally truncated to the ``top`` best."""
        self._require_fitted("predict()")
        candidates = self._candidates
        if table is not None:
            candidates = group_by_table(candidates).get(table, [])
        return candidates[:top] if top is not None else list(candidates)

    def evaluate(self, at: Optional[int] = None, **_: Any) -> Dict[str, float]:
        """Ranking recall / precision against the generator truth (when
        available) plus the incremental accounting: how many profiles
        came from cache and what delta the index absorbed."""
        self._require_fitted("evaluate()")
        metrics = dict(self._stats)
        metrics["num_candidates"] = float(len(self._candidates))
        if self._truth:
            n = at if at is not None else len(self._truth)
            top = {candidate.pair for candidate in self._candidates[:n]}
            hits = len(top & self._truth)
            metrics["recall_at"] = hits / len(self._truth)
            metrics["precision_at"] = hits / n if n else 0.0
        return metrics

    def corpus_texts(self) -> List[str]:
        """The serialized columns — served as a live column index."""
        if self._lake is None:
            return []
        return [profile.text for profile in self._lake.profiles]

    def report(self) -> JoinDiscoveryResult:
        """Ranked candidates plus the per-table grouping."""
        self._require_fitted("report()")
        assert self._lake is not None
        return JoinDiscoveryResult(
            task=self.name,
            metrics=self.evaluate(),
            timings=self.session.timer.summary(),
            num_tables=len(self._tables),
            num_columns=len(self._lake.profiles),
            candidates=list(self._candidates),
            by_table=group_by_table(self._candidates),
        )


@register_task("dedupe")
class DedupeTask(SessionTask):
    """Dedupe-and-merge over one dirty table: self-join EM matching
    (blocking + pseudo-labels + fine-tuned matcher), connected-component
    clustering, and per-attribute conflict resolution into canonical
    records."""

    def __init__(
        self,
        session: Any,
        policy: str = "longest",
        timestamp_attribute: str = "updated",
    ) -> None:
        super().__init__(session)
        if policy not in MERGE_POLICIES:
            raise ValueError(
                f"unknown merge policy {policy!r}; choose from "
                f"{', '.join(MERGE_POLICIES)}"
            )
        self.policy = policy
        self.timestamp_attribute = timestamp_attribute
        self._table: Optional[Table] = None
        self._truth: Optional[set] = None
        self._pipeline: Optional[SudowoodoPipeline] = None
        self._clusters: List[List[int]] = []
        self._canonical: List[Record] = []

    def fit(
        self,
        data: Union[DirtyDuplicates, Table],
        label_budget: int = 0,
        threshold: float = 0.6,
        k: Optional[int] = None,
        head: str = "sudowoodo",
        seed: int = 0,
    ) -> "DedupeTask":
        """Match the table against itself and consolidate.

        With a generated
        :class:`~repro.data.generators.discovery.DirtyDuplicates` the
        known duplicate pairs build a labeled split (enabling
        ``label_budget`` > 0 and held-out evaluation); a bare ``Table``
        trains purely on pseudo-labels, so ``label_budget`` must be 0.
        ``threshold`` is the match probability above which a candidate
        pair becomes an edge of the duplicate graph.
        """
        if isinstance(data, DirtyDuplicates):
            self._table = data.table
            self._truth = set(data.duplicate_pairs())
        else:
            self._table = data
            self._truth = None
        if label_budget > 0 and not self._truth:
            raise ValueError(
                "label_budget > 0 needs known duplicate pairs; fit with a "
                "DirtyDuplicates or use label_budget=0 (pseudo-labels only)"
            )
        dataset = self_match_dataset(
            self._table, truth_pairs=self._truth, seed=seed
        )
        self._pipeline = SudowoodoPipeline._attached(
            self.session.config,
            dataset,
            self.session.checkout_encoder(),
            self.session.store,
        )
        self._pipeline.train_matcher(label_budget, head=head)

        candidates = self._pipeline.block(k)
        # Self-join blocking proposes (i, i) and both orientations; keep
        # one canonical copy of each genuine pair.  Match edges stream
        # straight from bounded matcher batches into the union-find, and
        # clusters stream out already merged — the full candidate-pair
        # probability matrix and the match graph are never materialized.
        pairs = sorted(normalize_pairs(candidates.pairs))
        batch_size = self.session.config.serve_batch_size
        edges = iter_match_edges(
            pairs,
            lambda a, b: (dataset.serialize_a(a), dataset.serialize_b(b)),
            lambda texts: self._pipeline.matcher.predict_proba(
                texts, batch_size=batch_size
            ),
            threshold=threshold,
            batch_size=batch_size,
        )
        self._clusters = []
        self._canonical = []
        for cluster, canonical in iter_duplicate_clusters(
            len(self._table),
            edges,
            records=self._table,
            policy=self.policy,
            timestamp_attribute=self.timestamp_attribute,
            schema=self._table.schema,
        ):
            self._clusters.append(cluster)
            self._canonical.append(canonical)
        self.fitted = True
        return self

    @property
    def matcher(self) -> Optional["PairwiseMatcher"]:
        """The fine-tuned self-match matcher once fitted."""
        return self._pipeline.matcher if self._pipeline else None

    def predict(self) -> List[List[int]]:
        """The duplicate clusters (sorted record-index lists; singletons
        included, so the clusters partition the table)."""
        self._require_fitted("predict()")
        return list(self._clusters)

    def canonical_records(self) -> List[Record]:
        """One merged record per cluster, in cluster order."""
        self._require_fitted("canonical_records()")
        return list(self._canonical)

    def reduction_ratio(self) -> float:
        """Fraction of records eliminated by consolidation."""
        self._require_fitted("reduction_ratio()")
        if not self._table or len(self._table) == 0:
            return 0.0
        return 1.0 - len(self._clusters) / len(self._table)

    def evaluate(self, **_: Any) -> Dict[str, float]:
        """Pairwise P/R/F1 of the final clustering against the known
        duplicate pairs (when available), plus consolidation stats."""
        self._require_fitted("evaluate()")
        metrics: Dict[str, float] = {}
        if self._truth is not None:
            metrics.update(
                pairwise_metrics(cluster_pairs(self._clusters), self._truth)
            )
        metrics["num_clusters"] = float(len(self._clusters))
        metrics["reduction_ratio"] = self.reduction_ratio()
        return metrics

    def corpus_texts(self) -> List[str]:
        """Serialized *canonical* records — serving exports the cleaned
        view of the table, not the dirty input."""
        if not self.fitted or self._table is None:
            return []
        return [
            serialize_record(record, self._table.schema)
            for record in self._canonical
        ]

    def report(self) -> DedupeResult:
        """Clusters, canonical records, and the consolidation metrics."""
        self._require_fitted("report()")
        assert self._pipeline is not None and self._table is not None
        return DedupeResult(
            task=self.name,
            metrics=self.evaluate(),
            timings=self._pipeline.timer.summary(),
            dataset=self._table.name,
            policy=self.policy,
            num_records=len(self._table),
            clusters=list(self._clusters),
            canonical_records=list(self._canonical),
            reduction_ratio=self.reduction_ratio(),
        )


@register_task("streaming_er")
class StreamingERTask(SessionTask):
    """Streaming entity resolution: replay a deterministic live feed of
    upserts / deletes / searches through the production service tier,
    measuring index staleness, sustained QPS, and load shedding."""

    def __init__(self, session: Any) -> None:
        super().__init__(session)
        self._initial: List[str] = []
        self._events: List[FeedEvent] = []
        self._stats: Optional[Dict[str, float]] = None

    def fit(
        self,
        data: Union[DirtyDuplicates, Table, Sequence[str]],
        num_events: int = 60,
        initial_fraction: float = 0.5,
        search_fraction: float = 0.5,
        delete_fraction: float = 0.15,
        k: int = 5,
        seed: int = 0,
    ) -> "StreamingERTask":
        """Materialize the feed.  ``data`` (a dirty-duplicates bundle, a
        table, or raw serialized texts) is split: the first
        ``initial_fraction`` seeds the index, the rest arrives as
        upserts; the event mix follows ``search_fraction`` /
        ``delete_fraction``.  Same data + seed -> identical feed."""
        if isinstance(data, DirtyDuplicates):
            table = data.table
            texts = [serialize_record(record, table.schema) for record in table]
        elif isinstance(data, Table):
            texts = [serialize_record(record, data.schema) for record in data]
        else:
            texts = list(data)
        if not texts:
            raise ValueError("streaming_er needs a non-empty corpus")
        if not 0.0 < initial_fraction <= 1.0:
            raise ValueError("initial_fraction must be in (0, 1]")
        split = max(1, int(len(texts) * initial_fraction))
        self._initial = texts[:split]
        self._events = make_feed(
            self._initial,
            texts[split:],
            num_events=num_events,
            search_fraction=search_fraction,
            delete_fraction=delete_fraction,
            k=k,
            seed=seed,
        )
        self._stats = None
        self.fitted = True
        return self

    @property
    def events(self) -> List[FeedEvent]:
        """The materialized feed (raises before :meth:`fit`)."""
        self._require_fitted("reading events")
        return list(self._events)

    def corpus_texts(self) -> List[str]:
        """The initial corpus — what the index holds before the feed."""
        return list(self._initial)

    def predict(
        self,
        frontend: Optional["ServiceFrontend"] = None,
        flush_every: int = 8,
        deadline_ms: Optional[float] = None,
        priority: int = 0,
        num_shards: Optional[int] = None,
        clock: Any = None,
    ) -> Dict[str, float]:
        """Run the feed and return the scorecard (see
        :func:`~repro.discovery.streaming.run_streaming_er`).  Without an
        explicit ``frontend`` the session serves this task behind a fresh
        :class:`~repro.serve.frontend.ServiceFrontend` (admission control
        + deadlines + metrics), pre-indexed with the initial corpus."""
        self._require_fitted("predict()")
        if frontend is None:
            frontend = self.session.serve(
                self, frontend=True, num_shards=num_shards
            )
        self._stats = run_streaming_er(
            frontend,
            self._events,
            flush_every=flush_every,
            deadline_ms=deadline_ms,
            priority=priority,
            clock=clock,
        )
        return dict(self._stats)

    def evaluate(self, **options: Any) -> Dict[str, float]:
        """The latest run's scorecard (runs the feed once if needed)."""
        self._require_fitted("evaluate()")
        if self._stats is None:
            self.predict(**options)
        assert self._stats is not None
        return dict(self._stats)

    def report(self) -> StreamingERResult:
        """Feed accounting plus freshness / throughput metrics."""
        self._require_fitted("report()")
        stats = self.evaluate()
        return StreamingERResult(
            task=self.name,
            metrics=stats,
            timings=self.session.timer.summary(),
            num_events=int(stats["events"]),
            upserts=int(stats["upserts"]),
            deletes=int(stats["deletes"]),
            searches=int(stats["searches"]),
            final_index_size=int(stats["final_index_size"]),
        )
