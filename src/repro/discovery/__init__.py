"""Data discovery & consolidation on top of the session API.

The package adds the *integration pipeline* tier to the repo: with one
pre-trained session you can now **discover** joinable columns across a
lake of tables (:mod:`~repro.discovery.join`), **consolidate** a dirty
table into canonical records via self-join entity matching plus
conflict-resolution merging (:mod:`~repro.discovery.dedupe`), and
**stress** the result under a live upsert/delete/search feed with
first-class staleness metrics (:mod:`~repro.discovery.streaming`).

Importing the package registers three session tasks —
``join_discovery``, ``dedupe``, and ``streaming_er`` — next to the
paper's original five:

>>> session.task("join_discovery").fit(tables)       # doctest: +SKIP
>>> session.task("dedupe").fit(dirty).report()       # doctest: +SKIP
>>> session.serve("dedupe", frontend=True)           # doctest: +SKIP
"""

from .dedupe import (
    MERGE_POLICIES,
    cluster_pairs,
    duplicate_clusters,
    merge_records,
    pairwise_metrics,
    self_match_dataset,
)
from .join import (
    ColumnProfile,
    group_by_table,
    profile_tables,
    rank_join_candidates,
)
from .streaming import FeedEvent, make_feed, run_streaming_er
from .tasks import DedupeTask, JoinDiscoveryTask, StreamingERTask

__all__ = [
    "ColumnProfile",
    "DedupeTask",
    "FeedEvent",
    "JoinDiscoveryTask",
    "MERGE_POLICIES",
    "StreamingERTask",
    "cluster_pairs",
    "duplicate_clusters",
    "group_by_table",
    "make_feed",
    "merge_records",
    "pairwise_metrics",
    "profile_tables",
    "rank_join_candidates",
    "run_streaming_er",
    "self_match_dataset",
]
