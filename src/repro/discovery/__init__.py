"""Data discovery & consolidation on top of the session API.

The package adds the *integration pipeline* tier to the repo: with one
pre-trained session you can now **discover** joinable columns across a
lake of tables (:mod:`~repro.discovery.join`), **consolidate** a dirty
table into canonical records via self-join entity matching plus
conflict-resolution merging (:mod:`~repro.discovery.dedupe`), and
**stress** the result under a live upsert/delete/search feed with
first-class staleness metrics (:mod:`~repro.discovery.streaming`).
:mod:`~repro.discovery.lake` scales the join tier to thousands of
tables: a persistent fingerprint-keyed profile cache with memmapped
column vectors, delta-maintained ANN indexing, and the bounded-memory
batch scorer.

Importing the package registers the session tasks —
``join_discovery``, ``lake_discovery``, ``dedupe``, and
``streaming_er`` — next to the paper's original five:

>>> session.task("join_discovery").fit(tables)       # doctest: +SKIP
>>> session.task("dedupe").fit(dirty).report()       # doctest: +SKIP
>>> session.serve("dedupe", frontend=True)           # doctest: +SKIP
"""

from .dedupe import (
    MERGE_POLICIES,
    DisjointSet,
    cluster_pairs,
    duplicate_clusters,
    iter_duplicate_clusters,
    merge_records,
    pairwise_metrics,
    self_match_dataset,
)
from .join import (
    ColumnProfile,
    group_by_table,
    profile_tables,
    rank_join_candidates,
    score_candidate_batches,
)
from .lake import (
    LakeIndex,
    LakeProfile,
    ProfileStore,
    column_fingerprint,
    hashed_embedder,
    profile_lake,
    rank_lake_candidates,
)
from .streaming import FeedEvent, iter_match_edges, make_feed, run_streaming_er
from .tasks import (
    DedupeTask,
    JoinDiscoveryTask,
    LakeDiscoveryTask,
    StreamingERTask,
)

__all__ = [
    "ColumnProfile",
    "DedupeTask",
    "DisjointSet",
    "FeedEvent",
    "JoinDiscoveryTask",
    "LakeDiscoveryTask",
    "LakeIndex",
    "LakeProfile",
    "MERGE_POLICIES",
    "ProfileStore",
    "StreamingERTask",
    "cluster_pairs",
    "column_fingerprint",
    "duplicate_clusters",
    "group_by_table",
    "hashed_embedder",
    "iter_duplicate_clusters",
    "iter_match_edges",
    "make_feed",
    "merge_records",
    "pairwise_metrics",
    "profile_lake",
    "profile_tables",
    "rank_join_candidates",
    "rank_lake_candidates",
    "run_streaming_er",
    "score_candidate_batches",
    "self_match_dataset",
]
