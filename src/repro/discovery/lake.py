"""Lake-scale join discovery: incremental profiling over a persistent cache.

:func:`~repro.discovery.join.profile_tables` re-serializes, re-sketches,
and re-embeds every column on every call — fine for a handful of tables,
hopeless for a lake where a nightly sync touches 5% of a thousand
tables.  This module makes discovery *incremental* end to end:

* :class:`ProfileStore` persists every :class:`ColumnProfile` and its
  embedding keyed by a **content fingerprint** of the column's values
  (the same ``utils.text_fingerprint`` scheme the ``TokenCache`` /
  ``EmbeddingStore`` already use), with the vectors in a
  :class:`~repro.serve.vecstore.MemmapVectorStore` instead of in-RAM
  float64 — a reopened store serves profiles without touching a table.
* :func:`profile_lake` walks the current tables and recomputes **only**
  columns whose fingerprint is not already cached; everything else is
  byte-identical cache hits (sketches round-trip exactly, vectors come
  back from the same memmap rows either way).
* :class:`LakeIndex` keeps a live sharded ANN backend (any registered
  backend — ``"ivfpq"`` for real lakes) in sync by **upserting the
  delta**: changed columns are removed/re-added under fresh stable ids,
  unchanged columns are never re-indexed — the incremental-index lever
  the serving tier already proved is ~10x cheaper than rebuild.
* :func:`rank_lake_candidates` streams candidate pairs out of the live
  index through the *same* bounded-memory batch scorer as
  :func:`~repro.discovery.join.rank_join_candidates`, so lake rankings
  inherit the determinism contract (and its byte-identity oracle).

``benchmarks/bench_lake_scale_discovery.py`` drives a ~1,000-table lake
through this path and asserts the incremental floors.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import (
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Union,
)

import numpy as np

from ..api.results import JoinCandidate
from ..core.config import SudowoodoConfig
from ..data.records import Table, serialize_column
from ..serve.backends import ANNBackend, build_backend
from ..serve.sketch import ContainmentSketch
from ..serve.vecstore import MemmapVectorStore
from ..utils.fingerprint import text_fingerprint
from .join import (
    ColumnProfile,
    ColumnRef,
    _normalize_rows,
    _table_codes,
    score_candidate_batches,
)

_FORMAT_VERSION = 1
_PROFILES_FILE = "profiles.json"
_VECTORS_DIR = "vectors"

#: How values are joined before hashing — a non-printable separator so
#: value boundaries cannot be forged by cell content.
_FP_SEPARATOR = "\x1f"


def column_fingerprint(
    values: Sequence[str], max_values: int = 12, sketch_k: int = 256
) -> str:
    """Content fingerprint of a column under given profiling parameters.

    Hashes the ordered non-empty values *and* the parameters that shape
    the profile (``max_values`` caps the serialized text, ``sketch_k``
    sizes the sketch), so a cache entry can never be served under
    settings it was not computed with.
    """
    payload = _FP_SEPARATOR.join([str(max_values), str(sketch_k), *values])
    return text_fingerprint(payload)


class ProfileStore:
    """Persistent, content-addressed column-profile cache.

    Each entry keys a profile (serialized text, value count, sketch) and
    its embedding by :func:`column_fingerprint`; vectors live in an
    append-only :class:`~repro.serve.vecstore.MemmapVectorStore` (created
    lazily once the embedding dim is known), so a million cached columns
    cost memmap pages, not RAM.  Entries are content-addressed —
    *identical columns in different tables share one entry* — and the
    table/column identity is re-attached at read time.
    """

    def __init__(self, path: Union[str, Path], store_dtype: str = "float32") -> None:
        self.path = Path(path)
        self.path.mkdir(parents=True, exist_ok=True)
        self.store_dtype = store_dtype
        self._entries: Dict[str, Dict[str, object]] = {}
        self._sketches: Dict[str, ContainmentSketch] = {}
        self._vectors: Optional[MemmapVectorStore] = None
        self._load()

    def _load(self) -> None:
        profiles_path = self.path / _PROFILES_FILE
        if profiles_path.is_file():
            try:
                payload = json.loads(profiles_path.read_text(encoding="utf-8"))
            except (OSError, UnicodeDecodeError, json.JSONDecodeError) as error:
                raise ValueError(
                    f"corrupt profile store {profiles_path}: {error}"
                ) from error
            if (
                not isinstance(payload, dict)
                or payload.get("format_version") != _FORMAT_VERSION
                or not isinstance(payload.get("columns"), dict)
            ):
                raise ValueError(
                    f"unsupported profile store format in {profiles_path}"
                )
            self.store_dtype = str(payload.get("store_dtype", self.store_dtype))
            self._entries = payload["columns"]
        vectors_dir = self.path / _VECTORS_DIR
        if vectors_dir.is_dir():
            self._vectors = MemmapVectorStore.open(vectors_dir)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self._entries

    @property
    def nbytes_vectors(self) -> int:
        """On-disk bytes of the cached embeddings."""
        return self._vectors.nbytes if self._vectors is not None else 0

    def _entry(self, fingerprint: str) -> Dict[str, object]:
        entry = self._entries.get(fingerprint)
        if entry is None:
            raise KeyError(f"unknown column fingerprint: {fingerprint}")
        return entry

    def profile(self, fingerprint: str, table: str, column: str) -> ColumnProfile:
        """The cached profile under ``fingerprint``, re-attached to the
        given table/column identity (entries are content-addressed)."""
        entry = self._entry(fingerprint)
        sketch = self._sketches.get(fingerprint)
        if sketch is None:
            sketch = ContainmentSketch.from_dict(entry["sketch"])  # type: ignore[arg-type]
            self._sketches[fingerprint] = sketch
        return ColumnProfile(
            table=table,
            column=column,
            text=str(entry["text"]),
            sketch=sketch,
            num_values=int(entry["num_values"]),  # type: ignore[arg-type]
        )

    def vectors(self, fingerprints: Sequence[str]) -> np.ndarray:
        """The cached embeddings for ``fingerprints``, row-aligned
        (float32, straight off the memmap)."""
        if not fingerprints:
            return np.zeros((0, 0), dtype=np.float32)
        if self._vectors is None:
            raise KeyError("profile store holds no vectors yet")
        rows = [int(self._entry(fp)["vector_id"]) for fp in fingerprints]  # type: ignore[arg-type]
        return self._vectors.get(rows)

    def put_many(
        self,
        fingerprints: Sequence[str],
        profiles: Sequence[ColumnProfile],
        vectors: np.ndarray,
    ) -> None:
        """Cache freshly computed profiles + embeddings in one append.

        Fingerprints must be new and unique (the store, like its vector
        tier, is append-only — a changed column gets a *new* fingerprint,
        it never rewrites an old entry).
        """
        if not (len(fingerprints) == len(profiles) == vectors.shape[0]):
            raise ValueError("fingerprints, profiles, and vectors must align")
        if not fingerprints:
            return
        if len(set(fingerprints)) != len(fingerprints):
            raise ValueError("duplicate fingerprints in one put_many()")
        known = [fp for fp in fingerprints if fp in self._entries]
        if known:
            raise ValueError(f"fingerprints already cached: {known[:3]}")
        if self._vectors is None:
            self._vectors = MemmapVectorStore.create(
                self.path / _VECTORS_DIR,
                dim=int(vectors.shape[1]),
                dtype=self.store_dtype,
            )
        start = len(self._vectors)
        ids = list(range(start, start + len(fingerprints)))
        self._vectors.append(ids, vectors)
        for fingerprint, profile, vector_id in zip(fingerprints, profiles, ids):
            self._entries[fingerprint] = {
                "text": profile.text,
                "num_values": profile.num_values,
                "sketch": profile.sketch.to_dict(),
                "vector_id": vector_id,
            }
            self._sketches[fingerprint] = profile.sketch
        self.flush()

    def flush(self) -> None:
        """Persist the profile entries (vectors flush on append)."""
        (self.path / _PROFILES_FILE).write_text(
            json.dumps(
                {
                    "format_version": _FORMAT_VERSION,
                    "store_dtype": self.store_dtype,
                    "columns": self._entries,
                }
            ),
            encoding="utf-8",
        )


@dataclass
class LakeProfile:
    """One :func:`profile_lake` pass over the current tables.

    ``vectors`` row ``i`` belongs to ``profiles[i]`` and is *always* the
    memmap-cached row (even for freshly computed columns), so a warm
    pass is byte-identical to the cold pass that populated the cache.
    ``computed_refs`` names exactly the columns whose fingerprint was
    not cached — the invalidation granularity tests pin this.
    """

    profiles: List[ColumnProfile]
    vectors: np.ndarray
    fingerprints: List[str]
    reused: int
    computed: int
    computed_refs: List[ColumnRef]


def profile_lake(
    tables: Dict[str, Table],
    store: ProfileStore,
    embed: Callable[[Sequence[str]], np.ndarray],
    max_values: int = 12,
    sketch_k: int = 256,
    batch_size: int = 256,
) -> LakeProfile:
    """Profile a lake incrementally against a persistent cache.

    Walks every column in deterministic order, fingerprints its values,
    and recomputes (serialize + sketch + ``embed``) **only** fingerprints
    the store has never seen; everything else is served from cache.
    Fresh embeddings run through ``embed`` in chunks of ``batch_size``
    and are appended to the store before profiles are assembled, so the
    returned vectors always come off the memmap.  Two identical columns
    (same values, anywhere in the lake) share one cache entry and one
    embedding row.
    """
    refs: List[ColumnRef] = []
    fingerprints: List[str] = []
    computed_refs: List[ColumnRef] = []
    fresh: Dict[str, ColumnProfile] = {}
    reused = 0
    for table_name, table in tables.items():
        for attribute in table.schema:
            values = [v for v in table.column_values(attribute) if v]
            fingerprint = column_fingerprint(
                values, max_values=max_values, sketch_k=sketch_k
            )
            refs.append((table_name, attribute))
            fingerprints.append(fingerprint)
            if fingerprint in store:
                reused += 1
                continue
            computed_refs.append((table_name, attribute))
            if fingerprint not in fresh:
                fresh[fingerprint] = ColumnProfile(
                    table=table_name,
                    column=attribute,
                    text=serialize_column(values, max_values=max_values),
                    sketch=ContainmentSketch.from_values(values, k=sketch_k),
                    num_values=len(values),
                )
    if fresh:
        fresh_fps = list(fresh)
        texts = [fresh[fp].text for fp in fresh_fps]
        chunks = [
            np.asarray(embed(texts[start : start + batch_size]), dtype=np.float64)
            for start in range(0, len(texts), batch_size)
        ]
        store.put_many(fresh_fps, [fresh[fp] for fp in fresh_fps], np.vstack(chunks))
    profiles = [
        store.profile(fingerprint, table_name, attribute)
        for (table_name, attribute), fingerprint in zip(refs, fingerprints)
    ]
    return LakeProfile(
        profiles=profiles,
        vectors=store.vectors(fingerprints),
        fingerprints=fingerprints,
        reused=reused,
        computed=len(computed_refs),
        computed_refs=computed_refs,
    )


class LakeIndex:
    """A live ANN index over the lake's columns, maintained by deltas.

    The first :meth:`update` builds the configured sharded backend from
    the full column matrix (IVF-PQ trains its codebooks here); every
    later update diffs fingerprints against what is indexed and only
    **adds** new/changed columns and **removes** vanished/stale ones —
    unchanged columns keep their stable ids and are never re-indexed.
    """

    def __init__(self, config: Optional[SudowoodoConfig] = None) -> None:
        self.config = config or SudowoodoConfig()
        self._backend: Optional[ANNBackend] = None
        self._ref_to_id: Dict[ColumnRef, int] = {}
        self._ref_fp: Dict[ColumnRef, str] = {}
        self._next_id = 0

    def __len__(self) -> int:
        return len(self._ref_to_id)

    def update(self, lake: LakeProfile) -> Dict[str, int]:
        """Sync the index to ``lake``; returns the delta accounting
        (``added`` / ``updated`` / ``removed`` / ``unchanged``)."""
        normalized = _normalize_rows(lake.vectors)
        current: Dict[ColumnRef, int] = {
            profile.ref: row for row, profile in enumerate(lake.profiles)
        }
        if len(current) != len(lake.profiles):
            raise ValueError("duplicate column refs in lake profile")
        if self._backend is None:
            self._backend = build_backend(self.config, sharded=True)
            self._backend.build(normalized)  # ids 0..N-1, trains IVF-PQ
            self._ref_to_id = dict(
                zip((p.ref for p in lake.profiles), range(len(lake.profiles)))
            )
            self._ref_fp = dict(zip(self._ref_to_id, lake.fingerprints))
            self._next_id = len(lake.profiles)
            return {
                "added": len(lake.profiles),
                "updated": 0,
                "removed": 0,
                "unchanged": 0,
            }
        removed = [ref for ref in self._ref_to_id if ref not in current]
        added: List[ColumnRef] = []
        updated: List[ColumnRef] = []
        for ref in current:
            if ref not in self._ref_to_id:
                added.append(ref)
            elif self._ref_fp[ref] != lake.fingerprints[current[ref]]:
                updated.append(ref)
        stale_ids = [self._ref_to_id[ref] for ref in removed + updated]
        if stale_ids:
            self._backend.remove(stale_ids)
        for ref in removed:
            del self._ref_to_id[ref]
            del self._ref_fp[ref]
        fresh = added + updated
        if fresh:
            fresh_ids = list(range(self._next_id, self._next_id + len(fresh)))
            self._next_id += len(fresh)
            rows = np.asarray([current[ref] for ref in fresh], dtype=np.int64)
            self._backend.add(fresh_ids, normalized[rows])
            for ref, stable_id in zip(fresh, fresh_ids):
                self._ref_to_id[ref] = stable_id
                self._ref_fp[ref] = lake.fingerprints[current[ref]]
        return {
            "added": len(added),
            "updated": len(updated),
            "removed": len(removed),
            "unchanged": len(current) - len(added) - len(updated),
        }

    def iter_candidate_pairs(
        self,
        profiles: Sequence[ColumnProfile],
        normalized: np.ndarray,
        k: int,
        batch_size: int = 256,
        include_intra_table: bool = False,
    ) -> Iterator[np.ndarray]:
        """Stream canonical candidate index pairs (positions into
        ``profiles``) from the live backend, ``batch_size`` queries at a
        time.  The backend answers in stable ids; they are translated to
        current row positions, so callers score against the *exact*
        current vectors and sketches."""
        if self._backend is None:
            raise RuntimeError("lake index is empty; call update() first")
        if batch_size < 1:
            raise ValueError("batch_size must be positive")
        positions = np.full(max(self._next_id, 1), -1, dtype=np.int64)
        by_ref = {profile.ref: row for row, profile in enumerate(profiles)}
        for ref, stable_id in self._ref_to_id.items():
            row = by_ref.get(ref)
            if row is not None:
                positions[stable_id] = row
        n = len(profiles)
        table_codes = _table_codes(profiles)
        kq = min(k + 1, len(self._ref_to_id))
        if kq < 1:
            return
        for start in range(0, n, batch_size):
            stop = min(start + batch_size, n)
            block = np.asarray(normalized[start:stop], dtype=np.float64)
            neighbor_ids, _ = self._backend.query(block, kq)
            flat = neighbor_ids.reshape(-1).astype(np.int64)
            partner_rows = np.where(flat >= 0, positions[np.maximum(flat, 0)], -1)
            query_rows = np.repeat(np.arange(start, stop, dtype=np.int64), kq)
            valid = (partner_rows >= 0) & (partner_rows != query_rows)
            query_rows, partner_rows = query_rows[valid], partner_rows[valid]
            if not include_intra_table:
                cross = table_codes[query_rows] != table_codes[partner_rows]
                query_rows, partner_rows = query_rows[cross], partner_rows[cross]
            pairs = np.stack(
                [
                    np.minimum(query_rows, partner_rows),
                    np.maximum(query_rows, partner_rows),
                ],
                axis=1,
            )
            if pairs.shape[0]:
                yield np.unique(pairs, axis=0)


def rank_lake_candidates(
    lake: LakeProfile,
    index: LakeIndex,
    config: Optional[SudowoodoConfig] = None,
    k: int = 10,
    alpha: float = 0.5,
    min_score: float = 0.0,
    include_intra_table: bool = False,
    top: Optional[int] = None,
    batch_size: Optional[int] = None,
    scorer: str = "batched",
) -> List[JoinCandidate]:
    """Ranked joinable pairs over a lake, candidates from the live index.

    The scoring half is *shared* with
    :func:`~repro.discovery.join.rank_join_candidates`
    (:func:`~repro.discovery.join.score_candidate_batches`), so lake
    rankings obey the same contract: exact scores, deterministic
    tie-breaks, batched output byte-identical to ``scorer="pairwise"``.
    """
    config = config or index.config
    normalized = _normalize_rows(lake.vectors, dtype=np.dtype(config.store_dtype))
    batches = index.iter_candidate_pairs(
        lake.profiles,
        normalized,
        k,
        batch_size=batch_size or config.discovery_batch_size,
        include_intra_table=include_intra_table,
    )
    return score_candidate_batches(
        lake.profiles,
        normalized,
        batches,
        alpha=alpha,
        min_score=min_score,
        top=top,
        scorer=scorer,
    )


def hashed_embedder(dim: int = 64) -> Callable[[Sequence[str]], np.ndarray]:
    """A deterministic, model-free column embedder (hashed bag of values).

    Benchmarks and tests need thousands of column embeddings without
    paying for an encoder; crc32-hashed value counts, row-normalized,
    give stable vectors where shared values produce high cosine — enough
    signal for candidate generation, at generator speed.  The session
    tasks always embed through the real encoder; this is the harness
    embedder.
    """
    if dim < 1:
        raise ValueError("dim must be positive")

    def embed(texts: Sequence[str]) -> np.ndarray:
        out = np.zeros((len(texts), dim), dtype=np.float64)
        for row, text in enumerate(texts):
            for token in text.split():
                if token == "[VAL]":
                    continue
                out[row, zlib.crc32(token.encode("utf-8")) % dim] += 1.0
        norms = np.linalg.norm(out, axis=1, keepdims=True)
        return out / np.maximum(norms, 1e-12)

    return embed
