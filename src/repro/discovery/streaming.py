"""Streaming entity resolution: a live feed driven through the service tier.

The production front end (``repro.serve.frontend``) already gives the
index streaming writes, admission control, and deadlines; what the repo
lacked was a *scenario* that exercises them the way a live ER deployment
does — upserts, deletions, and searches interleaved on one clock, with
index freshness measured against the feed.  This module supplies it:

* :func:`make_feed` deterministically expands a corpus into a seeded
  event stream of :class:`FeedEvent` upserts / deletes / searches
  (deletes only target records the feed has made live, so every event
  is valid by construction);
* :func:`run_streaming_er` replays a feed against a
  :class:`~repro.serve.frontend.ServiceFrontend` (or bare service),
  buffering writes into batches of ``flush_every`` — the realistic
  ingest pattern that *creates* staleness — and measuring it with
  :class:`~repro.serve.metrics.StalenessGauge`, alongside sustained
  QPS and the front end's shed / deadline counters;
* :func:`iter_match_edges` scores candidate record pairs through a
  matcher lazily, in bounded batches, yielding only the pairs above
  threshold — the edge stream the streaming dedupe path
  (:func:`~repro.discovery.dedupe.iter_duplicate_clusters`) consumes
  without ever materializing a match graph.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from ..serve.frontend import DeadlineExceeded, Overloaded, ServiceFrontend
from ..serve.metrics import MetricsRegistry, StalenessGauge

#: Event kinds a feed may contain.
EVENT_KINDS: Tuple[str, ...] = ("upsert", "delete", "search")


@dataclass(frozen=True)
class FeedEvent:
    """One timestep of the live feed.

    ``texts`` are serialized records: the payload to upsert / delete, or
    the queries of a search batch.  ``k`` only applies to searches.
    """

    seq: int
    kind: str
    texts: Tuple[str, ...]
    k: int = 5

    def __post_init__(self) -> None:
        if self.kind not in EVENT_KINDS:
            raise ValueError(
                f"unknown event kind {self.kind!r}; expected one of "
                f"{', '.join(EVENT_KINDS)}"
            )
        if not self.texts:
            raise ValueError("a feed event needs at least one text")


def make_feed(
    initial: Sequence[str],
    stream: Sequence[str],
    num_events: int = 60,
    search_fraction: float = 0.5,
    delete_fraction: float = 0.15,
    k: int = 5,
    seed: int = 0,
) -> List[FeedEvent]:
    """A deterministic event stream over a split corpus.

    ``initial`` is what the index starts with (already searchable);
    ``stream`` arrives as upserts.  Each step draws a kind — search with
    probability ``search_fraction``, else delete with probability
    ``delete_fraction`` (when something is live to delete), else upsert —
    and payloads come from the live population, so deletes always target
    indexed records and searches always have a reference.  Upserts cycle
    through ``stream`` with a revision suffix once exhausted, keeping
    every live text unique (a delete therefore removes exactly one
    record).  Same inputs + seed -> identical feed.
    """
    if not initial and not stream:
        raise ValueError("make_feed needs a non-empty corpus")
    if not 0.0 <= search_fraction <= 1.0:
        raise ValueError("search_fraction must be in [0, 1]")
    if not 0.0 <= delete_fraction <= 1.0:
        raise ValueError("delete_fraction must be in [0, 1]")
    rng = np.random.default_rng(seed)
    live: List[str] = list(initial)
    pool = list(stream) or list(initial)
    next_up = 0
    revision = 0
    events: List[FeedEvent] = []
    for seq in range(num_events):
        roll = rng.random()
        if roll < search_fraction and live:
            query = live[int(rng.integers(0, len(live)))]
            events.append(FeedEvent(seq=seq, kind="search", texts=(query,), k=k))
        elif roll < search_fraction + delete_fraction and live:
            victim = live.pop(int(rng.integers(0, len(live))))
            events.append(FeedEvent(seq=seq, kind="delete", texts=(victim,)))
        else:
            if next_up >= len(pool):
                next_up = 0
                revision += 1
            text = pool[next_up]
            next_up += 1
            if revision:
                text = f"{text} [VAL] rev {revision}"
            live.append(text)
            events.append(FeedEvent(seq=seq, kind="upsert", texts=(text,)))
    return events


def run_streaming_er(
    target: ServiceFrontend,
    events: Sequence[FeedEvent],
    flush_every: int = 8,
    metrics: Optional[MetricsRegistry] = None,
    clock: Optional[Callable[[], float]] = None,
    deadline_ms: Optional[float] = None,
    priority: int = 0,
) -> Dict[str, float]:
    """Replay ``events`` against a live service; return the scorecard.

    Writes (upserts / deletes) are buffered and applied in arrival order
    every ``flush_every`` write events — the batched-ingest pattern that
    makes an index stale — while searches run immediately against
    whatever is currently visible.  A
    :class:`~repro.serve.metrics.StalenessGauge` stamps each write at
    arrival and at flush, so ``staleness_*`` below is the true
    arrival->searchable latency.  ``Overloaded`` / ``DeadlineExceeded``
    from the front end are counted, not raised: load shedding is an
    outcome this scenario measures.

    Returns a flat dict: event/op counts, ``shed`` / ``expired``,
    sustained ``qps`` (completed searches over the wall-clock of the
    whole interleaved run), ``staleness_p50_s`` / ``staleness_p99_s`` /
    ``staleness_max_s``, and ``final_index_size``.
    """
    if flush_every < 1:
        raise ValueError("flush_every must be >= 1")
    tick = clock or time.perf_counter
    registry = metrics
    if registry is None:
        registry = getattr(target, "metrics", None) or MetricsRegistry()
    gauge = StalenessGauge(registry, name="streaming_er", clock=tick)
    is_frontend = isinstance(target, ServiceFrontend)

    buffer: List[FeedEvent] = []
    counts = {"upsert": 0, "delete": 0, "search": 0}
    shed = 0
    expired = 0
    searches_completed = 0

    def flush() -> None:
        applied = 0
        for event in buffer:
            if event.kind == "upsert":
                target.upsert_records(list(event.texts))
            else:
                target.delete_records(list(event.texts))
            applied += len(event.texts)
        buffer.clear()
        if applied:
            gauge.applied(applied)

    started = tick()
    for event in events:
        if event.kind == "search":
            counts["search"] += 1
            try:
                if is_frontend:
                    target.search(
                        list(event.texts),
                        k=event.k,
                        deadline_ms=deadline_ms,
                        priority=priority,
                    )
                else:
                    target.search(list(event.texts), k=event.k)
            except Overloaded:
                shed += 1
            except DeadlineExceeded:
                expired += 1
            else:
                searches_completed += 1
        else:
            counts[event.kind] += 1
            gauge.ingested(len(event.texts))
            buffer.append(event)
            if sum(len(e.texts) for e in buffer) >= flush_every:
                flush()
    flush()
    elapsed = max(tick() - started, 1e-9)

    staleness = registry.histogram("streaming_er.staleness_s").snapshot()
    return {
        "events": float(len(events)),
        "upserts": float(counts["upsert"]),
        "deletes": float(counts["delete"]),
        "searches": float(counts["search"]),
        "searches_completed": float(searches_completed),
        "shed": float(shed),
        "expired": float(expired),
        "elapsed_s": elapsed,
        "qps": searches_completed / elapsed,
        "staleness_p50_s": staleness.get("p50", 0.0),
        "staleness_p99_s": staleness.get("p99", 0.0),
        "staleness_max_s": staleness.get("max", 0.0),
        "pending_writes": float(gauge.pending),
        "final_index_size": float(target.index_size),
    }


def iter_match_edges(
    pairs: Iterable[Tuple[int, int]],
    serialize_pair: Callable[[int, int], Tuple[str, str]],
    predict_proba: Callable[[Sequence[Tuple[str, str]]], Sequence[Sequence[float]]],
    threshold: float = 0.5,
    batch_size: int = 64,
) -> Iterator[Tuple[int, int]]:
    """Stream match edges out of a matcher, one bounded batch at a time.

    ``pairs`` may be any iterable (including a generator of blocking
    output) — it is consumed lazily in chunks of ``batch_size``: each
    chunk is serialized via ``serialize_pair(a, b)``, scored in one
    ``predict_proba`` call, and the pairs whose match probability
    (column 1) reaches ``threshold`` are yielded in order.  Peak memory
    is O(batch_size) regardless of how many candidate pairs blocking
    proposes, which is what lets
    :func:`~repro.discovery.dedupe.iter_duplicate_clusters` fold edges
    into its union-find while the matcher is still scoring.
    """
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    if not 0.0 <= threshold <= 1.0:
        raise ValueError("threshold must be in [0, 1]")
    chunk: List[Tuple[int, int]] = []

    def score(batch: List[Tuple[int, int]]) -> Iterator[Tuple[int, int]]:
        texts = [serialize_pair(a, b) for a, b in batch]
        probabilities = predict_proba(texts)
        for pair, row in zip(batch, probabilities):
            if float(row[1]) >= threshold:
                yield pair

    for pair in pairs:
        chunk.append(pair)
        if len(chunk) >= batch_size:
            yield from score(chunk)
            chunk = []
    if chunk:
        yield from score(chunk)
