"""DeepMatcher baseline (Mudgal et al., SIGMOD 2018), aggregate variant.

DeepMatcher's "hybrid" model is an RNN+attention architecture trained from
scratch on the full labeled set.  This reproduction implements its
*aggregate* design point — learned word embeddings, per-item aggregation,
and an interaction MLP over ``[u, v, |u-v|, u*v]`` — which the original
paper evaluates as the fastest member of its design space.  It is trained
from scratch (no pre-trained LM), preserving DeepMatcher's key contrast
with Ditto/Sudowoodo in the evaluation tables.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core import SudowoodoConfig
from ..core.matcher import f1_from_predictions
from ..data import EMDataset
from ..nn import (
    MLP,
    AdamW,
    Embedding,
    Module,
    Tensor,
    concat,
    no_grad,
    weighted_cross_entropy,
)
from ..text import Tokenizer
from ..utils import RngStream, Timer
from .ditto import BaselineReport, manual_examples


class DeepMatcherModel(Module):
    """Word embeddings -> masked mean -> interaction features -> MLP."""

    def __init__(
        self, vocab_size: int, dim: int, hidden: int, seed: int = 0
    ) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        self.embedding = Embedding(vocab_size, dim, rng, padding_idx=0)
        self.mlp = MLP(4 * dim, hidden, 2, rng, activation="relu")

    def _aggregate(self, token_ids: np.ndarray, mask: np.ndarray) -> Tensor:
        vectors = self.embedding(token_ids)  # (B, T, D)
        mask_t = Tensor(mask[:, :, np.newaxis].astype(np.float64))
        summed = (vectors * mask_t).sum(axis=1)
        counts = Tensor(np.maximum(mask.sum(axis=1, keepdims=True), 1).astype(
            np.float64
        ))
        return summed / counts

    def forward(
        self,
        left_ids: np.ndarray,
        left_mask: np.ndarray,
        right_ids: np.ndarray,
        right_mask: np.ndarray,
    ) -> Tensor:
        u = self._aggregate(left_ids, left_mask)
        v = self._aggregate(right_ids, right_mask)
        features = concat([u, v, (u - v).abs(), u * v], axis=1)
        return self.mlp(features)


def train_deepmatcher(
    dataset: EMDataset,
    label_budget: Optional[int] = None,
    config: Optional[SudowoodoConfig] = None,
    epochs: int = 30,
    dim: int = 32,
    hidden: int = 64,
) -> BaselineReport:
    """Train DeepMatcher from scratch; ``label_budget=None`` = full set
    (the paper reports DeepMatcher with the full training data)."""
    config = config or SudowoodoConfig()
    timer = Timer()
    rngs = RngStream(config.seed)
    budget = label_budget if label_budget is not None else len(
        dataset.pairs.train
    ) + len(dataset.pairs.valid)
    examples = manual_examples(dataset, budget, config)
    tokenizer = Tokenizer.fit(
        [e.left for e in examples] + [e.right for e in examples]
        + dataset.all_items(),
        vocab_size=config.vocab_size,
    )

    def encode(texts: Sequence[str]):
        enc = tokenizer.encode_batch(list(texts), max_len=config.max_seq_len)
        return enc.token_ids, enc.attention_mask

    model = DeepMatcherModel(tokenizer.vocab_size, dim, hidden, seed=config.seed)
    optimizer = AdamW(model.parameters(), lr=5e-3)
    rng = rngs.get("dm-train")
    with timer.section("train"):
        for _ in range(epochs):
            order = rng.permutation(len(examples))
            for start in range(0, len(order), 32):
                batch = [examples[int(i)] for i in order[start : start + 32]]
                if len(batch) < 2:
                    continue
                left_ids, left_mask = encode([e.left for e in batch])
                right_ids, right_mask = encode([e.right for e in batch])
                logits = model(left_ids, left_mask, right_ids, right_mask)
                loss = weighted_cross_entropy(
                    logits,
                    np.array([e.label for e in batch]),
                    np.array([e.weight for e in batch]),
                )
                optimizer.zero_grad()
                loss.backward()
                optimizer.step()

    test_pairs = [dataset.serialize_pair(p) for p in dataset.pairs.test]
    test_labels = np.array([p.label for p in dataset.pairs.test])
    with timer.section("evaluate"), no_grad():
        predictions = []
        for start in range(0, len(test_pairs), 64):
            chunk = test_pairs[start : start + 64]
            left_ids, left_mask = encode([p[0] for p in chunk])
            right_ids, right_mask = encode([p[1] for p in chunk])
            logits = model(left_ids, left_mask, right_ids, right_mask)
            predictions.extend(logits.data.argmax(axis=1).tolist())
    metrics = f1_from_predictions(test_labels, np.array(predictions))
    label_tag = "full" if label_budget is None else str(label_budget)
    return BaselineReport(
        name=f"DeepMatcher ({label_tag})",
        dataset=dataset.name,
        test_metrics=metrics,
        timings=timer.summary(),
    )
