"""Ditto baseline (Li et al., PVLDB 2021).

Ditto fine-tunes a pre-trained LM on concatenated serialized pairs with a
[CLS]-head classifier — no contrastive pre-training, no pseudo labels, no
similarity-aware head.  Here the "pre-trained LM" is the masked-LM
warm-started encoder (see DESIGN.md substitutions); everything downstream
follows Ditto: serialization, pair concatenation, concat-only head.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..core import SudowoodoConfig, SudowoodoEncoder, build_tokenizer
from ..core.matcher import (
    PairwiseMatcher,
    TrainingExample,
    evaluate_f1,
    finetune_matcher,
)
from ..core.pipeline import _apply_class_balance
from ..core.pretrain import prepare_corpus
from ..data import EMDataset
from ..text import MLMConfig, mlm_warm_start
from ..utils import RngStream, Timer


@dataclass
class BaselineReport:
    name: str
    dataset: str
    test_metrics: Dict[str, float]
    timings: Dict[str, float] = field(default_factory=dict)

    @property
    def f1(self) -> float:
        return self.test_metrics.get("f1", 0.0)


def build_warm_encoder(
    dataset: EMDataset, config: SudowoodoConfig
) -> SudowoodoEncoder:
    """Tokenizer + encoder with MLM warm start but NO contrastive step —
    the shared starting point of the Ditto / Rotom / RoBERTa-base rows."""
    rngs = RngStream(config.seed)
    corpus = prepare_corpus(dataset.all_items(), config, rngs.get("corpus"))
    tokenizer = build_tokenizer(corpus, config)
    encoder = SudowoodoEncoder(config, tokenizer)
    if config.mlm_warm_start_epochs > 0:
        warm_rng = rngs.get("warm-pairs")
        pair_lines = [
            corpus[int(warm_rng.integers(len(corpus)))]
            + " [SEP] "
            + corpus[int(warm_rng.integers(len(corpus)))]
            for _ in range(len(corpus) // 2)
        ]
        mlm_warm_start(
            encoder.encoder,
            tokenizer,
            corpus + pair_lines,
            MLMConfig(
                epochs=config.mlm_warm_start_epochs,
                batch_size=config.pretrain_batch_size,
                max_seq_len=config.pair_max_seq_len,
                seed=config.seed,
            ),
        )
    return encoder


def manual_examples(
    dataset: EMDataset, label_budget: int, config: SudowoodoConfig
) -> List[TrainingExample]:
    rngs = RngStream(config.seed)
    pairs = dataset.sample_labeled(label_budget, rngs.get("labels"))
    examples = [
        TrainingExample(*dataset.serialize_pair(p), p.label, 1.0) for p in pairs
    ]
    if config.class_balance:
        _apply_class_balance(examples)
    return examples


def train_ditto(
    dataset: EMDataset,
    label_budget: int,
    config: Optional[SudowoodoConfig] = None,
) -> BaselineReport:
    """Train and evaluate the Ditto baseline at a label budget."""
    config = config or SudowoodoConfig()
    timer = Timer()
    with timer.section("warm_start"):
        encoder = build_warm_encoder(dataset, config)
    matcher = PairwiseMatcher(encoder, head="concat")
    examples = manual_examples(dataset, label_budget, config)
    with timer.section("finetune"):
        finetune_matcher(matcher, examples, examples, config)
    test_pairs = [dataset.serialize_pair(p) for p in dataset.pairs.test]
    test_labels = [p.label for p in dataset.pairs.test]
    with timer.section("evaluate"):
        metrics = evaluate_f1(matcher, test_pairs, test_labels)
    return BaselineReport(
        name=f"Ditto ({label_budget})",
        dataset=dataset.name,
        test_metrics=metrics,
        timings=timer.summary(),
    )
