"""Auto-FuzzyJoin baseline (Li et al., SIGMOD 2021), simplified.

Auto-FuzzyJoin self-configures a fuzzy join without labels by treating one
table as a (mostly duplicate-free) reference and estimating join precision
from the reference's own structure.  This reproduction keeps the
reference-table assumption and the precision-estimated threshold search:

* each left record joins to its best TF-IDF-cosine reference match;
* for a threshold t, precision is estimated from *mutual-best* agreement —
  accepted pairs whose reference record also picks the left record as its
  best partner are likely true matches (a duplicate-free reference makes
  non-mutual high-similarity joins suspicious);
* the chosen threshold maximizes estimated-recall subject to estimated
  precision >= the target (0.9, the AutoFJ default).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.matcher import f1_from_predictions
from ..data import EMDataset
from ..text import TfidfVectorizer
from ..utils import Timer
from .ditto import BaselineReport


def run_autofuzzyjoin(
    dataset: EMDataset,
    precision_target: float = 0.9,
) -> BaselineReport:
    timer = Timer()
    texts_a = [dataset.table_a[i].text() for i in range(len(dataset.table_a))]
    texts_b = [dataset.table_b[j].text() for j in range(len(dataset.table_b))]
    with timer.section("featurize"):
        vectorizer = TfidfVectorizer(max_features=512).fit(texts_a + texts_b)
        tfidf_a = vectorizer.transform(texts_a)
        tfidf_b = vectorizer.transform(texts_b)
        # The smaller table plays the reference role (AutoFJ assumes the
        # reference has no/few duplicates; smaller catalogs usually comply).
        swap = len(texts_b) > len(texts_a)
        left, reference = (tfidf_b, tfidf_a) if swap else (tfidf_a, tfidf_b)

    with timer.section("join"):
        similarities = left @ reference.T
        best_ref = similarities.argmax(axis=1)
        best_sim = similarities[np.arange(left.shape[0]), best_ref]
        ref_best = similarities.argmax(axis=0)  # best left for each reference

        thresholds = np.unique(np.round(best_sim, 3))
        chosen_threshold = 1.01  # accept nothing if no threshold qualifies
        best_accepted = -1
        for threshold in thresholds:
            accepted = best_sim >= threshold
            count = int(accepted.sum())
            if count == 0:
                continue
            mutual = ref_best[best_ref[accepted]] == np.flatnonzero(accepted)
            estimated_precision = float(mutual.mean())
            if estimated_precision >= precision_target and count > best_accepted:
                best_accepted = count
                chosen_threshold = float(threshold)

        joined = set()
        for left_index in np.flatnonzero(best_sim >= chosen_threshold):
            pair = (int(left_index), int(best_ref[left_index]))
            if swap:
                pair = (pair[1], pair[0])
            joined.add(pair)

    test = dataset.pairs.test
    labels = np.array([p.label for p in test])
    predictions = np.array(
        [1 if (p.left, p.right) in joined else 0 for p in test]
    )
    metrics = f1_from_predictions(labels, predictions)
    return BaselineReport(
        name="Auto-FuzzyJoin",
        dataset=dataset.name,
        test_metrics=metrics,
        timings=timer.summary(),
    )
