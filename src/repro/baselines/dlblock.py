"""DL-Block baseline (Thirumuruganathan et al., PVLDB 2021).

DL-Block is the state-of-the-art deep-learning blocking framework the
paper compares against in Figure 7 / Table VII.  Its strongest variants
use self-supervised representations *without* Sudowoodo's contrastive
matching objective.  Here it is reproduced as kNN blocking over the
masked-LM warm-started encoder's embeddings (no contrastive step), which
is exactly the representational gap the paper's comparison isolates.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core import SudowoodoConfig
from ..core.blocker import Blocker
from ..data import EMDataset
from ..utils import Timer
from .ditto import build_warm_encoder


class DLBlockBlocker(Blocker):
    """kNN blocker over non-contrastive (MLM-only) representations."""

    def __init__(
        self,
        dataset: EMDataset,
        config: Optional[SudowoodoConfig] = None,
    ) -> None:
        config = config or SudowoodoConfig()
        encoder = build_warm_encoder(dataset, config)
        super().__init__(encoder, dataset)


def dlblock_curve(
    dataset: EMDataset,
    ks: Sequence[int],
    config: Optional[SudowoodoConfig] = None,
) -> List[Dict[str, float]]:
    """Recall-CSSR rows of DL-Block, for Figure 7 overlays."""
    return DLBlockBlocker(dataset, config).recall_cssr_curve(ks)
