"""Baselines the paper evaluates against: Ditto, Rotom, DeepMatcher,
ZeroER, Auto-FuzzyJoin, and DL-Block."""

from .autofuzzyjoin import run_autofuzzyjoin
from .deepmatcher import DeepMatcherModel, train_deepmatcher
from .ditto import BaselineReport, build_warm_encoder, manual_examples, train_ditto
from .dlblock import DLBlockBlocker, dlblock_curve
from .rotom import ROTOM_OPERATORS, augmented_copies, train_rotom
from .zeroer import pair_similarity_features, run_zeroer

__all__ = [
    "BaselineReport",
    "DLBlockBlocker",
    "DeepMatcherModel",
    "ROTOM_OPERATORS",
    "augmented_copies",
    "build_warm_encoder",
    "dlblock_curve",
    "manual_examples",
    "pair_similarity_features",
    "run_autofuzzyjoin",
    "run_zeroer",
    "train_deepmatcher",
    "train_ditto",
    "train_rotom",
]
