"""ZeroER baseline (Wu et al., SIGMOD 2020).

Unsupervised EM: featurize candidate pairs with classical similarity
measures, then fit a two-component Gaussian mixture whose components model
the match / non-match generative distributions.  Pairs are labeled by the
posterior of the high-similarity component.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.matcher import f1_from_predictions
from ..data import EMDataset
from ..ml import GaussianMixture
from ..text import TfidfVectorizer, jaccard, overlap_coefficient, word_tokenize
from ..utils import Timer
from .ditto import BaselineReport


def pair_similarity_features(
    dataset: EMDataset, pairs: Sequence[Tuple[int, int]]
) -> np.ndarray:
    """Similarity feature vectors for candidate pairs.

    Features: token Jaccard, overlap coefficient, TF-IDF cosine,
    number-token Jaccard (model numbers / prices), and relative length
    difference — the flavor of ZeroER's similarity-function bank.
    """
    texts_a = [dataset.table_a[i].text() for i in range(len(dataset.table_a))]
    texts_b = [dataset.table_b[j].text() for j in range(len(dataset.table_b))]
    vectorizer = TfidfVectorizer(max_features=512).fit(texts_a + texts_b)
    tfidf_a = vectorizer.transform(texts_a)
    tfidf_b = vectorizer.transform(texts_b)

    def number_tokens(text: str) -> set:
        return {t for t in word_tokenize(text) if any(c.isdigit() for c in t)}

    rows = []
    for left, right in pairs:
        text_a, text_b = texts_a[left], texts_b[right]
        cosine = float(tfidf_a[left] @ tfidf_b[right])
        numbers_a, numbers_b = number_tokens(text_a), number_tokens(text_b)
        union = numbers_a | numbers_b
        number_jaccard = len(numbers_a & numbers_b) / len(union) if union else 0.0
        len_a, len_b = len(text_a.split()), len(text_b.split())
        length_ratio = min(len_a, len_b) / max(len_a, len_b, 1)
        rows.append(
            [
                jaccard(text_a, text_b),
                overlap_coefficient(text_a, text_b),
                cosine,
                number_jaccard,
                length_ratio,
            ]
        )
    return np.array(rows)


def run_zeroer(
    dataset: EMDataset, config_seed: int = 0
) -> BaselineReport:
    """Fit the mixture on all labeled pairs' features; evaluate on test."""
    timer = Timer()
    all_pairs = dataset.pairs.all_pairs()
    with timer.section("featurize"):
        features = pair_similarity_features(
            dataset, [(p.left, p.right) for p in all_pairs]
        )
    with timer.section("fit"):
        mixture = GaussianMixture(num_components=2, seed=config_seed).fit(features)
    match_component = int(mixture.component_order_by_mean()[-1])

    test_index = [
        i for i, p in enumerate(all_pairs) if p in dataset.pairs.test
    ]
    test_features = features[test_index]
    test_labels = np.array([all_pairs[i].label for i in test_index])
    with timer.section("evaluate"):
        posterior = mixture.predict_proba(test_features)[:, match_component]
        predictions = (posterior >= 0.5).astype(np.int64)
    metrics = f1_from_predictions(test_labels, predictions)
    return BaselineReport(
        name="ZeroER",
        dataset=dataset.name,
        test_metrics=metrics,
        timings=timer.summary(),
    )
