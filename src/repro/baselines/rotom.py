"""Rotom baseline (Miao et al., SIGMOD 2021), simplified.

Rotom is a semi-supervised fine-tuner that meta-learns how to combine
multiple data-augmentation operators.  This reproduction keeps the
essential mechanism — per-operator augmented copies of the labeled set
with learned operator weights — and replaces the meta-learning inner loop
with multiplicative-weight updates driven by validation F1 (the paper's
full bi-level optimization is noted as future work in DESIGN.md).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..augment import augment
from ..core import SudowoodoConfig
from ..core.matcher import (
    PairwiseMatcher,
    TrainingExample,
    evaluate_f1,
    finetune_matcher,
)
from ..data import EMDataset
from ..utils import RngStream, Timer
from .ditto import BaselineReport, build_warm_encoder, manual_examples

ROTOM_OPERATORS = ("token_del", "span_shuffle", "col_del")


def augmented_copies(
    examples: Sequence[TrainingExample],
    operator: str,
    weight: float,
    rng: np.random.Generator,
) -> List[TrainingExample]:
    """One augmented copy of each labeled example under ``operator``;
    label-preserving because DA operators are semantics-preserving."""
    copies = []
    for example in examples:
        copies.append(
            TrainingExample(
                augment(example.left, rng, operator),
                augment(example.right, rng, operator),
                example.label,
                example.weight * weight,
            )
        )
    return copies


def train_rotom(
    dataset: EMDataset,
    label_budget: int,
    config: Optional[SudowoodoConfig] = None,
    rounds: int = 2,
) -> BaselineReport:
    """Rotom-style training: per-round operator reweighting by valid F1.

    Each round trains a fresh matcher on labels + weighted augmented
    copies, then multiplies each operator's weight by how much a matcher
    trained on *its* copies alone helps validation F1 (clipped to
    [0.5, 2.0]).  The final model is trained with the last round's weights.
    """
    config = config or SudowoodoConfig()
    timer = Timer()
    rngs = RngStream(config.seed)
    rng = rngs.get("rotom")
    with timer.section("warm_start"):
        encoder = build_warm_encoder(dataset, config)
    manual = manual_examples(dataset, label_budget, config)

    operator_weights: Dict[str, float] = {op: 1.0 for op in ROTOM_OPERATORS}
    matcher = PairwiseMatcher(encoder, head="concat")
    # Augmented copies must not buy extra optimizer steps (the same
    # fixed-step discipline Sudowoodo applies to pseudo labels).
    steps_cap = config.finetune_epochs * max(
        1, int(np.ceil(len(manual) / config.finetune_batch_size))
    )
    with timer.section("train"):
        for round_index in range(max(1, rounds)):
            train_set = list(manual)
            for operator, weight in operator_weights.items():
                train_set.extend(
                    augmented_copies(manual, operator, weight * 0.5, rng)
                )
            matcher = PairwiseMatcher(encoder, head="concat")
            finetune_matcher(matcher, train_set, manual, config, fixed_steps=steps_cap)
            if round_index == rounds - 1:
                break
            baseline_f1 = evaluate_f1(
                matcher,
                [(e.left, e.right) for e in manual],
                [e.label for e in manual],
            )["f1"]
            # Re-weight operators by their standalone usefulness.
            for operator in ROTOM_OPERATORS:
                probe = PairwiseMatcher(encoder, head="concat")
                probe_set = manual + augmented_copies(manual, operator, 0.5, rng)
                finetune_matcher(
                    probe,
                    probe_set,
                    manual,
                    config,
                    fixed_steps=max(4, len(manual) // config.finetune_batch_size),
                )
                probe_f1 = evaluate_f1(
                    probe,
                    [(e.left, e.right) for e in manual],
                    [e.label for e in manual],
                )["f1"]
                ratio = (probe_f1 + 1e-6) / (baseline_f1 + 1e-6)
                operator_weights[operator] = float(
                    np.clip(operator_weights[operator] * ratio, 0.5, 2.0)
                )

    test_pairs = [dataset.serialize_pair(p) for p in dataset.pairs.test]
    test_labels = [p.label for p in dataset.pairs.test]
    with timer.section("evaluate"):
        metrics = evaluate_f1(matcher, test_pairs, test_labels)
    return BaselineReport(
        name=f"Rotom ({label_budget})",
        dataset=dataset.name,
        test_metrics=metrics,
        timings=timer.summary(),
    )
