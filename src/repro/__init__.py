"""repro — reproduction of Sudowoodo (ICDE 2023).

Contrastive self-supervised learning for multi-purpose data integration
and preparation: entity matching (blocking + matching), data cleaning
(error correction), and semantic column type discovery.

The recommended surface is the session API (``repro.api``): pretrain one
encoder, attach any number of tasks, serve them all.

>>> from repro import SudowoodoConfig, SudowoodoSession
>>> from repro.data.generators import load_em_benchmark
>>> dataset = load_em_benchmark("AB", scale=0.05)
>>> session = SudowoodoSession(SudowoodoConfig(pretrain_epochs=1))
>>> session.pretrain(dataset.all_items())  # doctest: +SKIP
>>> report = session.task("match").fit(dataset, label_budget=100).report()  # doctest: +SKIP
"""

from .api import SudowoodoSession, available_tasks, register_task
from .core import (
    Blocker,
    CandidateSet,
    PairwiseMatcher,
    PipelineReport,
    SudowoodoConfig,
    SudowoodoEncoder,
    SudowoodoPipeline,
)
from .serve import EmbeddingStore, MatchService, build_backend

__version__ = "1.2.0"

__all__ = [
    "Blocker",
    "CandidateSet",
    "EmbeddingStore",
    "MatchService",
    "PairwiseMatcher",
    "PipelineReport",
    "SudowoodoConfig",
    "SudowoodoEncoder",
    "SudowoodoPipeline",
    "SudowoodoSession",
    "available_tasks",
    "build_backend",
    "register_task",
    "__version__",
]
