"""repro — reproduction of Sudowoodo (ICDE 2023).

Contrastive self-supervised learning for multi-purpose data integration
and preparation: entity matching (blocking + matching), data cleaning
(error correction), and semantic column type discovery.

Public API highlights:

>>> from repro import SudowoodoConfig, SudowoodoPipeline
>>> from repro.data.generators import load_em_benchmark
>>> dataset = load_em_benchmark("AB", scale=0.05)
>>> pipeline = SudowoodoPipeline(SudowoodoConfig(pretrain_epochs=1))
>>> report = pipeline.run(dataset, label_budget=100)  # doctest: +SKIP
"""

from .core import (
    Blocker,
    CandidateSet,
    PairwiseMatcher,
    PipelineReport,
    SudowoodoConfig,
    SudowoodoEncoder,
    SudowoodoPipeline,
)
from .serve import EmbeddingStore, MatchService, build_backend

__version__ = "1.1.0"

__all__ = [
    "Blocker",
    "CandidateSet",
    "EmbeddingStore",
    "MatchService",
    "PairwiseMatcher",
    "PipelineReport",
    "SudowoodoConfig",
    "SudowoodoEncoder",
    "SudowoodoPipeline",
    "build_backend",
    "__version__",
]
