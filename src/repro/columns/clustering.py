"""Semantic type discovery via connected components (Section V-B, Table
IX / XIII).

Predicted same-type edges form a graph over columns; connected components
are the discovered semantic types.  Quality is measured by cluster purity
against ground-truth types, and fine-grained discovery is demonstrated by
clusters that isolate hidden *subtypes* (e.g. central-EU cities inside the
``city`` type).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import networkx as nx
import numpy as np

from ..data.generators.columns import ColumnCorpus


@dataclass
class ClusterReport:
    num_clusters: int
    mean_purity: float
    clusters: List[List[int]] = field(default_factory=list)
    subtype_discoveries: List[Dict[str, str]] = field(default_factory=list)


def cluster_columns(
    corpus: ColumnCorpus, edges: Sequence[Tuple[int, int]]
) -> List[List[int]]:
    """Connected components over predicted same-type edges; singletons are
    kept (a column with no matches is its own type)."""
    graph = nx.Graph()
    graph.add_nodes_from(range(len(corpus)))
    graph.add_edges_from(edges)
    return [sorted(component) for component in nx.connected_components(graph)]


def cluster_purity(corpus: ColumnCorpus, clusters: Sequence[Sequence[int]]) -> float:
    """Column-weighted majority-type purity (the paper reports 89.9%)."""
    total = 0
    pure = 0.0
    for cluster in clusters:
        types = Counter(corpus[i].semantic_type for i in cluster)
        pure += types.most_common(1)[0][1]
        total += len(cluster)
    return pure / total if total else 0.0


def find_subtype_clusters(
    corpus: ColumnCorpus,
    clusters: Sequence[Sequence[int]],
    min_size: int = 3,
    purity_threshold: float = 0.8,
) -> List[Dict[str, str]]:
    """Clusters that isolate a single *subtype* of a multi-subtype type —
    the "finer than the 78 ground-truth labels" discoveries of Table IX."""
    discoveries = []
    for cluster in clusters:
        if len(cluster) < min_size:
            continue
        subtype_counts = Counter(corpus[i].subtype for i in cluster)
        subtype, count = subtype_counts.most_common(1)[0]
        if count / len(cluster) < purity_threshold:
            continue
        semantic_types = {corpus[i].semantic_type for i in cluster}
        if len(semantic_types) != 1:
            continue
        semantic_type = next(iter(semantic_types))
        # Only meaningful when the parent type has multiple subtypes.
        all_subtypes = {
            c.subtype for c in corpus.columns if c.semantic_type == semantic_type
        }
        if len(all_subtypes) < 2:
            continue
        discoveries.append(
            {
                "type": semantic_type,
                "subtype": subtype,
                "size": str(len(cluster)),
                "example": corpus[cluster[0]].values[0],
            }
        )
    return discoveries


def discover_types(
    corpus: ColumnCorpus, edges: Sequence[Tuple[int, int]]
) -> ClusterReport:
    clusters = cluster_columns(corpus, edges)
    multi = [c for c in clusters if len(c) >= 2]
    return ClusterReport(
        num_clusters=len(clusters),
        mean_purity=cluster_purity(corpus, clusters),
        clusters=multi,
        subtype_discoveries=find_subtype_clusters(corpus, multi),
    )
