"""Sherlock / Sato column-embedding baselines (Tables X and XII).

Sherlock (Hulsebos et al., KDD 2019) represents a column with hand-crafted
statistical features: character-class distributions, value-length stats,
cardinality, plus aggregated character n-gram evidence.  Sato (Zhang et
al., PVLDB 2020) adds topic-model context features; here the LDA topics
are replaced by an LSA (TF-IDF + truncated SVD) topic vector plus a
table-context average, preserving Sato's "column + table topic" design.

For pairwise column matching the extractors feed ``concat(v_a, v_b,
|v_a - v_b|)`` into LR / SVM / GBT / RF classifiers, with SIM (cosine
only) as the fifth baseline — exactly the grid of Table XII.
"""

from __future__ import annotations

import hashlib
import math
from collections import Counter
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..data.generators.columns import Column, ColumnCorpus
from ..ml import (
    GradientBoostedTrees,
    LinearSVM,
    LogisticRegression,
    RandomForest,
    precision_recall_f1,
)
from ..text import TfidfVectorizer
from ..utils import RngStream


def _char_class_fractions(text: str) -> List[float]:
    if not text:
        return [0.0] * 5
    counts = Counter()
    for char in text:
        if char.isdigit():
            counts["digit"] += 1
        elif char.isalpha():
            counts["alpha"] += 1
        elif char.isspace():
            counts["space"] += 1
        elif char in ".,:;-/":
            counts["punct"] += 1
        else:
            counts["other"] += 1
    total = len(text)
    return [counts[k] / total for k in ("digit", "alpha", "space", "punct", "other")]


def _entropy(values: Sequence[str]) -> float:
    counts = Counter(values)
    total = sum(counts.values())
    return -sum(
        (c / total) * math.log(c / total + 1e-12) for c in counts.values()
    )


def _hashed_ngrams(values: Sequence[str], dims: int = 32) -> np.ndarray:
    vector = np.zeros(dims)
    for value in values:
        padded = f"^{value}$"
        for i in range(len(padded) - 1):
            gram = padded[i : i + 2]
            digest = hashlib.md5(gram.encode("utf-8")).digest()
            vector[int.from_bytes(digest[:4], "little") % dims] += 1.0
    norm = np.linalg.norm(vector)
    return vector / norm if norm > 0 else vector


class SherlockFeaturizer:
    """Statistical single-column features (47-dim at these settings)."""

    def __init__(self, ngram_dims: int = 32) -> None:
        self.ngram_dims = ngram_dims

    def fit(self, corpus: ColumnCorpus) -> "SherlockFeaturizer":
        return self  # stateless

    def features(self, column: Column) -> np.ndarray:
        values = list(column.values)
        joined = " ".join(values)
        lengths = np.array([len(v) for v in values], dtype=np.float64)
        token_counts = np.array([len(v.split()) for v in values], dtype=np.float64)
        numeric = np.array(
            [1.0 if v.replace(".", "", 1).replace(",", "").isdigit() else 0.0
             for v in values]
        )
        stats = [
            lengths.mean(),
            lengths.std(),
            lengths.min(),
            lengths.max(),
            token_counts.mean(),
            token_counts.std(),
            len(set(values)) / len(values),
            _entropy(values),
            numeric.mean(),
            float(len(values)),
        ]
        return np.concatenate(
            [
                np.array(stats),
                np.array(_char_class_fractions(joined)),
                _hashed_ngrams(values, self.ngram_dims),
            ]
        )

    def matrix(self, corpus: ColumnCorpus) -> np.ndarray:
        return np.vstack([self.features(c) for c in corpus.columns])


class SatoFeaturizer(SherlockFeaturizer):
    """Sherlock features + LSA topic vector + table-context topic average."""

    def __init__(self, ngram_dims: int = 32, topics: int = 12) -> None:
        super().__init__(ngram_dims)
        self.topics = topics

    def fit(self, corpus: ColumnCorpus) -> "SatoFeaturizer":
        texts = [c.text() for c in corpus.columns]
        tfidf = TfidfVectorizer(max_features=512).fit_transform(texts)
        # Truncated SVD = LSA topics (the LDA stand-in).
        u, s, _ = np.linalg.svd(tfidf, full_matrices=False)
        k = min(self.topics, u.shape[1])
        self._topic_vectors = u[:, :k] * s[:k]
        if k < self.topics:
            padding = np.zeros((u.shape[0], self.topics - k))
            self._topic_vectors = np.hstack([self._topic_vectors, padding])
        # Table context: average topic vector of the column's table.
        self._context = np.zeros_like(self._topic_vectors)
        table_members: Dict[int, List[int]] = {}
        for index, column in enumerate(corpus.columns):
            table_members.setdefault(column.table_id, []).append(index)
        for members in table_members.values():
            mean_vector = self._topic_vectors[members].mean(axis=0)
            for index in members:
                self._context[index] = mean_vector
        self._index_of = {c.column_id: i for i, c in enumerate(corpus.columns)}
        return self

    def features(self, column: Column) -> np.ndarray:
        base = super().features(column)
        row = self._index_of[column.column_id]
        return np.concatenate(
            [base, self._topic_vectors[row], self._context[row]]
        )


def pair_features(va: np.ndarray, vb: np.ndarray) -> np.ndarray:
    """The appendix's pair representation: concat(v_a, v_b, |v_a - v_b|)."""
    return np.concatenate([va, vb, np.abs(va - vb)])


CLASSIFIER_FACTORIES: Dict[str, Callable] = {
    "LR": lambda: LogisticRegression(),
    "SVM": lambda: LinearSVM(),
    "GBT": lambda: GradientBoostedTrees(),
    "RF": lambda: RandomForest(num_trees=15, max_depth=6),
}


def evaluate_feature_baseline(
    corpus: ColumnCorpus,
    featurizer,
    splits: Dict[str, List[Tuple[int, int, int]]],
    classifier: str,
) -> Dict[str, Dict[str, float]]:
    """Train one (featurizer, classifier) variant; returns valid and test
    P/R/F1 rows for Table XII."""
    featurizer.fit(corpus)
    vectors = featurizer.matrix(corpus)

    def assemble(pairs):
        features = np.vstack(
            [pair_features(vectors[i], vectors[j]) for i, j, _ in pairs]
        )
        labels = np.array([label for _, _, label in pairs])
        return features, labels

    train_x, train_y = assemble(splits["train"])
    valid_x, valid_y = assemble(splits["valid"])
    test_x, test_y = assemble(splits["test"])

    if classifier == "SIM":
        train_sims = _pair_cosines(vectors, splits["train"])
        threshold = _best_f1_threshold(train_sims, train_y)
        valid_pred = (_pair_cosines(vectors, splits["valid"]) >= threshold).astype(int)
        test_pred = (_pair_cosines(vectors, splits["test"]) >= threshold).astype(int)
    else:
        model = CLASSIFIER_FACTORIES[classifier]()
        model.fit(train_x, train_y)
        valid_pred = model.predict(valid_x)
        test_pred = model.predict(test_x)
    return {
        "valid": precision_recall_f1(valid_y, valid_pred),
        "test": precision_recall_f1(test_y, test_pred),
    }


def _pair_cosines(vectors: np.ndarray, pairs) -> np.ndarray:
    sims = []
    for i, j, _ in pairs:
        a, b = vectors[i], vectors[j]
        denom = np.linalg.norm(a) * np.linalg.norm(b)
        sims.append(float(a @ b / denom) if denom > 0 else 0.0)
    return np.array(sims)


def _best_f1_threshold(scores: np.ndarray, labels: np.ndarray) -> float:
    best_t, best_f1 = 0.5, -1.0
    for t in np.unique(np.round(scores, 3)):
        metrics = precision_recall_f1(labels, (scores >= t).astype(int))
        if metrics["f1"] >= best_f1:
            best_f1 = metrics["f1"]
            best_t = float(t)
    return best_t
