"""Column matching and semantic type discovery (Section V-B)."""

from .baselines import (
    CLASSIFIER_FACTORIES,
    SatoFeaturizer,
    SherlockFeaturizer,
    evaluate_feature_baseline,
    pair_features,
)
from .clustering import (
    ClusterReport,
    cluster_columns,
    cluster_purity,
    discover_types,
    find_subtype_clusters,
)
from .matching import ColumnMatchingPipeline, ColumnMatchReport, column_config

__all__ = [
    "CLASSIFIER_FACTORIES",
    "ClusterReport",
    "ColumnMatchReport",
    "ColumnMatchingPipeline",
    "SatoFeaturizer",
    "SherlockFeaturizer",
    "cluster_columns",
    "cluster_purity",
    "column_config",
    "discover_types",
    "evaluate_feature_baseline",
    "find_subtype_clusters",
    "pair_features",
]
