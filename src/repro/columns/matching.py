"""Column matching for semantic type discovery (Section V-B).

Data items are table columns serialized as ``[VAL] v1 [VAL] v2 ...``
(bare-bone: no column names or table metadata).  The pipeline mirrors EM:
contrastive pre-training over all columns, kNN blocking to extract
candidate column pairs, labeling a sample of candidates (match = same
ground-truth semantic type), and fine-tuning the pairwise matcher.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..core import SudowoodoConfig
from ..core.matcher import (
    PairwiseMatcher,
    TrainingExample,
    evaluate_f1,
    finetune_matcher,
)
from ..core.pipeline import _apply_class_balance
from ..data.generators.columns import ColumnCorpus
from ..serve import EmbeddingStore, build_backend
from ..utils import RngStream, Timer


def column_config(**overrides) -> SudowoodoConfig:
    """Column-matching configuration: attribute-level DA operators don't
    apply; cell_shuffle replaces them (Section V-B).

    Import shim for :meth:`SudowoodoConfig.for_task`\\ ``("column_match")``
    — the per-task presets now live in one place on the config class.
    """
    return SudowoodoConfig.for_task("column_match", **overrides)


@dataclass
class ColumnMatchReport:
    valid_metrics: Dict[str, float]
    test_metrics: Dict[str, float]
    num_candidates: int
    positive_rate: float
    timings: Dict[str, float] = field(default_factory=dict)


class ColumnMatchingPipeline:
    """Pretrain -> block -> label -> fine-tune over a column corpus.

    .. deprecated::
        ``ColumnMatchingPipeline`` is now a shim over
        :class:`repro.api.SudowoodoSession`; new code should use
        ``session.task("column_match")`` or
        ``session.task("column_cluster")`` (see ``docs/api.md``), which
        share one pre-training run across every workload.
    """

    def __init__(
        self,
        config: Optional[SudowoodoConfig] = None,
        max_values_per_column: int = 8,
    ) -> None:
        warnings.warn(
            "ColumnMatchingPipeline is deprecated; use "
            "repro.api.SudowoodoSession and session.task('column_match') "
            "instead (see docs/api.md)",
            DeprecationWarning,
            stacklevel=2,
        )
        self._init_state(config, max_values_per_column)

    def _init_state(
        self, config: Optional[SudowoodoConfig], max_values_per_column: int
    ) -> None:
        self.config = config or column_config()
        self.max_values = max_values_per_column
        self.timer = Timer()
        self.matcher: Optional[PairwiseMatcher] = None
        self.store: Optional[EmbeddingStore] = None
        # Session-attached mode: a pre-trained encoder (a private clone,
        # safe to fine-tune) plus the session's shared store;
        # pretrain_on() then only embeds and never clears the shared cache.
        self._adopted_encoder = None
        self._shared_store = False

    @classmethod
    def _attached(
        cls,
        config: SudowoodoConfig,
        encoder,
        store: EmbeddingStore,
        max_values_per_column: int = 8,
    ) -> "ColumnMatchingPipeline":
        """Session-internal constructor: adopt a pre-trained encoder and a
        shared embedding store instead of pre-training (no deprecation
        warning — this is the engine behind ``session.task("column_match")``)."""
        pipeline = cls.__new__(cls)
        pipeline._init_state(config, max_values_per_column)
        pipeline._adopted_encoder = encoder
        pipeline.store = store
        pipeline._shared_store = True
        return pipeline

    # ------------------------------------------------------------------
    def pretrain_on(self, corpus: ColumnCorpus) -> "ColumnMatchingPipeline":
        """Pre-train on serialized columns and warm the embedding store.

        In session-attached mode pre-training is skipped (the session
        already paid for it) and only the embed step runs."""
        self.corpus = corpus
        self.texts = corpus.serialized(max_values=self.max_values)
        if self._adopted_encoder is not None:
            self.encoder = self._adopted_encoder
        else:
            from ..api.session import SudowoodoSession  # deferred: api imports columns

            with self.timer.section("pretrain"):
                # The session is the one pre-training implementation; this
                # driver adopts its encoder and store.
                session = SudowoodoSession(self.config)
                session.pretrain(self.texts)
            self.encoder = session.encoder
            self.store = session.store
        with self.timer.section("embed"):
            raw = self.store.embed_batch(self.texts)
            raw = raw - raw.mean(axis=0, keepdims=True)
            norms = np.maximum(np.linalg.norm(raw, axis=1, keepdims=True), 1e-12)
            self.vectors = raw / norms
        self._backend = build_backend(self.config).build(self.vectors)
        return self

    # ------------------------------------------------------------------
    def candidate_pairs(self, k: int = 20) -> List[Tuple[int, int]]:
        """kNN blocking among columns (self-match excluded, deduplicated).

        Candidate generation goes through the config-selected ANN backend
        (exact by default, LSH via ``ann_backend="lsh"``).
        """
        with self.timer.section("blocking"):
            indices, _ = self._backend.query(self.vectors, k + 1)
            pairs: Set[Tuple[int, int]] = set()
            for i in range(indices.shape[0]):
                for j in indices[i]:
                    j = int(j)
                    if j == i or j < 0:
                        continue
                    pairs.add((min(i, j), max(i, j)))
        return sorted(pairs)

    # ------------------------------------------------------------------
    def build_labeled_pairs(
        self, candidates: Sequence[Tuple[int, int]], num_labels: int
    ) -> Dict[str, List[Tuple[int, int, int]]]:
        """Label a uniform sample of candidates with ground truth and split
        2:1:1 (the paper's protocol for the VizNet study)."""
        rng = RngStream(self.config.seed).get("column-labels")
        chosen = rng.choice(
            len(candidates), size=min(num_labels, len(candidates)), replace=False
        )
        labeled = [
            (
                candidates[int(i)][0],
                candidates[int(i)][1],
                int(self.corpus.same_type(*candidates[int(i)])),
            )
            for i in chosen
        ]
        rng.shuffle(labeled)
        n = len(labeled)
        train_end = n // 2
        valid_end = train_end + n // 4
        return {
            "train": labeled[:train_end],
            "valid": labeled[train_end:valid_end],
            "test": labeled[valid_end:],
        }

    def _examples(
        self, labeled: Sequence[Tuple[int, int, int]]
    ) -> List[TrainingExample]:
        return [
            TrainingExample(self.texts[i], self.texts[j], label, 1.0)
            for i, j, label in labeled
        ]

    # ------------------------------------------------------------------
    def train_and_evaluate(
        self, k: int = 20, num_labels: int = 1000
    ) -> ColumnMatchReport:
        candidates = self.candidate_pairs(k)
        splits = self.build_labeled_pairs(candidates, num_labels)
        train = self._examples(splits["train"])
        if self.config.class_balance:
            _apply_class_balance(train)
        valid = self._examples(splits["valid"])
        self.matcher = PairwiseMatcher(self.encoder)
        with self.timer.section("finetune"):
            finetune_matcher(self.matcher, train, valid, self.config)
        if self.store is not None and not self._shared_store:
            # Fine-tuning mutated the shared encoder; invalidate cached
            # vectors so any MatchService reusing this store re-encodes.
            # A session-shared store is exempt: the fine-tuned encoder is
            # a private clone, so the shared cache is still pristine.
            self.store.clear()
        with self.timer.section("evaluate"):
            valid_metrics = evaluate_f1(
                self.matcher,
                [(e.left, e.right) for e in valid],
                [e.label for e in valid],
            )
            test = self._examples(splits["test"])
            test_metrics = evaluate_f1(
                self.matcher,
                [(e.left, e.right) for e in test],
                [e.label for e in test],
            )
        positives = sum(label for _, _, label in splits["train"])
        return ColumnMatchReport(
            valid_metrics=valid_metrics,
            test_metrics=test_metrics,
            num_candidates=len(candidates),
            positive_rate=positives / max(1, len(splits["train"])),
            timings=self.timer.summary(),
        )

    # ------------------------------------------------------------------
    def predict_edges(
        self,
        candidates: Sequence[Tuple[int, int]],
        batch_size: int = 64,
        threshold: float = 0.9,
    ) -> List[Tuple[int, int]]:
        """Candidate pairs the fine-tuned matcher accepts as same-type.

        ``threshold`` trades cluster granularity for purity: connected
        components amplify every false edge, so type discovery uses a
        high-precision cut (the paper notes cluster granularity is
        controlled by adjusting the clustering step).  Use 0.5 for the raw
        matcher decision.
        """
        if self.matcher is None:
            raise RuntimeError("train the matcher first")
        pairs = [(self.texts[i], self.texts[j]) for i, j in candidates]
        probabilities = self.matcher.predict_proba(pairs, batch_size=batch_size)
        return [
            c
            for c, p in zip(candidates, probabilities[:, 1])
            if p >= threshold
        ]
