"""Data model and synthetic benchmark generators."""

from .em_dataset import EMDataset
from .records import (
    LabeledPair,
    PairSplit,
    Record,
    Table,
    serialize_cell_context_free,
    serialize_column,
    serialize_record,
    serialize_row_contextual,
)

__all__ = [
    "EMDataset",
    "LabeledPair",
    "PairSplit",
    "Record",
    "Table",
    "serialize_cell_context_free",
    "serialize_column",
    "serialize_record",
    "serialize_row_contextual",
]
