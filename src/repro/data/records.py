"""Data model: records, tables, and the paper's serialization schemes.

Everything Sudowoodo matches — entity entries, cell corrections, table
columns — is reduced to a *serialized data item*: a token sequence with
``[COL]``/``[VAL]`` structure markers (Section II-B, following Ditto).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class Record:
    """One entity entry: an id plus attribute name -> string value."""

    record_id: int
    attributes: Dict[str, str]

    def get(self, attribute: str) -> str:
        return self.attributes.get(attribute, "")

    def with_value(self, attribute: str, value: str) -> "Record":
        updated = dict(self.attributes)
        updated[attribute] = value
        return Record(self.record_id, updated)

    def text(self) -> str:
        """All attribute values joined — used by TF-IDF and Jaccard."""
        return " ".join(v for v in self.attributes.values() if v)


@dataclass
class Table:
    """An ordered collection of records sharing a schema."""

    name: str
    schema: List[str]
    records: List[Record] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[Record]:
        return iter(self.records)

    def __getitem__(self, index: int) -> Record:
        return self.records[index]

    def append(self, attributes: Dict[str, str]) -> Record:
        record = Record(len(self.records), dict(attributes))
        self.records.append(record)
        return record

    def column_values(self, attribute: str) -> List[str]:
        return [record.get(attribute) for record in self.records]


def serialize_record(record: Record, schema: Optional[Sequence[str]] = None) -> str:
    """Ditto-style serialization:

    ``[COL] title [VAL] instant immers ... [COL] price [VAL] 36.11``

    Attributes with empty values keep their ``[COL]`` marker with an empty
    ``[VAL]`` (matching the serialized examples in the paper's Figure 13).
    """
    names = schema if schema is not None else list(record.attributes)
    parts = []
    for name in names:
        parts.append(f"[COL] {name} [VAL] {record.get(name)}".rstrip())
    return " ".join(parts)


def serialize_cell_context_free(attribute: str, value: str) -> str:
    """Context-free cell serialization for cleaning: ``[COL] attr [VAL] v``."""
    return f"[COL] {attribute} [VAL] {value}".rstrip()


def serialize_row_contextual(
    record: Record,
    schema: Sequence[str],
    replace_attribute: Optional[str] = None,
    replacement: Optional[str] = None,
) -> str:
    """Contextual serialization for cleaning (Section V-A): the full row,
    optionally with one cell replaced by a candidate correction."""
    parts = []
    for name in schema:
        value = record.get(name)
        if replace_attribute is not None and name == replace_attribute:
            value = replacement if replacement is not None else value
        parts.append(f"[COL] {name} [VAL] {value}".rstrip())
    return " ".join(parts)


def serialize_column(values: Sequence[str], max_values: Optional[int] = None) -> str:
    """Column serialization for type discovery (Section V-B):

    ``[VAL] New York [VAL] California [VAL] Florida``

    Deliberately bare-bone: no column names or table metadata, matching the
    paper's choice to demonstrate content-only matching.
    """
    chosen = list(values if max_values is None else values[:max_values])
    return " ".join(f"[VAL] {v}".rstrip() for v in chosen)


@dataclass(frozen=True)
class LabeledPair:
    """A labeled candidate pair: indices into tables A and B plus 0/1 label."""

    left: int
    right: int
    label: int


@dataclass
class PairSplit:
    """Train/valid/test labeled pairs (the DeepMatcher dataset layout)."""

    train: List[LabeledPair] = field(default_factory=list)
    valid: List[LabeledPair] = field(default_factory=list)
    test: List[LabeledPair] = field(default_factory=list)

    def all_pairs(self) -> List[LabeledPair]:
        return self.train + self.valid + self.test

    def positive_rate(self) -> float:
        pairs = self.all_pairs()
        if not pairs:
            return 0.0
        return sum(p.label for p in pairs) / len(pairs)
