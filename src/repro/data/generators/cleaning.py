"""Dirty-table generators for the data-cleaning experiments.

Reproduces the structure of the four benchmarks in Table III of the paper:

    dataset   size        %error  error types
    beers     2410 x 11   16%     MV, FI, VAD
    hospital  1000 x 20    3%     T, VAD
    rayyan    1000 x 11    9%     MV, T, FI, VAD
    tax       5000 x 15    4%     T, FI, VAD

A clean table is generated first (with functional dependencies such as
``zip -> city, state`` and ``brewery_id -> brewery_name, city``), then
errors of the dataset's types are injected at its rate, remembering ground
truth.  Error types follow the paper / Baran taxonomy:

* MV  — missing value: the cell is blanked or set to ``N/A``;
* T   — typo: a character-level edit;
* FI  — formatting issue: a value rendered in a different convention;
* VAD — violated attribute dependency: the cell takes a *valid domain
  value* that contradicts the row's FD determinant (e.g. the city of a
  different zip code).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..records import Record, Table
from . import vocab

MV, TYPO, FI, VAD = "MV", "T", "FI", "VAD"


@dataclass
class CleaningDataset:
    """A dirty table with aligned clean ground truth."""

    name: str
    schema: List[str]
    clean: Table
    dirty: Table
    error_types: Dict[Tuple[int, str], str] = field(default_factory=dict)
    # Functional dependencies as determinant -> dependents, used by the
    # FD-aware candidate generator.
    dependencies: Dict[str, List[str]] = field(default_factory=dict)

    # ------------------------------------------------------------------
    def error_cells(self) -> List[Tuple[int, str]]:
        return sorted(self.error_types, key=lambda cell: (cell[0], cell[1]))

    def is_error(self, row: int, attribute: str) -> bool:
        return (row, attribute) in self.error_types

    def ground_truth(self, row: int, attribute: str) -> str:
        return self.clean[row].get(attribute)

    def error_rate(self) -> float:
        total = len(self.dirty) * len(self.schema)
        return len(self.error_types) / total if total else 0.0

    def error_type_names(self) -> List[str]:
        return sorted(set(self.error_types.values()))

    def stats(self) -> Dict[str, object]:
        """Row of the paper's Table III (coverage/#cand are added by the
        candidate generator)."""
        return {
            "dataset": self.name,
            "rows": len(self.dirty),
            "columns": len(self.schema),
            "error_rate": self.error_rate(),
            "error_types": ", ".join(self.error_type_names()),
        }


# ----------------------------------------------------------------------
# Clean-table builders
# ----------------------------------------------------------------------
def _zip_directory(rng: np.random.Generator, count: int) -> Dict[str, Tuple[str, str]]:
    directory = {}
    while len(directory) < count:
        zip_code = str(rng.integers(10000, 99999))
        directory[zip_code] = (
            str(rng.choice(vocab.US_CITIES)),
            str(rng.choice(vocab.US_STATES)),
        )
    return directory


def _build_beers(rng: np.random.Generator, rows: int) -> Tuple[Table, Dict[str, List[str]]]:
    breweries = {}
    for brewery_id in range(max(4, rows // 12)):
        breweries[str(1000 + brewery_id)] = {
            "brewery_name": f"{rng.choice(vocab.US_CITIES).split()[0]} "
            f"{rng.choice(['brewing company', 'brewery', 'meadery', 'ales'])}",
            "city": str(rng.choice(vocab.US_CITIES)),
            "state": str(rng.choice(vocab.US_STATES)),
        }
    schema = [
        "beer_id", "beer_name", "style", "ounces", "abv", "ibu",
        "brewery_id", "brewery_name", "city", "state", "country",
    ]
    table = Table(name="beers", schema=schema)
    brewery_ids = list(breweries)
    for i in range(rows):
        brewery_id = str(rng.choice(brewery_ids))
        info = breweries[brewery_id]
        table.append(
            {
                "beer_id": str(i + 1),
                "beer_name": " ".join(
                    rng.choice(vocab.BEER_WORDS, size=2, replace=False)
                ),
                "style": str(rng.choice(vocab.BEER_STYLES)),
                "ounces": str(rng.choice(["12", "16", "24", "32"])),
                "abv": f"{rng.uniform(0.03, 0.12):.3f}",
                "ibu": str(rng.integers(5, 120)),
                "brewery_id": brewery_id,
                "brewery_name": info["brewery_name"],
                "city": info["city"],
                "state": info["state"],
                "country": "us",
            }
        )
    deps = {"brewery_id": ["brewery_name", "city", "state"]}
    return table, deps


def _build_hospital(rng: np.random.Generator, rows: int) -> Tuple[Table, Dict[str, List[str]]]:
    zips = _zip_directory(rng, max(6, rows // 10))
    measures = {}
    for condition in vocab.CONDITIONS:
        prefix = vocab.MEASURE_PREFIXES[vocab.CONDITIONS.index(condition)]
        for variant in range(1, 4):
            measures[f"{prefix}-{variant}"] = condition
    schema = [
        "provider_id", "name", "address", "city", "state", "zip", "county",
        "phone", "hospital_type", "owner", "emergency", "condition",
        "measure_code", "measure_name", "score", "sample", "state_avg",
        "quarter", "beds", "rating",
    ]
    table = Table(name="hospital", schema=schema)
    zip_codes = list(zips)
    measure_codes = list(measures)
    for i in range(rows):
        zip_code = str(rng.choice(zip_codes))
        city, state = zips[zip_code]
        code = str(rng.choice(measure_codes))
        condition = measures[code]
        table.append(
            {
                "provider_id": str(10000 + i),
                "name": f"{rng.choice(vocab.LAST_NAMES)} memorial hospital",
                "address": f"{rng.integers(1, 999)} {rng.choice(vocab.STREET_NAMES)}",
                "city": city,
                "state": state,
                "zip": zip_code,
                "county": str(rng.choice(vocab.LAST_NAMES)),
                "phone": f"{rng.integers(2000000, 9999999)}",
                "hospital_type": "acute care",
                "owner": str(
                    rng.choice(
                        ["voluntary non-profit - private", "government", "proprietary"]
                    )
                ),
                "emergency": str(rng.choice(["yes", "no"])),
                "condition": condition,
                "measure_code": code,
                "measure_name": f"{condition} measure {code}",
                "score": str(rng.integers(10, 100)),
                "sample": str(rng.integers(10, 900)),
                "state_avg": f"{state}_{code}",
                "quarter": str(rng.choice(["q1", "q2", "q3", "q4"])),
                "beds": str(rng.integers(20, 900)),
                "rating": str(rng.integers(1, 6)),
            }
        )
    deps = {
        "zip": ["city", "state"],
        "measure_code": ["condition"],
    }
    return table, deps


def _build_rayyan(rng: np.random.Generator, rows: int) -> Tuple[Table, Dict[str, List[str]]]:
    journals = {}
    for _ in range(max(5, rows // 14)):
        title = (
            f"{rng.choice(['journal', 'annals', 'archives'])} of "
            f"{rng.choice(vocab.TOPIC_WORDS)} {rng.choice(vocab.TOPIC_WORDS)}"
        )
        journals[title] = str(rng.choice(vocab.LANGUAGES))
    schema = [
        "article_id", "article_title", "article_language", "journal_title",
        "journal_issn", "article_created_at", "article_pagination",
        "author_list", "year", "volume", "issue",
    ]
    table = Table(name="rayyan", schema=schema)
    journal_titles = list(journals)
    for i in range(rows):
        journal = str(rng.choice(journal_titles))
        start_page = int(rng.integers(1, 300))
        end_page = start_page + int(rng.integers(2, 30))
        month, day = int(rng.integers(1, 13)), int(rng.integers(1, 29))
        year = int(rng.integers(1990, 2022))
        num_authors = int(rng.integers(1, 4))
        authors = ", ".join(
            f"{rng.choice(vocab.FIRST_INITIALS)}. {rng.choice(vocab.LAST_NAMES)}"
            for _ in range(num_authors)
        )
        table.append(
            {
                "article_id": str(i + 1),
                "article_title": " ".join(
                    rng.choice(vocab.TOPIC_WORDS, size=int(rng.integers(4, 8)), replace=False)
                ),
                "article_language": journals[journal],
                "journal_title": journal,
                "journal_issn": f"{rng.integers(1000, 9999)}-{rng.integers(1000, 9999)}",
                "article_created_at": f"{month}/{day}/{str(year)[2:]}",
                "article_pagination": f"{start_page}-{end_page}",
                "author_list": authors,
                "year": str(year),
                "volume": str(rng.integers(1, 60)),
                "issue": str(rng.integers(1, 12)),
            }
        )
    deps = {"journal_title": ["article_language"]}
    return table, deps


def _build_tax(rng: np.random.Generator, rows: int) -> Tuple[Table, Dict[str, List[str]]]:
    zips = _zip_directory(rng, max(8, rows // 25))
    area_codes = {}
    for zip_code, (_, state) in zips.items():
        area_codes.setdefault(state, str(rng.integers(200, 999)))
    schema = [
        "f_name", "l_name", "gender", "area_code", "phone", "city", "state",
        "zip", "marital_status", "has_child", "salary", "rate",
        "single_exemp", "married_exemp", "child_exemp",
    ]
    table = Table(name="tax", schema=schema)
    zip_codes = list(zips)
    for _ in range(rows):
        zip_code = str(rng.choice(zip_codes))
        city, state = zips[zip_code]
        salary = int(rng.integers(2, 20)) * 5000
        rate = round(float(salary) / 50000.0 + 1.0, 1)
        table.append(
            {
                "f_name": str(rng.choice(vocab.LAST_NAMES)).title(),
                "l_name": str(rng.choice(vocab.LAST_NAMES)).title(),
                "gender": str(rng.choice(["m", "f"])),
                "area_code": area_codes[state],
                "phone": f"{rng.integers(200, 999)}-{rng.integers(1000, 9999)}",
                "city": city,
                "state": state,
                "zip": zip_code,
                "marital_status": str(rng.choice(["s", "m"])),
                "has_child": str(rng.choice(["y", "n"])),
                "salary": str(salary),
                "rate": f"{rate:.1f}",
                "single_exemp": str(rng.integers(0, 9000)),
                "married_exemp": str(rng.integers(0, 12000)),
                "child_exemp": str(rng.integers(0, 4000)),
            }
        )
    deps = {"zip": ["city", "state"], "state": ["area_code"]}
    return table, deps


# ----------------------------------------------------------------------
# Error injection
# ----------------------------------------------------------------------
def _inject_typo(value: str, rng: np.random.Generator) -> str:
    if len(value) < 2:
        return value + "x"
    chars = list(value)
    op = int(rng.integers(3))
    pos = int(rng.integers(len(chars) - 1))
    if op == 0:
        chars[pos], chars[pos + 1] = chars[pos + 1], chars[pos]
    elif op == 1:
        chars.insert(pos, chars[pos])
    else:
        chars[pos] = "x"
    return "".join(chars)


def _inject_format(value: str, attribute: str, rng: np.random.Generator) -> str:
    """Render the same value in a different convention."""
    if attribute == "abv":
        return f"{float(value) * 100:.1f}%"
    if attribute == "ounces":
        return f"{value}.0 ounce"
    if attribute in ("phone",):
        return value.replace("-", "")
    if attribute == "article_pagination":
        return value.replace("-", "--")
    if attribute == "article_created_at":
        return value.replace("/", "-")
    if attribute in ("salary", "score", "sample"):
        return f"{int(value):,}"
    if attribute == "rate":
        return f"{float(value):.2f}"
    upper = value.upper()
    if upper != value:
        return upper
    return f" {value} "


def _choose_other_value(
    column: Sequence[str], current: str, rng: np.random.Generator
) -> str:
    alternatives = sorted({v for v in column if v != current and v})
    if not alternatives:
        return current + "x"
    return str(alternatives[int(rng.integers(len(alternatives)))])


_ERROR_INJECTORS = {
    MV: lambda value, attr, column, rng: "" if rng.random() < 0.5 else "n/a",
    TYPO: lambda value, attr, column, rng: _inject_typo(value, rng),
    FI: lambda value, attr, column, rng: _inject_format(value, attr, rng),
    VAD: lambda value, attr, column, rng: _choose_other_value(column, value, rng),
}


@dataclass(frozen=True)
class CleaningEntry:
    key: str
    rows: int
    error_rate: float
    error_types: Tuple[str, ...]
    # Attributes eligible for VAD injection (FD-dependent ones).
    vad_attributes: Tuple[str, ...]
    builder: Callable
    seed: int


_CLEANING_REGISTRY: Dict[str, CleaningEntry] = {
    entry.key: entry
    for entry in [
        CleaningEntry(
            "beers", 2410, 0.16, (MV, FI, VAD),
            ("brewery_name", "city", "state"), _build_beers, 201,
        ),
        CleaningEntry(
            "hospital", 1000, 0.03, (TYPO, VAD),
            ("city", "state", "condition"), _build_hospital, 202,
        ),
        CleaningEntry(
            "rayyan", 1000, 0.09, (MV, TYPO, FI, VAD),
            ("article_language",), _build_rayyan, 203,
        ),
        CleaningEntry(
            "tax", 5000, 0.04, (TYPO, FI, VAD),
            ("city", "state", "area_code"), _build_tax, 204,
        ),
    ]
}

CLEANING_DATASET_KEYS = ["beers", "hospital", "rayyan", "tax"]


def load_cleaning_dataset(
    name: str, scale: float = 1.0, seed: Optional[int] = None
) -> CleaningDataset:
    """Generate the named dirty-table benchmark at the given scale."""
    if name not in _CLEANING_REGISTRY:
        known = ", ".join(sorted(_CLEANING_REGISTRY))
        raise KeyError(f"unknown cleaning dataset {name!r}; known: {known}")
    entry = _CLEANING_REGISTRY[name]
    rng = np.random.default_rng(entry.seed if seed is None else seed)
    rows = max(20, int(entry.rows * scale))
    clean, dependencies = entry.builder(rng, rows)
    dirty, error_types = _inject_errors(clean, entry, rng)
    return CleaningDataset(
        name=name,
        schema=list(clean.schema),
        clean=clean,
        dirty=dirty,
        error_types=error_types,
        dependencies=dependencies,
    )


def _inject_errors(
    clean: Table, entry: CleaningEntry, rng: np.random.Generator
) -> Tuple[Table, Dict[Tuple[int, str], str]]:
    columns = {attr: clean.column_values(attr) for attr in clean.schema}
    num_cells = len(clean) * len(clean.schema)
    num_errors = int(round(num_cells * entry.error_rate))

    # Sample distinct cells; id-like first columns are left intact so rows
    # stay identifiable (matching the benchmarks, whose key columns are clean).
    eligible_attrs = [a for a in clean.schema if not a.endswith("_id") and a != "provider_id"]
    cells: Set[Tuple[int, str]] = set()
    while len(cells) < num_errors:
        row = int(rng.integers(len(clean)))
        attr = str(rng.choice(eligible_attrs))
        cells.add((row, attr))

    dirty = Table(name=f"{clean.name}-dirty", schema=list(clean.schema))
    for record in clean:
        dirty.append(dict(record.attributes))

    error_types: Dict[Tuple[int, str], str] = {}
    for row, attr in sorted(cells):
        allowed = [
            t
            for t in entry.error_types
            if t != VAD or attr in entry.vad_attributes
        ]
        error_type = str(rng.choice(allowed))
        original = dirty[row].get(attr)
        corrupted = _ERROR_INJECTORS[error_type](
            original, attr, columns[attr], rng
        )
        if corrupted == original:
            corrupted = _inject_typo(original, rng)
            error_type = TYPO if TYPO in entry.error_types else error_type
        dirty.records[row] = dirty.records[row].with_value(attr, corrupted)
        error_types[(row, attr)] = error_type
    return dirty, error_types
