"""Synthetic column corpus for semantic type discovery (VizNet stand-in).

The paper's case study extracts ~119k columns annotated with 78 semantic
types from VizNet.  This generator produces a seeded corpus of typed
columns over a smaller hierarchy; crucially several types carry hidden
*subtypes* (``city`` -> US vs central-EU cities, ``result`` -> ball-game
vs baseball events) so the "discovers finer-grained types than the ground
truth" result (Table IX) can be demonstrated mechanically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..records import serialize_column
from . import vocab


@dataclass(frozen=True)
class Column:
    """One table column: values plus ground-truth (sub)type annotations."""

    column_id: int
    table_id: int
    semantic_type: str
    subtype: str
    values: Tuple[str, ...]

    def serialize(self, max_values: Optional[int] = None) -> str:
        return serialize_column(self.values, max_values=max_values)

    def text(self) -> str:
        return " ".join(self.values)


Sampler = Callable[[np.random.Generator], str]


def _words(pool: Sequence[str]) -> Sampler:
    return lambda rng: str(rng.choice(pool))


def _name(rng: np.random.Generator) -> str:
    return f"{rng.choice(vocab.LAST_NAMES)}, {rng.choice(vocab.FIRST_INITIALS)}."


def _company(rng: np.random.Generator) -> str:
    return f"{rng.choice(vocab.LAST_NAMES)} {rng.choice(vocab.COMPANY_SUFFIXES)}"


def _weight(rng: np.random.Generator) -> str:
    style = rng.integers(3)
    amount = int(rng.integers(1, 60))
    if style == 0:
        return f"{amount} lbs"
    if style == 1:
        return f"{amount}kg"
    return f"up to {amount} lbs"


def _ball_game_result(rng: np.random.Generator) -> str:
    outcome = rng.choice(["win", "loss", "w", "l"])
    return f"{outcome} {rng.integers(0, 9)}-{rng.integers(0, 9)}"


def _baseball_event(rng: np.random.Generator) -> str:
    return str(
        rng.choice(
            [
                "single, left field", "pop fly out, center field", "strikeout",
                "walk", "pitcher to first base", "double, right field",
                "home run", "ground out, shortstop",
            ]
        )
    )


def _year(rng: np.random.Generator) -> str:
    return str(rng.integers(1950, 2023))


def _age(rng: np.random.Generator) -> str:
    return str(rng.integers(16, 95))


def _population(rng: np.random.Generator) -> str:
    return f"{int(rng.integers(10, 9000)) * 1000:,}"


def _price(rng: np.random.Generator) -> str:
    return f"{rng.uniform(1, 900):.2f}"

def _currency(rng: np.random.Generator) -> str:
    return str(rng.choice(["usd", "eur", "gbp", "jpy", "chf", "cad"]))


def _phone(rng: np.random.Generator) -> str:
    return f"{rng.integers(200, 999)}-{rng.integers(200, 999)}-{rng.integers(1000, 9999)}"


def _address(rng: np.random.Generator) -> str:
    return f"{rng.integers(1, 999)} {rng.choice(vocab.STREET_NAMES)}"


def _zip(rng: np.random.Generator) -> str:
    return str(rng.integers(10000, 99999))


def _club(rng: np.random.Generator) -> str:
    return "".join(rng.choice(list("abcdefgkmsw"), size=int(rng.integers(3, 5)))).upper()


def _position(rng: np.random.Generator) -> str:
    return str(rng.choice(["forward", "defender", "midfielder", "goalkeeper", "center", "guard"]))


def _team(rng: np.random.Generator) -> str:
    return f"{rng.choice(vocab.US_CITIES).split()[0]} {rng.choice(['hawks', 'wolves', 'giants', 'comets', 'royals'])}"


def _album(rng: np.random.Generator) -> str:
    return " ".join(rng.choice(vocab.SONG_WORDS, size=2, replace=False))


def _duration(rng: np.random.Generator) -> str:
    return f"{rng.integers(1, 9)}:{rng.integers(10, 59)}"


def _description(rng: np.random.Generator) -> str:
    return " ".join(rng.choice(vocab.TOPIC_WORDS, size=int(rng.integers(4, 8)), replace=False))


# type -> {subtype -> sampler}.  Types with >1 subtype are the "fine-grained
# discovery" targets; every subtype draws from a disjoint value domain.
TYPE_REGISTRY: Dict[str, Dict[str, Sampler]] = {
    "city": {"us_city": _words(vocab.US_CITIES), "eu_city": _words(vocab.EU_CITIES)},
    "result": {"ball_game": _ball_game_result, "baseball_event": _baseball_event},
    "name": {"person_name": _name, "company_name": _company},
    "state": {"us_state": _words(vocab.US_STATES)},
    "language": {"language": _words(vocab.LANGUAGES)},
    "weight": {"weight": _weight},
    "year": {"year": _year},
    "age": {"age": _age},
    "population": {"population": _population},
    "price": {"price": _price},
    "currency": {"currency": _currency},
    "phone": {"phone": _phone},
    "address": {"address": _address},
    "zip": {"zip": _zip},
    "club": {"club": _club},
    "position": {"position": _position},
    "team": {"team": _team},
    "album": {"album": _album},
    "duration": {"duration": _duration},
    "description": {"description": _description},
    "genre": {"genre": _words(vocab.GENRES)},
    "cuisine": {"cuisine": _words(vocab.CUISINES)},
    "condition": {"condition": _words(vocab.CONDITIONS)},
    "gender": {"gender": _words(["m", "f", "male", "female"])},
    "style": {"style": _words(vocab.BEER_STYLES)},
}

SEMANTIC_TYPES = sorted(TYPE_REGISTRY)


@dataclass
class ColumnCorpus:
    """A collection of typed columns plus ground-truth match relation."""

    columns: List[Column]

    def __len__(self) -> int:
        return len(self.columns)

    def __getitem__(self, index: int) -> Column:
        return self.columns[index]

    def serialized(self, max_values: Optional[int] = None) -> List[str]:
        return [c.serialize(max_values=max_values) for c in self.columns]

    def same_type(self, i: int, j: int) -> bool:
        """Ground-truth column-matching relation: same semantic type."""
        return self.columns[i].semantic_type == self.columns[j].semantic_type

    def type_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for column in self.columns:
            counts[column.semantic_type] = counts.get(column.semantic_type, 0) + 1
        return counts


def generate_column_corpus(
    num_columns: int,
    seed: int = 0,
    values_per_column: Tuple[int, int] = (5, 15),
    types: Optional[Sequence[str]] = None,
) -> ColumnCorpus:
    """Sample a corpus of typed columns.

    Column type frequencies follow a Zipf-ish distribution (as in web
    tables, where a few types dominate).  Columns of a multi-subtype type
    draw all values from a single subtype, mirroring real tables whose
    columns are internally coherent.
    """
    rng = np.random.default_rng(seed)
    chosen_types = list(types) if types is not None else SEMANTIC_TYPES
    weights = 1.0 / np.arange(1, len(chosen_types) + 1)
    weights /= weights.sum()
    type_order = rng.permutation(len(chosen_types))

    columns: List[Column] = []
    for column_id in range(num_columns):
        type_index = int(rng.choice(type_order, p=weights))
        semantic_type = chosen_types[type_index]
        subtypes = TYPE_REGISTRY[semantic_type]
        subtype = str(rng.choice(sorted(subtypes)))
        sampler = subtypes[subtype]
        count = int(rng.integers(values_per_column[0], values_per_column[1] + 1))
        values = tuple(sampler(rng) for _ in range(count))
        columns.append(
            Column(
                column_id=column_id,
                table_id=column_id // 6,
                semantic_type=semantic_type,
                subtype=subtype,
                values=values,
            )
        )
    return ColumnCorpus(columns=columns)
