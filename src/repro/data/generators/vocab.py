"""Word pools for the synthetic benchmark generators.

The generators replace the DeepMatcher / data-cleaning / VizNet corpora
(unavailable offline).  Pools are intentionally modest: vocabulary overlap
across entities is what makes matching non-trivial, exactly as in the real
product/citation data.
"""

from __future__ import annotations

import numpy as np


def _synth_words(count: int, seed: int, prefix_pool, suffix_pool) -> list:
    """Deterministically synthesize pronounceable filler words.

    Large pools keep *accidental* near-duplicate entities rare, so the only
    high-similarity negatives are the deliberately generated siblings — the
    property real product catalogs have (thousands of distinct products).
    """
    rng = np.random.default_rng(seed)
    words = set()
    while len(words) < count:
        word = str(rng.choice(prefix_pool)) + str(rng.choice(suffix_pool))
        words.add(word)
    return sorted(words)


_PREFIXES = [
    "bel", "cor", "dan", "fir", "gal", "hel", "jar", "kel", "lor", "mar",
    "nor", "pol", "quin", "ral", "sar", "tor", "ul", "ver", "wil", "zan",
]
_SUFFIXES = [
    "do", "fin", "gan", "ion", "ka", "lin", "mon", "nex", "ra", "son",
    "tas", "tic", "va", "wick", "zo",
]

BRANDS = [
    "acme", "zenith", "nordic", "apex", "lumina", "vertex", "solstice",
    "quantum", "pinnacle", "aurora", "cascade", "ember", "fusion", "gala",
    "halo", "ion", "krypton", "meridian", "nimbus", "orion",
] + _synth_words(40, 11, _PREFIXES, _SUFFIXES)

PRODUCT_LINES = [
    "immersion", "workshop", "studio", "master", "voyager", "explorer",
    "navigator", "commander", "precision", "elite", "classic", "premier",
    "ultra", "compact", "portable", "wireless", "digital", "turbo",
    "advance", "prime",
] + _synth_words(40, 12, _PREFIXES, _SUFFIXES)

PRODUCT_TYPES = [
    "speaker", "keyboard", "monitor", "printer", "camera", "router",
    "scanner", "headset", "charger", "adapter", "projector", "tablet",
    "drive", "mouse", "microphone", "webcam", "dock", "hub", "case",
    "stand",
] + _synth_words(30, 13, _PREFIXES, _SUFFIXES)

CATEGORIES = [
    "electronics", "computers", "audio", "office", "photography",
    "networking", "accessories", "software", "storage", "gaming",
]

ADJECTIVES = [
    "deluxe", "professional", "standard", "premium", "essential",
    "complete", "advanced", "basic", "extended", "limited",
]

COLORS = ["black", "white", "silver", "blue", "red", "gray", "green"]

# Surface-form rewrites applied when corrupting the matched view of an
# entity — mirrors the abbreviation noise in Abt-Buy / Walmart-Amazon
# ("immersion" -> "immers", "deluxe" -> "dlux" in the paper's Figure 1).
ABBREVIATIONS = {
    "immersion": "immers",
    "deluxe": "dlux",
    "professional": "pro",
    "standard": "std",
    "premium": "prem",
    "essential": "essntl",
    "complete": "compl",
    "advanced": "adv",
    "extended": "ext",
    "limited": "ltd",
    "wireless": "wless",
    "digital": "dgtl",
    "portable": "prtbl",
    "compact": "cmpct",
    "monitor": "mntr",
    "keyboard": "kbd",
    "microphone": "mic",
    "photography": "photo",
    "electronics": "elec",
    "accessories": "accs",
}

# Synonym table shared with the `token_repl` / `token_insert` DA operators.
SYNONYMS = {
    "deluxe": ["premium", "dlux"],
    "premium": ["deluxe", "prem"],
    "professional": ["pro", "expert"],
    "standard": ["basic", "std"],
    "complete": ["full", "compl"],
    "advanced": ["adv", "expert"],
    "wireless": ["cordless", "wless"],
    "portable": ["mobile", "prtbl"],
    "compact": ["small", "cmpct"],
    "black": ["dark"],
    "white": ["light"],
    "speaker": ["loudspeaker"],
    "monitor": ["display", "screen"],
    "drive": ["disk"],
    "charger": ["adapter"],
    "classic": ["vintage"],
    "grade": ["level"],
    "edition": ["version", "release"],
    "workshop": ["studio"],
    "spanish": ["espanol"],
}

TOPIC_WORDS = [
    "ontologies", "databases", "learning", "neural", "entity", "matching",
    "query", "optimization", "distributed", "systems", "graph", "mining",
    "semantic", "knowledge", "management", "integration", "streams",
    "indexing", "transactions", "probabilistic", "inference", "clustering",
    "representation", "retrieval", "language", "models", "scalable",
    "adaptive", "federated", "temporal", "spatial", "privacy",
] + _synth_words(40, 14, _PREFIXES, _SUFFIXES)

TOPIC_CONNECTORS = ["for", "with", "via", "using", "toward", "beyond"]

LAST_NAMES = [
    "smith", "garcia", "chen", "mueller", "tanaka", "kowalski", "rossi",
    "silva", "kim", "patel", "novak", "jensen", "dubois", "haddad",
    "okafor", "lindqvist", "moreau", "fischer", "yamamoto", "costa",
    "petrov", "nilsson", "oconnor", "varga", "stein",
] + _synth_words(35, 15, _PREFIXES, _SUFFIXES)

SONG_WORDS_EXTRA = _synth_words(25, 16, _PREFIXES, _SUFFIXES)

FIRST_INITIALS = list("abcdefghijklmnopqrstuvwyz")

VENUES_FULL = [
    "international conference on data engineering",
    "conference on management of data",
    "very large data bases",
    "international conference on machine learning",
    "knowledge discovery and data mining",
    "conference on information and knowledge management",
    "extending database technology",
    "innovative data systems research",
]

VENUES_ABBREV = {
    "international conference on data engineering": "icde",
    "conference on management of data": "sigmod",
    "very large data bases": "vldb",
    "international conference on machine learning": "icml",
    "knowledge discovery and data mining": "kdd",
    "conference on information and knowledge management": "cikm",
    "extending database technology": "edbt",
    "innovative data systems research": "cidr",
}

US_CITIES = [
    "new york", "los angeles", "chicago", "houston", "phoenix",
    "philadelphia", "san antonio", "san diego", "dallas", "austin",
    "seattle", "denver", "boston", "portland", "madison", "redmond",
]

EU_CITIES = [
    "berlin", "marburg", "stollberg", "pratteln", "osnabruck", "vienna",
    "prague", "krakow", "zurich", "lyon", "porto", "ghent", "malmo",
    "turin", "leipzig", "graz",
]

US_STATES = [
    "al", "ak", "az", "ca", "co", "ct", "fl", "ga", "il", "la", "ma",
    "nc", "nj", "nv", "ny", "or", "pa", "tx", "wa", "wi",
]

STREET_NAMES = [
    "main st", "oak ave", "maple dr", "cedar ln", "pine rd", "elm st",
    "lake view blvd", "hill crest rd", "park ave", "river walk",
]

CUISINES = [
    "italian", "french", "mexican", "japanese", "thai", "indian",
    "american", "mediterranean", "korean", "vietnamese",
]

RESTAURANT_WORDS = [
    "bistro", "grill", "kitchen", "table", "garden", "corner", "house",
    "cafe", "tavern", "diner",
]

GENRES = ["rock", "jazz", "folk", "electronic", "classical", "hip hop", "blues", "pop"]

SONG_WORDS = [
    "midnight", "river", "echo", "golden", "shadow", "horizon", "ember",
    "velvet", "thunder", "whisper", "crystal", "wander", "solace",
    "drift", "aurora", "mirage",
]

BEER_STYLES = [
    "american ipa", "pale ale", "stout", "porter", "lager", "pilsner",
    "wheat ale", "amber ale", "saison", "cider", "mead",
]

BEER_WORDS = [
    "hoppy", "golden", "dark", "sunset", "harvest", "winter", "summer",
    "mountain", "valley", "raspberry", "nectar", "trail", "barrel",
]

LANGUAGES = [
    "english", "spanish", "french", "german", "polski", "turkish",
    "afrikaans", "italian", "japanese", "korean",
]

COMPANY_SUFFIXES = ["inc", "llc", "corp", "associates", "capital", "partners"]

CONDITIONS = [
    "heart failure", "heart attack", "pneumonia", "surgical infection",
    "stroke", "diabetes",
]

MEASURE_PREFIXES = ["hf", "ha", "pn", "si", "st", "db"]
