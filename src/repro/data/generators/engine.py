"""Two-table entity-matching dataset engine.

Builds seeded synthetic versions of the DeepMatcher benchmarks.  Each
*domain* (products, citations, restaurants, ...) plugs three callbacks into
the engine:

* ``sample_entity``  — draw a canonical real-world entity;
* ``render_a`` / ``render_b`` — materialize the entity as a row of table A
  (clean view) and table B (corrupted view whose noise level is the
  dataset's ``hardness``);
* ``make_sibling`` — derive a *distinct but confusable* entity (e.g. the
  same product line with a different model number), the source of hard
  negatives.

The engine controls the properties the paper's evaluation depends on:

* matched pairs share a deep identifying key but can diverge arbitrarily at
  the surface (low positive-class Jaccard at high hardness);
* sibling negatives overlap heavily at the surface (high negative-class
  Jaccard), which is what makes naive lexical matchers fail and separates
  difficulty levels in Table XVI;
* the labeled pair sets have the positive rates of Table II.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ...text import word_tokenize
from ..em_dataset import EMDataset
from ..records import LabeledPair, PairSplit, Table
from .vocab import ABBREVIATIONS

Entity = Dict[str, str]
Renderer = Callable[[Entity, np.random.Generator], Dict[str, str]]


@dataclass
class DomainSpec:
    """Callbacks and schemas describing one benchmark domain."""

    name: str
    schema_a: List[str]
    schema_b: List[str]
    sample_entity: Callable[[np.random.Generator], Entity]
    render_a: Renderer
    render_b: Renderer
    make_sibling: Callable[[Entity, np.random.Generator], Entity]


@dataclass
class GenerationSpec:
    """Size / difficulty parameters for one dataset instance."""

    size_a: int
    size_b: int
    num_pairs: int
    positive_rate: float
    hardness: float
    sibling_fraction: float = 0.3
    hard_negative_fraction: float = 0.5
    seed: int = 0


# ----------------------------------------------------------------------
# Text corruption utilities shared by the domain renderers
# ----------------------------------------------------------------------
def corrupt_text(
    text: str,
    rng: np.random.Generator,
    hardness: float,
    abbreviations: Optional[Dict[str, str]] = None,
) -> str:
    """Noise a string proportionally to ``hardness`` in [0, 1].

    Applies, each with probability scaled by hardness: abbreviation
    rewrites, token drops, token transpositions, and character typos.
    The result keeps at least one token.
    """
    if hardness <= 0:
        return text
    abbreviations = abbreviations if abbreviations is not None else ABBREVIATIONS
    tokens = text.split()
    if not tokens:
        return text

    result: List[str] = []
    for token in tokens:
        roll = rng.random()
        if roll < 0.22 * hardness and token in abbreviations:
            result.append(abbreviations[token])
        elif roll < 0.22 * hardness + 0.20 * hardness and len(tokens) > 2:
            continue  # drop the token
        elif roll < 0.22 * hardness + 0.20 * hardness + 0.06 * hardness and len(token) > 3:
            result.append(_typo(token, rng))
        else:
            result.append(token)
    if not result:
        result = [tokens[0]]
    if rng.random() < 0.3 * hardness and len(result) > 2:
        i = rng.integers(len(result) - 1)
        result[i], result[i + 1] = result[i + 1], result[i]
    return " ".join(result)


def _typo(token: str, rng: np.random.Generator) -> str:
    """One character-level edit: swap, delete, or replace."""
    chars = list(token)
    op = rng.integers(3)
    pos = int(rng.integers(len(chars) - 1))
    if op == 0:
        chars[pos], chars[pos + 1] = chars[pos + 1], chars[pos]
    elif op == 1:
        del chars[pos]
    else:
        chars[pos] = chr(ord("a") + int(rng.integers(26)))
    return "".join(chars)


def jitter_price(price: float, rng: np.random.Generator, hardness: float) -> float:
    """Perturb a price the way marketplaces disagree (up to ~40% at h=1)."""
    scale = 1.0 + rng.normal(0.0, 0.15 * hardness)
    return round(max(0.5, price * scale), 2)


# ----------------------------------------------------------------------
# Dataset assembly
# ----------------------------------------------------------------------
def generate_two_table_dataset(
    domain: DomainSpec, spec: GenerationSpec
) -> EMDataset:
    """Build a complete :class:`EMDataset` for a domain.

    Table layout: the first ``num_matches`` entities appear in both tables
    (B holds the corrupted view); remaining rows are fillers — a mix of
    fresh entities and siblings of matched ones.  Row orders are shuffled
    so positional leakage is impossible.
    """
    rng = np.random.default_rng(spec.seed)
    num_positives = max(2, int(round(spec.num_pairs * spec.positive_rate)))
    num_matches = min(num_positives, spec.size_a, spec.size_b)
    if num_matches < num_positives:
        # Table-size caps limit how many true matches exist; shrink the pair
        # budget so the labeled positive rate stays at the paper's value.
        spec = GenerationSpec(**{**spec.__dict__})
        spec.num_pairs = max(10, int(num_matches / max(spec.positive_rate, 1e-9)))

    core = [domain.sample_entity(rng) for _ in range(num_matches)]
    entities_a = list(core)
    entities_b = list(core)
    # (matched A entity index, entity index in entities_b) of each sibling.
    sibling_of_a: List[Tuple[int, int]] = []

    # Fill table A.
    while len(entities_a) < spec.size_a:
        if core and rng.random() < spec.sibling_fraction:
            entities_a.append(domain.make_sibling(core[rng.integers(len(core))], rng))
        else:
            entities_a.append(domain.sample_entity(rng))
    # Fill table B, remembering which rows are siblings of matched entities
    # (those become hard negatives).
    while len(entities_b) < spec.size_b:
        if core and rng.random() < spec.sibling_fraction:
            source = int(rng.integers(len(core)))
            sibling = domain.make_sibling(core[source], rng)
            sibling_of_a.append((source, len(entities_b)))
            entities_b.append(sibling)
        else:
            entities_b.append(domain.sample_entity(rng))

    order_a = rng.permutation(len(entities_a))
    order_b = rng.permutation(len(entities_b))
    position_a = np.empty_like(order_a)
    position_a[order_a] = np.arange(len(order_a))
    position_b = np.empty_like(order_b)
    position_b[order_b] = np.arange(len(order_b))

    table_a = Table(name=f"{domain.name}-A", schema=list(domain.schema_a))
    for original in order_a:
        table_a.append(domain.render_a(entities_a[original], rng))
    table_b = Table(name=f"{domain.name}-B", schema=list(domain.schema_b))
    for original in order_b:
        table_b.append(domain.render_b(entities_b[original], rng))

    matches: Set[Tuple[int, int]] = {
        (int(position_a[i]), int(position_b[i])) for i in range(num_matches)
    }

    pairs = _build_labeled_pairs(
        spec, rng, num_matches, position_a, position_b, sibling_of_a, len(entities_b)
    )
    return EMDataset(
        name=domain.name,
        table_a=table_a,
        table_b=table_b,
        pairs=pairs,
        matches=matches,
    )


def _build_labeled_pairs(
    spec: GenerationSpec,
    rng: np.random.Generator,
    num_matches: int,
    position_a: np.ndarray,
    position_b: np.ndarray,
    sibling_of_a: Sequence[Tuple[int, int]],
    num_entities_b: int,
) -> PairSplit:
    positives = [
        LabeledPair(int(position_a[i]), int(position_b[i]), 1)
        for i in range(num_matches)
    ]
    num_negatives = max(1, spec.num_pairs - len(positives))

    # Hard negatives: a matched A row against a B sibling of its entity.
    hard: List[LabeledPair] = []
    sibling_positions = [
        (source, int(position_b[entity_index]))
        for source, entity_index in sibling_of_a
    ]
    rng.shuffle(sibling_positions)
    target_hard = int(num_negatives * spec.hard_negative_fraction)
    for source, b_position in sibling_positions[:target_hard]:
        hard.append(LabeledPair(int(position_a[source]), b_position, 0))

    # Random negatives: uniformly sampled non-matching pairs.
    seen: Set[Tuple[int, int]] = {(p.left, p.right) for p in positives}
    seen.update((p.left, p.right) for p in hard)
    random_negatives: List[LabeledPair] = []
    attempts = 0
    while len(random_negatives) < num_negatives - len(hard) and attempts < num_negatives * 50:
        attempts += 1
        left = int(rng.integers(len(position_a)))
        right = int(rng.integers(num_entities_b))
        key = (left, right)
        if key in seen:
            continue
        seen.add(key)
        random_negatives.append(LabeledPair(left, right, 0))

    all_pairs = positives + hard + random_negatives
    rng.shuffle(all_pairs)
    # The original datasets are split 3:1:1.
    n = len(all_pairs)
    train_end = int(n * 0.6)
    valid_end = int(n * 0.8)
    return PairSplit(
        train=all_pairs[:train_end],
        valid=all_pairs[train_end:valid_end],
        test=all_pairs[valid_end:],
    )
