"""Scenario generators for the discovery subsystem (``repro.discovery``).

Two seeded, deterministic workloads that the data-integration report
(Rezig et al.) places *around* the paper's matching core:

* :func:`generate_joinable_tables` — a small lake of tables whose
  columns overlap by construction: joinable column groups draw from a
  shared value pool (high containment), noise columns are unique per
  table (near-zero containment).  Ground truth is the set of
  cross-table column pairs generated from the same pool, which is what
  ``join_discovery`` rankings are scored against.
* :func:`generate_dirty_duplicates` — one dirty product table where each
  entity appears as 1..``max_duplicates`` corrupted rows (typos, dropped
  brands, jittered prices, different ``updated`` stamps).  Ground truth
  is the duplicate clustering plus the clean canonical attributes, which
  scores both the ``dedupe`` match graph and its conflict-resolution
  merges; the same rows make a natural streaming-ER feed.

Both return plain :class:`~repro.data.records.Table` objects, so every
existing serializer, embedding store, and service consumes them
unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence, Set, Tuple

import numpy as np

from ..records import Record, Table
from . import vocab
from .engine import corrupt_text, jitter_price

#: A column reference: (table name, column name).
ColumnRef = Tuple[str, str]


# ----------------------------------------------------------------------
# Joinable tables
# ----------------------------------------------------------------------
@dataclass
class JoinableTables:
    """A generated multi-table scenario with ground-truth joinability.

    ``joinable`` holds every cross-table column pair drawn from the same
    shared value pool, each stored once with its two refs sorted — use
    :meth:`is_joinable` instead of probing the set directly.
    """

    tables: Dict[str, Table]
    joinable: Set[Tuple[ColumnRef, ColumnRef]] = field(default_factory=set)

    def columns(self) -> List[ColumnRef]:
        """Every (table, column) ref, in deterministic schema order."""
        return [
            (name, attribute)
            for name, table in self.tables.items()
            for attribute in table.schema
        ]

    @property
    def num_columns(self) -> int:
        return len(self.columns())

    def is_joinable(self, a: ColumnRef, b: ColumnRef) -> bool:
        """Whether ``a`` and ``b`` came from the same shared pool."""
        return tuple(sorted((a, b))) in self.joinable


def _product(rng: np.random.Generator) -> str:
    return (
        f"{rng.choice(vocab.BRANDS)} {rng.choice(vocab.PRODUCT_LINES)} "
        f"{rng.choice(vocab.PRODUCT_TYPES)}"
    )


def _company(rng: np.random.Generator) -> str:
    return f"{rng.choice(vocab.LAST_NAMES)} {rng.choice(vocab.COMPANY_SUFFIXES)}"


def _person(rng: np.random.Generator) -> str:
    return f"{rng.choice(vocab.LAST_NAMES)}, {rng.choice(vocab.FIRST_INITIALS)}."


def _city_state(rng: np.random.Generator) -> str:
    return f"{rng.choice(vocab.US_CITIES)}, {rng.choice(vocab.US_STATES)}"


def _address(rng: np.random.Generator) -> str:
    return f"{rng.integers(1, 999)} {rng.choice(vocab.STREET_NAMES)}"


def _sku(rng: np.random.Generator) -> str:
    return f"sku-{rng.integers(0, 10**6):06d}"


#: Domain name -> (value factory, column-name variants).  Joinable columns
#: deliberately get *different names* across tables — discovery must work
#: from content, not from schema-name string matching.
_JOIN_DOMAINS: Dict[str, Tuple[Callable[[np.random.Generator], str], Tuple[str, ...]]] = {
    "product": (_product, ("product", "item_name", "title")),
    "company": (_company, ("company", "vendor", "supplier")),
    "person": (_person, ("author", "contact", "owner")),
    "city": (_city_state, ("city", "location", "place")),
    "address": (_address, ("address", "street", "addr")),
    "sku": (_sku, ("sku", "product_id", "item_code")),
}


def generate_joinable_tables(
    num_tables: int = 4,
    rows: int = 40,
    num_domains: int = 3,
    noise_columns: int = 2,
    pool_size: int = 60,
    overlap: float = 0.8,
    seed: int = 0,
) -> JoinableTables:
    """Generate ``num_tables`` tables with planted joinable column groups.

    Each of ``num_domains`` domains builds one shared pool of
    ``pool_size`` distinct values and hands a column to >= 2 randomly
    chosen tables; every member column samples its cells from a random
    ``overlap`` fraction of the pool, so cross-member containment is high
    by construction while noise columns (per-table unique tokens) share
    nothing.  Deterministic for a given seed.
    """
    if num_tables < 2:
        raise ValueError("need at least 2 tables for joinability")
    if not 0.0 < overlap <= 1.0:
        raise ValueError("overlap must be in (0, 1]")
    rng = np.random.default_rng(seed)
    table_names = [f"table_{chr(ord('a') + i)}" for i in range(num_tables)]
    columns: Dict[str, Dict[str, List[str]]] = {name: {} for name in table_names}
    joinable: Set[Tuple[ColumnRef, ColumnRef]] = set()

    domain_names = list(_JOIN_DOMAINS)
    for index in range(num_domains):
        domain = domain_names[index % len(domain_names)]
        factory, variants = _JOIN_DOMAINS[domain]
        pool: List[str] = []
        pool_seen: Set[str] = set()
        while len(pool) < pool_size:
            value = factory(rng)
            if value not in pool_seen:
                pool_seen.add(value)
                pool.append(value)
        num_members = int(rng.integers(2, num_tables + 1))
        members = sorted(
            rng.choice(len(table_names), size=num_members, replace=False).tolist()
        )
        refs: List[ColumnRef] = []
        for order, member in enumerate(members):
            table_name = table_names[member]
            column_name = variants[order % len(variants)]
            if column_name in columns[table_name]:
                column_name = f"{column_name}_{index}"
            subset_size = max(2, int(round(overlap * pool_size)))
            subset = rng.choice(pool_size, size=subset_size, replace=False)
            values = [pool[int(i)] for i in rng.choice(subset, size=rows)]
            columns[table_name][column_name] = values
            refs.append((table_name, column_name))
        for i in range(len(refs)):
            for j in range(i + 1, len(refs)):
                joinable.add(tuple(sorted((refs[i], refs[j]))))

    for table_name in table_names:
        for n in range(noise_columns):
            column_name = f"note_{n}"
            columns[table_name][column_name] = [
                f"{table_name}-{column_name}-{row:04d}-{rng.integers(0, 10**8):08d}"
                for row in range(rows)
            ]

    tables: Dict[str, Table] = {}
    for table_name in table_names:
        schema = list(columns[table_name])
        table = Table(name=table_name, schema=schema)
        for row in range(rows):
            table.append(
                {attribute: columns[table_name][attribute][row] for attribute in schema}
            )
        tables[table_name] = table
    return JoinableTables(tables=tables, joinable=joinable)


# ----------------------------------------------------------------------
# Dirty duplicates
# ----------------------------------------------------------------------
@dataclass
class DirtyDuplicates:
    """A dirty table whose rows are corrupted views of fewer entities.

    ``clusters[c]`` lists the row indices of entity ``c`` (singletons
    included); ``canonical[c]`` holds the entity's clean attributes —
    what a perfect dedupe-and-merge would emit.
    """

    table: Table
    clusters: List[List[int]] = field(default_factory=list)
    canonical: List[Dict[str, str]] = field(default_factory=list)

    def cluster_of(self) -> Dict[int, int]:
        """Row index -> ground-truth cluster index."""
        return {
            row: cluster
            for cluster, rows in enumerate(self.clusters)
            for row in rows
        }

    def duplicate_pairs(self) -> Set[Tuple[int, int]]:
        """Every co-cluster row pair, stored as ``(i, j)`` with i < j."""
        pairs: Set[Tuple[int, int]] = set()
        for rows in self.clusters:
            for i in range(len(rows)):
                for j in range(i + 1, len(rows)):
                    pairs.add((rows[i], rows[j]))
        return pairs

    def reduction_ratio(self) -> float:
        """Fraction of rows a perfect dedupe would remove."""
        if not len(self.table):
            return 0.0
        return 1.0 - len(self.clusters) / len(self.table)


DIRTY_SCHEMA = ["name", "brand", "category", "price", "updated"]


def _entity(rng: np.random.Generator) -> Dict[str, str]:
    brand = str(rng.choice(vocab.BRANDS))
    name = (
        f"{rng.choice(vocab.ADJECTIVES)} {brand} "
        f"{rng.choice(vocab.PRODUCT_LINES)} {rng.choice(vocab.PRODUCT_TYPES)}"
    )
    return {
        "name": name,
        "brand": brand,
        "category": str(rng.choice(vocab.CATEGORIES)),
        "price": f"{rng.uniform(5, 900):.2f}",
        "updated": _stamp(rng),
    }


def _stamp(rng: np.random.Generator) -> str:
    """An ISO date in 2023 — lexicographic order is chronological order,
    which is what the ``newest`` merge policy keys on."""
    return f"2023-{int(rng.integers(1, 13)):02d}-{int(rng.integers(1, 29)):02d}"


def generate_dirty_duplicates(
    num_entities: int = 30,
    max_duplicates: int = 4,
    hardness: float = 0.3,
    singleton_fraction: float = 0.3,
    missing_rate: float = 0.15,
    seed: int = 0,
) -> DirtyDuplicates:
    """Generate a shuffled dirty table with ground-truth duplicate groups.

    Each entity appears once clean-ish and, unless it is a singleton
    (``singleton_fraction`` of entities), as 1..``max_duplicates - 1``
    additional corrupted rows: the name is noised via
    :func:`~repro.data.generators.engine.corrupt_text` at ``hardness``,
    the price jittered, the ``updated`` stamp re-drawn, and with
    probability ``missing_rate`` the brand is blanked — the conflicting /
    missing values the merge policies must resolve.  Deterministic for a
    given seed.
    """
    if max_duplicates < 2:
        raise ValueError("max_duplicates must be >= 2")
    rng = np.random.default_rng(seed)
    rows: List[Dict[str, str]] = []
    owners: List[int] = []
    canonical: List[Dict[str, str]] = []
    for entity_index in range(num_entities):
        entity = _entity(rng)
        canonical.append(dict(entity))
        copies = (
            1
            if rng.random() < singleton_fraction
            else int(rng.integers(2, max_duplicates + 1))
        )
        rows.append(dict(entity))
        owners.append(entity_index)
        for _ in range(copies - 1):
            dirty = dict(entity)
            dirty["name"] = corrupt_text(entity["name"], rng, hardness)
            dirty["price"] = str(
                jitter_price(float(entity["price"]), rng, hardness)
            )
            dirty["updated"] = _stamp(rng)
            if rng.random() < missing_rate:
                dirty["brand"] = ""
            rows.append(dirty)
            owners.append(entity_index)

    order = rng.permutation(len(rows))
    table = Table(name="dirty-duplicates", schema=list(DIRTY_SCHEMA))
    clusters: List[List[int]] = [[] for _ in range(num_entities)]
    for position, original in enumerate(order.tolist()):
        table.append(rows[original])
        clusters[owners[original]].append(position)
    return DirtyDuplicates(
        table=table,
        clusters=[sorted(c) for c in clusters],
        canonical=canonical,
    )


# ----------------------------------------------------------------------
# Lake-scale workloads
# ----------------------------------------------------------------------
def generate_lake(
    num_tables: int = 1000,
    rows: int = 20,
    tables_per_pod: int = 4,
    num_domains: int = 3,
    noise_columns: int = 2,
    pool_size: int = 40,
    overlap: float = 0.8,
    seed: int = 0,
) -> JoinableTables:
    """A lake of ``num_tables`` tables built from joinable-table *pods*.

    :func:`generate_joinable_tables` plants joins within one small group;
    a real lake is many such groups side by side.  The lake is stitched
    from independent pods of ``tables_per_pod`` tables (each its own
    seeded :func:`generate_joinable_tables` scenario, renamed under a
    ``pod####_`` prefix), so joinability stays *local* — cross-pod pairs
    share nothing — which is exactly the sparse structure that makes
    lake-scale candidate generation non-trivial.  Ground truth is the
    union of the pods' joinable sets.  Deterministic for a given seed.
    """
    if num_tables < 2:
        raise ValueError("need at least 2 tables for a lake")
    if tables_per_pod < 2:
        raise ValueError("tables_per_pod must be >= 2")
    sizes: List[int] = []
    remaining = num_tables
    while remaining > 0:
        size = min(tables_per_pod, remaining)
        if remaining - size == 1:
            size += 1  # a 1-table pod could plant no joins
        sizes.append(size)
        remaining -= size
    tables: Dict[str, Table] = {}
    joinable: Set[Tuple[ColumnRef, ColumnRef]] = set()
    for pod_index, size in enumerate(sizes):
        pod = generate_joinable_tables(
            num_tables=size,
            rows=rows,
            num_domains=num_domains,
            noise_columns=noise_columns,
            pool_size=pool_size,
            overlap=overlap,
            seed=seed + pod_index,
        )
        prefix = f"pod{pod_index:04d}_"
        for name, table in pod.tables.items():
            renamed = Table(name=prefix + name, schema=list(table.schema))
            for row in range(len(table)):
                record = table[row]
                renamed.append(
                    {attribute: record.get(attribute) for attribute in table.schema}
                )
            tables[prefix + name] = renamed
        for (table_a, column_a), (table_b, column_b) in pod.joinable:
            joinable.add(
                tuple(
                    sorted(
                        (
                            (prefix + table_a, column_a),
                            (prefix + table_b, column_b),
                        )
                    )
                )
            )
    return JoinableTables(tables=tables, joinable=joinable)


def mutate_lake(
    tables: Dict[str, Table],
    fraction: float = 0.05,
    rows_added: int = 2,
    hardness: float = 0.4,
    seed: int = 0,
) -> Tuple[Dict[str, Table], List[str]]:
    """A nightly-sync mutation of a lake: append dirty rows to a few tables.

    Picks ``fraction`` of the tables (at least one) and appends
    ``rows_added`` corrupted copies of one of their rows (every cell
    noised via :func:`~repro.data.generators.engine.corrupt_text` at
    ``hardness``), returning ``(new_tables, mutated_names)``.  Untouched
    tables are **the same objects** — only mutated tables are copied —
    and the dict preserves the original iteration order, so incremental
    re-profiling sees identical inputs for every unchanged column.
    Deterministic for a given seed.
    """
    if not 0.0 < fraction <= 1.0:
        raise ValueError("fraction must be in (0, 1]")
    if rows_added < 1:
        raise ValueError("rows_added must be >= 1")
    if not tables:
        return {}, []
    rng = np.random.default_rng(seed)
    names = sorted(tables)
    count = max(1, int(round(fraction * len(names))))
    chosen = sorted(rng.choice(len(names), size=count, replace=False).tolist())
    mutated = [names[i] for i in chosen]
    out = dict(tables)
    for name in mutated:
        source = tables[name]
        copy = Table(name=name, schema=list(source.schema))
        for row in range(len(source)):
            record = source[row]
            copy.append(
                {attribute: record.get(attribute) for attribute in source.schema}
            )
        if len(source):
            template = source[int(rng.integers(0, len(source)))]
            for _ in range(rows_added):
                copy.append(
                    {
                        attribute: (
                            corrupt_text(template.get(attribute), rng, hardness)
                            if template.get(attribute)
                            else ""
                        )
                        for attribute in source.schema
                    }
                )
        out[name] = copy
    return out, mutated
