"""Registry of the eight EM benchmarks with paper-matching statistics.

Each entry records the original dataset's shape (Table II / Table XVII of
the paper) and a difficulty setting chosen so the synthetic replacement
reproduces the published hardness ordering:

    DBLP-ACM (easy) < DBLP-Scholar < Abt-Buy < Amazon-Google ~ Walmart-Amazon

``load_em_benchmark(name, scale=...)`` shrinks all sizes by ``scale`` so CPU
benchmarks stay fast while keeping positive rates intact.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..em_dataset import EMDataset
from .domains import (
    beer_domain,
    citation_domain,
    music_domain,
    product_domain,
    restaurant_domain,
)
from .engine import DomainSpec, GenerationSpec, generate_two_table_dataset


@dataclass(frozen=True)
class BenchmarkEntry:
    """Original sizes (from the paper) and generator difficulty settings."""

    key: str
    full_name: str
    size_a: int
    size_b: int
    num_pairs: int  # train+valid+test labeled pairs
    positive_rate: float
    hardness: float
    domain_factory: str  # one of: products, citations_*, restaurants, music, beer
    seed: int


_REGISTRY: Dict[str, BenchmarkEntry] = {
    entry.key: entry
    for entry in [
        BenchmarkEntry(
            "AB", "Abt-Buy", 1081, 1092, 9575, 0.107, 0.55, "products", 101
        ),
        BenchmarkEntry(
            "AG", "Amazon-Google", 1363, 3226, 11460, 0.102, 0.75, "products", 102
        ),
        BenchmarkEntry(
            "DA", "DBLP-ACM", 2616, 2294, 12363, 0.180, 0.10, "citations_acm", 103
        ),
        BenchmarkEntry(
            "DS", "DBLP-Scholar", 2616, 64263, 28707, 0.186, 0.35, "citations_scholar", 104
        ),
        BenchmarkEntry(
            "WA", "Walmart-Amazon", 2554, 22074, 10242, 0.094, 0.80, "products", 105
        ),
        BenchmarkEntry(
            "Beer", "Beer", 4345, 3000, 450, 0.151, 0.40, "beer", 106
        ),
        BenchmarkEntry(
            "FZ", "Fodors-Zagats", 533, 331, 946, 0.116, 0.25, "restaurants", 107
        ),
        BenchmarkEntry(
            "IA", "iTunes-Amazon", 6906, 55923, 539, 0.245, 0.50, "music", 108
        ),
    ]
}

EM_DATASET_KEYS = ["AB", "AG", "DA", "DS", "WA"]
EXTRA_DATASET_KEYS = ["Beer", "FZ", "IA"]
ALL_DATASET_KEYS = EM_DATASET_KEYS + EXTRA_DATASET_KEYS


def _make_domain(entry: BenchmarkEntry) -> DomainSpec:
    if entry.domain_factory == "products":
        return product_domain(entry.key, entry.hardness)
    if entry.domain_factory == "citations_acm":
        return citation_domain(entry.key, entry.hardness, scholar_style=False)
    if entry.domain_factory == "citations_scholar":
        return citation_domain(entry.key, entry.hardness, scholar_style=True)
    if entry.domain_factory == "restaurants":
        return restaurant_domain(entry.key, entry.hardness)
    if entry.domain_factory == "music":
        return music_domain(entry.key, entry.hardness)
    if entry.domain_factory == "beer":
        return beer_domain(entry.key, entry.hardness)
    raise ValueError(f"unknown domain factory: {entry.domain_factory}")


def benchmark_entry(name: str) -> BenchmarkEntry:
    key = name.upper() if name.upper() in _REGISTRY else name
    if key not in _REGISTRY:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown EM benchmark {name!r}; known: {known}")
    return _REGISTRY[key]


def load_em_benchmark(
    name: str,
    scale: float = 1.0,
    seed: Optional[int] = None,
    max_table_size: Optional[int] = None,
) -> EMDataset:
    """Instantiate a benchmark dataset.

    ``scale`` multiplies table and pair-set sizes (e.g. 0.1 for CPU-quick
    runs); ``max_table_size`` additionally caps table sizes, which stands in
    for the paper's 10k up/down-sampling of the pre-training corpus.
    """
    entry = benchmark_entry(name)
    size_a = max(12, int(entry.size_a * scale))
    size_b = max(12, int(entry.size_b * scale))
    if max_table_size is not None:
        size_a = min(size_a, max_table_size)
        size_b = min(size_b, max_table_size)
    num_pairs = max(20, int(entry.num_pairs * scale))
    spec = GenerationSpec(
        size_a=size_a,
        size_b=size_b,
        num_pairs=num_pairs,
        positive_rate=entry.positive_rate,
        hardness=entry.hardness,
        seed=entry.seed if seed is None else seed,
    )
    return generate_two_table_dataset(_make_domain(entry), spec)


def dataset_statistics(names: Optional[List[str]] = None, scale: float = 1.0):
    """Table II: statistics of the generated EM datasets."""
    rows = []
    for key in names or EM_DATASET_KEYS:
        dataset = load_em_benchmark(key, scale=scale)
        rows.append(dataset.stats())
    return rows
