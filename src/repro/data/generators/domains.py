"""Domain specs for the synthetic EM benchmarks.

Five domains cover the eight paper datasets:

* products  -> Abt-Buy, Amazon-Google, Walmart-Amazon (varying hardness)
* citations -> DBLP-ACM (clean/clean) and DBLP-Scholar (clean/noisy)
* restaurants -> Fodors-Zagats
* music     -> iTunes-Amazon
* beer      -> Beer
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from .engine import DomainSpec, corrupt_text, jitter_price
from . import vocab

Entity = Dict[str, str]


# ----------------------------------------------------------------------
# Products (Abt-Buy / Amazon-Google / Walmart-Amazon)
# ----------------------------------------------------------------------
def _sample_model_number(rng: np.random.Generator) -> str:
    letters = "".join(
        rng.choice(list("abcdefghjkmnpqrstuvwxyz"), size=int(rng.integers(2, 4)))
    )
    digits = "".join(rng.choice(list("0123456789"), size=int(rng.integers(3, 5))))
    return f"{letters}{digits}"


def _sample_product(rng: np.random.Generator) -> Entity:
    brand = str(rng.choice(vocab.BRANDS))
    line = str(rng.choice(vocab.PRODUCT_LINES))
    ptype = str(rng.choice(vocab.PRODUCT_TYPES))
    adjective = str(rng.choice(vocab.ADJECTIVES))
    color = str(rng.choice(vocab.COLORS))
    model = _sample_model_number(rng)
    price = float(np.round(rng.uniform(8.0, 900.0), 2))
    edition = str(rng.integers(1, 9))
    return {
        "brand": brand,
        "line": line,
        "type": ptype,
        "adjective": adjective,
        "color": color,
        "model": model,
        "edition": edition,
        "price": f"{price:.2f}",
        "category": str(rng.choice(vocab.CATEGORIES)),
    }


def _product_sibling(entity: Entity, rng: np.random.Generator) -> Entity:
    """Same brand/line/type — different model number and edition.

    These are the "adventure workshop 7th edition vs 8th edition" style
    confusables from the paper's Figure 1.
    """
    sibling = dict(entity)
    sibling["model"] = _sample_model_number(rng)
    sibling["edition"] = str((int(entity["edition"]) % 8) + 1)
    if rng.random() < 0.7:
        sibling["color"] = str(rng.choice(vocab.COLORS))
    if rng.random() < 0.6:
        sibling["adjective"] = str(rng.choice(vocab.ADJECTIVES))
    sibling["price"] = f"{float(entity['price']) * rng.uniform(0.6, 1.4):.2f}"
    return sibling


def _product_title(entity: Entity) -> str:
    return (
        f"{entity['brand']} {entity['line']} {entity['adjective']} "
        f"{entity['color']} {entity['type']} {entity['model']} "
        f"{entity['edition']}th edition"
    )


def _product_render_a(entity: Entity, rng: np.random.Generator) -> Dict[str, str]:
    return {
        "title": _product_title(entity),
        "manufacturer": entity["brand"],
        "price": entity["price"],
    }


def _make_product_render_b(hardness: float):
    def render(entity: Entity, rng: np.random.Generator) -> Dict[str, str]:
        title = corrupt_text(_product_title(entity), rng, hardness)
        # The identifying model number survives corruption — the deep key
        # representation learning is supposed to pick up.
        if entity["model"] not in title:
            title = f"{title} {entity['model']}"
        manufacturer = "" if rng.random() < 0.4 * hardness else entity["brand"]
        price = jitter_price(float(entity["price"]), rng, hardness)
        return {
            "title": title,
            "category": entity["category"],
            "manufacturer": manufacturer,
            "price": f"{price:.2f}",
        }

    return render


def product_domain(name: str, hardness: float) -> DomainSpec:
    return DomainSpec(
        name=name,
        schema_a=["title", "manufacturer", "price"],
        schema_b=["title", "category", "manufacturer", "price"],
        sample_entity=_sample_product,
        render_a=_product_render_a,
        render_b=_make_product_render_b(hardness),
        make_sibling=_product_sibling,
    )


# ----------------------------------------------------------------------
# Citations (DBLP-ACM / DBLP-Scholar)
# ----------------------------------------------------------------------
def _sample_citation(rng: np.random.Generator) -> Entity:
    length = int(rng.integers(4, 8))
    words = list(rng.choice(vocab.TOPIC_WORDS, size=length, replace=False))
    if rng.random() < 0.5:
        connector = str(rng.choice(vocab.TOPIC_CONNECTORS))
        words.insert(int(rng.integers(1, len(words))), connector)
    title = " ".join(words)
    num_authors = int(rng.integers(1, 4))
    authors = ", ".join(
        f"{rng.choice(vocab.FIRST_INITIALS)} {rng.choice(vocab.LAST_NAMES)}"
        for _ in range(num_authors)
    )
    venue = str(rng.choice(vocab.VENUES_FULL))
    year = str(rng.integers(1995, 2022))
    return {"title": title, "authors": authors, "venue": venue, "year": year}


def _citation_sibling(entity: Entity, rng: np.random.Generator) -> Entity:
    """Same venue and overlapping title words, different paper."""
    sibling = dict(entity)
    words = entity["title"].split()
    replace_at = int(rng.integers(len(words)))
    words[replace_at] = str(rng.choice(vocab.TOPIC_WORDS))
    extra = str(rng.choice(vocab.TOPIC_WORDS))
    sibling["title"] = " ".join(words + [extra])
    sibling["year"] = str(rng.integers(1995, 2022))
    sibling["authors"] = (
        f"{rng.choice(vocab.FIRST_INITIALS)} {rng.choice(vocab.LAST_NAMES)}"
    )
    return sibling


def _citation_render_a(entity: Entity, rng: np.random.Generator) -> Dict[str, str]:
    return {
        "title": entity["title"],
        "authors": entity["authors"],
        "venue": vocab.VENUES_ABBREV[entity["venue"]],
        "year": entity["year"],
    }


def _make_citation_render_b(hardness: float, scholar_style: bool):
    def render(entity: Entity, rng: np.random.Generator) -> Dict[str, str]:
        title = corrupt_text(entity["title"], rng, hardness)
        authors = entity["authors"]
        venue = vocab.VENUES_ABBREV[entity["venue"]]
        year = entity["year"]
        if scholar_style:
            # Google-Scholar-style sparsity: drop venue/year/authors often.
            if rng.random() < 0.5:
                venue = ""
            if rng.random() < 0.4:
                year = ""
            if rng.random() < 0.35:
                authors = ""
            elif rng.random() < 0.5:
                authors = authors.split(",")[0]
        else:
            venue = entity["venue"]  # full venue string instead of acronym
        return {"title": title, "authors": authors, "venue": venue, "year": year}

    return render


def citation_domain(name: str, hardness: float, scholar_style: bool) -> DomainSpec:
    return DomainSpec(
        name=name,
        schema_a=["title", "authors", "venue", "year"],
        schema_b=["title", "authors", "venue", "year"],
        sample_entity=_sample_citation,
        render_a=_citation_render_a,
        render_b=_make_citation_render_b(hardness, scholar_style),
        make_sibling=_citation_sibling,
    )


# ----------------------------------------------------------------------
# Restaurants (Fodors-Zagats)
# ----------------------------------------------------------------------
def _sample_restaurant(rng: np.random.Generator) -> Entity:
    name = (
        f"{rng.choice(vocab.SONG_WORDS)} {rng.choice(vocab.RESTAURANT_WORDS)}"
    )
    street_no = str(rng.integers(1, 999))
    street = str(rng.choice(vocab.STREET_NAMES))
    city = str(rng.choice(vocab.US_CITIES))
    phone = f"{rng.integers(200, 999)}-{rng.integers(200, 999)}-{rng.integers(1000, 9999)}"
    cuisine = str(rng.choice(vocab.CUISINES))
    return {
        "name": name,
        "address": f"{street_no} {street}",
        "city": city,
        "phone": phone,
        "cuisine": cuisine,
    }


def _restaurant_sibling(entity: Entity, rng: np.random.Generator) -> Entity:
    sibling = dict(entity)
    sibling["address"] = f"{rng.integers(1, 999)} {rng.choice(vocab.STREET_NAMES)}"
    sibling["phone"] = (
        f"{rng.integers(200, 999)}-{rng.integers(200, 999)}-{rng.integers(1000, 9999)}"
    )
    sibling["name"] = (
        f"{rng.choice(vocab.SONG_WORDS)} {entity['name'].split()[-1]}"
    )
    return sibling


def _restaurant_render_a(entity: Entity, rng: np.random.Generator) -> Dict[str, str]:
    return {k: entity[k] for k in ("name", "address", "city", "phone", "cuisine")}


def _make_restaurant_render_b(hardness: float):
    def render(entity: Entity, rng: np.random.Generator) -> Dict[str, str]:
        return {
            "name": corrupt_text(entity["name"], rng, hardness),
            "address": corrupt_text(entity["address"], rng, hardness * 0.5),
            "city": entity["city"],
            "phone": entity["phone"].replace("-", "/")
            if rng.random() < 0.5
            else entity["phone"],
            "cuisine": entity["cuisine"],
        }

    return render


def restaurant_domain(name: str, hardness: float) -> DomainSpec:
    return DomainSpec(
        name=name,
        schema_a=["name", "address", "city", "phone", "cuisine"],
        schema_b=["name", "address", "city", "phone", "cuisine"],
        sample_entity=_sample_restaurant,
        render_a=_restaurant_render_a,
        render_b=_make_restaurant_render_b(hardness),
        make_sibling=_restaurant_sibling,
    )


# ----------------------------------------------------------------------
# Music (iTunes-Amazon)
# ----------------------------------------------------------------------
def _sample_song(rng: np.random.Generator) -> Entity:
    song = " ".join(rng.choice(vocab.SONG_WORDS, size=2, replace=False))
    artist = f"{rng.choice(vocab.FIRST_INITIALS)} {rng.choice(vocab.LAST_NAMES)}"
    album = " ".join(rng.choice(vocab.SONG_WORDS, size=2, replace=False))
    genre = str(rng.choice(vocab.GENRES))
    time = f"{rng.integers(2, 6)}:{rng.integers(10, 59)}"
    price = f"{rng.uniform(0.69, 1.29):.2f}"
    return {
        "song": song,
        "artist": artist,
        "album": album,
        "genre": genre,
        "time": time,
        "price": price,
    }


def _song_sibling(entity: Entity, rng: np.random.Generator) -> Entity:
    sibling = dict(entity)
    # Same artist and album, different track.
    sibling["song"] = " ".join(rng.choice(vocab.SONG_WORDS, size=2, replace=False))
    sibling["time"] = f"{rng.integers(2, 6)}:{rng.integers(10, 59)}"
    return sibling


def _song_render_a(entity: Entity, rng: np.random.Generator) -> Dict[str, str]:
    return {k: entity[k] for k in ("song", "artist", "album", "genre", "time", "price")}


def _make_song_render_b(hardness: float):
    def render(entity: Entity, rng: np.random.Generator) -> Dict[str, str]:
        song = entity["song"]
        if rng.random() < 0.4 * hardness:
            song = f"{song} ( album version )"
        return {
            "song": song,
            "artist": entity["artist"],
            "album": corrupt_text(entity["album"], rng, hardness * 0.6),
            "genre": entity["genre"],
            "time": entity["time"],
            "price": entity["price"],
        }

    return render


def music_domain(name: str, hardness: float) -> DomainSpec:
    schema = ["song", "artist", "album", "genre", "time", "price"]
    return DomainSpec(
        name=name,
        schema_a=schema,
        schema_b=list(schema),
        sample_entity=_sample_song,
        render_a=_song_render_a,
        render_b=_make_song_render_b(hardness),
        make_sibling=_song_sibling,
    )


# ----------------------------------------------------------------------
# Beer
# ----------------------------------------------------------------------
def _sample_beer(rng: np.random.Generator) -> Entity:
    name = " ".join(rng.choice(vocab.BEER_WORDS, size=2, replace=False))
    style = str(rng.choice(vocab.BEER_STYLES))
    brewery = (
        f"{rng.choice(vocab.US_CITIES).split()[0]} "
        f"{rng.choice(['brewing', 'brewery', 'meadery', 'ales'])}"
    )
    abv = f"{rng.uniform(0.03, 0.12):.3f}"
    return {"name": name, "style": style, "brewery": brewery, "abv": abv}


def _beer_sibling(entity: Entity, rng: np.random.Generator) -> Entity:
    sibling = dict(entity)
    sibling["name"] = " ".join(rng.choice(vocab.BEER_WORDS, size=2, replace=False))
    sibling["abv"] = f"{rng.uniform(0.03, 0.12):.3f}"
    return sibling


def _beer_render_a(entity: Entity, rng: np.random.Generator) -> Dict[str, str]:
    return {k: entity[k] for k in ("name", "style", "brewery", "abv")}


def _make_beer_render_b(hardness: float):
    def render(entity: Entity, rng: np.random.Generator) -> Dict[str, str]:
        abv = entity["abv"]
        if rng.random() < 0.5:
            abv = f"{float(abv) * 100:.1f}%"
        return {
            "name": corrupt_text(entity["name"], rng, hardness),
            "style": entity["style"],
            "brewery": corrupt_text(entity["brewery"], rng, hardness * 0.5),
            "abv": abv,
        }

    return render


def beer_domain(name: str, hardness: float) -> DomainSpec:
    schema = ["name", "style", "brewery", "abv"]
    return DomainSpec(
        name=name,
        schema_a=schema,
        schema_b=list(schema),
        sample_entity=_sample_beer,
        render_a=_beer_render_a,
        render_b=_make_beer_render_b(hardness),
        make_sibling=_beer_sibling,
    )
