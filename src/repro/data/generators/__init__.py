"""Synthetic dataset generators (EM benchmarks, dirty tables, column corpus)."""

from .benchmark import (
    ALL_DATASET_KEYS,
    EM_DATASET_KEYS,
    EXTRA_DATASET_KEYS,
    BenchmarkEntry,
    benchmark_entry,
    dataset_statistics,
    load_em_benchmark,
)
from .cleaning import (
    CLEANING_DATASET_KEYS,
    FI,
    MV,
    TYPO,
    VAD,
    CleaningDataset,
    load_cleaning_dataset,
)
from .columns import (
    SEMANTIC_TYPES,
    TYPE_REGISTRY,
    Column,
    ColumnCorpus,
    generate_column_corpus,
)
from .discovery import (
    DIRTY_SCHEMA,
    DirtyDuplicates,
    JoinableTables,
    generate_dirty_duplicates,
    generate_joinable_tables,
    generate_lake,
    mutate_lake,
)
from .engine import (
    DomainSpec,
    GenerationSpec,
    corrupt_text,
    generate_two_table_dataset,
    jitter_price,
)

__all__ = [
    "ALL_DATASET_KEYS",
    "BenchmarkEntry",
    "CLEANING_DATASET_KEYS",
    "CleaningDataset",
    "Column",
    "ColumnCorpus",
    "DIRTY_SCHEMA",
    "DirtyDuplicates",
    "DomainSpec",
    "EM_DATASET_KEYS",
    "EXTRA_DATASET_KEYS",
    "FI",
    "GenerationSpec",
    "JoinableTables",
    "MV",
    "SEMANTIC_TYPES",
    "TYPE_REGISTRY",
    "TYPO",
    "VAD",
    "benchmark_entry",
    "corrupt_text",
    "dataset_statistics",
    "generate_column_corpus",
    "generate_dirty_duplicates",
    "generate_joinable_tables",
    "generate_lake",
    "generate_two_table_dataset",
    "jitter_price",
    "load_cleaning_dataset",
    "load_em_benchmark",
    "mutate_lake",
]
