"""Entity-matching dataset container mirroring the DeepMatcher layout."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .records import LabeledPair, PairSplit, Record, Table, serialize_record


@dataclass
class EMDataset:
    """Two entity tables plus labeled train/valid/test pairs.

    ``matches`` holds the complete ground-truth set of matching
    ``(a_index, b_index)`` pairs — used to score blocking recall, which the
    paper computes over positives from all three splits.
    """

    name: str
    table_a: Table
    table_b: Table
    pairs: PairSplit
    matches: Set[Tuple[int, int]] = field(default_factory=set)

    # ------------------------------------------------------------------
    def serialize_a(self, index: int) -> str:
        return serialize_record(self.table_a[index], self.table_a.schema)

    def serialize_b(self, index: int) -> str:
        return serialize_record(self.table_b[index], self.table_b.schema)

    def serialize_pair(self, pair: LabeledPair) -> Tuple[str, str]:
        return self.serialize_a(pair.left), self.serialize_b(pair.right)

    def all_items(self) -> List[str]:
        """Serialized corpus of every entry in both tables — the unlabeled
        input to contrastive pre-training."""
        return [self.serialize_a(i) for i in range(len(self.table_a))] + [
            self.serialize_b(j) for j in range(len(self.table_b))
        ]

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        """Statistics in the shape of the paper's Table II."""
        pairs = self.pairs.all_pairs()
        train_valid = len(self.pairs.train) + len(self.pairs.valid)
        return {
            "dataset": self.name,
            "table_a": len(self.table_a),
            "table_b": len(self.table_b),
            "train_valid": train_valid,
            "test": len(self.pairs.test),
            "pos_rate": self.pairs.positive_rate(),
        }

    def sample_labeled(
        self, budget: int, rng, from_splits: Sequence[str] = ("train", "valid")
    ) -> List[LabeledPair]:
        """Uniformly sample a label budget from the given splits — the
        paper's semi-supervised protocol (500 labels from train+valid)."""
        pool: List[LabeledPair] = []
        for split in from_splits:
            pool.extend(getattr(self.pairs, split))
        if budget >= len(pool):
            return list(pool)
        indices = rng.choice(len(pool), size=budget, replace=False)
        return [pool[i] for i in sorted(indices)]
