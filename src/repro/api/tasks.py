"""Built-in session tasks: match, block, clean, column_match, column_cluster.

Each task binds one workload to a :class:`~repro.api.session.SudowoodoSession`
and follows the common ``fit`` / ``predict`` / ``evaluate`` / ``report``
lifecycle of the :class:`~repro.api.registry.Task` protocol.  Tasks embed
through the session's shared :class:`~repro.serve.store.EmbeddingStore`
(so corpora are encoded once per session) and fine-tune on *checkouts* of
the shared encoder (so no task ever perturbs another's representations).

Internally the tasks drive the battle-tested workload engines
(``core.pipeline``, ``cleaning.cleaner``, ``columns.matching``) in
*attached* mode — the engines skip their private pre-training and adopt
the session's encoder and store — which is what turns three standalone
drivers into one system.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..cleaning.cleaner import SudowoodoCleaner, cleaning_corpus
from ..columns.clustering import discover_types
from ..columns.matching import ColumnMatchingPipeline
from ..core.pipeline import SudowoodoPipeline
from .registry import TaskNotFittedError, register_task
from .results import (
    BlockResult,
    CleanResult,
    ColumnClusterResult,
    ColumnMatchResult,
    MatchResult,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.blocker import CandidateSet
    from ..core.matcher import PairwiseMatcher
    from ..data.em_dataset import EMDataset
    from ..data.generators.cleaning import CleaningDataset
    from ..data.generators.columns import ColumnCorpus
    from .session import SudowoodoSession


class SessionTask:
    """Base class for session-bound tasks (see the ``Task`` protocol).

    Subclasses set ``name`` via :func:`~repro.api.registry.register_task`
    and implement ``fit`` / ``predict`` / ``evaluate`` / ``report``.
    """

    #: Registry name; assigned by :func:`register_task`.
    name: str = ""

    def __init__(self, session: "SudowoodoSession") -> None:
        self.session = session
        self.fitted = False

    def _require_fitted(self, operation: str = "this operation") -> None:
        if not self.fitted:
            raise TaskNotFittedError(self.name, operation)

    @property
    def matcher(self) -> Optional["PairwiseMatcher"]:
        """The task's fine-tuned pairwise matcher (None when it has none)."""
        return None

    def corpus_texts(self) -> List[str]:
        """Serialized records the task indexes when exported via
        :meth:`SudowoodoSession.serve` (empty before :meth:`fit`)."""
        return []


@register_task("match")
class MatchTask(SessionTask):
    """Entity matching over an :class:`~repro.data.em_dataset.EMDataset`:
    block with the shared embeddings, pseudo-label, fine-tune a matcher
    on a checkout of the session encoder."""

    def __init__(self, session: "SudowoodoSession") -> None:
        super().__init__(session)
        self._pipeline: Optional[SudowoodoPipeline] = None

    def fit(
        self,
        dataset: "EMDataset",
        label_budget: int = 500,
        head: str = "sudowoodo",
    ) -> "MatchTask":
        """Blocking + pseudo-labels + matcher fine-tuning (no pre-training
        — the session already paid for it)."""
        self._pipeline = SudowoodoPipeline._attached(
            self.session.config,
            dataset,
            self.session.checkout_encoder(),
            self.session.store,
        )
        self._pipeline.train_matcher(label_budget, head=head)
        self.fitted = True
        return self

    @property
    def pipeline(self) -> SudowoodoPipeline:
        """The attached workload engine (raises before :meth:`fit`)."""
        self._require_fitted()
        assert self._pipeline is not None
        return self._pipeline

    @property
    def matcher(self) -> Optional["PairwiseMatcher"]:
        """The fine-tuned pairwise matcher once fitted."""
        return self._pipeline.matcher if self._pipeline else None

    def predict(
        self,
        pairs: Sequence[Tuple[str, str]],
        batch_size: Optional[int] = None,
    ) -> np.ndarray:
        """Match probabilities (``(N, 2)`` softmax rows) for text pairs."""
        self._require_fitted()
        return self.pipeline.matcher.predict_proba(
            list(pairs),
            batch_size=batch_size or self.session.config.serve_batch_size,
        )

    def evaluate(self, split: str = "test") -> Dict[str, float]:
        """Precision / recall / F1 on a dataset split."""
        return self.pipeline.evaluate(split)

    def block(self, k: Optional[int] = None) -> "CandidateSet":
        """Blocking candidates from the shared embeddings."""
        return self.pipeline.block(k)

    def corpus_texts(self) -> List[str]:
        """Table-B records — the searchable side of the live index."""
        if self._pipeline is None or self._pipeline.dataset is None:
            return []
        dataset = self._pipeline.dataset
        return [dataset.serialize_b(j) for j in range(len(dataset.table_b))]

    def report(self) -> MatchResult:
        """Benchmark-ready result with test metrics and label accounting."""
        pipeline = self.pipeline
        pseudo_quality: Dict[str, float] = {}
        if self.session.config.use_pseudo_labeling and pipeline._pseudo is not None:
            pseudo_quality = pipeline.pseudo_label_quality()
        return MatchResult(
            task=self.name,
            metrics=self.evaluate("test"),
            timings=pipeline.timer.summary(),
            dataset=pipeline.dataset.name,
            num_manual_labels=getattr(pipeline, "_num_manual", 0),
            num_pseudo_labels=getattr(pipeline, "_num_pseudo", 0),
            pseudo_quality=pseudo_quality,
        )


@register_task("block")
class BlockTask(SessionTask):
    """Blocking only: kNN candidate generation over the shared embeddings
    (no fine-tuning, no labels)."""

    def __init__(self, session: "SudowoodoSession") -> None:
        super().__init__(session)
        self._pipeline: Optional[SudowoodoPipeline] = None
        self._candidates: Optional["CandidateSet"] = None
        self.k = 0

    def fit(self, dataset: "EMDataset", k: Optional[int] = None) -> "BlockTask":
        """Embed both tables through the shared store and build the
        candidate set at ``k`` (default ``config.blocking_k``)."""
        # No matcher is trained, so the pristine shared encoder is safe
        # to use directly — no checkout needed.
        self._pipeline = SudowoodoPipeline._attached(
            self.session.config,
            dataset,
            self.session.encoder,
            self.session.store,
        )
        self.k = k or self.session.config.blocking_k
        self._candidates = self._pipeline.block(self.k)
        self.fitted = True
        return self

    def predict(self, k: Optional[int] = None) -> "CandidateSet":
        """The candidate set (recomputed when ``k`` differs from fit)."""
        self._require_fitted()
        assert self._pipeline is not None and self._candidates is not None
        if k is None or k == self.k:
            return self._candidates
        return self._pipeline.block(k)

    def evaluate(self, **_: Any) -> Dict[str, float]:
        """Recall over ground-truth matches and CSSR at the fitted k."""
        candidates = self.predict()
        assert self._pipeline is not None
        return {
            "recall": candidates.recall(self._pipeline.dataset.matches),
            "cssr": candidates.cssr(),
        }

    def corpus_texts(self) -> List[str]:
        """Table-B records — the searchable side of the live index."""
        if self._pipeline is None or self._pipeline.dataset is None:
            return []
        dataset = self._pipeline.dataset
        return [dataset.serialize_b(j) for j in range(len(dataset.table_b))]

    def report(self) -> BlockResult:
        """Candidate volume and the recall/CSSR point at the fitted k."""
        self._require_fitted()
        assert self._pipeline is not None
        return BlockResult(
            task=self.name,
            metrics=self.evaluate(),
            timings=self._pipeline.timer.summary(),
            dataset=self._pipeline.dataset.name,
            k=self.k,
            num_candidates=len(self.predict()),
        )


@register_task("clean")
class CleanTask(SessionTask):
    """Error correction over a
    :class:`~repro.data.generators.cleaning.CleaningDataset` (Section
    V-A): fine-tune the matcher on labeled rows, repair with the
    best-candidate decision rule."""

    def __init__(
        self,
        session: "SudowoodoSession",
        serialization: str = "contextual",
        max_candidates_for_matching: int = 6,
        context_attributes: int = 4,
    ) -> None:
        super().__init__(session)
        self.serialization = serialization
        self.max_candidates = max_candidates_for_matching
        self.context_attributes = context_attributes
        self._cleaner: Optional[SudowoodoCleaner] = None
        self._repairs: Optional[Dict[Tuple[int, str], str]] = None

    def fit(
        self,
        dataset: "CleaningDataset",
        generator: Any = None,
        labeled_rows: int = 20,
    ) -> "CleanTask":
        """Fine-tune on ``labeled_rows`` uniformly sampled rows, using the
        session encoder (no per-task pre-training)."""
        self._cleaner = SudowoodoCleaner._attached(
            self.session.config,
            self.session.checkout_encoder(),
            self.session.store,
            serialization=self.serialization,
            max_candidates_for_matching=self.max_candidates,
            context_attributes=self.context_attributes,
        )
        self._cleaner.fit(dataset, generator, labeled_rows=labeled_rows)
        self._repairs = None
        self.fitted = True
        return self

    @property
    def cleaner(self) -> SudowoodoCleaner:
        """The attached cleaning engine (raises before :meth:`fit`)."""
        self._require_fitted()
        assert self._cleaner is not None
        return self._cleaner

    @property
    def matcher(self) -> Optional["PairwiseMatcher"]:
        """The fine-tuned (cell, candidate) matcher once fitted."""
        return self._cleaner.matcher if self._cleaner else None

    def predict(self) -> Dict[Tuple[int, str], str]:
        """Proposed repairs: ``(row, attribute) -> corrected value``.

        Full-table matcher inference runs once per fit; later calls
        (and :meth:`evaluate` / :meth:`report`) reuse the cached repairs.
        """
        if self._repairs is None:
            self._repairs = self.cleaner.correct()
        return self._repairs

    def evaluate(
        self, exclude_rows: Optional[Sequence[int]] = None
    ) -> Dict[str, float]:
        """Correction precision / recall / F1 against ground truth."""
        result = self.cleaner.evaluate(
            exclude_rows=exclude_rows, repairs=self.predict()
        )
        return {
            "precision": result.precision,
            "recall": result.recall,
            "f1": result.f1,
        }

    def corpus_texts(self) -> List[str]:
        """Every serialized cell of the dirty table (the cleaning
        embedding corpus the live index serves)."""
        if self._cleaner is None or getattr(self._cleaner, "dataset", None) is None:
            return []
        return cleaning_corpus(
            self._cleaner.dataset,
            serialization=self.serialization,
            context_attributes=self.context_attributes,
            include_candidates=False,
        )

    def report(self) -> CleanResult:
        """Correction metrics plus the applied repairs."""
        cleaner = self.cleaner
        repairs = self.predict()
        result = cleaner.evaluate(repairs=repairs)
        return CleanResult(
            task=self.name,
            metrics={
                "precision": result.precision,
                "recall": result.recall,
                "f1": result.f1,
            },
            timings=cleaner.timer.summary(),
            dataset=result.dataset,
            repaired=result.repaired,
            repairs=repairs,
        )


@register_task("column_match")
class ColumnMatchTask(SessionTask):
    """Column matching over a
    :class:`~repro.data.generators.columns.ColumnCorpus` (Section V-B):
    kNN candidates among columns, labeled-pair fine-tuning, same-type
    edge prediction."""

    def __init__(
        self,
        session: "SudowoodoSession",
        max_values_per_column: int = 8,
    ) -> None:
        super().__init__(session)
        self.max_values = max_values_per_column
        self._pipeline: Optional[ColumnMatchingPipeline] = None
        self._match_report = None

    def fit(
        self,
        corpus: "ColumnCorpus",
        k: int = 20,
        num_labels: int = 1000,
    ) -> "ColumnMatchTask":
        """Embed columns through the shared store, label candidates, and
        fine-tune the pair matcher on an encoder checkout."""
        self._pipeline = ColumnMatchingPipeline._attached(
            self.session.config,
            self.session.checkout_encoder(),
            self.session.store,
            max_values_per_column=self.max_values,
        )
        self._pipeline.pretrain_on(corpus)  # attached: embeds, no pretrain
        self._match_report = self._pipeline.train_and_evaluate(
            k=k, num_labels=num_labels
        )
        self.fitted = True
        return self

    @property
    def pipeline(self) -> ColumnMatchingPipeline:
        """The attached column-matching engine (raises before fit)."""
        self._require_fitted()
        assert self._pipeline is not None
        return self._pipeline

    @property
    def matcher(self) -> Optional["PairwiseMatcher"]:
        """The fine-tuned column-pair matcher once fitted."""
        return self._pipeline.matcher if self._pipeline else None

    def predict(
        self,
        candidates: Optional[Sequence[Tuple[int, int]]] = None,
        threshold: float = 0.9,
        k: int = 20,
    ) -> List[Tuple[int, int]]:
        """Same-type column edges among ``candidates`` (default: the kNN
        candidate pairs at ``k``)."""
        pipeline = self.pipeline
        if candidates is None:
            candidates = pipeline.candidate_pairs(k=k)
        return pipeline.predict_edges(candidates, threshold=threshold)

    def evaluate(self, **_: Any) -> Dict[str, float]:
        """Pair-matching test metrics from the labeled split."""
        self._require_fitted()
        return dict(self._match_report.test_metrics)

    def corpus_texts(self) -> List[str]:
        """The serialized columns the live index serves."""
        return list(self._pipeline.texts) if self._pipeline is not None else []

    def report(self) -> ColumnMatchResult:
        """Pair metrics, candidate volume, and the labeled positive rate."""
        self._require_fitted()
        report = self._match_report
        return ColumnMatchResult(
            task=self.name,
            metrics=dict(report.test_metrics),
            timings=self.pipeline.timer.summary(),
            num_candidates=report.num_candidates,
            positive_rate=report.positive_rate,
            valid_metrics=dict(report.valid_metrics),
        )


@register_task("column_cluster")
class ColumnClusterTask(SessionTask):
    """Semantic type discovery: column matching plus connected-component
    clustering of the predicted same-type edges (Tables IX / XIII)."""

    def __init__(
        self,
        session: "SudowoodoSession",
        max_values_per_column: int = 8,
    ) -> None:
        super().__init__(session)
        self._match = ColumnMatchTask(
            session, max_values_per_column=max_values_per_column
        )
        self._edges: List[Tuple[int, int]] = []
        self._clusters = None

    def fit(
        self,
        corpus: "ColumnCorpus",
        k: int = 20,
        num_labels: int = 1000,
        threshold: float = 0.9,
    ) -> "ColumnClusterTask":
        """Fit the underlying column matcher, predict edges at
        ``threshold``, and cluster them into discovered types."""
        self._match.fit(corpus, k=k, num_labels=num_labels)
        self._edges = self._match.predict(threshold=threshold, k=k)
        self._clusters = discover_types(corpus, self._edges)
        self.fitted = True
        return self

    @property
    def matcher(self) -> Optional["PairwiseMatcher"]:
        """The underlying column-pair matcher once fitted."""
        return self._match.matcher

    def predict(self) -> List[List[int]]:
        """The discovered multi-column clusters (column index lists)."""
        self._require_fitted()
        return self._clusters.clusters

    def evaluate(self, **_: Any) -> Dict[str, float]:
        """Cluster purity and count, plus the pair-matching F1."""
        self._require_fitted()
        return {
            "purity": self._clusters.mean_purity,
            "num_clusters": float(self._clusters.num_clusters),
            "f1": self._match.evaluate().get("f1", 0.0),
        }

    def corpus_texts(self) -> List[str]:
        """The serialized columns the live index serves."""
        return self._match.corpus_texts()

    def report(self) -> ColumnClusterResult:
        """Clusters, purity, subtype discoveries, and match metrics."""
        self._require_fitted()
        return ColumnClusterResult(
            task=self.name,
            metrics=self.evaluate(),
            timings=self._match.pipeline.timer.summary(),
            num_clusters=self._clusters.num_clusters,
            num_edges=len(self._edges),
            clusters=self._clusters.clusters,
            subtype_discoveries=self._clusters.subtype_discoveries,
            match_metrics=self._match.evaluate(),
        )
