"""Task registry: the pluggable catalogue behind ``session.task(name)``.

A *task* is a workload that consumes a session's shared pre-trained
encoder — entity matching, blocking, error correction, column matching,
type discovery, or anything a downstream package registers.  Tasks follow
one lifecycle (:class:`Task`): ``fit`` trains on task data, ``predict``
answers requests, ``evaluate`` computes metrics, ``report`` packages a
:class:`~repro.api.results.TaskReport`.

>>> @register_task("my_task")
... class MyTask(SessionTask):
...     ...
>>> session.task("my_task")  # doctest: +SKIP
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Dict, Protocol, Type, runtime_checkable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .session import SudowoodoSession


@runtime_checkable
class Task(Protocol):
    """The structural protocol every registered task implements.

    Attributes
    ----------
    name:
        The registry name the task was created under.
    session:
        The owning :class:`~repro.api.session.SudowoodoSession`, whose
        encoder and embedding store the task shares.
    """

    name: str

    def fit(self, data: Any, **options: Any) -> "Task":
        """Train the task on its data; returns ``self`` for chaining."""
        ...

    def predict(self, *args: Any, **options: Any) -> Any:
        """Answer task-specific requests with the fitted model."""
        ...

    def evaluate(self, **options: Any) -> Dict[str, float]:
        """Metric dict for the fitted task (precision/recall/F1/...)."""
        ...

    def report(self) -> Any:
        """A :class:`~repro.api.results.TaskReport` for the fitted task."""
        ...


class TaskNotFittedError(RuntimeError):
    """A fitted-only operation (``predict`` / ``evaluate`` / ``report`` /
    ``serve``) was requested from a task that has not been ``fit``.

    Typed (rather than a bare ``RuntimeError`` or an ``AttributeError``
    from a ``None`` internal) so callers holding many tasks can catch the
    lifecycle error specifically; ``task`` names the offender.
    """

    def __init__(self, task: str, operation: str = "this operation") -> None:
        super().__init__(
            f"task {task!r} is not fitted; call fit() before {operation}"
        )
        self.task = task
        self.operation = operation


_REGISTRY: Dict[str, Type] = {}


def register_task(name: str) -> Callable[[Type], Type]:
    """Class decorator adding a task type to the registry under ``name``.

    Registering a name twice raises ``ValueError`` (re-registration is
    almost always an accidental duplicate import path); the decorated
    class gains a ``name`` attribute set to the registered name.
    """

    def decorator(task_cls: Type) -> Type:
        if name in _REGISTRY:
            raise ValueError(
                f"task {name!r} is already registered "
                f"({_REGISTRY[name].__qualname__})"
            )
        task_cls.name = name
        _REGISTRY[name] = task_cls
        return task_cls

    return decorator


def available_tasks() -> tuple:
    """Sorted names of every registered task."""
    return tuple(sorted(_REGISTRY))


def create_task(name: str, session: "SudowoodoSession", **options: Any):
    """Instantiate the registered task ``name`` bound to ``session``.

    Unknown names raise ``ValueError`` listing what is registered, so a
    typo fails at ``session.task()`` time instead of deep inside a run.
    """
    try:
        task_cls = _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown task {name!r}; registered tasks: "
            f"{', '.join(available_tasks()) or '(none)'}"
        ) from None
    return task_cls(session, **options)
