"""Unified multi-task session API: pretrain once, serve every workload.

``repro.api`` is the recommended public surface of this reproduction.
One :class:`SudowoodoSession` owns one contrastively pre-trained encoder
and its embedding store; any number of registered tasks — entity
``match``-ing, ``block``-ing, error ``clean``-ing, ``column_match`` and
``column_cluster`` discovery, plus the integration-pipeline tier of
``join_discovery``, ``dedupe``, and ``streaming_er`` — attach to it,
share those representations, and follow one ``fit`` / ``predict`` /
``evaluate`` / ``report`` lifecycle.  ``session.serve()`` exports any
fitted task as a thread-safe, shardable streaming service.

>>> from repro.api import SudowoodoSession
>>> session = SudowoodoSession(config)
>>> session.pretrain(corpus)                       # the expensive step, once
>>> result = session.task("match").fit(dataset, label_budget=80).report()
>>> repairs = session.task("clean").fit(dirty_table).predict()
>>> service = session.serve("match", num_shards=4)  # doctest: +SKIP

The legacy drivers (``SudowoodoPipeline``, ``SudowoodoCleaner``,
``ColumnMatchingPipeline``) remain as deprecated shims over this API;
see ``docs/api.md`` for the migration table.
"""

from ..core.config import (
    FinetuneConfig,
    ModelConfig,
    PretrainConfig,
    PseudoLabelConfig,
    RunConfig,
    ServeConfig,
    SudowoodoConfig,
)
from .registry import (
    Task,
    TaskNotFittedError,
    available_tasks,
    create_task,
    register_task,
)
from .results import (
    BlockResult,
    CleanResult,
    ColumnClusterResult,
    ColumnMatchResult,
    DedupeResult,
    JoinCandidate,
    JoinDiscoveryResult,
    MatchResult,
    StreamingERResult,
    TaskReport,
)
from .session import SudowoodoSession
from .tasks import (
    BlockTask,
    CleanTask,
    ColumnClusterTask,
    ColumnMatchTask,
    MatchTask,
    SessionTask,
)

# Importing the discovery package registers the join_discovery / dedupe /
# streaming_er tasks.  It lives at the end of the module because the
# discovery tasks import SessionTask and the result types defined above.
from .. import discovery as _discovery  # noqa: E402,F401  (registration)

__all__ = [
    "BlockResult",
    "BlockTask",
    "CleanResult",
    "CleanTask",
    "ColumnClusterResult",
    "ColumnClusterTask",
    "ColumnMatchResult",
    "ColumnMatchTask",
    "DedupeResult",
    "FinetuneConfig",
    "JoinCandidate",
    "JoinDiscoveryResult",
    "MatchResult",
    "MatchTask",
    "ModelConfig",
    "PretrainConfig",
    "PseudoLabelConfig",
    "RunConfig",
    "ServeConfig",
    "SessionTask",
    "StreamingERResult",
    "SudowoodoConfig",
    "SudowoodoSession",
    "Task",
    "TaskNotFittedError",
    "TaskReport",
    "available_tasks",
    "create_task",
    "register_task",
]
