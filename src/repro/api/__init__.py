"""Unified multi-task session API: pretrain once, serve every workload.

``repro.api`` is the recommended public surface of this reproduction.
One :class:`SudowoodoSession` owns one contrastively pre-trained encoder
and its embedding store; any number of registered tasks — entity
``match``-ing, ``block``-ing, error ``clean``-ing, ``column_match`` and
``column_cluster`` discovery — attach to it, share those
representations, and follow one ``fit`` / ``predict`` / ``evaluate`` /
``report`` lifecycle.  ``session.serve()`` exports any fitted task as a
thread-safe, shardable streaming service.

>>> from repro.api import SudowoodoSession
>>> session = SudowoodoSession(config)
>>> session.pretrain(corpus)                       # the expensive step, once
>>> result = session.task("match").fit(dataset, label_budget=80).report()
>>> repairs = session.task("clean").fit(dirty_table).predict()
>>> service = session.serve("match", num_shards=4)  # doctest: +SKIP

The legacy drivers (``SudowoodoPipeline``, ``SudowoodoCleaner``,
``ColumnMatchingPipeline``) remain as deprecated shims over this API;
see ``docs/api.md`` for the migration table.
"""

from ..core.config import (
    FinetuneConfig,
    ModelConfig,
    PretrainConfig,
    PseudoLabelConfig,
    RunConfig,
    ServeConfig,
    SudowoodoConfig,
)
from .registry import Task, available_tasks, create_task, register_task
from .results import (
    BlockResult,
    CleanResult,
    ColumnClusterResult,
    ColumnMatchResult,
    MatchResult,
    TaskReport,
)
from .session import SudowoodoSession
from .tasks import (
    BlockTask,
    CleanTask,
    ColumnClusterTask,
    ColumnMatchTask,
    MatchTask,
    SessionTask,
)

__all__ = [
    "BlockResult",
    "BlockTask",
    "CleanResult",
    "CleanTask",
    "ColumnClusterResult",
    "ColumnClusterTask",
    "ColumnMatchResult",
    "ColumnMatchTask",
    "FinetuneConfig",
    "MatchResult",
    "MatchTask",
    "ModelConfig",
    "PretrainConfig",
    "PseudoLabelConfig",
    "RunConfig",
    "ServeConfig",
    "SessionTask",
    "SudowoodoConfig",
    "SudowoodoSession",
    "Task",
    "TaskReport",
    "available_tasks",
    "create_task",
    "register_task",
]
