"""``SudowoodoSession`` — pretrain once, serve every task.

The paper's headline claim is *multi-purpose*: one contrastively
pre-trained representation model powers entity matching, blocking, error
correction, and column type discovery.  The session makes that reuse the
unit of the public API:

>>> session = SudowoodoSession(SudowoodoConfig(pretrain_epochs=3))
>>> session.pretrain(corpus_texts)                     # the expensive step, once
>>> match = session.task("match").fit(em_dataset, label_budget=80)
>>> clean = session.task("clean").fit(cleaning_dataset)
>>> cols  = session.task("column_cluster").fit(column_corpus)
>>> service = session.serve("match", num_shards=4)     # streaming upsert/search

Sharing contract
----------------
* The session owns the **pristine pre-trained encoder** and one
  :class:`~repro.serve.store.EmbeddingStore` over it; every task embeds
  through that store, so a record serialized by two tasks is encoded
  once and both see byte-identical vectors.
* A task that fine-tunes (matching, cleaning, column matching) trains on
  a **clone** of the encoder (:meth:`checkout_encoder`), so fitting one
  task never perturbs another task's — or the store's — representations.
* :meth:`serve` exports any fitted task as a thread-safe
  :class:`~repro.serve.sharding.ShardedMatchService` over the shared
  store: cleaning and column embeddings get streaming upsert / delete
  and coalesced concurrent queries exactly like the EM path.
"""

from __future__ import annotations

import hashlib
from dataclasses import replace
from typing import Any, Dict, Optional, Sequence, Union

import numpy as np

from ..core.config import SudowoodoConfig
from ..core.encoder import SudowoodoEncoder
from ..core.pretrain import PretrainResult, pretrain
from ..serve import EmbeddingStore, ServiceFrontend, ShardedMatchService
from ..utils import Timer
from .registry import Task, TaskNotFittedError, available_tasks, create_task


class SudowoodoSession:
    """One pre-trained encoder serving any number of registered tasks.

    Parameters
    ----------
    config:
        The shared :class:`~repro.core.config.SudowoodoConfig`; defaults
        apply when omitted.  Use ``SudowoodoConfig.for_task(...)`` or
        :meth:`SudowoodoConfig.from_dict` to build one, and pass
        task-specific options to ``task(...).fit(...)`` instead of
        cloning configs per task.
    """

    def __init__(self, config: Optional[SudowoodoConfig] = None) -> None:
        self.config = config or SudowoodoConfig()
        self.config.validate()
        self.timer = Timer()
        self.pretrain_result: Optional[PretrainResult] = None
        self._encoder: Optional[SudowoodoEncoder] = None
        self._store: Optional[EmbeddingStore] = None
        self._tasks: Dict[str, Task] = {}

    # ------------------------------------------------------------------
    # Pre-training (the amortized step)
    # ------------------------------------------------------------------
    @property
    def is_pretrained(self) -> bool:
        """Whether the session already holds a pre-trained encoder."""
        return self._encoder is not None

    def pretrain(
        self,
        corpus: Sequence[str],
        force: bool = False,
        checkpoint_dir: Optional[str] = None,
        resume: bool = False,
    ) -> PretrainResult:
        """Contrastively pre-train the shared encoder on ``corpus``.

        ``corpus`` is any iterable of serialized data items — records,
        cells, columns, or their union when several tasks will share the
        session.  Pre-training twice is almost always a mistake (it
        silently invalidates every fitted task), so a second call raises
        ``RuntimeError`` unless ``force=True``, which also resets the
        store and drops cached task instances.

        With ``checkpoint_dir`` the training engine writes a full-state
        checkpoint every ``config.checkpoint_every`` epochs;
        ``resume=True`` continues from the latest checkpoint in that
        directory (byte-identical to the uninterrupted run — see
        ``docs/training.md``).
        """
        if self.is_pretrained and not force:
            raise RuntimeError(
                "session is already pretrained; pass force=True to "
                "re-pretrain (drops the store and every cached task)"
            )
        with self.timer.section("pretrain"):
            result = pretrain(
                list(corpus),
                self.config,
                checkpoint_dir=checkpoint_dir,
                resume=resume,
            )
        self._adopt(result.encoder, pretrain_result=result)
        return result

    def adopt(
        self,
        encoder: SudowoodoEncoder,
        store: Optional[EmbeddingStore] = None,
    ) -> "SudowoodoSession":
        """Attach an already-trained encoder (e.g. loaded via
        :func:`repro.core.persistence.load_encoder`) instead of
        pre-training; optionally reuse an existing warm ``store``.
        """
        self._adopt(encoder, store=store)
        return self

    def _adopt(
        self,
        encoder: SudowoodoEncoder,
        store: Optional[EmbeddingStore] = None,
        pretrain_result: Optional[PretrainResult] = None,
    ) -> None:
        self._encoder = encoder
        self._store = store or EmbeddingStore(
            encoder,
            batch_size=self.config.serve_batch_size,
            capacity=self.config.embed_cache_capacity,
            dtype=self.config.store_dtype,
        )
        self.pretrain_result = pretrain_result
        self._tasks = {}

    # ------------------------------------------------------------------
    # Shared state
    # ------------------------------------------------------------------
    @property
    def encoder(self) -> SudowoodoEncoder:
        """The pristine shared encoder (raises before :meth:`pretrain`)."""
        if self._encoder is None:
            raise RuntimeError(
                "session has no encoder; call pretrain(corpus) or "
                "adopt(encoder) first"
            )
        return self._encoder

    @property
    def store(self) -> EmbeddingStore:
        """The shared embedding store (raises before :meth:`pretrain`)."""
        if self._store is None:
            raise RuntimeError(
                "session has no embedding store; call pretrain(corpus) or "
                "adopt(encoder) first"
            )
        return self._store

    def checkout_encoder(self) -> SudowoodoEncoder:
        """A deep copy of the shared encoder for in-place fine-tuning.

        Tasks train matchers on checkouts, never on the shared encoder,
        so the session's embeddings stay valid across task fits.
        """
        with self.timer.section("encoder_checkout"):
            return self.encoder.clone()

    def embed(self, texts: Sequence[str], normalize: bool = True) -> np.ndarray:
        """Embed ``texts`` through the shared store (cache-first)."""
        return self.store.embed_batch(texts, normalize=normalize)

    def embedding_fingerprint(self, texts: Sequence[str]) -> str:
        """Content hash of the shared-encoder embeddings of ``texts``.

        Byte-stable: the same session produces the same fingerprint for
        the same texts no matter how many tasks ran in between — the
        testable form of "fitting tasks never mutates the shared
        representation".
        """
        vectors = self.embed(texts, normalize=False)
        return hashlib.sha256(
            np.ascontiguousarray(vectors, dtype=np.float64).tobytes()
        ).hexdigest()

    # ------------------------------------------------------------------
    # Tasks
    # ------------------------------------------------------------------
    def task(self, name: str, fresh: bool = False, **options: Any) -> Task:
        """The session's task instance for ``name`` (cached per name).

        The first call instantiates the registered task bound to this
        session; later calls return the same instance — so
        ``session.task("match")`` after fitting retrieves the fitted
        task — unless ``fresh=True`` replaces it.  Unknown names raise
        ``ValueError`` listing the registered tasks.
        """
        if fresh or name not in self._tasks:
            self._tasks[name] = create_task(name, self, **options)
        elif options:
            raise ValueError(
                f"task {name!r} already exists for this session; pass "
                "fresh=True to rebuild it with new options"
            )
        return self._tasks[name]

    def fitted_tasks(self) -> Dict[str, Task]:
        """Name -> task for every cached task that has been fitted."""
        return {
            name: task
            for name, task in self._tasks.items()
            if getattr(task, "fitted", False)
        }

    def tasks(self) -> Dict[str, bool]:
        """Every registered task name -> whether this session holds a
        fitted instance of it.

        Covers the full registry (including tasks this session never
        instantiated, reported as ``False``), so callers can discover
        what is *available* and what is *ready to serve* in one call.
        """
        return {
            name: bool(getattr(self._tasks.get(name), "fitted", False))
            for name in available_tasks()
        }

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def serve(
        self,
        task: Optional[Union[str, Task]] = None,
        num_shards: Optional[int] = None,
        coalesce_window_ms: Optional[float] = None,
        index: bool = True,
        frontend: bool = False,
        max_queue_depth: Optional[int] = None,
        default_deadline_ms: Optional[float] = None,
        priority_levels: Optional[int] = None,
    ) -> Union[ShardedMatchService, ServiceFrontend]:
        """Export the session (optionally a fitted task) as a live service.

        Returns a thread-safe
        :class:`~repro.serve.sharding.ShardedMatchService` sharing this
        session's encoder and warm store.  With ``task`` (a name or a
        fitted task instance) the task's corpus is loaded into the live
        index — streaming ``upsert_records`` / ``delete_records`` /
        coalesced ``search`` then work over cleaning cells or serialized
        columns exactly as over EM records — and the task's fine-tuned
        matcher (when it has one) backs ``match_pairs``.  ``num_shards``
        / ``coalesce_window_ms`` override the config per service;
        ``index=False`` skips corpus indexing (call
        ``service.index_records`` yourself).

        With ``frontend=True`` the service is wrapped in a
        :class:`~repro.serve.frontend.ServiceFrontend` — the production
        broker with bounded admission (``max_queue_depth``), per-request
        deadlines (``default_deadline_ms``), priority scheduling
        (``priority_levels``), a streaming metrics registry, and
        zero-downtime blue/green ``reindex``; the three knobs override
        the config's ``serve`` section per frontend.
        """
        bound: Optional[Task] = None
        if task is not None:
            bound = self._tasks.get(task, task) if isinstance(task, str) else task
            if isinstance(bound, str):
                raise ValueError(
                    f"task {bound!r} has not been created on this session; "
                    f"known tasks: {', '.join(available_tasks())}"
                )
            if not getattr(bound, "fitted", False):
                raise TaskNotFittedError(
                    str(getattr(bound, "name", bound)), "serving it"
                )
        overrides: Dict[str, Any] = {}
        if num_shards is not None:
            overrides["num_shards"] = num_shards
        if coalesce_window_ms is not None:
            overrides["coalesce_window_ms"] = coalesce_window_ms
        if max_queue_depth is not None:
            overrides["max_queue_depth"] = max_queue_depth
        if default_deadline_ms is not None:
            overrides["default_deadline_ms"] = default_deadline_ms
        if priority_levels is not None:
            overrides["priority_levels"] = priority_levels
        config = replace(self.config, **overrides) if overrides else self.config
        service = ShardedMatchService(
            self.encoder,
            config=config,
            store=self.store,
            matcher=getattr(bound, "matcher", None),
        )
        if bound is not None and index:
            corpus = bound.corpus_texts()
            if corpus:
                service.index_records(corpus)
        if frontend:
            return ServiceFrontend(service, config=service.config)
        return service
