"""Per-task result dataclasses returned by ``Task.report()``.

Every session task reports through a :class:`TaskReport` subclass so
callers can treat heterogeneous workloads uniformly: ``task`` names the
registry entry that produced the result, ``metrics`` holds the headline
numbers (precision / recall / F1 / purity, task-dependent keys), and
``timings`` the wall-clock sections.  Task-specific payloads (repairs,
clusters, candidate counts) live on the subclass fields.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..data.records import Record


@dataclass
class TaskReport:
    """Common shape of every task result: name, metrics, timings."""

    task: str
    metrics: Dict[str, float] = field(default_factory=dict)
    timings: Dict[str, float] = field(default_factory=dict)

    @property
    def f1(self) -> float:
        """The headline F1 when the task reports one (0.0 otherwise)."""
        return self.metrics.get("f1", 0.0)


@dataclass
class MatchResult(TaskReport):
    """Entity matching: test metrics plus label accounting."""

    dataset: str = ""
    num_manual_labels: int = 0
    num_pseudo_labels: int = 0
    pseudo_quality: Dict[str, float] = field(default_factory=dict)


@dataclass
class BlockResult(TaskReport):
    """Blocking: candidate volume and the recall/CSSR trade-off at k."""

    dataset: str = ""
    k: int = 0
    num_candidates: int = 0


@dataclass
class CleanResult(TaskReport):
    """Error correction: correction P/R/F1 and the applied repairs."""

    dataset: str = ""
    repaired: int = 0
    repairs: Dict[Tuple[int, str], str] = field(default_factory=dict)


@dataclass
class ColumnMatchResult(TaskReport):
    """Column matching: pair-level metrics over the labeled candidates."""

    num_candidates: int = 0
    positive_rate: float = 0.0
    valid_metrics: Dict[str, float] = field(default_factory=dict)


@dataclass(frozen=True)
class JoinCandidate:
    """One ranked joinable column pair from ``join_discovery``.

    ``score`` blends a containment-sketch overlap estimate with the
    embedding cosine (``alpha * containment + (1 - alpha) * cosine``);
    the two ingredients are carried separately so callers can re-rank.
    """

    table_a: str
    column_a: str
    table_b: str
    column_b: str
    score: float
    containment: float
    cosine: float

    @property
    def pair(self) -> Tuple[Tuple[str, str], Tuple[str, str]]:
        """The sorted ((table, column), (table, column)) key."""
        a = (self.table_a, self.column_a)
        b = (self.table_b, self.column_b)
        return (a, b) if a <= b else (b, a)


@dataclass
class JoinDiscoveryResult(TaskReport):
    """Join discovery: ranked joinable column pairs, grouped per table."""

    num_tables: int = 0
    num_columns: int = 0
    candidates: List[JoinCandidate] = field(default_factory=list)
    by_table: Dict[str, List[JoinCandidate]] = field(default_factory=dict)


@dataclass
class DedupeResult(TaskReport):
    """Dedupe-and-merge: duplicate clusters, canonical records, reduction."""

    dataset: str = ""
    policy: str = ""
    num_records: int = 0
    clusters: List[List[int]] = field(default_factory=list)
    canonical_records: List["Record"] = field(default_factory=list)
    reduction_ratio: float = 0.0


@dataclass
class StreamingERResult(TaskReport):
    """Streaming ER: feed accounting plus freshness / throughput metrics.

    ``metrics`` carries the headline numbers (sustained QPS, staleness
    p50/p99, shed and deadline counts); the fields below record how the
    feed was consumed.
    """

    num_events: int = 0
    upserts: int = 0
    deletes: int = 0
    searches: int = 0
    final_index_size: int = 0


@dataclass
class ColumnClusterResult(TaskReport):
    """Type discovery: clusters, purity, and subtype discoveries."""

    num_clusters: int = 0
    num_edges: int = 0
    clusters: List[List[int]] = field(default_factory=list)
    subtype_discoveries: List[Dict[str, str]] = field(default_factory=list)
    match_metrics: Dict[str, float] = field(default_factory=dict)
