"""Op-level performance profiler for the Tensor engine.

The companion to :mod:`repro.eval.profiling` (which profiles *dataset
difficulty*, not runtime): this module answers "where do the encode
milliseconds go" at the granularity of individual Tensor primitives.

:class:`OpProfiler` is an **opt-in** hook — entering the context manager
wraps the Tensor engine's primitive operations (methods on
:class:`~repro.nn.tensor.Tensor` plus the fused module-level kernels)
with timing shims; exiting restores the originals, so the hot path pays
zero overhead while no profiler is active.  Each primitive records call
count, wall seconds, and bytes allocated for its outputs.

:func:`profile_encode` packages the common question — what dominates one
`embed_items` pass over a corpus — into a single call returning an
:class:`EncodeProfile` with a formatted per-op table.  Patching swaps
class/module attributes, so profiling is process-global: profile on a
quiet service, not under concurrent traffic.

>>> profile = profile_encode(encoder, corpus)
>>> print(profile.table())            # per-op calls / ms / MB, sorted
>>> profile.texts_per_second
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..nn import tensor as tensor_ops
from ..nn.tensor import Tensor

#: Tensor methods wrapped by the profiler, mapped to their report names.
#: Only *primitives* appear here — compositions (``__sub__``, ``mean``,
#: ``l2_normalize``) route through these and would double-count.
TENSOR_METHODS: Dict[str, str] = {
    "__add__": "add",
    "__radd__": "add",
    "__mul__": "mul",
    "__rmul__": "mul",
    "__truediv__": "div",
    "__pow__": "pow",
    "matmul": "matmul",
    "exp": "exp",
    "log": "log",
    "sqrt": "sqrt",
    "abs": "abs",
    "tanh": "tanh",
    "sigmoid": "sigmoid",
    "relu": "relu",
    "gelu": "gelu",
    "sum": "sum",
    "max": "max",
    "reshape": "reshape",
    "transpose": "transpose",
    "__getitem__": "getitem",
    "softmax": "softmax",
    "log_softmax": "log_softmax",
    "layer_norm": "layer_norm",
    "embedding": "embedding",
    "masked_fill": "masked_fill",
}

#: Module-level functions in ``repro.nn.tensor`` wrapped by the profiler
#: (the fused kernels plus the concatenation helpers).
MODULE_FUNCTIONS: List[str] = [
    "linear",
    "bias_gelu",
    "attention_scores",
    "concat",
    "stack",
]


@dataclass
class OpStat:
    """Aggregated counters for one primitive operation."""

    calls: int = 0
    seconds: float = 0.0
    bytes: int = 0

    def merge(self, seconds: float, nbytes: int) -> None:
        """Fold one call's wall time and output bytes into the stat."""
        self.calls += 1
        self.seconds += seconds
        self.bytes += nbytes


class OpProfiler:
    """Context manager timing every Tensor primitive while active.

    >>> with OpProfiler() as prof:
    ...     encoder.embed_items(corpus)
    >>> prof.stats["matmul"].calls
    """

    def __init__(self) -> None:
        self.stats: Dict[str, OpStat] = {}
        self._saved_methods: Dict[str, object] = {}
        self._saved_functions: Dict[str, object] = {}

    # -- recording ------------------------------------------------------
    def record(self, name: str, seconds: float, nbytes: int) -> None:
        """Fold one timed call into the per-op aggregate."""
        stat = self.stats.get(name)
        if stat is None:
            stat = self.stats[name] = OpStat()
        stat.merge(seconds, nbytes)

    @property
    def total_calls(self) -> int:
        """Primitive invocations observed while active."""
        return sum(stat.calls for stat in self.stats.values())

    @property
    def total_seconds(self) -> float:
        """Wall seconds spent inside primitives (nesting not deduped)."""
        return sum(stat.seconds for stat in self.stats.values())

    # -- patching -------------------------------------------------------
    def _wrap(self, func, name: str):
        def wrapper(*args, **kwargs):
            start = time.perf_counter()
            out = func(*args, **kwargs)
            elapsed = time.perf_counter() - start
            nbytes = out.data.nbytes if isinstance(out, Tensor) else 0
            self.record(name, elapsed, nbytes)
            return out

        wrapper.__name__ = getattr(func, "__name__", name)
        return wrapper

    def __enter__(self) -> "OpProfiler":
        for method, name in TENSOR_METHODS.items():
            original = getattr(Tensor, method)
            self._saved_methods[method] = original
            setattr(Tensor, method, self._wrap(original, name))
        for function in MODULE_FUNCTIONS:
            original = getattr(tensor_ops, function)
            self._saved_functions[function] = original
            setattr(tensor_ops, function, self._wrap(original, function))
        return self

    def __exit__(self, *exc_info) -> None:
        for method, original in self._saved_methods.items():
            setattr(Tensor, method, original)
        for function, original in self._saved_functions.items():
            setattr(tensor_ops, function, original)
        self._saved_methods.clear()
        self._saved_functions.clear()

    # -- reporting ------------------------------------------------------
    def table(self, limit: Optional[int] = None) -> str:
        """Per-op report sorted by total time (descending)."""
        rows = sorted(
            self.stats.items(), key=lambda item: item[1].seconds, reverse=True
        )
        if limit is not None:
            rows = rows[:limit]
        total = self.total_seconds or 1.0
        lines = [
            f"{'op':<18} {'calls':>8} {'total_ms':>10} {'%':>6} {'alloc_MB':>9}"
        ]
        for name, stat in rows:
            lines.append(
                f"{name:<18} {stat.calls:>8} {stat.seconds * 1e3:>10.2f} "
                f"{100.0 * stat.seconds / total:>6.1f} "
                f"{stat.bytes / 1e6:>9.2f}"
            )
        return "\n".join(lines)

    def publish(self, metrics, prefix: str = "ops") -> None:
        """Mirror the aggregates into a
        :class:`~repro.serve.metrics.MetricsRegistry` (counters
        ``<prefix>.<op>.calls`` / ``.bytes``, histogram ``.seconds``)."""
        for name, stat in self.stats.items():
            metrics.counter(f"{prefix}.{name}.calls").increment(stat.calls)
            metrics.counter(f"{prefix}.{name}.bytes").increment(stat.bytes)
            if stat.calls:
                metrics.histogram(f"{prefix}.{name}.seconds").record(
                    stat.seconds / stat.calls
                )


@dataclass
class EncodeProfile:
    """The result of :func:`profile_encode`: per-op stats plus wall time."""

    stats: Dict[str, OpStat]
    wall_seconds: float
    num_texts: int
    op_seconds: float = 0.0
    op_calls: int = 0
    _table: str = field(default="", repr=False)

    @property
    def texts_per_second(self) -> float:
        """End-to-end encode throughput during the profiled pass."""
        return self.num_texts / self.wall_seconds if self.wall_seconds else 0.0

    def table(self) -> str:
        """The per-op report captured at profile time."""
        return self._table


def profile_encode(
    encoder,
    texts: Sequence[str],
    batch_size: int = 64,
    use_token_cache: bool = True,
) -> EncodeProfile:
    """Profile one ``embed_items`` pass over ``texts`` op by op.

    Returns an :class:`EncodeProfile`; ``print(profile.table())`` shows
    which primitives dominate (the report that motivated the fused
    ``linear`` / ``bias_gelu`` / ``attention_scores`` kernels).
    """
    profiler = OpProfiler()
    start = time.perf_counter()
    with profiler:
        encoder.embed_items(
            texts, batch_size=batch_size, use_token_cache=use_token_cache
        )
    wall = time.perf_counter() - start
    return EncodeProfile(
        stats=profiler.stats,
        wall_seconds=wall,
        num_texts=len(texts),
        op_seconds=profiler.total_seconds,
        op_calls=profiler.total_calls,
        _table=profiler.table(),
    )
