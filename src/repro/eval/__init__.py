"""Evaluation utilities: difficulty profiling and report formatting."""

from .profiling import DifficultyLevel, pair_jaccard, split_by_difficulty
from .reporting import f1_row, format_table

__all__ = [
    "DifficultyLevel",
    "f1_row",
    "format_table",
    "pair_jaccard",
    "split_by_difficulty",
]
