"""Evaluation utilities: difficulty profiling, op-level performance
profiling, and report formatting."""

from .perf import EncodeProfile, OpProfiler, OpStat, profile_encode
from .profiling import DifficultyLevel, pair_jaccard, split_by_difficulty
from .reporting import f1_row, format_table

__all__ = [
    "DifficultyLevel",
    "EncodeProfile",
    "OpProfiler",
    "OpStat",
    "f1_row",
    "format_table",
    "pair_jaccard",
    "profile_encode",
    "split_by_difficulty",
]
