"""Paper-style table rendering for the benchmark harness."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

Cell = Union[str, float, int, None]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Cell]],
    title: Optional[str] = None,
    float_digits: int = 1,
) -> str:
    """Render an ASCII table; floats are shown with ``float_digits``."""

    def render(cell: Cell) -> str:
        if cell is None:
            return "-"
        if isinstance(cell, float):
            return f"{cell:.{float_digits}f}"
        return str(cell)

    rendered = [[render(c) for c in row] for row in rows]
    widths = [
        max(len(str(headers[i])), *(len(r[i]) for r in rendered), 1)
        if rendered
        else len(str(headers[i]))
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    header_line = " | ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-+-".join("-" * w for w in widths))
    for row in rendered:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def f1_row(name: str, metrics_by_dataset: Dict[str, Dict[str, float]],
           datasets: Sequence[str]) -> List[Cell]:
    """One Table-V-style row: method name, per-dataset F1 (x100), average."""
    values = []
    for dataset in datasets:
        metrics = metrics_by_dataset.get(dataset)
        values.append(100.0 * metrics["f1"] if metrics else None)
    present = [v for v in values if v is not None]
    average = sum(present) / len(present) if present else None
    return [name, *values, average]
