"""Jaccard-difficulty profiling (Appendix E, Table XVI).

Test pairs are split into five equal-size, equal-positive-ratio levels by
token Jaccard similarity: level 5 (hardest) holds the least-similar
positives and the most-similar negatives; level 1 the opposite.  A method
relying on surface similarity degrades sharply toward level 5.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..data import EMDataset, LabeledPair
from ..text import jaccard


@dataclass
class DifficultyLevel:
    level: int  # 1 = easiest ... 5 = hardest
    pairs: List[LabeledPair]
    positive_jaccard_range: Tuple[float, float]
    negative_jaccard_range: Tuple[float, float]


def pair_jaccard(dataset: EMDataset, pair: LabeledPair) -> float:
    return jaccard(
        dataset.table_a[pair.left].text(), dataset.table_b[pair.right].text()
    )


def split_by_difficulty(
    dataset: EMDataset, num_levels: int = 5, split: str = "test"
) -> List[DifficultyLevel]:
    """Partition a split into difficulty levels.

    Positives are sorted ascending by Jaccard (hardest = least similar),
    negatives descending (hardest = most similar); level k takes the k-th
    slice of each, so levels share the split's positive ratio.
    """
    pairs = list(getattr(dataset.pairs, split))
    positives = sorted(
        (p for p in pairs if p.label == 1), key=lambda p: pair_jaccard(dataset, p)
    )
    negatives = sorted(
        (p for p in pairs if p.label == 0),
        key=lambda p: -pair_jaccard(dataset, p),
    )
    levels = []
    for level in range(num_levels):
        pos_slice = positives[
            level * len(positives) // num_levels : (level + 1)
            * len(positives)
            // num_levels
        ]
        neg_slice = negatives[
            level * len(negatives) // num_levels : (level + 1)
            * len(negatives)
            // num_levels
        ]
        pos_j = [pair_jaccard(dataset, p) for p in pos_slice] or [0.0]
        neg_j = [pair_jaccard(dataset, p) for p in neg_slice] or [0.0]
        levels.append(
            DifficultyLevel(
                level=num_levels - level,  # first slice = hardest = level 5
                pairs=pos_slice + neg_slice,
                positive_jaccard_range=(min(pos_j), max(pos_j)),
                negative_jaccard_range=(min(neg_j), max(neg_j)),
            )
        )
    return levels
