"""Sudowoodo for error correction (Section V-A).

Pipeline: pre-train the representation model on serialized cells and their
candidate corrections; label ~20 uniformly sampled rows; fine-tune the
pairwise matcher on (cell, candidate) pairs; finally, for every cell, take
the candidate maximizing the match probability — the cell is clean when
that candidate is the original value.

Pseudo-labeling is *not* used here (the task is not similarity-based,
Section V-A), matching the paper's setting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core import SudowoodoConfig
from ..core.matcher import (
    PairwiseMatcher,
    TrainingExample,
    finetune_matcher,
)
from ..core.pipeline import _apply_class_balance
from ..core.pretrain import pretrain
from ..data.generators.cleaning import CleaningDataset
from ..data.records import serialize_cell_context_free, serialize_row_contextual
from ..serve import EmbeddingStore
from ..utils import RngStream, Timer
from .candidates import CandidateGenerator


def cleaning_config(**overrides) -> SudowoodoConfig:
    """The paper's EC configuration: span_shuffle DA with span cutoff, all
    pre-training optimizations on, pseudo-labeling off."""
    defaults = dict(
        da_operator="span_shuffle",
        cutoff_kind="span",
        use_pseudo_labeling=False,
        positive_ratio=0.10,
    )
    defaults.update(overrides)
    return SudowoodoConfig(**defaults)


def _best_threshold(probabilities: np.ndarray, labels: np.ndarray) -> float:
    """Threshold maximizing F1 on calibration pairs (ties -> higher t)."""
    best_threshold, best_f1 = 0.5, -1.0
    for threshold in np.unique(np.round(probabilities, 3)):
        predictions = probabilities >= threshold
        true_pos = int((predictions & (labels == 1)).sum())
        if true_pos == 0:
            continue
        precision = true_pos / predictions.sum()
        recall = true_pos / max(1, (labels == 1).sum())
        f1 = 2 * precision * recall / (precision + recall)
        if f1 >= best_f1:
            best_f1 = f1
            best_threshold = float(threshold)
    return best_threshold


@dataclass
class CleaningReport:
    dataset: str
    precision: float
    recall: float
    f1: float
    repaired: int
    timings: Dict[str, float] = field(default_factory=dict)


class SudowoodoCleaner:
    """Error-correction pipeline over a :class:`CleaningDataset`."""

    def __init__(
        self,
        config: Optional[SudowoodoConfig] = None,
        serialization: str = "contextual",
        max_candidates_for_matching: int = 6,
        context_attributes: int = 4,
    ) -> None:
        if serialization not in ("context_free", "contextual"):
            raise ValueError("serialization must be context_free or contextual")
        self.config = config or cleaning_config()
        self.serialization = serialization
        self.max_candidates = max_candidates_for_matching
        self.context_attributes = context_attributes
        self.timer = Timer()
        self.matcher: Optional[PairwiseMatcher] = None
        self.store: Optional[EmbeddingStore] = None

    # ------------------------------------------------------------------
    def _context_schema(self, dataset: CleaningDataset, attribute: str) -> List[str]:
        """The serialized attribute window for ``attribute``.

        The paper's contextual scheme serializes the whole row; at CPU
        scale we trim to the target attribute plus its FD determinants and
        a few leading attributes (the same role the LM's 512-token
        truncation plays at full scale).
        """
        window: List[str] = []
        for determinant, dependents in dataset.dependencies.items():
            if attribute in dependents and determinant not in window:
                window.append(determinant)
        if attribute not in window:
            window.append(attribute)
        for other in dataset.schema:
            if len(window) >= self.context_attributes + 1:
                break
            if other not in window:
                window.append(other)
        # Keep schema order for determinism.
        return [a for a in dataset.schema if a in window]

    def _serialize_cell(self, dataset, row: int, attribute: str, value: str) -> str:
        if self.serialization == "context_free":
            return serialize_cell_context_free(attribute, value)
        return serialize_row_contextual(
            dataset.dirty[row],
            self._context_schema(dataset, attribute),
            attribute,
            value,
        )

    def _corpus(self, dataset: CleaningDataset, generator: CandidateGenerator):
        """Unlabeled pre-training corpus: every cell plus its candidates."""
        corpus = []
        for row in range(len(dataset.dirty)):
            for attribute in dataset.schema:
                value = dataset.dirty[row].get(attribute)
                corpus.append(self._serialize_cell(dataset, row, attribute, value))
                for candidate in generator.candidates(row, attribute)[:3]:
                    if candidate != value:
                        corpus.append(
                            self._serialize_cell(dataset, row, attribute, candidate)
                        )
        return corpus

    # ------------------------------------------------------------------
    def fit(
        self,
        dataset: CleaningDataset,
        generator: Optional[CandidateGenerator] = None,
        labeled_rows: int = 20,
        contrastive: bool = True,
    ) -> "SudowoodoCleaner":
        """Pre-train and fine-tune on ``labeled_rows`` uniform rows.

        ``contrastive=False`` skips contrastive pre-training (keeping only
        the MLM warm start) — the paper's "RoBERTa-base" ablation row.
        """
        self.dataset = dataset
        self.generator = generator or CandidateGenerator().fit(dataset)
        rngs = RngStream(self.config.seed)

        with self.timer.section("pretrain"):
            corpus = self._corpus(dataset, self.generator)
            config = self.config
            if not contrastive:
                config = config.ablated()  # copy
                config.pretrain_epochs = 0
            result = pretrain(corpus, config)
        self.encoder = result.encoder
        # Candidate corrections repeat heavily across cells (they come from
        # shared domain vocabularies), so pruning goes through a cached
        # embedding store instead of re-encoding per cell.
        self.store = EmbeddingStore(
            self.encoder,
            batch_size=self.config.serve_batch_size,
            capacity=self.config.embed_cache_capacity,
        )

        rng = rngs.get("labeled-rows")
        num_rows = len(dataset.dirty)
        chosen = rng.choice(num_rows, size=min(labeled_rows, num_rows), replace=False)
        self._labeled_rows = sorted(int(r) for r in chosen)
        recoverable = 0
        examples: List[TrainingExample] = []
        for row in self._labeled_rows:
            for attribute in dataset.schema:
                value = dataset.dirty[row].get(attribute)
                truth = dataset.ground_truth(row, attribute)
                # Candidate *corrections* only — the original value is not a
                # correction; "keep the cell" is the all-candidates-rejected
                # outcome (M_pm = 0), as in the paper's decision rule.
                candidates = [
                    c
                    for c in self.generator.candidates(row, attribute)
                    if c != value
                ]
                cell_text = self._serialize_cell(dataset, row, attribute, value)
                negatives = [c for c in candidates if c != truth]
                rng.shuffle(negatives)
                if truth != value and truth in candidates:
                    recoverable += 1
                    examples.append(
                        TrainingExample(
                            cell_text,
                            self._serialize_cell(dataset, row, attribute, truth),
                            1,
                            1.0,
                        )
                    )
                for candidate in negatives[:2]:
                    examples.append(
                        TrainingExample(
                            cell_text,
                            self._serialize_cell(dataset, row, attribute, candidate),
                            0,
                            1.0,
                        )
                    )
        if not any(e.label == 1 for e in examples):
            raise RuntimeError(
                "labeled rows contain no recoverable errors; increase "
                "labeled_rows or the dataset scale"
            )
        if self.config.class_balance:
            _apply_class_balance(examples)

        with self.timer.section("finetune"):
            self.matcher = PairwiseMatcher(self.encoder)
            finetune_matcher(self.matcher, examples, examples, self.config)
        # Fine-tuning mutated the encoder in place; drop any cached
        # vectors so _prune embeds with the final weights only.
        self.store.clear()

        # The labeled rows give an unbiased estimate of the *recoverable*
        # error rate; the apply phase repairs the same fraction of cells,
        # taking the highest-scoring candidates first.  (This mirrors the
        # paper's use of dataset priors — cf. the positive ratio rho in
        # pseudo-labeling — and replaces a poorly calibrated 0.5 cut.)
        labeled_cells = len(self._labeled_rows) * len(dataset.schema)
        self._recoverable_rate = recoverable / max(1, labeled_cells)
        return self

    # ------------------------------------------------------------------
    def correct(self) -> Dict[Tuple[int, str], str]:
        """Predict a correction for every cell; returns only actual repairs
        (cells where the chosen candidate differs from the current value)."""
        if self.matcher is None:
            raise RuntimeError("fit the cleaner first")
        dataset = self.dataset
        # Gather (cell, candidate) queries, embedding-pruned to the top few
        # candidates per cell (the optional "blocking" step of Section V-A).
        queries: List[Tuple[str, str]] = []
        spans: List[Tuple[int, str, List[str]]] = []
        for row in range(len(dataset.dirty)):
            for attribute in dataset.schema:
                value = dataset.dirty[row].get(attribute)
                candidates = [
                    c
                    for c in self.generator.candidates(row, attribute)
                    if c != value
                ]
                if not candidates:
                    continue
                candidates = self._prune(dataset, row, attribute, value, candidates)
                cell_text = self._serialize_cell(dataset, row, attribute, value)
                for candidate in candidates:
                    queries.append(
                        (
                            cell_text,
                            self._serialize_cell(dataset, row, attribute, candidate),
                        )
                    )
                spans.append((row, attribute, candidates))

        with self.timer.section("correct"):
            probabilities = (
                self.matcher.predict_proba(queries)[:, 1] if queries else np.array([])
            )
        best_scores: List[float] = []
        best_candidates: List[str] = []
        cursor = 0
        for row, attribute, candidates in spans:
            scores = probabilities[cursor : cursor + len(candidates)]
            cursor += len(candidates)
            best = int(np.argmax(scores))
            best_scores.append(float(scores[best]))
            best_candidates.append(candidates[best])

        # Repair budget: the recoverable-error rate estimated from the
        # labeled rows, applied to the whole table.
        total_cells = len(dataset.dirty) * len(dataset.schema)
        budget = int(round(getattr(self, "_recoverable_rate", 0.0) * total_cells))
        budget = min(budget, len(spans))
        repairs: Dict[Tuple[int, str], str] = {}
        if budget > 0:
            order = np.argsort(-np.array(best_scores))[:budget]
            for index in order:
                row, attribute, _ = spans[int(index)]
                # Still require the matcher to prefer "match" outright.
                if best_scores[int(index)] < 0.5:
                    continue
                repairs[(row, attribute)] = best_candidates[int(index)]
        return repairs

    def _prune(
        self,
        dataset: CleaningDataset,
        row: int,
        attribute: str,
        value: str,
        candidates: List[str],
    ) -> List[str]:
        if len(candidates) <= self.max_candidates:
            return candidates
        texts = [
            self._serialize_cell(dataset, row, attribute, c) for c in candidates
        ]
        cell_vector = self.store.embed_batch(
            [self._serialize_cell(dataset, row, attribute, value)], normalize=True
        )
        candidate_vectors = self.store.embed_batch(texts, normalize=True)
        scores = candidate_vectors @ cell_vector[0]
        keep = np.argsort(-scores)[: self.max_candidates]
        return [candidates[int(i)] for i in sorted(keep)]

    # ------------------------------------------------------------------
    def evaluate(self, exclude_rows: Optional[Sequence[int]] = None) -> CleaningReport:
        """Correction P/R/F1 against ground truth (Baran's protocol):
        precision over repaired cells, recall over erroneous cells."""
        repairs = self.correct()
        dataset = self.dataset
        excluded = set(exclude_rows or ())
        correct_repairs = 0
        counted_repairs = 0
        for (row, attribute), candidate in repairs.items():
            if row in excluded:
                continue
            counted_repairs += 1
            if candidate == dataset.ground_truth(row, attribute) and dataset.is_error(
                row, attribute
            ):
                correct_repairs += 1
        errors = [
            (row, attribute)
            for row, attribute in dataset.error_cells()
            if row not in excluded
        ]
        precision = correct_repairs / counted_repairs if counted_repairs else 0.0
        recall = correct_repairs / len(errors) if errors else 0.0
        f1 = (
            2 * precision * recall / (precision + recall)
            if precision + recall
            else 0.0
        )
        return CleaningReport(
            dataset=dataset.name,
            precision=precision,
            recall=recall,
            f1=f1,
            repaired=counted_repairs,
            timings=self.timer.summary(),
        )
