"""Sudowoodo for error correction (Section V-A).

Pipeline: pre-train the representation model on serialized cells and their
candidate corrections; label ~20 uniformly sampled rows; fine-tune the
pairwise matcher on (cell, candidate) pairs; finally, for every cell, take
the candidate maximizing the match probability — the cell is clean when
that candidate is the original value.

Pseudo-labeling is *not* used here (the task is not similarity-based,
Section V-A), matching the paper's setting.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core import SudowoodoConfig
from ..core.matcher import (
    PairwiseMatcher,
    TrainingExample,
    finetune_matcher,
)
from ..core.pipeline import _apply_class_balance
from ..data.generators.cleaning import CleaningDataset
from ..data.records import serialize_cell_context_free, serialize_row_contextual
from ..serve import EmbeddingStore
from ..utils import RngStream, Timer
from .candidates import CandidateGenerator


def cleaning_config(**overrides) -> SudowoodoConfig:
    """The paper's EC configuration: span_shuffle DA with span cutoff, all
    pre-training optimizations on, pseudo-labeling off.

    Import shim for :meth:`SudowoodoConfig.for_task`\\ ``("clean")`` — the
    per-task presets now live in one place on the config class.
    """
    return SudowoodoConfig.for_task("clean", **overrides)


def context_schema(
    dataset: CleaningDataset, attribute: str, context_attributes: int = 4
) -> List[str]:
    """The serialized attribute window for ``attribute``.

    The paper's contextual scheme serializes the whole row; at CPU scale
    we trim to the target attribute plus its FD determinants and a few
    leading attributes (the same role the LM's 512-token truncation plays
    at full scale).
    """
    window: List[str] = []
    for determinant, dependents in dataset.dependencies.items():
        if attribute in dependents and determinant not in window:
            window.append(determinant)
    if attribute not in window:
        window.append(attribute)
    for other in dataset.schema:
        if len(window) >= context_attributes + 1:
            break
        if other not in window:
            window.append(other)
    # Keep schema order for determinism.
    return [a for a in dataset.schema if a in window]


def serialize_cell(
    dataset: CleaningDataset,
    row: int,
    attribute: str,
    value: str,
    serialization: str = "contextual",
    context_attributes: int = 4,
) -> str:
    """Serialize one (cell, candidate value) in the paper's EC scheme."""
    if serialization == "context_free":
        return serialize_cell_context_free(attribute, value)
    return serialize_row_contextual(
        dataset.dirty[row],
        context_schema(dataset, attribute, context_attributes),
        attribute,
        value,
    )


def cleaning_corpus(
    dataset: CleaningDataset,
    generator: Optional[CandidateGenerator] = None,
    serialization: str = "contextual",
    context_attributes: int = 4,
    include_candidates: bool = True,
) -> List[str]:
    """Unlabeled EC pre-training corpus: every serialized cell plus its
    top candidate corrections — what a :class:`repro.api.SudowoodoSession`
    should pre-train on before fitting the ``clean`` task.

    ``include_candidates=False`` returns only the table's cells (one text
    per ``(row, attribute)``) — the corpus a live serving index holds.
    """
    if include_candidates:
        generator = generator or CandidateGenerator().fit(dataset)
    corpus: List[str] = []
    for row in range(len(dataset.dirty)):
        for attribute in dataset.schema:
            value = dataset.dirty[row].get(attribute)
            corpus.append(
                serialize_cell(
                    dataset, row, attribute, value, serialization, context_attributes
                )
            )
            if not include_candidates:
                continue
            for candidate in generator.candidates(row, attribute)[:3]:
                if candidate != value:
                    corpus.append(
                        serialize_cell(
                            dataset,
                            row,
                            attribute,
                            candidate,
                            serialization,
                            context_attributes,
                        )
                    )
    return corpus


def _best_threshold(probabilities: np.ndarray, labels: np.ndarray) -> float:
    """Threshold maximizing F1 on calibration pairs (ties -> higher t)."""
    best_threshold, best_f1 = 0.5, -1.0
    for threshold in np.unique(np.round(probabilities, 3)):
        predictions = probabilities >= threshold
        true_pos = int((predictions & (labels == 1)).sum())
        if true_pos == 0:
            continue
        precision = true_pos / predictions.sum()
        recall = true_pos / max(1, (labels == 1).sum())
        f1 = 2 * precision * recall / (precision + recall)
        if f1 >= best_f1:
            best_f1 = f1
            best_threshold = float(threshold)
    return best_threshold


@dataclass
class CleaningReport:
    dataset: str
    precision: float
    recall: float
    f1: float
    repaired: int
    timings: Dict[str, float] = field(default_factory=dict)


class SudowoodoCleaner:
    """Error-correction pipeline over a :class:`CleaningDataset`.

    .. deprecated::
        ``SudowoodoCleaner`` is now a shim over
        :class:`repro.api.SudowoodoSession`; new code should use
        ``session.task("clean")`` (see ``docs/api.md``), which shares one
        pre-training run across every workload.
    """

    def __init__(
        self,
        config: Optional[SudowoodoConfig] = None,
        serialization: str = "contextual",
        max_candidates_for_matching: int = 6,
        context_attributes: int = 4,
    ) -> None:
        warnings.warn(
            "SudowoodoCleaner is deprecated; use repro.api.SudowoodoSession "
            "and session.task('clean') instead (see docs/api.md)",
            DeprecationWarning,
            stacklevel=2,
        )
        self._init_state(
            config, serialization, max_candidates_for_matching, context_attributes
        )

    def _init_state(
        self,
        config: Optional[SudowoodoConfig],
        serialization: str,
        max_candidates_for_matching: int,
        context_attributes: int,
    ) -> None:
        if serialization not in ("context_free", "contextual"):
            raise ValueError("serialization must be context_free or contextual")
        self.config = config or cleaning_config()
        self.serialization = serialization
        self.max_candidates = max_candidates_for_matching
        self.context_attributes = context_attributes
        self.timer = Timer()
        self.matcher: Optional[PairwiseMatcher] = None
        self.store: Optional[EmbeddingStore] = None
        # Session-attached mode: a pre-trained encoder (a private clone,
        # safe to fine-tune) plus the session's shared store; fit() then
        # skips pre-training and never clears the shared cache.
        self._adopted_encoder = None
        self._shared_store = False

    @classmethod
    def _attached(
        cls,
        config: SudowoodoConfig,
        encoder,
        store: EmbeddingStore,
        serialization: str = "contextual",
        max_candidates_for_matching: int = 6,
        context_attributes: int = 4,
    ) -> "SudowoodoCleaner":
        """Session-internal constructor: adopt a pre-trained encoder and a
        shared embedding store instead of pre-training (no deprecation
        warning — this is the engine behind ``session.task("clean")``)."""
        cleaner = cls.__new__(cls)
        cleaner._init_state(
            config, serialization, max_candidates_for_matching, context_attributes
        )
        cleaner._adopted_encoder = encoder
        cleaner.store = store
        cleaner._shared_store = True
        return cleaner

    # ------------------------------------------------------------------
    def _context_schema(self, dataset: CleaningDataset, attribute: str) -> List[str]:
        """The serialized attribute window (see :func:`context_schema`)."""
        return context_schema(dataset, attribute, self.context_attributes)

    def _serialize_cell(self, dataset, row: int, attribute: str, value: str) -> str:
        return serialize_cell(
            dataset, row, attribute, value, self.serialization,
            self.context_attributes,
        )

    def _corpus(self, dataset: CleaningDataset, generator: CandidateGenerator):
        """Unlabeled pre-training corpus (see :func:`cleaning_corpus`)."""
        return cleaning_corpus(
            dataset, generator, self.serialization, self.context_attributes
        )

    # ------------------------------------------------------------------
    def fit(
        self,
        dataset: CleaningDataset,
        generator: Optional[CandidateGenerator] = None,
        labeled_rows: int = 20,
        contrastive: bool = True,
    ) -> "SudowoodoCleaner":
        """Pre-train and fine-tune on ``labeled_rows`` uniform rows.

        ``contrastive=False`` skips contrastive pre-training (keeping only
        the MLM warm start) — the paper's "RoBERTa-base" ablation row.
        """
        self.dataset = dataset
        self.generator = generator or CandidateGenerator().fit(dataset)
        rngs = RngStream(self.config.seed)

        if self._adopted_encoder is not None:
            # Session-attached: the encoder is already pre-trained (on the
            # session's corpus) and the shared store serves the cache.
            self.encoder = self._adopted_encoder
        else:
            from ..api.session import SudowoodoSession  # deferred: api imports cleaning

            with self.timer.section("pretrain"):
                corpus = self._corpus(dataset, self.generator)
                config = self.config
                if not contrastive:
                    config = config.ablated()  # copy
                    config.pretrain_epochs = 0
                # The session is the one pre-training implementation; this
                # driver adopts its encoder and store.  Candidate
                # corrections repeat heavily across cells (they come from
                # shared domain vocabularies), so pruning goes through the
                # cached embedding store instead of re-encoding per cell.
                session = SudowoodoSession(config)
                session.pretrain(corpus)
            self.encoder = session.encoder
            self.store = session.store

        rng = rngs.get("labeled-rows")
        num_rows = len(dataset.dirty)
        chosen = rng.choice(num_rows, size=min(labeled_rows, num_rows), replace=False)
        self._labeled_rows = sorted(int(r) for r in chosen)
        recoverable = 0
        examples: List[TrainingExample] = []
        for row in self._labeled_rows:
            for attribute in dataset.schema:
                value = dataset.dirty[row].get(attribute)
                truth = dataset.ground_truth(row, attribute)
                # Candidate *corrections* only — the original value is not a
                # correction; "keep the cell" is the all-candidates-rejected
                # outcome (M_pm = 0), as in the paper's decision rule.
                candidates = [
                    c
                    for c in self.generator.candidates(row, attribute)
                    if c != value
                ]
                cell_text = self._serialize_cell(dataset, row, attribute, value)
                negatives = [c for c in candidates if c != truth]
                rng.shuffle(negatives)
                if truth != value and truth in candidates:
                    recoverable += 1
                    examples.append(
                        TrainingExample(
                            cell_text,
                            self._serialize_cell(dataset, row, attribute, truth),
                            1,
                            1.0,
                        )
                    )
                for candidate in negatives[:2]:
                    examples.append(
                        TrainingExample(
                            cell_text,
                            self._serialize_cell(dataset, row, attribute, candidate),
                            0,
                            1.0,
                        )
                    )
        if not any(e.label == 1 for e in examples):
            raise RuntimeError(
                "labeled rows contain no recoverable errors; increase "
                "labeled_rows or the dataset scale"
            )
        if self.config.class_balance:
            _apply_class_balance(examples)

        with self.timer.section("finetune"):
            self.matcher = PairwiseMatcher(self.encoder)
            finetune_matcher(self.matcher, examples, examples, self.config)
        if not self._shared_store:
            # Fine-tuning mutated the encoder in place; drop any cached
            # vectors so _prune embeds with the final weights only.  A
            # session-shared store is exempt: it wraps the session's
            # pristine encoder (this cleaner fine-tuned a private clone),
            # so its cache is still valid for every other task.
            self.store.clear()

        # The labeled rows give an unbiased estimate of the *recoverable*
        # error rate; the apply phase repairs the same fraction of cells,
        # taking the highest-scoring candidates first.  (This mirrors the
        # paper's use of dataset priors — cf. the positive ratio rho in
        # pseudo-labeling — and replaces a poorly calibrated 0.5 cut.)
        labeled_cells = len(self._labeled_rows) * len(dataset.schema)
        self._recoverable_rate = recoverable / max(1, labeled_cells)
        return self

    # ------------------------------------------------------------------
    def correct(self) -> Dict[Tuple[int, str], str]:
        """Predict a correction for every cell; returns only actual repairs
        (cells where the chosen candidate differs from the current value)."""
        if self.matcher is None:
            raise RuntimeError("fit the cleaner first")
        dataset = self.dataset
        # Gather (cell, candidate) queries, embedding-pruned to the top few
        # candidates per cell (the optional "blocking" step of Section V-A).
        queries: List[Tuple[str, str]] = []
        spans: List[Tuple[int, str, List[str]]] = []
        for row in range(len(dataset.dirty)):
            for attribute in dataset.schema:
                value = dataset.dirty[row].get(attribute)
                candidates = [
                    c
                    for c in self.generator.candidates(row, attribute)
                    if c != value
                ]
                if not candidates:
                    continue
                candidates = self._prune(dataset, row, attribute, value, candidates)
                cell_text = self._serialize_cell(dataset, row, attribute, value)
                for candidate in candidates:
                    queries.append(
                        (
                            cell_text,
                            self._serialize_cell(dataset, row, attribute, candidate),
                        )
                    )
                spans.append((row, attribute, candidates))

        with self.timer.section("correct"):
            probabilities = (
                self.matcher.predict_proba(queries)[:, 1] if queries else np.array([])
            )
        best_scores: List[float] = []
        best_candidates: List[str] = []
        cursor = 0
        for row, attribute, candidates in spans:
            scores = probabilities[cursor : cursor + len(candidates)]
            cursor += len(candidates)
            best = int(np.argmax(scores))
            best_scores.append(float(scores[best]))
            best_candidates.append(candidates[best])

        # Repair budget: the recoverable-error rate estimated from the
        # labeled rows, applied to the whole table.
        total_cells = len(dataset.dirty) * len(dataset.schema)
        budget = int(round(getattr(self, "_recoverable_rate", 0.0) * total_cells))
        budget = min(budget, len(spans))
        repairs: Dict[Tuple[int, str], str] = {}
        if budget > 0:
            order = np.argsort(-np.array(best_scores))[:budget]
            for index in order:
                row, attribute, _ = spans[int(index)]
                # Still require the matcher to prefer "match" outright.
                if best_scores[int(index)] < 0.5:
                    continue
                repairs[(row, attribute)] = best_candidates[int(index)]
        return repairs

    def _prune(
        self,
        dataset: CleaningDataset,
        row: int,
        attribute: str,
        value: str,
        candidates: List[str],
    ) -> List[str]:
        if len(candidates) <= self.max_candidates:
            return candidates
        texts = [
            self._serialize_cell(dataset, row, attribute, c) for c in candidates
        ]
        cell_vector = self.store.embed_batch(
            [self._serialize_cell(dataset, row, attribute, value)], normalize=True
        )
        candidate_vectors = self.store.embed_batch(texts, normalize=True)
        scores = candidate_vectors @ cell_vector[0]
        keep = np.argsort(-scores)[: self.max_candidates]
        return [candidates[int(i)] for i in sorted(keep)]

    # ------------------------------------------------------------------
    def evaluate(
        self,
        exclude_rows: Optional[Sequence[int]] = None,
        repairs: Optional[Dict[Tuple[int, str], str]] = None,
    ) -> CleaningReport:
        """Correction P/R/F1 against ground truth (Baran's protocol):
        precision over repaired cells, recall over erroneous cells.

        Pass precomputed ``repairs`` (from :meth:`correct`) to score them
        without re-running full-table matcher inference.
        """
        if repairs is None:
            repairs = self.correct()
        dataset = self.dataset
        excluded = set(exclude_rows or ())
        correct_repairs = 0
        counted_repairs = 0
        for (row, attribute), candidate in repairs.items():
            if row in excluded:
                continue
            counted_repairs += 1
            if candidate == dataset.ground_truth(row, attribute) and dataset.is_error(
                row, attribute
            ):
                correct_repairs += 1
        errors = [
            (row, attribute)
            for row, attribute in dataset.error_cells()
            if row not in excluded
        ]
        precision = correct_repairs / counted_repairs if counted_repairs else 0.0
        recall = correct_repairs / len(errors) if errors else 0.0
        f1 = (
            2 * precision * recall / (precision + recall)
            if precision + recall
            else 0.0
        )
        return CleaningReport(
            dataset=dataset.name,
            precision=precision,
            recall=recall,
            f1=f1,
            repaired=counted_repairs,
            timings=self.timer.summary(),
        )
