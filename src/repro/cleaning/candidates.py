"""Candidate-correction generation ("external EC tools", Section V-A).

Sudowoodo follows Baran's setting: a bank of error-correction tools
proposes candidate corrections per cell; the learned matcher then decides
which candidate (if any) is the true correction.  Four tools cover the
four error types of Table III:

* :class:`ValueFrequencyTool`  — frequent domain values (MV and general);
* :class:`TypoTool`            — domain values within small edit distance;
* :class:`FormatTool`          — deterministic re-formatting inverses (FI);
* :class:`DependencyTool`      — values consistent with the row's
  functional-dependency determinant (VAD).

``CandidateGenerator`` unions the tools and reports the coverage /
set-size statistics of Table III and Table XIV.
"""

from __future__ import annotations

import re
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..data.generators.cleaning import CleaningDataset
from ..text import levenshtein


class ValueFrequencyTool:
    """Propose the most frequent values of the column (fills MVs)."""

    def __init__(self, top: int = 5) -> None:
        self.top = top

    def fit(self, dataset: CleaningDataset) -> "ValueFrequencyTool":
        self._frequent: Dict[str, List[str]] = {}
        for attribute in dataset.schema:
            counts = Counter(
                v for v in dataset.dirty.column_values(attribute) if v and v != "n/a"
            )
            self._frequent[attribute] = [v for v, _ in counts.most_common(self.top)]
        return self

    def candidates(self, row: int, attribute: str, value: str) -> List[str]:
        if value and value != "n/a":
            return []
        return list(self._frequent.get(attribute, []))


class TypoTool:
    """Propose domain values within edit distance <= 2 of the cell.

    Only values *strictly more frequent* than the cell's current value are
    proposed — a typo is a rare string whose correction recurs across the
    column (the frequency evidence Baran's value models encode).  This
    keeps numeric columns, where every value is unique, from flooding the
    candidate sets with one-edit neighbours.
    """

    def __init__(self, max_distance: int = 2, domain_cap: int = 150) -> None:
        self.max_distance = max_distance
        self.domain_cap = domain_cap

    def fit(self, dataset: CleaningDataset) -> "TypoTool":
        self._counts: Dict[str, Counter] = {}
        self._domains: Dict[str, List[str]] = {}
        for attribute in dataset.schema:
            counts = Counter(
                v for v in dataset.dirty.column_values(attribute) if v
            )
            self._counts[attribute] = counts
            self._domains[attribute] = [
                v for v, _ in counts.most_common(self.domain_cap)
            ]
        return self

    def candidates(self, row: int, attribute: str, value: str) -> List[str]:
        if not value:
            return []
        counts = self._counts.get(attribute, Counter())
        own_count = counts.get(value, 0)
        found = []
        for domain_value in self._domains.get(attribute, []):
            if domain_value == value or counts[domain_value] <= own_count:
                continue
            distance = levenshtein(value, domain_value, cap=self.max_distance)
            if distance <= self.max_distance:
                found.append(domain_value)
        return found


class FormatTool:
    """Invert common formatting corruptions (FI errors)."""

    def candidates(self, row: int, attribute: str, value: str) -> List[str]:
        if not value:
            return []
        proposals: List[str] = []
        stripped = value.strip()
        if stripped != value:
            proposals.append(stripped)
        if value != value.lower():
            proposals.append(value.lower())
        if value.endswith("%"):
            try:
                proposals.append(f"{float(value[:-1]) / 100.0:.3f}")
            except ValueError:
                pass
        if "," in value and value.replace(",", "").isdigit():
            proposals.append(value.replace(",", ""))
        if value.endswith(".0 ounce"):
            proposals.append(value[: -len(".0 ounce")])
        if re.fullmatch(r"\d{7,}", value):
            # De-formatted phone (dashes stripped) cannot be restored
            # uniquely, but the common 3-4 split is proposed.
            proposals.append(f"{value[:3]}-{value[3:]}")
        if "--" in value:
            proposals.append(value.replace("--", "-"))
        if re.fullmatch(r"\d+-\d+-\d+", value) and "-" in value:
            proposals.append(value.replace("-", "/"))
        try:
            number = float(value)
            if "." in value and value.endswith("0") and len(value.split(".")[1]) == 2:
                proposals.append(f"{number:.1f}")
        except ValueError:
            pass
        return [p for p in dict.fromkeys(proposals) if p != value]


class DependencyTool:
    """Propose the value the row's FD determinant implies (VAD errors).

    The determinant -> dependent mapping is learned from the dirty table
    by majority vote, which is robust while errors are sparse.
    """

    def fit(self, dataset: CleaningDataset) -> "DependencyTool":
        self._mappings: Dict[Tuple[str, str], Dict[str, str]] = {}
        self._determinant_of: Dict[str, List[str]] = {}
        for determinant, dependents in dataset.dependencies.items():
            for dependent in dependents:
                votes: Dict[str, Counter] = {}
                for record in dataset.dirty:
                    key = record.get(determinant)
                    value = record.get(dependent)
                    if key and value:
                        votes.setdefault(key, Counter())[value] += 1
                mapping = {
                    key: counter.most_common(1)[0][0]
                    for key, counter in votes.items()
                }
                self._mappings[(determinant, dependent)] = mapping
                self._determinant_of.setdefault(dependent, []).append(determinant)
        self._dataset = dataset
        return self

    def candidates(self, row: int, attribute: str, value: str) -> List[str]:
        proposals = []
        for determinant in self._determinant_of.get(attribute, []):
            key = self._dataset.dirty[row].get(determinant)
            mapping = self._mappings.get((determinant, attribute), {})
            implied = mapping.get(key)
            if implied and implied != value:
                proposals.append(implied)
        return proposals


@dataclass
class CandidateStats:
    """Coverage / set-size statistics (Tables III and XIV)."""

    coverage: float
    mean_candidates: float


class CandidateGenerator:
    """Union of the EC tools; the original value is always a candidate so
    the matcher can elect to keep a cell unchanged."""

    def __init__(
        self,
        frequency_top: int = 5,
        typo_distance: int = 2,
    ) -> None:
        self._frequency = ValueFrequencyTool(top=frequency_top)
        self._typo = TypoTool(max_distance=typo_distance)
        self._format = FormatTool()
        self._dependency = DependencyTool()
        self._fitted = False

    def fit(self, dataset: CleaningDataset) -> "CandidateGenerator":
        self.dataset = dataset
        self._frequency.fit(dataset)
        self._typo.fit(dataset)
        self._dependency.fit(dataset)
        self._cache: Dict[Tuple[int, str], List[str]] = {}
        self._fitted = True
        return self

    def candidates(self, row: int, attribute: str) -> List[str]:
        if not self._fitted:
            raise RuntimeError("fit the generator on a dataset first")
        key = (row, attribute)
        cached = self._cache.get(key)
        if cached is not None:
            return list(cached)
        value = self.dataset.dirty[row].get(attribute)
        proposals: List[str] = [value]
        proposals.extend(self._dependency.candidates(row, attribute, value))
        proposals.extend(self._format.candidates(row, attribute, value))
        proposals.extend(self._typo.candidates(row, attribute, value))
        proposals.extend(self._frequency.candidates(row, attribute, value))
        result = list(dict.fromkeys(proposals))
        self._cache[key] = result
        return list(result)

    # ------------------------------------------------------------------
    def stats(self) -> CandidateStats:
        """Coverage over error cells and mean candidate-set size."""
        errors = self.dataset.error_cells()
        covered = 0
        for row, attribute in errors:
            truth = self.dataset.ground_truth(row, attribute)
            if truth in self.candidates(row, attribute):
                covered += 1
        sizes = []
        for row in range(len(self.dataset.dirty)):
            for attribute in self.dataset.schema:
                sizes.append(len(self.candidates(row, attribute)))
        return CandidateStats(
            coverage=covered / len(errors) if errors else 1.0,
            mean_candidates=float(np.mean(sizes)) if sizes else 0.0,
        )
