"""Data-cleaning baselines: Raha-style error detection and Baran-style
error correction (Mahdavi & Abedjan, PVLDB 2019/2020).

* :class:`RahaDetector` — an ensemble of configuration-free detectors
  (missing values, rare values, format outliers, FD violations) whose
  votes flag error cells.
* :class:`BaranCorrector` — ranks candidate corrections by an ensemble of
  tool-level evidence scores, with per-tool weights fit on ~20 labeled
  rows (the active-learning budget of the original system, here fit with
  logistic regression over tool scores).

Combinations evaluated in Table VIII: Raha+Baran and "Perfect ED"+Baran
(ground-truth error mask).
"""

from __future__ import annotations

import re
from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..data.generators.cleaning import CleaningDataset
from ..ml import LogisticRegression
from ..text import levenshtein
from ..utils import RngStream
from .candidates import CandidateGenerator
from .cleaner import CleaningReport


def _format_signature(value: str) -> str:
    """Character-class signature used for format-outlier detection."""
    signature = []
    for char in value:
        if char.isdigit():
            code = "d"
        elif char.isalpha():
            code = "a"
        else:
            code = char
        if not signature or signature[-1] != code:
            signature.append(code)
    return "".join(signature)


class RahaDetector:
    """Ensemble error detection; a cell is an error if >= ``votes`` of the
    four detectors flag it."""

    def __init__(self, votes: int = 1, rare_fraction: float = 0.02) -> None:
        self.votes = votes
        self.rare_fraction = rare_fraction

    def detect(self, dataset: CleaningDataset) -> Set[Tuple[int, str]]:
        flagged: Counter = Counter()
        n = len(dataset.dirty)
        for attribute in dataset.schema:
            column = dataset.dirty.column_values(attribute)
            counts = Counter(column)
            signatures = Counter(_format_signature(v) for v in column)
            dominant_signature = signatures.most_common(1)[0][0]
            fd_expected = self._fd_expectations(dataset, attribute)
            for row, value in enumerate(column):
                cell = (row, attribute)
                if not value or value == "n/a":
                    flagged[cell] += 1
                if counts[value] <= max(1, int(self.rare_fraction * n)) and len(
                    counts
                ) < n // 2:
                    flagged[cell] += 1
                if (
                    _format_signature(value) != dominant_signature
                    and signatures[_format_signature(value)] <= max(1, n // 20)
                ):
                    flagged[cell] += 1
                expected = fd_expected.get(row)
                if expected is not None and expected != value:
                    flagged[cell] += 1
        return {cell for cell, votes in flagged.items() if votes >= self.votes}

    def _fd_expectations(
        self, dataset: CleaningDataset, attribute: str
    ) -> Dict[int, str]:
        expectations: Dict[int, str] = {}
        for determinant, dependents in dataset.dependencies.items():
            if attribute not in dependents:
                continue
            votes: Dict[str, Counter] = {}
            for record in dataset.dirty:
                key = record.get(determinant)
                value = record.get(attribute)
                if key and value:
                    votes.setdefault(key, Counter())[value] += 1
            mapping = {
                key: counter.most_common(1)[0][0] for key, counter in votes.items()
            }
            for row, record in enumerate(dataset.dirty):
                expected = mapping.get(record.get(determinant))
                if expected is not None:
                    expectations[row] = expected
        return expectations

    def evaluate(self, dataset: CleaningDataset) -> Dict[str, float]:
        detected = self.detect(dataset)
        truth = set(dataset.error_cells())
        true_pos = len(detected & truth)
        precision = true_pos / len(detected) if detected else 0.0
        recall = true_pos / len(truth) if truth else 0.0
        f1 = (
            2 * precision * recall / (precision + recall)
            if precision + recall
            else 0.0
        )
        return {"precision": precision, "recall": recall, "f1": f1}


class BaranCorrector:
    """Ensemble corrector over the candidate tools' evidence scores."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._model: Optional[LogisticRegression] = None

    # ------------------------------------------------------------------
    def _tool_scores(
        self,
        dataset: CleaningDataset,
        generator: CandidateGenerator,
        row: int,
        attribute: str,
        candidate: str,
    ) -> List[float]:
        value = dataset.dirty[row].get(attribute)
        column = dataset.dirty.column_values(attribute)
        counts = Counter(column)
        frequency = counts.get(candidate, 0) / max(1, len(column))
        distance = levenshtein(value, candidate, cap=4) if value else 4
        proximity = 1.0 / (1.0 + distance)
        fd_agree = 0.0
        for determinant, dependents in dataset.dependencies.items():
            if attribute in dependents:
                implied = generator._dependency.candidates(row, attribute, "")
                if candidate in implied:
                    fd_agree = 1.0
        same_signature = float(
            _format_signature(candidate)
            == Counter(
                _format_signature(v) for v in column
            ).most_common(1)[0][0]
        )
        identity = float(candidate == value)
        return [frequency, proximity, fd_agree, same_signature, identity]

    # ------------------------------------------------------------------
    def fit(
        self,
        dataset: CleaningDataset,
        generator: CandidateGenerator,
        labeled_rows: int = 20,
    ) -> "BaranCorrector":
        self.dataset = dataset
        self.generator = generator
        rng = RngStream(self.seed).get("baran-rows")
        chosen = rng.choice(
            len(dataset.dirty), size=min(labeled_rows, len(dataset.dirty)),
            replace=False,
        )
        features: List[List[float]] = []
        labels: List[int] = []
        for row in sorted(int(r) for r in chosen):
            for attribute in dataset.schema:
                truth = dataset.ground_truth(row, attribute)
                for candidate in generator.candidates(row, attribute)[:8]:
                    features.append(
                        self._tool_scores(dataset, generator, row, attribute, candidate)
                    )
                    labels.append(int(candidate == truth))
        if len(set(labels)) < 2:
            self._model = None  # degenerate labels: fall back to heuristics
            return self
        self._model = LogisticRegression(iterations=200).fit(
            np.array(features), np.array(labels)
        )
        return self

    def _score(self, row: int, attribute: str, candidate: str) -> float:
        scores = self._tool_scores(
            self.dataset, self.generator, row, attribute, candidate
        )
        if self._model is None:
            return float(np.mean(scores))
        return float(self._model.predict_proba(np.array([scores]))[0, 1])

    # ------------------------------------------------------------------
    def correct(
        self, error_cells: Sequence[Tuple[int, str]]
    ) -> Dict[Tuple[int, str], str]:
        """Propose the best-scoring candidate for each flagged cell."""
        repairs: Dict[Tuple[int, str], str] = {}
        for row, attribute in error_cells:
            value = self.dataset.dirty[row].get(attribute)
            candidates = [
                c
                for c in self.generator.candidates(row, attribute)
                if c != value
            ]
            if not candidates:
                continue
            best = max(candidates, key=lambda c: self._score(row, attribute, c))
            repairs[(row, attribute)] = best
        return repairs

    def evaluate(
        self,
        error_cells: Sequence[Tuple[int, str]],
        name: str,
    ) -> CleaningReport:
        """Correction P/R/F1 given an error mask (Raha's or perfect)."""
        repairs = self.correct(error_cells)
        dataset = self.dataset
        truth_errors = set(dataset.error_cells())
        correct = sum(
            1
            for cell, candidate in repairs.items()
            if cell in truth_errors
            and candidate == dataset.ground_truth(cell[0], cell[1])
        )
        precision = correct / len(repairs) if repairs else 0.0
        recall = correct / len(truth_errors) if truth_errors else 0.0
        f1 = (
            2 * precision * recall / (precision + recall)
            if precision + recall
            else 0.0
        )
        return CleaningReport(
            dataset=f"{dataset.name} ({name})",
            precision=precision,
            recall=recall,
            f1=f1,
            repaired=len(repairs),
        )


def run_raha_baran(
    dataset: CleaningDataset,
    generator: Optional[CandidateGenerator] = None,
    labeled_rows: int = 20,
) -> CleaningReport:
    generator = generator or CandidateGenerator().fit(dataset)
    detector = RahaDetector()
    corrector = BaranCorrector().fit(dataset, generator, labeled_rows)
    return corrector.evaluate(sorted(detector.detect(dataset)), "Raha+Baran")


def run_perfect_ed_baran(
    dataset: CleaningDataset,
    generator: Optional[CandidateGenerator] = None,
    labeled_rows: int = 20,
) -> CleaningReport:
    generator = generator or CandidateGenerator().fit(dataset)
    corrector = BaranCorrector().fit(dataset, generator, labeled_rows)
    return corrector.evaluate(dataset.error_cells(), "PerfectED+Baran")
