"""Data cleaning: candidate tools, Sudowoodo EC, Raha/Baran baselines."""

from .baselines import (
    BaranCorrector,
    RahaDetector,
    run_perfect_ed_baran,
    run_raha_baran,
)
from .candidates import (
    CandidateGenerator,
    CandidateStats,
    DependencyTool,
    FormatTool,
    TypoTool,
    ValueFrequencyTool,
)
from .cleaner import (
    CleaningReport,
    SudowoodoCleaner,
    cleaning_config,
    cleaning_corpus,
    serialize_cell,
)

__all__ = [
    "BaranCorrector",
    "CandidateGenerator",
    "CandidateStats",
    "CleaningReport",
    "DependencyTool",
    "FormatTool",
    "RahaDetector",
    "SudowoodoCleaner",
    "TypoTool",
    "ValueFrequencyTool",
    "cleaning_config",
    "cleaning_corpus",
    "run_perfect_ed_baran",
    "run_raha_baran",
    "serialize_cell",
]
