"""Contrastive pre-training (Algorithm 1 with the Section IV optimizations).

Per epoch: mini-batches are drawn by clustering-based negative sampling
(Algorithm 2) when enabled, otherwise uniformly.  Each batch is augmented
with one base DA operator (Table I); the augmented view is additionally
perturbed by a batch-wise cutoff at the token-embedding level (Figure 5),
or — for the ``mixup_embed`` operator — by interpolating token embeddings
with another in-batch item (Contrastive Mixup).  The loss is Equation 6 —
NT-Xent optionally blended with Barlow Twins.

The epoch/step loop itself runs on the shared training engine
(:class:`repro.train.Trainer`): this module contributes only the
:class:`StepProgram` adapter — batch drawing, augmentation, and the
contrastive loss — while the engine owns optimizer stepping, gradient
accumulation/clipping, callbacks, tokenization caching, background batch
preparation, data-parallel gradient workers, and full-state
checkpoint/resume (``checkpoint_dir=`` / ``resume=``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..augment import (
    EM_OPERATORS,
    augment_batch,
    make_cutoff_sampler,
    mask_transform,
    mixup_transform,
    sample_mixup,
)
from ..nn import AdamW
from ..text import MLMConfig, mlm_warm_start
from ..train import Checkpointer, StepProgram, TokenCache, Trainer, shard_bounds
from ..utils import RngStream
from .config import SudowoodoConfig
from .encoder import SudowoodoEncoder, build_tokenizer
from .losses import combined_loss, nt_xent_loss
from .negative_sampling import ClusterBatcher

PathLike = Union[str, Path]


@dataclass
class PretrainResult:
    """The trained embedding model plus its training trace."""

    encoder: SudowoodoEncoder
    epoch_losses: List[float] = field(default_factory=list)
    corpus_size: int = 0
    operator_weights: Optional[dict] = None

    @property
    def final_loss(self) -> float:
        """Loss of the last pre-training epoch (NaN when untrained)."""
        return self.epoch_losses[-1] if self.epoch_losses else float("nan")


class OperatorScheduler:
    """Adaptive DA-operator selection (``da_operator="auto"``).

    The paper leaves learned operator combination (à la Rotom) as future
    work; this scheduler implements the simplest self-supervised form:
    operators are sampled proportionally to softmax'd utility scores, and
    an operator's score is nudged by how much harder-than-average its
    batches are (higher contrastive loss = harder positives = more
    training signal, the "diverse views" intuition of Section IV-A).
    """

    def __init__(
        self,
        operators: Sequence[str],
        rng: np.random.Generator,
        step_size: float = 0.3,
    ) -> None:
        if not operators:
            raise ValueError("need at least one operator")
        self.operators = list(operators)
        self.rng = rng
        self.step_size = step_size
        self._scores = {op: 0.0 for op in self.operators}
        self._running_loss: Optional[float] = None

    def weights(self) -> dict:
        """Softmax selection probabilities over the candidate operators."""
        values = np.array([self._scores[op] for op in self.operators])
        exp = np.exp(values - values.max())
        probabilities = exp / exp.sum()
        return dict(zip(self.operators, probabilities))

    def sample(self) -> str:
        """Draw the DA operator for the next batch."""
        weights = self.weights()
        probabilities = [weights[op] for op in self.operators]
        return str(self.rng.choice(self.operators, p=probabilities))

    def update(self, operator: str, loss: float) -> None:
        """Reward ``operator`` by its loss advantage over the running mean
        (harder augmentations -> higher contrastive loss -> more weight)."""
        if self._running_loss is None:
            self._running_loss = loss
        advantage = loss - self._running_loss
        self._scores[operator] += self.step_size * advantage
        self._running_loss = 0.9 * self._running_loss + 0.1 * loss

    # -- checkpoint participation --------------------------------------
    def state_dict(self) -> Dict[str, Any]:
        """JSON-serializable scores + running loss for trainer resume."""
        return {
            "scores": dict(self._scores),
            "running_loss": self._running_loss,
        }

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        """Restore :meth:`state_dict` output (operator set must match)."""
        if set(state["scores"]) != set(self._scores):
            raise ValueError(
                "operator scheduler mismatch: checkpoint has "
                f"{sorted(state['scores'])}, scheduler has "
                f"{sorted(self._scores)}"
            )
        self._scores = {op: float(s) for op, s in state["scores"].items()}
        running = state.get("running_loss")
        self._running_loss = None if running is None else float(running)


def prepare_corpus(
    items: Sequence[str], config: SudowoodoConfig, rng: np.random.Generator
) -> List[str]:
    """Up/down-sample the unlabeled corpus to ``corpus_cap`` items, as the
    paper fixes its pre-training corpus to 10k by re-sampling."""
    items = list(items)
    if config.corpus_cap is None or len(items) == config.corpus_cap:
        return items
    if len(items) > config.corpus_cap:
        chosen = rng.choice(len(items), size=config.corpus_cap, replace=False)
        return [items[int(i)] for i in chosen]
    extra = rng.choice(len(items), size=config.corpus_cap - len(items), replace=True)
    return items + [items[int(i)] for i in extra]


@dataclass
class _PreparedBatch:
    """Step inputs the contrastive program hands the engine."""

    ori: Any  # stacked Encoding of the original view
    aug: Any  # stacked Encoding of the augmented view
    transform: Optional[Any]  # embedding transform for the augmented view
    operator: str
    size: int
    cross_item: bool  # True when the transform mixes in-batch items


class ContrastivePretrainProgram(StepProgram):
    """Algorithm 1's inner loop as a :class:`~repro.train.StepProgram`.

    Batch preparation — operator sampling, text augmentation, cutoff mask
    drawing, tokenization (cache-first for the original view) — runs in
    ``prepare`` so the engine can pipeline it on the background thread;
    the forward pass encodes both views and evaluates Equation 6.  Every
    stochastic choice draws from its own named stream, so preparing ahead
    consumes the exact sequences of the serial loop.
    """

    def __init__(
        self,
        corpus: Sequence[str],
        config: SudowoodoConfig,
        rngs: RngStream,
        tokenizer: Any,
        token_cache: Optional[TokenCache] = None,
    ) -> None:
        self.corpus = list(corpus)
        self.config = config
        self.tokenizer = tokenizer
        self.token_cache = token_cache or TokenCache(tokenizer)
        self.batcher = ClusterBatcher(
            self.corpus,
            num_clusters=config.num_clusters if config.use_cluster_sampling else 1,
            rng=rngs.get("clustering"),
        )
        self.da_rng = rngs.get("augment")
        self.cutoff_rng = rngs.get("cutoff")
        self.batch_rng = rngs.get("batches")
        # Satellite fix: the cutoff factory's arguments are loop-invariant,
        # so it is hoisted here instead of being rebuilt per batch; the
        # per-batch mask draw consumes the identical cutoff-RNG sequence.
        self.cutoff_sampler = (
            make_cutoff_sampler(
                config.cutoff_kind, config.cutoff_ratio, self.cutoff_rng
            )
            if config.use_cutoff
            else None
        )
        self.scheduler = (
            OperatorScheduler(sorted(EM_OPERATORS), rngs.get("da-scheduler"))
            if config.da_operator == "auto"
            else None
        )
        # The adaptive scheduler observes each batch's loss before sampling
        # the next operator — inherently sequential, so preparation must
        # not run ahead.
        self.prepare_in_background = self.scheduler is None

    # ------------------------------------------------------------------
    def epoch_batches(self, epoch: int) -> Sequence[np.ndarray]:
        if self.config.use_cluster_sampling:
            return self.batcher.batches(
                self.config.pretrain_batch_size, self.batch_rng
            )
        return self.batcher.uniform_batches(
            self.config.pretrain_batch_size, self.batch_rng
        )

    def prepare(self, batch_indices: np.ndarray) -> _PreparedBatch:
        batch = [self.corpus[int(i)] for i in batch_indices]
        # Line 7 of Algorithm 1: choose and apply the DA operator.
        operator = (
            self.scheduler.sample() if self.scheduler else self.config.da_operator
        )
        augmented = augment_batch(batch, self.da_rng, operator=operator)
        transforms = []
        cross_item = False
        if operator == "mixup_embed":
            permutation, lam = sample_mixup(len(batch), self.da_rng)
            transforms.append(mixup_transform(permutation, lam))
            cross_item = True
        if self.cutoff_sampler is not None:
            mask = self.cutoff_sampler(self.config.max_seq_len, self.config.dim)
            transforms.append(mask_transform(mask))
        ori = self.token_cache.encode_batch(batch, self.config.max_seq_len)
        if operator == "mixup_embed":
            # The text view is the identity — serve it from the cache too.
            aug = self.token_cache.encode_batch(augmented, self.config.max_seq_len)
        else:
            aug = self.tokenizer.encode_batch(
                augmented, max_len=self.config.max_seq_len
            )
        return _PreparedBatch(
            ori=ori,
            aug=aug,
            transform=_chain(transforms),
            operator=operator,
            size=len(batch),
            cross_item=cross_item,
        )

    def loss(self, model: SudowoodoEncoder, prepared: _PreparedBatch):
        # Line 7/9 of Algorithm 1: encode both views, Equation 6 (or plain
        # Equation 2 without RR).
        z_ori = model.project(model.encode_tokens_training(prepared.ori))
        z_aug = model.project(
            model.encode_tokens_training(
                prepared.aug, embedding_transform=prepared.transform
            )
        )
        if self.config.use_barlow_twins:
            return combined_loss(
                z_ori,
                z_aug,
                temperature=self.config.temperature,
                alpha_bt=self.config.alpha_bt,
                lambda_bt=self.config.lambda_bt,
            )
        return nt_xent_loss(z_ori, z_aug, temperature=self.config.temperature)

    def shard(
        self, prepared: _PreparedBatch, num_shards: int
    ) -> Optional[List[Tuple[_PreparedBatch, int]]]:
        if prepared.cross_item:
            return None  # mixup interpolates across the whole batch
        # Contrastive losses need >= 2 items per shard for in-batch
        # negatives.
        bounds = shard_bounds(prepared.size, num_shards, min_per_shard=2)
        if bounds is None:
            return None
        return [
            (
                _PreparedBatch(
                    ori=_slice_encoding(prepared.ori, lo, hi),
                    aug=_slice_encoding(prepared.aug, lo, hi),
                    transform=prepared.transform,
                    operator=prepared.operator,
                    size=hi - lo,
                    cross_item=False,
                ),
                hi - lo,
            )
            for lo, hi in bounds
        ]

    def on_batch_end(self, prepared: _PreparedBatch, loss: float) -> None:
        if self.scheduler:
            self.scheduler.update(prepared.operator, loss)

    # -- checkpoint participation --------------------------------------
    def state_dict(self) -> Dict[str, Any]:
        if self.scheduler is None:
            return {}
        return {"scheduler": self.scheduler.state_dict()}

    def load_state_dict(self, values: Dict[str, Any]) -> None:
        if self.scheduler is not None and "scheduler" in values:
            self.scheduler.load_state_dict(values["scheduler"])


def _chain(transforms: List[Any]) -> Optional[Any]:
    """Compose embedding transforms left to right (None when empty)."""
    if not transforms:
        return None
    if len(transforms) == 1:
        return transforms[0]

    def chained(embeddings, attention_mask):
        for transform in transforms:
            embeddings = transform(embeddings, attention_mask)
        return embeddings

    return chained


def _slice_encoding(encoding: Any, lo: int, hi: int) -> Any:
    return type(encoding)(
        token_ids=encoding.token_ids[lo:hi],
        attention_mask=encoding.attention_mask[lo:hi],
        segment_ids=encoding.segment_ids[lo:hi],
    )


def pretrain(
    corpus: Sequence[str],
    config: Optional[SudowoodoConfig] = None,
    encoder: Optional[SudowoodoEncoder] = None,
    checkpoint_dir: Optional[PathLike] = None,
    resume: bool = False,
) -> PretrainResult:
    """Run contrastive pre-training over a corpus of serialized data items.

    If ``encoder`` is None a tokenizer is fitted and a fresh encoder built;
    when ``config.mlm_warm_start_epochs > 0`` the encoder is first warmed up
    with masked-LM training (the offline stand-in for initializing from a
    pre-trained LM — Algorithm 1, line 1).

    With ``checkpoint_dir`` the engine writes a full-state checkpoint
    (model + optimizer moments + RNG stream states) every
    ``config.checkpoint_every`` epochs; ``resume=True`` restores the
    latest checkpoint from that directory — when one exists — and
    continues, reproducing the uninterrupted run's weights and
    ``epoch_losses`` byte-identically.  A corrupt checkpoint raises
    ``ValueError`` rather than silently restarting.
    """
    config = config or SudowoodoConfig()
    config.validate()
    if resume and checkpoint_dir is None:
        raise ValueError(
            "resume=True requires checkpoint_dir (a resume request "
            "silently retraining from scratch would discard the prior run)"
        )
    rngs = RngStream(config.seed)
    corpus = prepare_corpus(corpus, config, rngs.get("corpus"))

    resuming = resume and (Path(checkpoint_dir) / Checkpointer.FILENAME).exists()
    token_cache: Optional[TokenCache] = None
    if encoder is None:
        tokenizer = build_tokenizer(corpus, config)
        encoder = SudowoodoEncoder(config, tokenizer)
        token_cache = TokenCache(tokenizer)
        if config.mlm_warm_start_epochs > 0 and not resuming:
            # The warm-start corpus mixes single items with random pair
            # concatenations so the encoder has seen `[SEP]`-joined long
            # sequences before pair fine-tuning — the role RoBerta's
            # general pre-training plays in the original system.  (When
            # resuming, the checkpoint restores post-warm-start weights,
            # so the warm start is skipped outright.)
            warm_rng = rngs.get("warm-pairs")
            pair_lines = [
                corpus[int(warm_rng.integers(len(corpus)))]
                + " [SEP] "
                + corpus[int(warm_rng.integers(len(corpus)))]
                for _ in range(len(corpus) // 2)
            ]
            mlm_warm_start(
                encoder.encoder,
                tokenizer,
                list(corpus) + pair_lines,
                MLMConfig(
                    epochs=config.mlm_warm_start_epochs,
                    batch_size=config.pretrain_batch_size,
                    max_seq_len=config.pair_max_seq_len,
                    seed=config.seed,
                ),
                engine=config.train,
            )
    else:
        tokenizer = encoder.tokenizer

    program = ContrastivePretrainProgram(
        corpus, config, rngs, tokenizer, token_cache=token_cache
    )
    optimizer = AdamW(encoder.parameters(), lr=config.pretrain_lr)
    trainer = Trainer(
        encoder,
        program,
        optimizer,
        config=config.train,
        rngs=rngs,
        checkpoint_dir=checkpoint_dir,
    )
    if resume:
        trainer.try_resume()
    state = trainer.fit(max_epochs=config.pretrain_epochs)

    return PretrainResult(
        encoder=encoder,
        epoch_losses=list(state.epoch_losses),
        corpus_size=len(corpus),
        operator_weights=program.scheduler.weights() if program.scheduler else None,
    )
