"""Contrastive pre-training (Algorithm 1 with the Section IV optimizations).

Per epoch: mini-batches are drawn by clustering-based negative sampling
(Algorithm 2) when enabled, otherwise uniformly.  Each batch is augmented
with one base DA operator (Table I); the augmented view is additionally
perturbed by a batch-wise cutoff at the token-embedding level (Figure 5).
The loss is Equation 6 — NT-Xent optionally blended with Barlow Twins.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from ..augment import EM_OPERATORS, augment_batch, make_cutoff_transform
from ..nn import AdamW
from ..text import MLMConfig, mlm_warm_start
from ..utils import RngStream
from .config import SudowoodoConfig
from .encoder import SudowoodoEncoder, build_tokenizer
from .losses import combined_loss, nt_xent_loss
from .negative_sampling import ClusterBatcher


@dataclass
class PretrainResult:
    """The trained embedding model plus its training trace."""

    encoder: SudowoodoEncoder
    epoch_losses: List[float] = field(default_factory=list)
    corpus_size: int = 0
    operator_weights: Optional[dict] = None

    @property
    def final_loss(self) -> float:
        """Loss of the last pre-training epoch (NaN when untrained)."""
        return self.epoch_losses[-1] if self.epoch_losses else float("nan")


class OperatorScheduler:
    """Adaptive DA-operator selection (``da_operator="auto"``).

    The paper leaves learned operator combination (à la Rotom) as future
    work; this scheduler implements the simplest self-supervised form:
    operators are sampled proportionally to softmax'd utility scores, and
    an operator's score is nudged by how much harder-than-average its
    batches are (higher contrastive loss = harder positives = more
    training signal, the "diverse views" intuition of Section IV-A).
    """

    def __init__(
        self,
        operators: Sequence[str],
        rng: np.random.Generator,
        step_size: float = 0.3,
    ) -> None:
        if not operators:
            raise ValueError("need at least one operator")
        self.operators = list(operators)
        self.rng = rng
        self.step_size = step_size
        self._scores = {op: 0.0 for op in self.operators}
        self._running_loss: Optional[float] = None

    def weights(self) -> dict:
        """Softmax selection probabilities over the candidate operators."""
        values = np.array([self._scores[op] for op in self.operators])
        exp = np.exp(values - values.max())
        probabilities = exp / exp.sum()
        return dict(zip(self.operators, probabilities))

    def sample(self) -> str:
        """Draw the DA operator for the next batch."""
        weights = self.weights()
        probabilities = [weights[op] for op in self.operators]
        return str(self.rng.choice(self.operators, p=probabilities))

    def update(self, operator: str, loss: float) -> None:
        """Reward ``operator`` by its loss advantage over the running mean
        (harder augmentations -> higher contrastive loss -> more weight)."""
        if self._running_loss is None:
            self._running_loss = loss
        advantage = loss - self._running_loss
        self._scores[operator] += self.step_size * advantage
        self._running_loss = 0.9 * self._running_loss + 0.1 * loss


def prepare_corpus(
    items: Sequence[str], config: SudowoodoConfig, rng: np.random.Generator
) -> List[str]:
    """Up/down-sample the unlabeled corpus to ``corpus_cap`` items, as the
    paper fixes its pre-training corpus to 10k by re-sampling."""
    items = list(items)
    if config.corpus_cap is None or len(items) == config.corpus_cap:
        return items
    if len(items) > config.corpus_cap:
        chosen = rng.choice(len(items), size=config.corpus_cap, replace=False)
        return [items[int(i)] for i in chosen]
    extra = rng.choice(len(items), size=config.corpus_cap - len(items), replace=True)
    return items + [items[int(i)] for i in extra]


def pretrain(
    corpus: Sequence[str],
    config: Optional[SudowoodoConfig] = None,
    encoder: Optional[SudowoodoEncoder] = None,
) -> PretrainResult:
    """Run contrastive pre-training over a corpus of serialized data items.

    If ``encoder`` is None a tokenizer is fitted and a fresh encoder built;
    when ``config.mlm_warm_start_epochs > 0`` the encoder is first warmed up
    with masked-LM training (the offline stand-in for initializing from a
    pre-trained LM — Algorithm 1, line 1).
    """
    config = config or SudowoodoConfig()
    config.validate()
    rngs = RngStream(config.seed)
    corpus = prepare_corpus(corpus, config, rngs.get("corpus"))

    if encoder is None:
        tokenizer = build_tokenizer(corpus, config)
        encoder = SudowoodoEncoder(config, tokenizer)
        if config.mlm_warm_start_epochs > 0:
            # The warm-start corpus mixes single items with random pair
            # concatenations so the encoder has seen `[SEP]`-joined long
            # sequences before pair fine-tuning — the role RoBerta's
            # general pre-training plays in the original system.
            warm_rng = rngs.get("warm-pairs")
            pair_lines = [
                corpus[int(warm_rng.integers(len(corpus)))]
                + " [SEP] "
                + corpus[int(warm_rng.integers(len(corpus)))]
                for _ in range(len(corpus) // 2)
            ]
            mlm_warm_start(
                encoder.encoder,
                tokenizer,
                list(corpus) + pair_lines,
                MLMConfig(
                    epochs=config.mlm_warm_start_epochs,
                    batch_size=config.pretrain_batch_size,
                    max_seq_len=config.pair_max_seq_len,
                    seed=config.seed,
                ),
            )

    batcher = ClusterBatcher(
        corpus,
        num_clusters=config.num_clusters if config.use_cluster_sampling else 1,
        rng=rngs.get("clustering"),
    )
    optimizer = AdamW(encoder.parameters(), lr=config.pretrain_lr)
    da_rng = rngs.get("augment")
    cutoff_rng = rngs.get("cutoff")
    batch_rng = rngs.get("batches")
    scheduler = (
        OperatorScheduler(sorted(EM_OPERATORS), rngs.get("da-scheduler"))
        if config.da_operator == "auto"
        else None
    )

    encoder.train()
    epoch_losses: List[float] = []
    for _ in range(config.pretrain_epochs):
        if config.use_cluster_sampling:
            batches = batcher.batches(config.pretrain_batch_size, batch_rng)
        else:
            batches = batcher.uniform_batches(config.pretrain_batch_size, batch_rng)
        losses: List[float] = []
        for batch_indices in batches:
            batch = [corpus[int(i)] for i in batch_indices]
            # Line 7 of Algorithm 1: augment and encode both views.
            operator = scheduler.sample() if scheduler else config.da_operator
            augmented = augment_batch(batch, da_rng, operator=operator)
            cutoff = (
                make_cutoff_transform(
                    config.cutoff_kind, config.cutoff_ratio, cutoff_rng
                )
                if config.use_cutoff
                else None
            )
            z_ori = encoder.project(encoder.encode_training(batch))
            z_aug = encoder.project(
                encoder.encode_training(augmented, embedding_transform=cutoff)
            )
            # Line 9: Equation 6 (or plain Equation 2 without RR).
            if config.use_barlow_twins:
                loss = combined_loss(
                    z_ori,
                    z_aug,
                    temperature=config.temperature,
                    alpha_bt=config.alpha_bt,
                    lambda_bt=config.lambda_bt,
                )
            else:
                loss = nt_xent_loss(z_ori, z_aug, temperature=config.temperature)
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
            losses.append(loss.item())
            if scheduler:
                scheduler.update(operator, loss.item())
        epoch_losses.append(float(np.mean(losses)) if losses else float("nan"))

    encoder.eval()
    return PretrainResult(
        encoder=encoder,
        epoch_losses=epoch_losses,
        corpus_size=len(corpus),
        operator_weights=scheduler.weights() if scheduler else None,
    )
